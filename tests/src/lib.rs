//! Shared helpers for workspace integration tests.
