//! Shared helpers for workspace integration tests — chiefly a declarative
//! fault-injection harness for DHT/overlay durability scenarios.
//!
//! A [`FaultScenario`] lists crash / partition / heal / join events at
//! virtual instants; [`FaultHarness`] replays them while stepping the
//! simulation and exposes invariant helpers (record resolvability probes,
//! duplicate-address census, aggregated overlay counters). Tests declare
//! *what* goes wrong and *when*, and assert on what must still hold —
//! new failure scenarios should extend the event list, not re-implement
//! the stepping loop.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use ipop::prelude::*;
use ipop::{deploy_plain, IpopHostAgent, NullApp};
use ipop_netsim::{HostId, LinkImpairment};
use ipop_overlay::OverlayStats;
use ipop_simcore::SimTime;

/// One injected fault (or repair) at a virtual instant.
pub enum FaultEvent {
    /// Kill the member at this index without any goodbye: its agent is
    /// replaced by a null agent, so queued traffic to it blackholes exactly
    /// like a crashed process.
    Crash(usize),
    /// Move the member into partition group `group` (group 0 is the
    /// majority; traffic between different groups is dropped in the core).
    Partition(usize, u8),
    /// Remove every partition.
    Heal,
    /// Impair the path between two members (by index): seeded loss,
    /// duplication, corruption and reordering on every packet between them.
    ImpairLink(usize, usize, LinkImpairment),
    /// Impair every path without a pair-specific impairment (e.g. 1% global
    /// loss — a uniformly dirty wide-area network).
    ImpairAll(LinkImpairment),
    /// Remove the impairment between two members (the all-pairs default, if
    /// any, applies to them again).
    HealLink(usize, usize),
    /// Remove every impairment, pair-specific and default.
    HealAllLinks,
    /// Anything else — mid-run joiners, agent surgery, extra workload. The
    /// closure runs against the harness at the scheduled instant; joiners it
    /// installs should be registered via [`FaultHarness::add_member`] so the
    /// invariant helpers cover them.
    Custom(Box<dyn FnOnce(&mut FaultHarness)>),
}

/// A declarative fault schedule: `(virtual time, event)` pairs, applied in
/// time order while the harness steps the simulation.
#[derive(Default)]
pub struct FaultScenario {
    events: Vec<(Duration, FaultEvent)>,
}

impl FaultScenario {
    /// An empty scenario (a plain stepped run).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: add `event` at virtual time `at` (measured from time zero).
    pub fn at(mut self, at: Duration, event: FaultEvent) -> Self {
        self.events.push((at, event));
        self
    }
}

/// Replays a [`FaultScenario`] over a deployed simulation in fixed steps,
/// tracking which members are dead and exposing invariant helpers.
pub struct FaultHarness {
    /// The simulation under test.
    pub sim: NetworkSim,
    /// Member hosts, in deployment order.
    pub hosts: Vec<HostId>,
    /// Indices of crashed members.
    pub crashed: BTreeSet<usize>,
    /// Pending events, soonest first (drained from the front as their
    /// instants pass; same-instant events keep their declaration order).
    pending: std::collections::VecDeque<(Duration, FaultEvent)>,
    /// Step granularity for [`FaultHarness::run_until`].
    pub step: Duration,
}

impl FaultHarness {
    /// Wrap a deployed simulation and a scenario.
    pub fn new(sim: NetworkSim, hosts: Vec<HostId>, scenario: FaultScenario) -> Self {
        let mut pending = scenario.events;
        // Stable sort: events at the same instant apply in declaration order.
        pending.sort_by_key(|(at, _)| *at);
        FaultHarness {
            sim,
            hosts,
            crashed: BTreeSet::new(),
            pending: pending.into(),
            step: Duration::from_millis(500),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Register a host installed mid-run (a joiner spawned from a
    /// [`FaultEvent::Custom`] closure) as a member, so `live()` and the
    /// invariant helpers cover it. Returns its member index.
    pub fn add_member(&mut self, host: HostId) -> usize {
        self.hosts.push(host);
        self.hosts.len() - 1
    }

    /// Step the simulation to `deadline`, applying every scheduled event as
    /// its instant passes.
    pub fn run_until(&mut self, deadline: SimTime) {
        while self.sim.now() < deadline {
            let now_d = Duration::from_nanos(self.sim.now().as_nanos());
            while let Some((at, _)) = self.pending.front() {
                if *at > now_d {
                    break;
                }
                let (_, event) = self.pending.pop_front().expect("present");
                self.apply(event);
            }
            let step = self.step.min(deadline.saturating_since(self.sim.now()));
            self.sim.run_for(step);
        }
    }

    /// Step the simulation for `d` from now.
    pub fn run_for(&mut self, d: Duration) {
        let deadline = self.sim.now() + d;
        self.run_until(deadline);
    }

    fn apply(&mut self, event: FaultEvent) {
        match event {
            FaultEvent::Crash(i) => {
                self.crashed.insert(i);
                deploy_plain(self.sim.net_mut(), self.hosts[i], Box::new(NullApp));
            }
            FaultEvent::Partition(i, group) => {
                let host = self.hosts[i];
                self.sim.net_mut().set_partition_group(host, group);
            }
            FaultEvent::Heal => self.sim.net_mut().heal_partition(),
            FaultEvent::ImpairLink(i, j, imp) => {
                let (a, b) = (self.hosts[i], self.hosts[j]);
                self.sim.net_mut().set_link_impairment(a, b, imp);
            }
            FaultEvent::ImpairAll(imp) => self.sim.net_mut().set_default_impairment(imp),
            FaultEvent::HealLink(i, j) => {
                let (a, b) = (self.hosts[i], self.hosts[j]);
                self.sim.net_mut().clear_link_impairment(a, b);
            }
            FaultEvent::HealAllLinks => self.sim.net_mut().heal_impairments(),
            FaultEvent::Custom(f) => f(self),
        }
    }

    /// The IPOP agent of member `i`, unless crashed.
    pub fn agent(&self, i: usize) -> Option<&IpopHostAgent> {
        if self.crashed.contains(&i) {
            return None;
        }
        self.sim.agent_as::<IpopHostAgent>(self.hosts[i])
    }

    /// Mutable access to the IPOP agent of member `i`, unless crashed.
    pub fn agent_mut(&mut self, i: usize) -> Option<&mut IpopHostAgent> {
        if self.crashed.contains(&i) {
            return None;
        }
        self.sim
            .net_mut()
            .agent_as_mut::<IpopHostAgent>(self.hosts[i])
    }

    /// Indices of live IPOP members.
    pub fn live(&self) -> Vec<usize> {
        (0..self.hosts.len())
            .filter(|i| !self.crashed.contains(i) && self.agent(*i).is_some())
            .collect()
    }

    /// Overlay counters summed across live members.
    pub fn overlay_totals(&self) -> OverlayStats {
        let mut total = OverlayStats::default();
        for i in self.live() {
            let s = self.agent(i).expect("live").overlay_stats();
            total.dead_edges_detected += s.dead_edges_detected;
            total.link_probes_sent += s.link_probes_sent;
            total.link_probe_timeouts += s.link_probe_timeouts;
            total.dht_sync_digests += s.dht_sync_digests;
            total.dht_sync_pulls += s.dht_sync_pulls;
            total.dht_sync_pushes += s.dht_sync_pushes;
            total.dht_read_repairs += s.dht_read_repairs;
            total.dht_leases_lost += s.dht_leases_lost;
            total.dht_quorum_write_timeouts += s.dht_quorum_write_timeouts;
            total.dht_refreshes += s.dht_refreshes;
            total.malformed_dropped += s.malformed_dropped;
            total.link_probe_deadline_clamps += s.link_probe_deadline_clamps;
        }
        total
    }

    /// Invariant: no two live members hold the same virtual IP.
    pub fn assert_no_duplicate_addresses(&self) {
        let mut seen: Vec<Ipv4Addr> = Vec::new();
        for i in self.live() {
            let agent = self.agent(i).expect("live");
            if agent.has_address() {
                let ip = agent.virtual_ip();
                assert!(
                    !seen.contains(&ip),
                    "duplicate virtual address {ip} among live members"
                );
                seen.push(ip);
            }
        }
    }

    /// Probe (via cache-bypassing Brunet-ARP reads from member `prober`)
    /// until the mapping for `ip` resolves, stepping the simulation between
    /// probes. Returns how long resolution took, or `None` if `timeout`
    /// elapsed first.
    pub fn resolve_within(
        &mut self,
        prober: usize,
        ip: Ipv4Addr,
        timeout: Duration,
    ) -> Option<Duration> {
        let started = self.sim.now();
        let deadline = started + timeout;
        loop {
            let now = self.sim.now();
            self.agent_mut(prober)
                .expect("prober alive")
                .resolve_ip(now, ip);
            self.run_for(self.step);
            let results = self
                .agent_mut(prober)
                .expect("prober alive")
                .take_probe_results();
            if results.iter().any(|(_, addr)| addr.is_some()) {
                return Some(self.sim.now().saturating_since(started));
            }
            if self.sim.now() >= deadline {
                return None;
            }
        }
    }
}
