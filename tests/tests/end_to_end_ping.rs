//! End-to-end: an unmodified ping application runs over an IPOP virtual network
//! deployed on the paper's Fig. 4 testbed, and the user-level overhead matches the
//! paper's qualitative claim (a few milliseconds added on a LAN path).

use std::net::Ipv4Addr;

use ipop::prelude::*;
use ipop::{IpopHostAgent, PlainHostAgent};
use ipop_apps::ping::PingApp;
use ipop_netsim::fig4_testbed;

fn ipop_lan_ping(seed: u64) -> (f64, u64, u64) {
    let mut net = Network::new(seed);
    let tb = fig4_testbed(&mut net);
    let f2_vip = Ipv4Addr::new(172, 16, 0, 4);
    let f4_vip = Ipv4Addr::new(172, 16, 0, 2);
    deploy_ipop(
        &mut net,
        vec![
            IpopMember::router(tb.f4, f4_vip),
            IpopMember::new(
                tb.f2,
                f2_vip,
                Box::new(
                    PingApp::new(f4_vip, 15, Duration::from_millis(20))
                        .with_start_delay(Duration::from_secs(15)),
                ),
            ),
        ],
        DeployOptions::udp(),
    );
    let mut sim = NetworkSim::new(net);
    sim.run_for(Duration::from_secs(40));
    let agent = sim.agent_as::<IpopHostAgent>(tb.f2).expect("ipop agent");
    assert!(agent.is_connected(), "overlay self-configured");
    let report = agent.app_as::<PingApp>().unwrap().report().clone();
    (
        report.summary().mean,
        agent.metrics().tunneled_tx,
        agent.metrics().tunneled_rx,
    )
}

fn physical_lan_ping(seed: u64) -> f64 {
    let mut net = Network::new(seed);
    let tb = fig4_testbed(&mut net);
    let target = tb.addrs[3];
    ipop::deploy_plain(
        &mut net,
        tb.f2,
        Box::new(PingApp::new(target, 15, Duration::from_millis(20))),
    );
    ipop::deploy_plain(&mut net, tb.f4, Box::new(ipop::NullApp));
    let mut sim = NetworkSim::new(net);
    sim.run_for(Duration::from_secs(10));
    sim.agent_as::<PlainHostAgent>(tb.f2)
        .and_then(|a| a.app_as::<PingApp>())
        .map(|p| p.report().summary().mean)
        .unwrap_or(f64::NAN)
}

#[test]
fn ipop_lan_ping_overhead_is_single_digit_milliseconds() {
    let physical = physical_lan_ping(501);
    let (ipop_mean, tx, rx) = ipop_lan_ping(502);
    assert!(physical < 2.5, "physical LAN RTT {physical} ms");
    assert!(
        tx > 0 && rx > 0,
        "packets actually crossed the overlay ({tx}/{rx})"
    );
    let overhead = ipop_mean - physical;
    assert!(
        overhead > 3.0 && overhead < 20.0,
        "IPOP user-level overhead should be a few ms (paper: 6-10 ms), measured {overhead:.2} ms"
    );
}
