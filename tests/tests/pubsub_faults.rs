//! Pub/sub under faults: the topic root (the ring owner of the topic key,
//! which holds the subscriber set and fans publishes out) crashes, and the
//! soft-state machinery must re-home the topic on the new ring owner without
//! permanently losing a single subscriber — the subscriber records come back
//! through DHT replication/anti-entropy and the subscribers' own TTL/2
//! renewals, and the next publish reaches everyone.

use std::net::Ipv4Addr;

use ipop::prelude::*;
use ipop_netsim::planetlab;
use ipop_overlay::pubsub::topic_key;
use ipop_overlay::Address;
use ipop_tests::{FaultEvent, FaultHarness, FaultScenario};

fn vip(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(172, 16, 6, (i + 1) as u8)
}

#[test]
fn topic_root_crash_loses_no_subscribers() {
    const N: usize = 16;
    const TOPIC: &str = "vm-events";
    let mut net = Network::new(0x70B1_C007);
    let plab = planetlab(&mut net, N, 1.0, 13);
    let members = plab
        .nodes
        .iter()
        .enumerate()
        .map(|(i, &h)| IpopMember::router(h, vip(i)))
        .collect();
    let options = DeployOptions::udp()
        // Short subscription TTL: renewals fire every 10 s, so the re-homed
        // root re-learns its subscribers quickly after the crash.
        .with_pubsub_ttl(Duration::from_secs(20))
        .with_dht_sweep_interval(Duration::from_secs(10));
    let hosts = ipop::deploy_ipop(&mut net, members, options);

    // Static members: overlay addresses are the SHA-1 of their virtual IPs,
    // so the topic root — the member ring-closest to the topic key — is known
    // before the run.
    let key = topic_key(TOPIC);
    let root = (0..N)
        .min_by_key(|&i| Address::from_ip(vip(i)).ring_distance(&key))
        .expect("members exist");
    let publisher = (0..N)
        .find(|&i| i != root)
        .expect("a publisher distinct from the root");
    let subscribers: Vec<usize> = (0..N)
        .filter(|&i| i != root && i != publisher)
        .take(5)
        .collect();

    let scenario = FaultScenario::new().at(Duration::from_secs(75), FaultEvent::Crash(root));
    let mut h = FaultHarness::new(NetworkSim::new(net), hosts, scenario);

    // Converge, then subscribe.
    h.run_until(SimTime::ZERO + Duration::from_secs(60));
    for &s in &subscribers {
        let now = h.now();
        h.agent_mut(s)
            .expect("subscriber alive")
            .subscribe(now, TOPIC);
    }
    h.run_for(Duration::from_secs(5));

    // Baseline: a pre-crash publish reaches every subscriber through the
    // still-live root.
    let now = h.now();
    h.agent_mut(publisher).expect("publisher alive").publish(
        now,
        TOPIC,
        ipop_packet::Bytes::copy_from_slice(b"before"),
    );
    h.run_for(Duration::from_secs(5));
    for &s in &subscribers {
        let msgs = h
            .agent_mut(s)
            .expect("subscriber alive")
            .take_topic_messages();
        assert_eq!(
            msgs.len(),
            1,
            "subscriber {s} got the pre-crash publish: {msgs:?}"
        );
        assert_eq!(msgs[0].payload.as_slice(), b"before");
    }

    // The root crashes at 75 s; give the overlay time to detect the dead
    // edges, repair the ring, and re-home the subscriber records on the new
    // owner (replica sweep + the subscribers' own 10 s renewals).
    h.run_until(SimTime::ZERO + Duration::from_secs(120));
    assert!(h.crashed.contains(&root), "the root crashed on schedule");
    let totals = h.overlay_totals();
    assert!(
        totals.dead_edges_detected >= 1,
        "the crashed root's edges were detected dead"
    );

    // The post-crash publish must reach every subscriber: zero permanently
    // lost subscriptions.
    let now = h.now();
    h.agent_mut(publisher).expect("publisher alive").publish(
        now,
        TOPIC,
        ipop_packet::Bytes::copy_from_slice(b"after"),
    );
    h.run_for(Duration::from_secs(10));
    for &s in &subscribers {
        let msgs = h
            .agent_mut(s)
            .expect("subscriber alive")
            .take_topic_messages();
        assert_eq!(
            msgs.len(),
            1,
            "subscriber {s} survived the root crash: {msgs:?}"
        );
        assert_eq!(msgs[0].topic, TOPIC);
        assert_eq!(msgs[0].payload.as_slice(), b"after");
    }

    // And the subscriptions stayed registered app-side, not just delivered.
    for &s in &subscribers {
        let (_published, received, unknown) =
            h.agent_mut(s).expect("subscriber alive").pubsub_counters();
        assert_eq!(received, 2, "subscriber {s} received both publishes");
        assert_eq!(unknown, 0, "no deliveries on unknown topics");
    }
}
