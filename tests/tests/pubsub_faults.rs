//! Pub/sub under faults: the topic root (the ring owner of the topic key,
//! which holds the subscriber set and fans publishes out) crashes, and the
//! soft-state machinery must re-home the topic on the new ring owner without
//! permanently losing a single subscriber — the subscriber records come back
//! through DHT replication/anti-entropy and the subscribers' own TTL/2
//! renewals, and the next publish reaches everyone.

use std::net::Ipv4Addr;

use ipop::prelude::*;
use ipop_netsim::planetlab;
use ipop_overlay::pubsub::topic_key;
use ipop_overlay::Address;
use ipop_tests::{FaultEvent, FaultHarness, FaultScenario};

fn vip(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(172, 16, 6, (i + 1) as u8)
}

#[test]
fn topic_root_crash_loses_no_subscribers() {
    const N: usize = 16;
    const TOPIC: &str = "vm-events";
    let mut net = Network::new(0x70B1_C007);
    let plab = planetlab(&mut net, N, 1.0, 13);
    let members = plab
        .nodes
        .iter()
        .enumerate()
        .map(|(i, &h)| IpopMember::router(h, vip(i)))
        .collect();
    let options = DeployOptions::udp()
        // Short subscription TTL: renewals fire every 10 s, so the re-homed
        // root re-learns its subscribers quickly after the crash.
        .with_pubsub_ttl(Duration::from_secs(20))
        .with_dht_sweep_interval(Duration::from_secs(10));
    let hosts = ipop::deploy_ipop(&mut net, members, options);

    // Static members: overlay addresses are the SHA-1 of their virtual IPs,
    // so the topic root — the member ring-closest to the topic key — is known
    // before the run.
    let key = topic_key(TOPIC);
    let root = (0..N)
        .min_by_key(|&i| Address::from_ip(vip(i)).ring_distance(&key))
        .expect("members exist");
    let publisher = (0..N)
        .find(|&i| i != root)
        .expect("a publisher distinct from the root");
    let subscribers: Vec<usize> = (0..N)
        .filter(|&i| i != root && i != publisher)
        .take(5)
        .collect();

    let scenario = FaultScenario::new().at(Duration::from_secs(75), FaultEvent::Crash(root));
    let mut h = FaultHarness::new(NetworkSim::new(net), hosts, scenario);

    // Converge, then subscribe.
    h.run_until(SimTime::ZERO + Duration::from_secs(60));
    for &s in &subscribers {
        let now = h.now();
        h.agent_mut(s)
            .expect("subscriber alive")
            .subscribe(now, TOPIC);
    }
    h.run_for(Duration::from_secs(5));

    // Baseline: a pre-crash publish reaches every subscriber through the
    // still-live root.
    let now = h.now();
    h.agent_mut(publisher).expect("publisher alive").publish(
        now,
        TOPIC,
        ipop_packet::Bytes::copy_from_slice(b"before"),
    );
    h.run_for(Duration::from_secs(5));
    for &s in &subscribers {
        let msgs = h
            .agent_mut(s)
            .expect("subscriber alive")
            .take_topic_messages();
        assert_eq!(
            msgs.len(),
            1,
            "subscriber {s} got the pre-crash publish: {msgs:?}"
        );
        assert_eq!(msgs[0].payload.as_slice(), b"before");
    }

    // The root crashes at 75 s; give the overlay time to detect the dead
    // edges, repair the ring, and re-home the subscriber records on the new
    // owner (replica sweep + the subscribers' own 10 s renewals).
    h.run_until(SimTime::ZERO + Duration::from_secs(120));
    assert!(h.crashed.contains(&root), "the root crashed on schedule");
    let totals = h.overlay_totals();
    assert!(
        totals.dead_edges_detected >= 1,
        "the crashed root's edges were detected dead"
    );

    // The post-crash publish must reach every subscriber: zero permanently
    // lost subscriptions.
    let now = h.now();
    h.agent_mut(publisher).expect("publisher alive").publish(
        now,
        TOPIC,
        ipop_packet::Bytes::copy_from_slice(b"after"),
    );
    h.run_for(Duration::from_secs(10));
    for &s in &subscribers {
        let msgs = h
            .agent_mut(s)
            .expect("subscriber alive")
            .take_topic_messages();
        assert_eq!(
            msgs.len(),
            1,
            "subscriber {s} survived the root crash: {msgs:?}"
        );
        assert_eq!(msgs[0].topic, TOPIC);
        assert_eq!(msgs[0].payload.as_slice(), b"after");
    }

    // And the subscriptions stayed registered app-side, not just delivered.
    for &s in &subscribers {
        let (_published, received, unknown) =
            h.agent_mut(s).expect("subscriber alive").pubsub_counters();
        assert_eq!(received, 2, "subscriber {s} received both publishes");
        assert_eq!(unknown, 0, "no deliveries on unknown topics");
    }
}

/// A publish that reaches a root holding no topic record is answered with a
/// retryable nack instead of vanishing: the publisher backs off, retries the
/// same message id, and the publish lands once the record exists. Here the
/// record is simply *not there yet* — the publish fires before anyone has
/// subscribed — which is the same recordless-root shape a re-home window
/// produces, minus the crash timing.
#[test]
fn recordless_root_nacks_and_the_publisher_retries_until_delivered() {
    const N: usize = 16;
    const TOPIC: &str = "early-bird";
    let mut net = Network::new(0x9ACC_ED01);
    let plab = planetlab(&mut net, N, 1.0, 17);
    let members = plab
        .nodes
        .iter()
        .enumerate()
        .map(|(i, &h)| IpopMember::router(h, vip(i)))
        .collect();
    let options = DeployOptions::udp().with_pubsub_ttl(Duration::from_secs(60));
    let hosts = ipop::deploy_ipop(&mut net, members, options);

    let key = topic_key(TOPIC);
    let root = (0..N)
        .min_by_key(|&i| Address::from_ip(vip(i)).ring_distance(&key))
        .expect("members exist");
    let publisher = (0..N).find(|&i| i != root).expect("publisher");
    let subscriber = (0..N)
        .find(|&i| i != root && i != publisher)
        .expect("subscriber");

    let mut h = FaultHarness::new(NetworkSim::new(net), hosts, FaultScenario::new());
    h.run_until(SimTime::ZERO + Duration::from_secs(60));

    // Publish before any subscription exists: the root holds no record.
    let now = h.now();
    h.agent_mut(publisher).expect("publisher alive").publish(
        now,
        TOPIC,
        ipop_packet::Bytes::copy_from_slice(b"too-soon"),
    );
    h.run_for(Duration::from_secs(2));

    // The root nacked rather than dropped, and the publisher is now backing
    // off between retries of the same message.
    let root_stats = h.agent(root).expect("root alive").overlay_stats();
    assert!(
        root_stats.pubsub_nacks_sent >= 1,
        "the recordless root nacked: {}",
        root_stats.pubsub_nacks_sent
    );
    let pub_stats = h.agent(publisher).expect("publisher alive").overlay_stats();
    assert!(
        pub_stats.pubsub_nacks_received >= 1,
        "the publisher heard the nack"
    );
    assert_eq!(
        h.agent(subscriber)
            .expect("subscriber alive")
            .pubsub_counters()
            .1,
        0,
        "nothing delivered yet"
    );

    // Now the subscription arrives; the pending retry must deliver the
    // original publish without the application resending anything.
    let now = h.now();
    h.agent_mut(subscriber)
        .expect("subscriber alive")
        .subscribe(now, TOPIC);
    h.run_for(Duration::from_secs(25));

    let msgs = h
        .agent_mut(subscriber)
        .expect("subscriber alive")
        .take_topic_messages();
    assert_eq!(msgs.len(), 1, "the retried publish arrived: {msgs:?}");
    assert_eq!(msgs[0].payload.as_slice(), b"too-soon");
    let pub_stats = h.agent(publisher).expect("publisher alive").overlay_stats();
    assert!(
        pub_stats.pubsub_publish_retries >= 1,
        "delivery came from the retry path: {}",
        pub_stats.pubsub_publish_retries
    );
    assert_eq!(
        pub_stats.pubsub_publish_failures, 0,
        "the publish never hit the retry budget"
    );
}

/// The topic re-homes twice — away from a partitioned root and back after the
/// heal — while one subscriber unsubscribes mid-partition. The old root comes
/// back carrying a stale subscriber set, and its periodic rewrite now goes
/// through the quorum create path where the fresher post-unsubscribe record
/// wins: the unsubscribed node must never be resurrected as a ghost, and the
/// publish after the dust settles must reach exactly the remaining
/// subscribers.
#[test]
fn rehomed_topic_resurrects_no_ghost_subscribers() {
    const N: usize = 16;
    const TOPIC: &str = "vm-events";
    let mut net = Network::new(0x6057_5B5C);
    let plab = planetlab(&mut net, N, 1.0, 29);
    let members = plab
        .nodes
        .iter()
        .enumerate()
        .map(|(i, &h)| IpopMember::router(h, vip(i)))
        .collect();
    let options = DeployOptions::udp()
        .with_pubsub_ttl(Duration::from_secs(20))
        .with_dht_sweep_interval(Duration::from_secs(10));
    let hosts = ipop::deploy_ipop(&mut net, members, options);

    let key = topic_key(TOPIC);
    let root = (0..N)
        .min_by_key(|&i| Address::from_ip(vip(i)).ring_distance(&key))
        .expect("members exist");
    let publisher = (0..N).find(|&i| i != root).expect("publisher");
    let subscribers: Vec<usize> = (0..N)
        .filter(|&i| i != root && i != publisher)
        .take(5)
        .collect();
    let quitter = subscribers[0];
    let keepers = &subscribers[1..];

    // The root is cut off alone at 75 s and rejoins at 100 s — long enough
    // for its live entries to age out and for the survivors' renewals to
    // re-home the record on the interim owner.
    let scenario = FaultScenario::new()
        .at(Duration::from_secs(75), FaultEvent::Partition(root, 1))
        .at(Duration::from_secs(100), FaultEvent::Heal);
    let mut h = FaultHarness::new(NetworkSim::new(net), hosts, scenario);

    h.run_until(SimTime::ZERO + Duration::from_secs(60));
    for &s in &subscribers {
        let now = h.now();
        h.agent_mut(s)
            .expect("subscriber alive")
            .subscribe(now, TOPIC);
    }
    h.run_for(Duration::from_secs(5));

    // Baseline publish through the original root.
    let now = h.now();
    h.agent_mut(publisher).expect("publisher alive").publish(
        now,
        TOPIC,
        ipop_packet::Bytes::copy_from_slice(b"before"),
    );
    h.run_for(Duration::from_secs(5));
    for &s in &subscribers {
        let msgs = h
            .agent_mut(s)
            .expect("subscriber alive")
            .take_topic_messages_for(TOPIC);
        assert_eq!(msgs.len(), 1, "subscriber {s} got the baseline: {msgs:?}");
    }

    // 75 s: the root is partitioned away. 77 s: one subscriber quits. Its
    // renewals stop, so whatever copy of its entry survives anywhere ages out
    // within one TTL.
    h.run_until(SimTime::ZERO + Duration::from_secs(77));
    let now = h.now();
    h.agent_mut(quitter)
        .expect("quitter alive")
        .unsubscribe(now, TOPIC);

    // Ride through the partition, the heal, the re-home back onto the old
    // root and the stale entries' expiry.
    h.run_until(SimTime::ZERO + Duration::from_secs(135));

    // The post-churn publish must reach exactly the remaining subscribers.
    let now = h.now();
    h.agent_mut(publisher).expect("publisher alive").publish(
        now,
        TOPIC,
        ipop_packet::Bytes::copy_from_slice(b"after"),
    );
    h.run_for(Duration::from_secs(15));

    for &s in keepers {
        let msgs = h
            .agent_mut(s)
            .expect("subscriber alive")
            .take_topic_messages_for(TOPIC);
        assert_eq!(
            msgs.len(),
            1,
            "subscriber {s} survived the double re-home: {msgs:?}"
        );
        assert_eq!(msgs[0].payload.as_slice(), b"after");
    }

    // The ghost check: the quitter saw nothing after its unsubscribe — no
    // delivery, no unknown-topic arrival — even though the old root carried
    // its entry into the partition.
    let ghost_msgs = h
        .agent_mut(quitter)
        .expect("quitter alive")
        .take_topic_messages_for(TOPIC);
    assert!(
        ghost_msgs.is_empty(),
        "ghost delivery to the unsubscribed node: {ghost_msgs:?}"
    );
    let (_, received, unknown) = h.agent(quitter).expect("quitter alive").pubsub_counters();
    assert_eq!(received, 1, "the quitter only ever saw the baseline");
    assert_eq!(unknown, 0, "no stray deliveries on an unsubscribed topic");

    // And the publish was never lost: whatever nacks the re-home produced
    // were retried to success, not counted out.
    let failures: u64 = (0..N)
        .filter_map(|i| h.agent(i))
        .map(|a| a.overlay_stats().pubsub_publish_failures)
        .sum();
    assert_eq!(failures, 0, "a publish exhausted its retry budget");
}
