//! Tier-1 scale-routing checks: a deterministic 1000-node ring exercising
//! Kleinberg shortcut routing end to end through the sharded simulator.
//!
//! The heavy 10k/100k measurements live in the `ring_10k`/`ring_100k`
//! benchmark binaries; these tests pin the properties those benches rely on
//! at a size cargo-test can afford:
//!
//! * greedy routing over a converged ring with shortcuts delivers **every**
//!   probe (no loops, no blackholes, no TTL exhaustion);
//! * mean hop count stays within a disclosed bound of the `log₂N` Kleinberg
//!   ideal (measured stretch on this seed is ~0.9; the bound of 1.5 leaves
//!   room for routing-irrelevant perturbations without letting a broken
//!   shortcut layer — ring-walk stretch would be ~19 — slip through);
//! * the sharded parallel tick replays the sequential history bit-for-bit.

use ipop_bench::scale::{run_both_modes, run_scale, ScaleConfig};

fn thousand() -> ScaleConfig {
    ScaleConfig {
        shards: 8,
        maintenance_ticks: 5,
        probes: 1000,
        ..ScaleConfig::ring(1000)
    }
}

#[test]
fn thousand_node_ring_stretch_within_bound() {
    let r = run_scale(&thousand());
    assert!(r.drained, "run must drain before the time limit");
    assert_eq!(r.probes_sent, 1000);
    assert_eq!(
        r.probes_delivered, 1000,
        "every probe must arrive (no loops, blackholes or TTL drops)"
    );
    assert_eq!(r.dropped_no_target, 0);
    assert_eq!(r.dropped_ttl, 0);
    // Shortcut budget actually filled: routing below is shortcut routing,
    // not a lucky ring walk.
    assert!(
        r.mean_far >= 3.0,
        "mean Far edges {:.2} — shortcut formation broke",
        r.mean_far
    );
    let stretch = r.stretch();
    assert!(
        stretch < 1.5,
        "mean hops {:.2} vs log2(1000) = {:.2}: stretch {stretch:.2} exceeds the 1.5 bound",
        r.mean_hops(),
        r.log2n()
    );
}

#[test]
fn thousand_node_parallel_tick_matches_sequential() {
    let (seq, par) = run_both_modes(&thousand());
    assert_eq!(
        seq.trace_hash, par.trace_hash,
        "sharded parallel execution diverged from sequential"
    );
    assert_eq!(seq.events, par.events);
    assert_eq!(seq.hops, par.hops);
    assert_eq!(seq.probes_delivered, par.probes_delivered);
}
