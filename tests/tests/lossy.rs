//! Overlay behaviour on lossy networks, driven by the fault-injection
//! harness's link-impairment events: phi-accrual edge suspicion must keep
//! live-but-lossy edges alive (zero false dead-edge verdicts) while a
//! genuinely crashed peer is still detected within the fast-detection bound
//! — and the ablation run shows the fixed consecutive-miss verdict *does*
//! cut off a lossy member, which is exactly what phi-accrual buys.

use std::net::Ipv4Addr;

use ipop::prelude::*;
use ipop_netsim::{planetlab, LinkImpairment};
use ipop_tests::{FaultEvent, FaultHarness, FaultScenario};

fn vip(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(172, 16, 7, (i + 1) as u8)
}

fn deploy(seed: u64, n: usize, options: DeployOptions, scenario: FaultScenario) -> FaultHarness {
    let mut net = Network::new(seed);
    let plab = planetlab(&mut net, n, 1.0, 5);
    let members = plab
        .nodes
        .iter()
        .enumerate()
        .map(|(i, &h)| IpopMember::router(h, vip(i)))
        .collect();
    let hosts = ipop::deploy_ipop(&mut net, members, options);
    FaultHarness::new(NetworkSim::new(net), hosts, scenario)
}

/// Acceptance criterion for the phi-accrual layer: at 5 % loss (plus
/// reordering) on *every* path, minutes of steady state produce zero false
/// dead-edge verdicts — and when a member then really crashes, its edges
/// are still declared dead within the ~8 s fast-detection bound.
#[test]
fn five_percent_loss_drops_no_edges_and_a_real_crash_is_still_caught() {
    const N: usize = 10;
    const VICTIM: usize = 7;
    let wan = LinkImpairment::none()
        .with_loss(0.05)
        .with_reorder(0.05, Duration::from_millis(20));
    let scenario = FaultScenario::new()
        .at(Duration::from_secs(20), FaultEvent::ImpairAll(wan))
        .at(Duration::from_secs(150), FaultEvent::Crash(VICTIM));
    let mut h = deploy(0x0551_0C5E, N, DeployOptions::udp(), scenario);

    // 130 s of 5 % loss: gossip gaps make edges idle enough to probe and
    // some probe exchanges get eaten by the network, yet no edge dies.
    h.run_until(SimTime::ZERO + Duration::from_secs(150));
    let steady = h.overlay_totals();
    assert!(
        steady.link_probes_sent > 0,
        "lost gossip made edges idle enough to probe"
    );
    assert_eq!(
        steady.dead_edges_detected, 0,
        "a live edge was declared dead under 5% loss"
    );
    let dropped = h
        .sim
        .net()
        .default_impairment_counters()
        .map_or(0, |c| c.dropped);
    assert!(dropped > 0, "the impairment actually dropped packets");

    // The crash fires as this run resumes; 8 s later the victim's edges
    // must already be gone (phi needs more misses on a lossy edge, but the
    // sub-second adaptive probe deadlines keep the verdict inside the bound).
    h.run_until(SimTime::ZERO + Duration::from_secs(158));
    let after = h.overlay_totals();
    assert!(
        after.dead_edges_detected >= 1,
        "the crashed member's edges were not detected within 8 s of the crash"
    );
}

/// One member's every path runs at sustained 20 % loss (so the phi windows
/// of its edges learn the loss rate), then suffers a 4 s total blackout — a
/// routing flap — and recovers. Returns the dead-edge count after the dust
/// settles; the phi/fixed contrast on that count is the whole test.
fn blackout_burst_run(seed: u64, phi: bool) -> u64 {
    const N: usize = 10;
    const LOSSY: usize = 4;
    let noisy = LinkImpairment::none().with_loss(0.2);
    let blackout = LinkImpairment::none().with_loss(1.0);
    let mut scenario = FaultScenario::new();
    for j in 0..N {
        if j != LOSSY {
            scenario = scenario
                .at(
                    Duration::from_secs(20),
                    FaultEvent::ImpairLink(LOSSY, j, noisy),
                )
                .at(
                    Duration::from_secs(140),
                    FaultEvent::ImpairLink(LOSSY, j, blackout),
                )
                .at(
                    Duration::from_secs(144),
                    FaultEvent::ImpairLink(LOSSY, j, noisy),
                );
        }
    }
    // Probe aggressively (every tick an edge is idle) so each edge's phi
    // window gathers plenty of loss samples during the two-minute warm-up.
    let base = DeployOptions::udp().with_link_probe_interval(Duration::from_millis(500));
    let options = if phi {
        base
    } else {
        base.without_phi_accrual()
    };
    let mut h = deploy(seed, N, options, scenario);
    h.run_until(SimTime::ZERO + Duration::from_secs(155));
    h.overlay_totals().dead_edges_detected
}

/// The ablation contrast, same seed both ways: a 4 s blackout burst on a
/// link the fixed verdict already distrusts is fatal — three silent misses
/// take about two seconds — while phi-accrual, having learned the edge's
/// 20 % loss rate from probe exchanges that went unanswered although the
/// peer kept talking, demands twice the silent misses and rides the burst
/// out without a single false verdict.
#[test]
fn ablation_fixed_miss_limit_drops_a_blackout_burst_but_phi_rides_it_out() {
    let seed = 0xAB1A_7E57;
    let fixed = blackout_burst_run(seed, false);
    assert!(
        fixed >= 1,
        "the fixed 3-miss limit should cut off a member during a 4 s blackout, got {fixed} drops"
    );
    let phi = blackout_burst_run(seed, true);
    assert_eq!(
        phi, 0,
        "phi-accrual declared {phi} edges dead across a transient blackout burst"
    );
}
