//! A TCP transfer between a NATed host and a firewalled host succeeds over the
//! IPOP virtual network even though neither endpoint can receive unsolicited
//! physical connections — the paper's core accessibility claim.

use std::net::Ipv4Addr;

use ipop::prelude::*;
use ipop::IpopHostAgent;
use ipop_apps::ttcp::TtcpApp;
use ipop_netsim::{Firewall, NatBox, NatType, Prefix, SiteSpec};

#[test]
fn tcp_transfer_crosses_nat_and_firewall_via_overlay() {
    let mut net = Network::new(77);
    let nat_site = net.add_site(SiteSpec::open("home").with_nat(
        NatBox::new(NatType::PortRestrictedCone, Ipv4Addr::new(128, 10, 0, 1)),
        Prefix::new(Ipv4Addr::new(192, 168, 0, 0), 16),
    ));
    let fw_site =
        net.add_site(SiteSpec::open("campus").with_firewall(Firewall::default_deny_inbound()));
    let pub_site = net.add_site(SiteSpec::open("public"));
    let inside = net.add_host("inside", nat_site, Ipv4Addr::new(192, 168, 0, 2));
    let guarded = net.add_host("guarded", fw_site, Ipv4Addr::new(139, 70, 24, 100));
    let bootstrap = net.add_host("bootstrap", pub_site, Ipv4Addr::new(128, 227, 56, 83));

    let sender_vip = Ipv4Addr::new(172, 16, 0, 2);
    let receiver_vip = Ipv4Addr::new(172, 16, 0, 18);
    deploy_ipop(
        &mut net,
        vec![
            IpopMember::router(bootstrap, Ipv4Addr::new(172, 16, 0, 1)),
            IpopMember::new(
                inside,
                sender_vip,
                Box::new(
                    TtcpApp::sender(receiver_vip, 5201, 400_000)
                        .with_start_delay(Duration::from_secs(12)),
                ),
            ),
            IpopMember::new(guarded, receiver_vip, Box::new(TtcpApp::receiver(5201))),
        ],
        DeployOptions::udp(),
    );
    let mut sim = NetworkSim::new(net);
    sim.run_for(Duration::from_secs(90));

    let receiver = sim.agent_as::<IpopHostAgent>(guarded).unwrap();
    assert_eq!(receiver.app_as::<TtcpApp>().unwrap().received(), 400_000);
    let sender = sim.agent_as::<IpopHostAgent>(inside).unwrap();
    let report = sender.app_as::<TtcpApp>().unwrap().report();
    assert!(
        report.kbps > 0.0,
        "transfer completed with nonzero throughput"
    );
    // And the middleboxes were really in the path.
    assert!(sim
        .net()
        .site(sim.net().host(inside).site)
        .nat
        .as_ref()
        .is_some_and(|n| n.mapping_count() > 0));
}
