//! Decentralized self-configuration: a dozen nodes joining through a single
//! bootstrap form a connected overlay, and virtual IP packets are routable between
//! any pair without any central coordinator. With the DHCP-over-DHT allocator,
//! nodes join knowing only the subnet: they draw, claim and confirm their own
//! addresses, register hostnames, and stay resolvable through owner crashes.

use std::collections::HashSet;
use std::net::Ipv4Addr;

use ipop::prelude::*;
use ipop::IpopHostAgent;
use ipop_apps::ping::PingApp;
use ipop_netsim::planetlab;
use ipop_overlay::Address;

#[test]
fn twelve_nodes_self_configure_and_route() {
    let mut net = Network::new(3001);
    let plab = planetlab(&mut net, 12, 1.0, 5);
    let vip = |i: usize| Ipv4Addr::new(172, 16, 5, (i + 1) as u8);
    let mut members = Vec::new();
    for (i, &h) in plab.nodes.iter().enumerate() {
        if i == 3 {
            members.push(IpopMember::new(
                h,
                vip(i),
                Box::new(
                    PingApp::new(vip(9), 10, Duration::from_millis(200))
                        .with_start_delay(Duration::from_secs(20))
                        .with_timeout(Duration::from_secs(10)),
                ),
            ));
        } else {
            members.push(IpopMember::router(h, vip(i)));
        }
    }
    deploy_ipop(&mut net, members, DeployOptions::udp());
    let mut sim = NetworkSim::new(net);
    sim.run_for(Duration::from_secs(60));

    let connected = plab
        .nodes
        .iter()
        .filter(|&&h| {
            sim.agent_as::<IpopHostAgent>(h)
                .is_some_and(|a| a.is_connected())
        })
        .count();
    assert_eq!(connected, 12, "every node joined the overlay");

    let pinger = sim.agent_as::<IpopHostAgent>(plab.nodes[3]).unwrap();
    let report = pinger.app_as::<PingApp>().unwrap().report();
    assert!(
        report.rtts_ms.len() >= 8,
        "virtual IP traffic routed across the overlay ({} replies)",
        report.rtts_ms.len()
    );
}

#[test]
fn concurrent_dynamic_joins_allocate_unique_addresses() {
    const N: usize = 17;
    let mut net = Network::new(4202);
    let plab = planetlab(&mut net, N, 1.0, 7);
    // One statically addressed bootstrap; everyone else joins with nothing but
    // the subnet and claims an address through the DHT, concurrently.
    let mut members = vec![IpopMember::router(
        plab.nodes[0],
        Ipv4Addr::new(172, 16, 0, 1),
    )];
    for (i, &h) in plab.nodes.iter().enumerate().skip(1) {
        members.push(IpopMember::dynamic_router(h).with_hostname(&format!("worker-{i}")));
    }
    let options = DeployOptions {
        brunet_arp: true,
        ..DeployOptions::udp()
    }
    .with_dynamic_subnet(Ipv4Addr::new(172, 16, 9, 0), 24);
    deploy_ipop(&mut net, members, options);
    let mut sim = NetworkSim::new(net);
    sim.run_for(Duration::from_secs(90));

    let mut ips = Vec::new();
    for &h in plab.nodes.iter().skip(1) {
        let agent = sim.agent_as::<IpopHostAgent>(h).expect("ipop agent");
        assert!(
            agent.has_address(),
            "node {h:?} failed to allocate (state without address after 90 s)"
        );
        let ip = agent.virtual_ip();
        assert!(
            (u32::from(ip) & 0xFFFF_FF00) == u32::from(Ipv4Addr::new(172, 16, 9, 0)),
            "allocated address {ip} outside the /24"
        );
        assert_ne!(
            ip,
            Ipv4Addr::new(172, 16, 9, 254),
            "gateway never allocated"
        );
        ips.push(ip);
    }
    let unique: HashSet<_> = ips.iter().collect();
    assert_eq!(unique.len(), ips.len(), "zero duplicate addresses: {ips:?}");

    // The claims double as Brunet-ARP mappings: a resolution probe from the
    // bootstrap finds the claimant's overlay address.
    let target_ip = ips[3];
    let target_addr = sim
        .agent_as::<IpopHostAgent>(plab.nodes[4])
        .unwrap()
        .overlay_address();
    let now = sim.now();
    sim.net_mut()
        .agent_as_mut::<IpopHostAgent>(plab.nodes[0])
        .unwrap()
        .resolve_ip(now, target_ip);
    sim.run_for(Duration::from_secs(5));
    let probes = sim
        .net_mut()
        .agent_as_mut::<IpopHostAgent>(plab.nodes[0])
        .unwrap()
        .take_probe_results();
    assert_eq!(probes.len(), 1);
    assert_eq!(
        probes[0].1,
        Some(target_addr),
        "the lease record resolves to the claimant's overlay address"
    );

    // And the name service maps hostnames to the dynamically allocated IPs.
    let now = sim.now();
    let cached = sim
        .net_mut()
        .agent_as_mut::<IpopHostAgent>(plab.nodes[1])
        .unwrap()
        .lookup_name(now, "worker-9");
    assert!(cached.is_none(), "first lookup goes to the DHT");
    sim.run_for(Duration::from_secs(5));
    let results = sim
        .net_mut()
        .agent_as_mut::<IpopHostAgent>(plab.nodes[1])
        .unwrap()
        .take_name_results();
    let expected = sim
        .agent_as::<IpopHostAgent>(plab.nodes[9])
        .unwrap()
        .virtual_ip();
    assert_eq!(
        results,
        vec![("worker-9".to_string(), Some(expected))],
        "hostname resolves to the dynamically allocated address"
    );
}

#[test]
fn graceful_leave_releases_the_lease() {
    const N: usize = 10;
    let mut net = Network::new(6404);
    let plab = planetlab(&mut net, N, 1.0, 13);
    let mut members = vec![IpopMember::router(
        plab.nodes[0],
        Ipv4Addr::new(172, 16, 0, 1),
    )];
    for &h in plab.nodes.iter().skip(1) {
        members.push(IpopMember::dynamic_router(h));
    }
    let options = DeployOptions {
        brunet_arp: true,
        ..DeployOptions::udp()
    }
    .with_dynamic_subnet(Ipv4Addr::new(172, 16, 7, 0), 24);
    deploy_ipop(&mut net, members, options);
    let mut sim = NetworkSim::new(net);
    sim.run_for(Duration::from_secs(60));
    let leaver = plab.nodes[4];
    let leaver_ip = sim.agent_as::<IpopHostAgent>(leaver).unwrap().virtual_ip();
    assert!(!leaver_ip.is_unspecified());
    let now = sim.now();
    sim.net_mut()
        .agent_as_mut::<IpopHostAgent>(leaver)
        .unwrap()
        .leave(now);
    sim.run_for(Duration::from_secs(5));
    // The released address no longer resolves: the lease was deleted, not
    // left to linger until its TTL.
    let now = sim.now();
    sim.net_mut()
        .agent_as_mut::<IpopHostAgent>(plab.nodes[1])
        .unwrap()
        .resolve_ip(now, leaver_ip);
    sim.run_for(Duration::from_secs(5));
    let probes = sim
        .net_mut()
        .agent_as_mut::<IpopHostAgent>(plab.nodes[1])
        .unwrap()
        .take_probe_results();
    assert_eq!(probes.len(), 1);
    assert_eq!(
        probes[0].1, None,
        "released lease for {leaver_ip} must be gone from the DHT"
    );
}

#[test]
fn arp_mapping_survives_dht_owner_crash() {
    // Dynamic nodes have random overlay addresses, so the DHT owner of a
    // node's mapping key (SHA-1 of its allocated IP) is generally a *different*
    // node — crashing that owner must not make the IP unresolvable. (For a
    // statically addressed node the key equals the node's own overlay address,
    // so there is no separate owner to crash.)
    const N: usize = 16;
    let mut net = Network::new(5303);
    let plab = planetlab(&mut net, N, 1.0, 11);
    let mut members = vec![IpopMember::router(
        plab.nodes[0],
        Ipv4Addr::new(172, 16, 0, 1),
    )];
    for &h in plab.nodes.iter().skip(1) {
        members.push(IpopMember::dynamic_router(h));
    }
    let options = DeployOptions {
        brunet_arp: true,
        ..DeployOptions::udp()
    }
    .with_dynamic_subnet(Ipv4Addr::new(172, 16, 6, 0), 24);
    deploy_ipop(&mut net, members, options);
    let mut sim = NetworkSim::new(net);
    sim.run_for(Duration::from_secs(60));
    for &h in plab.nodes.iter().skip(1) {
        assert!(
            sim.agent_as::<IpopHostAgent>(h).unwrap().has_address(),
            "every dynamic node bound before the churn phase"
        );
    }
    let vip = |sim: &NetworkSim, i: usize| -> Ipv4Addr {
        sim.agent_as::<IpopHostAgent>(plab.nodes[i])
            .unwrap()
            .virtual_ip()
    };

    // Pick a target whose mapping is owned by a different node.
    let owner_of = |sim: &NetworkSim, key: Address| -> usize {
        (0..N)
            .min_by_key(|&i| {
                sim.agent_as::<IpopHostAgent>(plab.nodes[i])
                    .unwrap()
                    .overlay_address()
                    .ring_distance(&key)
            })
            .unwrap()
    };
    let (target, owner) = (2..N)
        .map(|t| (t, owner_of(&sim, Address::from_ip(vip(&sim, t)))))
        .find(|&(t, o)| o != t && t != 1 && o != 1 && o != 0)
        .expect("a target whose mapping lives elsewhere");
    let target_ip = vip(&sim, target);

    // Crash the DHT owner: its agent is replaced outright, no goodbye.
    deploy_plain(sim.net_mut(), plab.nodes[owner], Box::new(NullApp));
    // Wait out the connection timeout (45 s) so the ring repairs around it.
    sim.run_for(Duration::from_secs(75));

    let prober = 1;
    let now = sim.now();
    sim.net_mut()
        .agent_as_mut::<IpopHostAgent>(plab.nodes[prober])
        .unwrap()
        .resolve_ip(now, target_ip);
    sim.run_for(Duration::from_secs(10));
    let probes = sim
        .net_mut()
        .agent_as_mut::<IpopHostAgent>(plab.nodes[prober])
        .unwrap()
        .take_probe_results();
    let expected = sim
        .agent_as::<IpopHostAgent>(plab.nodes[target])
        .unwrap()
        .overlay_address();
    assert_eq!(probes.len(), 1);
    assert_eq!(
        probes[0].1,
        Some(expected),
        "resolution of {target_ip} still succeeds after its DHT owner crashed"
    );

    // DHT health is visible in the overlay stats of the survivors.
    let (records, replicas): (u64, u64) = (0..N)
        .filter(|&i| i != owner)
        .filter_map(|i| sim.agent_as::<IpopHostAgent>(plab.nodes[i]))
        .map(|a| {
            let s = a.overlay_stats();
            (s.dht_records, s.dht_replicas)
        })
        .fold((0, 0), |(r, p), (a, b)| (r + a, p + b));
    assert!(records >= N as u64, "mappings stored: {records}");
    assert!(replicas > 0, "replicas held: {replicas}");
}
