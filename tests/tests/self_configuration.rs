//! Decentralized self-configuration: a dozen nodes joining through a single
//! bootstrap form a connected overlay, and virtual IP packets are routable between
//! any pair without any central coordinator.

use std::net::Ipv4Addr;

use ipop::prelude::*;
use ipop::IpopHostAgent;
use ipop_apps::ping::PingApp;
use ipop_netsim::planetlab;

#[test]
fn twelve_nodes_self_configure_and_route() {
    let mut net = Network::new(3001);
    let plab = planetlab(&mut net, 12, 1.0, 5);
    let vip = |i: usize| Ipv4Addr::new(172, 16, 5, (i + 1) as u8);
    let mut members = Vec::new();
    for (i, &h) in plab.nodes.iter().enumerate() {
        if i == 3 {
            members.push(IpopMember::new(
                h,
                vip(i),
                Box::new(
                    PingApp::new(vip(9), 10, Duration::from_millis(200))
                        .with_start_delay(Duration::from_secs(20))
                        .with_timeout(Duration::from_secs(10)),
                ),
            ));
        } else {
            members.push(IpopMember::router(h, vip(i)));
        }
    }
    deploy_ipop(&mut net, members, DeployOptions::udp());
    let mut sim = NetworkSim::new(net);
    sim.run_for(Duration::from_secs(60));

    let connected = plab
        .nodes
        .iter()
        .filter(|&&h| {
            sim.agent_as::<IpopHostAgent>(h)
                .is_some_and(|a| a.is_connected())
        })
        .count();
    assert_eq!(connected, 12, "every node joined the overlay");

    let pinger = sim.agent_as::<IpopHostAgent>(plab.nodes[3]).unwrap();
    let report = pinger.app_as::<PingApp>().unwrap().report();
    assert!(
        report.rtts_ms.len() >= 8,
        "virtual IP traffic routed across the overlay ({} replies)",
        report.rtts_ms.len()
    );
}
