//! DHT durability under faults, driven by the declarative fault-injection
//! harness in `ipop_tests`: the 45 s put-loss-window regression, a combined
//! crash/partition/heal/join scenario, and the name service's reverse
//! lookups surviving alongside it all.

use std::net::Ipv4Addr;

use ipop::prelude::*;
use ipop::IpopHostAgent;
use ipop_netsim::planetlab;
use ipop_overlay::Address;
use ipop_tests::{FaultEvent, FaultHarness, FaultScenario};

fn vip(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(172, 16, 5, (i + 1) as u8)
}

/// Regression for the ROADMAP's "45 s loss window": a plain `DhtPut` routed
/// through a freshly-crashed hop used to be silently lost until the
/// connection timeout aged the dead edge out (45 s) *and* the publisher's
/// TTL/2 refresh re-put it (here 300 s). With the link monitor dropping the
/// dead edge in seconds and the publisher's anti-entropy sweep re-sending
/// the record the moment the new owner's digest pull arrives, the mapping
/// must resolve again within roughly one sweep interval.
#[test]
fn put_through_crashed_hop_recovers_within_a_sweep_interval() {
    const N: usize = 16;
    let mut net = Network::new(0x0D07_A11E);
    let plab = planetlab(&mut net, N, 1.0, 11);
    let members = plab
        .nodes
        .iter()
        .enumerate()
        .map(|(i, &h)| IpopMember::router(h, vip(i)))
        .collect();
    let options = DeployOptions {
        brunet_arp: true,
        ..DeployOptions::udp()
    }
    // A long lease keeps the TTL/2 refresh (300 s) out of the test window:
    // only the anti-entropy sweep can recover the lost put in time.
    .with_lease_ttl(Duration::from_secs(600));
    let hosts = ipop::deploy_ipop(&mut net, members, options);
    let sim = NetworkSim::new(net);

    // The guest mapping's ring owner among the static members (their overlay
    // addresses are the SHA-1 of their virtual IPs).
    let guest = Ipv4Addr::new(172, 16, 5, 200);
    let key = Address::from_ip(guest);
    let owner = (0..N)
        .min_by_key(|&i| Address::from_ip(vip(i)).ring_distance(&key))
        .expect("members exist");
    let publisher = (0..N)
        .find(|&i| i != owner && i != 0)
        .expect("a publisher distinct from owner and bootstrap");
    let prober = (0..N)
        .find(|&i| i != owner && i != publisher && i != 0)
        .expect("a prober distinct from both");

    // Let the ring converge, then crash the owner.
    let scenario = FaultScenario::new().at(Duration::from_secs(60), FaultEvent::Crash(owner));
    let mut h = FaultHarness::new(sim, hosts, scenario);
    h.run_until(SimTime::ZERO + Duration::from_millis(60_200));
    assert!(h.crashed.contains(&owner), "the owner crashed on schedule");

    // 200 ms after the crash nobody has noticed yet: the put is forwarded
    // straight into the dead hop and lost in flight.
    let now = h.now();
    h.agent_mut(publisher)
        .expect("publisher alive")
        .route_for(now, guest);

    let recovered = h.resolve_within(prober, guest, Duration::from_secs(35));
    let elapsed = recovered.expect("the mapping resolved again inside the probe window");
    assert!(
        elapsed <= Duration::from_secs(30),
        "recovery took {elapsed:?} — the sweep should bound it well under the 45 s \
         connection timeout (and the 300 s refresh)"
    );
    let totals = h.overlay_totals();
    assert!(
        totals.dead_edges_detected >= 1,
        "the link monitor declared the crashed hop's edges dead"
    );
    assert!(
        totals.dht_sync_digests >= 1,
        "anti-entropy digests flowed: {}",
        totals.dht_sync_digests
    );
    assert!(
        totals.dht_sync_pulls >= 1,
        "the lost record came back through a digest pull: {}",
        totals.dht_sync_pulls
    );
}

/// A declarative end-to-end durability scenario: a crash, a two-node
/// partition, a heal and a mid-run joiner — through all of which the
/// dynamic address space must stay duplicate-free and every live node bound.
#[test]
fn crash_partition_heal_join_scenario_keeps_addresses_consistent() {
    const N: usize = 10;
    let mut net = Network::new(0x000F_A017);
    let plab = planetlab(&mut net, N + 1, 1.0, 7);
    let mut members = vec![IpopMember::router(
        plab.nodes[0],
        Ipv4Addr::new(172, 16, 0, 1),
    )];
    for (i, &h) in plab.nodes.iter().enumerate().take(N).skip(1) {
        members.push(IpopMember::dynamic_router(h).with_hostname(&format!("d{i}")));
    }
    let options = DeployOptions {
        brunet_arp: true,
        ..DeployOptions::udp()
    }
    .with_dynamic_subnet(Ipv4Addr::new(172, 16, 9, 0), 24)
    .with_lease_ttl(Duration::from_secs(40));
    let hosts = ipop::deploy_ipop(&mut net, members, options);

    let spare = plab.nodes[N];
    let bootstrap_addr = plab.addrs[0];
    let scenario = FaultScenario::new()
        .at(Duration::from_secs(125), FaultEvent::Crash(5))
        .at(Duration::from_secs(140), FaultEvent::Partition(7, 1))
        .at(Duration::from_secs(140), FaultEvent::Partition(8, 1))
        .at(Duration::from_secs(170), FaultEvent::Heal)
        .at(
            Duration::from_secs(175),
            FaultEvent::Custom(Box::new(move |h: &mut FaultHarness| {
                let cfg = IpopConfig::dynamic((Ipv4Addr::new(172, 16, 9, 0), 24))
                    .with_bootstrap(vec![(bootstrap_addr, 4001)])
                    .with_lease_ttl(Duration::from_secs(40))
                    .with_hostname("joiner");
                let phys = h.sim.net().host(spare).addr;
                let agent = IpopHostAgent::new(cfg, phys, Box::new(ipop::NullApp));
                h.sim.net_mut().set_agent(spare, Box::new(agent));
                h.sim.start_host(spare);
                // Registered as a member: live() and the duplicate census
                // cover the joiner from here on.
                h.add_member(spare);
            })),
        );
    let mut h = FaultHarness::new(NetworkSim::new(net), hosts, scenario);
    h.run_until(SimTime::ZERO + Duration::from_secs(225));

    // Every live dynamic member — the mid-run joiner included — ended bound,
    // uniquely (the census spans the joiner since add_member).
    assert_eq!(h.live().len(), N + 1 - 1, "one crash, one joiner");
    for i in h.live() {
        if i == 0 {
            continue;
        }
        assert!(
            h.agent(i).expect("live").has_address(),
            "member {i} lost its address to the fault schedule"
        );
    }
    h.assert_no_duplicate_addresses();
    // The durability machinery actually engaged.
    let totals = h.overlay_totals();
    assert!(
        totals.dead_edges_detected >= 1,
        "crash/partition edges were detected dead"
    );
    assert!(totals.dht_sync_digests >= 1, "anti-entropy swept");
}

/// Reverse lookups: a registered hostname resolves back from its IP, both
/// directions coexist, and unregistered IPs answer with nothing.
#[test]
fn reverse_lookup_maps_ips_back_to_hostnames() {
    const N: usize = 8;
    let mut net = Network::new(0x0009_E7AA);
    let plab = planetlab(&mut net, N, 1.0, 3);
    let members = plab
        .nodes
        .iter()
        .enumerate()
        .map(|(i, &h)| IpopMember::router(h, vip(i)).with_hostname(&format!("h{i}")))
        .collect();
    let hosts = ipop::deploy_ipop(&mut net, members, DeployOptions::udp());
    let mut sim = NetworkSim::new(net);
    sim.run_for(Duration::from_secs(30));

    let resolver = hosts[2];
    // Forward lookup still works...
    let now = sim.now();
    let pending = sim
        .net_mut()
        .agent_as_mut::<IpopHostAgent>(resolver)
        .unwrap()
        .lookup_name(now, "h5");
    assert_eq!(pending, None, "first lookup goes to the DHT");
    sim.run_for(Duration::from_secs(5));
    let names = sim
        .net_mut()
        .agent_as_mut::<IpopHostAgent>(resolver)
        .unwrap()
        .take_name_results();
    assert_eq!(names, vec![("h5".to_string(), Some(vip(5)))]);

    // ...and the reverse record turns the IP back into the hostname.
    let now = sim.now();
    let cached = sim
        .net_mut()
        .agent_as_mut::<IpopHostAgent>(resolver)
        .unwrap()
        .lookup_ip(now, vip(5));
    assert_eq!(cached, None, "first reverse lookup goes to the DHT");
    sim.run_for(Duration::from_secs(5));
    let reversed = sim
        .net_mut()
        .agent_as_mut::<IpopHostAgent>(resolver)
        .unwrap()
        .take_reverse_results();
    assert_eq!(reversed, vec![(vip(5), Some("h5".to_string()))]);
    // The answer is now cached.
    let now = sim.now();
    let cached = sim
        .net_mut()
        .agent_as_mut::<IpopHostAgent>(resolver)
        .unwrap()
        .lookup_ip(now, vip(5));
    assert_eq!(cached, Some("h5".to_string()));

    // An IP nobody registered reverse-resolves to nothing.
    let ghost = Ipv4Addr::new(172, 16, 5, 123);
    let now = sim.now();
    assert_eq!(
        sim.net_mut()
            .agent_as_mut::<IpopHostAgent>(resolver)
            .unwrap()
            .lookup_ip(now, ghost),
        None
    );
    sim.run_for(Duration::from_secs(5));
    let reversed = sim
        .net_mut()
        .agent_as_mut::<IpopHostAgent>(resolver)
        .unwrap()
        .take_reverse_results();
    assert_eq!(reversed, vec![(ghost, None)]);
}
