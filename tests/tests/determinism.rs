//! Whole-system determinism: two `Network::new(seed)` runs of the same IPOP
//! scenario must execute the same number of events and produce identical
//! application-level results and traffic counters. This is the property that
//! makes every benchmark table in `ipop-bench` reproducible.

use std::net::Ipv4Addr;

use ipop::prelude::*;
use ipop::IpopHostAgent;
use ipop_apps::ping::PingApp;
use ipop_netsim::fig4_testbed;

/// Outcome of one scenario run, in comparable form.
#[derive(Debug, PartialEq)]
struct RunTrace {
    events: u64,
    rtts_ms: Vec<f64>,
    tx_packets: Vec<u64>,
    rx_packets: Vec<u64>,
    delivered: u64,
}

fn run_fig4_ping(seed: u64) -> RunTrace {
    let mut net = Network::new(seed);
    let tb = fig4_testbed(&mut net);
    let vips = [
        Ipv4Addr::new(172, 16, 0, 3),
        Ipv4Addr::new(172, 16, 0, 4),
        Ipv4Addr::new(172, 16, 0, 51),
        Ipv4Addr::new(172, 16, 0, 2),
        Ipv4Addr::new(172, 16, 0, 18),
        Ipv4Addr::new(172, 16, 0, 20),
    ];
    let hosts = tb.all();
    let members = vips
        .iter()
        .enumerate()
        .map(|(i, &vip)| {
            if i == 1 {
                IpopMember::new(
                    hosts[i],
                    vip,
                    Box::new(
                        PingApp::new(vips[4], 10, Duration::from_millis(50))
                            .with_start_delay(Duration::from_secs(20)),
                    ),
                )
            } else {
                IpopMember::router(hosts[i], vip)
            }
        })
        .collect();
    ipop::deploy_ipop(&mut net, members, DeployOptions::udp());
    let mut sim = NetworkSim::new(net);
    sim.run_for(Duration::from_secs(30));
    let rtts_ms = sim
        .agent_as::<IpopHostAgent>(hosts[1])
        .and_then(|a| a.app_as::<PingApp>())
        .map(|p| p.report().rtts_ms.clone())
        .unwrap_or_default();
    RunTrace {
        events: sim.events_executed(),
        rtts_ms,
        tx_packets: hosts
            .iter()
            .map(|&h| sim.net().host(h).counters.tx_packets)
            .collect(),
        rx_packets: hosts
            .iter()
            .map(|&h| sim.net().host(h).counters.rx_packets)
            .collect(),
        delivered: sim.net().counters().delivered,
    }
}

/// Outcome of the 64-node run, in byte-comparable form. The overlay tuple
/// covers the link-monitor path (probes sent, probe timeouts, dead edges
/// detected) and the malformed-ingress counter, so crash-induced detection
/// traffic and corruption-induced decode drops are part of the
/// byte-identical contract; `impair` carries the network-wide impairment
/// counters (dropped, duplicated, corrupted, reordered).
#[derive(Debug, PartialEq)]
struct BigRunTrace {
    events: u64,
    delivered: u64,
    rtts_ms: Vec<f64>,
    per_host: Vec<(u64, u64, u64, u64)>,
    overlay: Vec<(u64, u64, u64, u64, u64, u64, u64)>,
    impair: (u64, u64, u64, u64),
}

/// A 64-node overlay across a mix of open sites, NATed sites (alternating cone
/// types) and firewalled sites — the composition the paper targets — driven by
/// the typed-event scheduler. One node pings across the ring while the rest
/// route — and four nodes crash mid-run, so the link monitor's probe and
/// dead-edge traffic is exercised under the same-seed replay contract. With
/// `lossy` the whole fabric additionally runs under a 1 % loss + reorder +
/// corruption impairment, so every impairment draw and every
/// malformed-datagram drop joins the byte-identical contract too.
fn run_mixed_64(seed: u64, lossy: bool) -> BigRunTrace {
    use ipop_netsim::firewall::Firewall;
    use ipop_netsim::link::LinkParams;
    use ipop_netsim::nat::{NatBox, NatType};
    use ipop_netsim::site::Prefix;
    use ipop_netsim::SiteSpec;

    const N: usize = 64;
    let mut net = Network::new(seed);
    let mut hosts = Vec::with_capacity(N);
    for i in 0..N {
        let name = format!("site-{i:02}");
        let spec = SiteSpec::open(&name).with_access(LinkParams::wan(
            Duration::from_millis(2 + (i as u64 % 7)),
            20.0,
        ));
        let (spec, addr) = match i % 4 {
            // NATed site: private address space behind an alternating cone type.
            1 => {
                let nat_type = if i % 8 == 1 {
                    NatType::FullCone
                } else {
                    NatType::PortRestrictedCone
                };
                let public = Ipv4Addr::new(100, 64, i as u8, 1);
                (
                    spec.with_nat(
                        NatBox::new(nat_type, public),
                        Prefix::new(Ipv4Addr::new(192, 168, i as u8, 0), 24),
                    ),
                    Ipv4Addr::new(192, 168, i as u8, 2),
                )
            }
            // Firewalled site: outbound-initiated traffic only.
            3 => (
                spec.with_firewall(Firewall::default_deny_inbound()),
                Ipv4Addr::new(139, 70, i as u8, 2),
            ),
            // Open public site.
            _ => (spec, Ipv4Addr::new(128, 227, i as u8, 2)),
        };
        let site = net.add_site(spec);
        hosts.push(net.add_host(&format!("h{i:02}"), site, addr));
    }

    let vip_of = |i: usize| Ipv4Addr::new(172, 16, 1, (i + 1) as u8);
    let src_idx = 2;
    let members = hosts
        .iter()
        .enumerate()
        .map(|(i, &h)| {
            if i == src_idx {
                IpopMember::new(
                    h,
                    vip_of(i),
                    Box::new(
                        PingApp::new(vip_of(N / 2), 20, Duration::from_millis(250))
                            .with_start_delay(Duration::from_secs(8))
                            .with_timeout(Duration::from_secs(3)),
                    ),
                )
            } else {
                IpopMember::router(h, vip_of(i))
            }
        })
        .collect();
    ipop::deploy_ipop(&mut net, members, DeployOptions::udp());
    if lossy {
        use ipop_netsim::LinkImpairment;
        // A uniformly hostile fabric: loss, reordering and byte-flipping
        // corruption on every path, so the hardened decoders' drop path runs
        // inside the replay contract.
        net.set_default_impairment(
            LinkImpairment::none()
                .with_loss(0.01)
                .with_reorder(0.02, Duration::from_millis(10))
                .with_corrupt(0.02),
        );
    }

    let mut sim = NetworkSim::new(net);
    // Induced crashes: four routers die unannounced at 6 s (none of them the
    // pinger or its target), and the link monitor must detect the dead edges
    // identically across same-seed runs.
    sim.run_for(Duration::from_secs(6));
    for &victim in &[10usize, 20, 40, 50] {
        ipop::deploy_plain(sim.net_mut(), hosts[victim], Box::new(ipop::NullApp));
    }
    sim.run_for(Duration::from_secs(9));

    let rtts_ms = sim
        .agent_as::<IpopHostAgent>(hosts[src_idx])
        .and_then(|a| a.app_as::<PingApp>())
        .map(|p| p.report().rtts_ms.clone())
        .unwrap_or_default();
    BigRunTrace {
        events: sim.events_executed(),
        delivered: sim.net().counters().delivered,
        rtts_ms,
        per_host: hosts
            .iter()
            .map(|&h| {
                let c = sim.net().host(h).counters;
                (c.tx_packets, c.tx_bytes, c.rx_packets, c.rx_bytes)
            })
            .collect(),
        overlay: hosts
            .iter()
            .map(|&h| {
                sim.agent_as::<IpopHostAgent>(h)
                    .map(|a| {
                        let s = a.overlay_stats();
                        (
                            s.link_tx,
                            s.link_rx,
                            s.forwarded,
                            s.link_probes_sent,
                            s.link_probe_timeouts,
                            s.dead_edges_detected,
                            s.malformed_dropped,
                        )
                    })
                    .unwrap_or_default()
            })
            .collect(),
        impair: {
            let c = sim.net().counters();
            (
                c.impair_dropped,
                c.impair_duplicated,
                c.impair_corrupted,
                c.impair_reordered,
            )
        },
    }
}

#[test]
fn mixed_nat_public_64_node_runs_are_byte_identical() {
    let a = run_mixed_64(0xB16_5EED, false);
    let b = run_mixed_64(0xB16_5EED, false);
    // The overlay actually formed and carried traffic...
    assert!(a.delivered > 10_000, "delivered {}", a.delivered);
    assert!(
        a.rtts_ms.len() >= 10,
        "pings crossed the mixed overlay: {}",
        a.rtts_ms.len()
    );
    // ...the crashed routers' edges were hunted down by the link monitor...
    let dead_edges: u64 = a.overlay.iter().map(|o| o.5).sum();
    assert!(
        dead_edges >= 1,
        "induced crashes produced dead-edge detections: {dead_edges}"
    );
    let probes: u64 = a.overlay.iter().map(|o| o.3).sum();
    assert!(probes >= 1, "probes flowed: {probes}");
    // ...and the two same-seed runs are indistinguishable, field by field.
    assert_eq!(a, b);
}

#[test]
fn lossy_mixed_64_node_runs_are_byte_identical() {
    let a = run_mixed_64(0x0010_55ED, true);
    let b = run_mixed_64(0x0010_55ED, true);
    // The impairments actually bit: packets were dropped, reordered and
    // corrupted by the seeded draws...
    assert!(a.impair.0 > 0, "loss draws dropped packets: {:?}", a.impair);
    assert!(
        a.impair.3 > 0,
        "reorder draws delayed packets: {:?}",
        a.impair
    );
    assert!(
        a.impair.2 > 0,
        "corruption draws flipped packets: {:?}",
        a.impair
    );
    // ...corrupted overlay datagrams were counted out at ingress instead of
    // crashing a decoder...
    let malformed: u64 = a.overlay.iter().map(|o| o.6).sum();
    assert!(malformed >= 1, "corruption surfaced as malformed drops");
    // ...the overlay still carried the workload end to end...
    assert!(a.delivered > 10_000, "delivered {}", a.delivered);
    assert!(
        a.rtts_ms.len() >= 10,
        "pings crossed the lossy overlay: {}",
        a.rtts_ms.len()
    );
    // ...and every impairment draw, malformed drop and detection verdict
    // replays byte-identically under the same seed.
    assert_eq!(a, b);
}

/// Outcome of a dynamic-allocation run, in byte-comparable form: every field
/// that DHT, lease and replication traffic can influence.
#[derive(Debug, PartialEq)]
struct SelfConfigTrace {
    events: u64,
    delivered: u64,
    ips: Vec<Ipv4Addr>,
    latencies_ns: Vec<Option<u64>>,
    collisions: Vec<Option<u64>>,
    dht: Vec<(u64, u64, u64, u64, u64)>,
    /// Quorum machinery per node: coordinated reads, writes, repairs.
    quorum: Vec<(u64, u64, u64)>,
    /// Anti-entropy machinery per node: digests sent, records pulled,
    /// fresher copies pushed back.
    sync: Vec<(u64, u64, u64)>,
    /// Resolution probes answered over the quorum read path.
    probes: Vec<(u64, bool)>,
}

/// A 12-node overlay where everyone but the bootstrap allocates its address
/// through the DHCP-over-DHT claim path — the run exercises creates, confirm
/// reads, replication, lease refreshes and name registrations. One allocated
/// node crashes mid-run, so the anti-entropy sweep's recovery traffic (and
/// the link monitor's detection of the dead edges) is part of the trace.
fn run_dynamic_join(seed: u64) -> SelfConfigTrace {
    use ipop_netsim::planetlab;
    const N: usize = 12;
    let mut net = Network::new(seed);
    let plab = planetlab(&mut net, N, 1.0, seed);
    let mut members = vec![IpopMember::router(
        plab.nodes[0],
        Ipv4Addr::new(172, 16, 0, 1),
    )];
    for (i, &h) in plab.nodes.iter().enumerate().skip(1) {
        members.push(IpopMember::dynamic_router(h).with_hostname(&format!("d{i}")));
    }
    let options = DeployOptions {
        brunet_arp: true,
        ..DeployOptions::udp()
    }
    .with_dynamic_subnet(Ipv4Addr::new(172, 16, 9, 0), 24);
    ipop::deploy_ipop(&mut net, members, options);
    let mut sim = NetworkSim::new(net);
    // Crash one allocated node at 55 s: the records it owned must come back
    // through the sweep (and its own lease simply ages out) — identically
    // across same-seed runs.
    sim.run_for(Duration::from_secs(55));
    ipop::deploy_plain(sim.net_mut(), plab.nodes[6], Box::new(ipop::NullApp));
    sim.run_for(Duration::from_secs(20));
    // Drive the quorum read path explicitly: one node resolves every bound
    // address (replica polls, freshest-copy selection and any read repair all
    // land in the trace below).
    let bound: Vec<Ipv4Addr> = plab
        .nodes
        .iter()
        .skip(1)
        .filter_map(|&h| sim.agent_as::<IpopHostAgent>(h))
        .filter(|a| a.has_address())
        .map(|a| a.virtual_ip())
        .collect();
    let now = sim.now();
    for ip in &bound {
        sim.net_mut()
            .agent_as_mut::<IpopHostAgent>(plab.nodes[0])
            .unwrap()
            .resolve_ip(now, *ip);
    }
    sim.run_for(Duration::from_secs(10));
    let probes: Vec<(u64, bool)> = sim
        .net_mut()
        .agent_as_mut::<IpopHostAgent>(plab.nodes[0])
        .unwrap()
        .take_probe_results()
        .into_iter()
        .map(|(token, addr)| (token, addr.is_some()))
        .collect();
    // The crashed node's agent is gone: its slots carry defaults so the
    // trace stays index-aligned with the member list.
    let agents: Vec<Option<&IpopHostAgent>> = plab
        .nodes
        .iter()
        .map(|&h| sim.agent_as::<IpopHostAgent>(h))
        .collect();
    SelfConfigTrace {
        events: sim.events_executed(),
        delivered: sim.net().counters().delivered,
        ips: agents
            .iter()
            .map(|a| a.map_or(Ipv4Addr::UNSPECIFIED, |a| a.virtual_ip()))
            .collect(),
        latencies_ns: agents
            .iter()
            .map(|a| a.and_then(|a| a.allocation_latency()).map(|d| d.as_nanos()))
            .collect(),
        collisions: agents
            .iter()
            .map(|a| a.and_then(|a| a.allocation_collisions()))
            .collect(),
        dht: agents
            .iter()
            .map(|a| {
                a.map_or_else(Default::default, |a| {
                    let s = a.overlay_stats();
                    (
                        s.dht_records,
                        s.dht_bytes,
                        s.dht_replicas,
                        s.dht_refreshes,
                        s.dht_expired,
                    )
                })
            })
            .collect(),
        quorum: agents
            .iter()
            .map(|a| {
                a.map_or_else(Default::default, |a| {
                    let s = a.overlay_stats();
                    (s.dht_quorum_reads, s.dht_quorum_writes, s.dht_read_repairs)
                })
            })
            .collect(),
        sync: agents
            .iter()
            .map(|a| {
                a.map_or_else(Default::default, |a| {
                    let s = a.overlay_stats();
                    (s.dht_sync_digests, s.dht_sync_pulls, s.dht_sync_pushes)
                })
            })
            .collect(),
        probes,
    }
}

#[test]
fn dynamic_join_runs_are_byte_identical() {
    let a = run_dynamic_join(0xD4C9_05EED);
    let b = run_dynamic_join(0xD4C9_05EED);
    // The run exercised the allocator: every surviving dynamic node bound
    // (index 6 is the induced crash — its slot carries the default)...
    assert!(
        a.ips
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(i, _)| *i != 6)
            .all(|(_, ip)| !ip.is_unspecified()),
        "all surviving dynamic nodes allocated: {:?}",
        a.ips
    );
    assert!(
        a.ips[6].is_unspecified(),
        "the crashed member's slot is defaulted"
    );
    // The durability machinery ran: digests were exchanged and the crashed
    // node's edges were detected dead.
    assert!(
        a.sync.iter().map(|s| s.0).sum::<u64>() > 0,
        "anti-entropy digests flowed"
    );
    assert!(
        a.dht.iter().map(|d| d.3).sum::<u64>() > 0,
        "lease refreshes happened"
    );
    // The quorum machinery actually ran: claims were majority-acked and the
    // resolution probes went through replica polls.
    assert!(
        a.quorum.iter().map(|q| q.0).sum::<u64>() > 0,
        "quorum reads coordinated"
    );
    assert!(
        a.quorum.iter().map(|q| q.1).sum::<u64>() > 0,
        "quorum writes coordinated"
    );
    assert!(
        !a.probes.is_empty() && a.probes.iter().all(|(_, ok)| *ok),
        "every bound address resolved over the quorum path: {:?}",
        a.probes
    );
    // ...and DHT/lease/quorum traffic replays byte-identically.
    assert_eq!(a, b);
}

/// Outcome of a mixed pub/sub run, in byte-comparable form: per-node
/// subscribe/publish/delivery counters, relay-tree counters from the overlay
/// stats, and the full delivered message stream (topic, id, payload).
#[derive(Debug, PartialEq)]
struct PubSubTrace {
    events: u64,
    delivered: u64,
    /// `(published, received, unknown_topic)` per member.
    counters: Vec<(u64, u64, u64)>,
    /// `(fanout_sent, delivered, relayed, salvaged)` per member.
    relay: Vec<(u64, u64, u64, u64)>,
    /// Every topic message each member drained, in arrival order.
    messages: Vec<Vec<(String, u64, Vec<u8>)>>,
}

/// A 16-node overlay carrying mixed pub/sub traffic on two topics: half the
/// nodes subscribe to "alpha", a third to "beta" (two nodes to both), then
/// three publishers emit interleaved messages on each. Subscriptions,
/// publishes, relay-tree fan-out and the delivered payload stream must all
/// replay byte-identically under the same seed.
fn run_pubsub_mesh(seed: u64) -> PubSubTrace {
    use ipop_netsim::planetlab;
    const N: usize = 16;
    let mut net = Network::new(seed);
    let plab = planetlab(&mut net, N, 1.0, seed);
    let members = plab
        .nodes
        .iter()
        .enumerate()
        .map(|(i, &h)| IpopMember::router(h, Ipv4Addr::new(172, 16, 3, (i + 1) as u8)))
        .collect();
    ipop::deploy_ipop(&mut net, members, DeployOptions::udp());
    let mut sim = NetworkSim::new(net);
    sim.run_for(Duration::from_secs(30));

    // Subscriptions: evens on "alpha", multiples of three on "beta" —
    // indices 0, 6 and 12 land on both topics.
    for i in 0..N {
        let now = sim.now();
        let agent = sim
            .net_mut()
            .agent_as_mut::<IpopHostAgent>(plab.nodes[i])
            .unwrap();
        if i % 2 == 0 {
            agent.subscribe(now, "alpha");
        }
        if i % 3 == 0 {
            agent.subscribe(now, "beta");
        }
    }
    sim.run_for(Duration::from_secs(5));

    // Interleaved publishes from three distinct publishers.
    for round in 0..4u8 {
        for (pb, topic) in [(1usize, "alpha"), (5, "beta"), (7, "alpha")] {
            let now = sim.now();
            let payload = ipop_packet::Bytes::from(vec![round, pb as u8, 0xA5]);
            sim.net_mut()
                .agent_as_mut::<IpopHostAgent>(plab.nodes[pb])
                .unwrap()
                .publish(now, topic, payload);
        }
        sim.run_for(Duration::from_secs(2));
    }
    sim.run_for(Duration::from_secs(5));

    let mut counters = Vec::with_capacity(N);
    let mut relay = Vec::with_capacity(N);
    let mut messages = Vec::with_capacity(N);
    for &h in &plab.nodes {
        let agent = sim
            .net_mut()
            .agent_as_mut::<IpopHostAgent>(h)
            .expect("member alive");
        counters.push(agent.pubsub_counters());
        let s = agent.overlay_stats();
        relay.push((
            s.pubsub_fanout_sent,
            s.pubsub_delivered,
            s.pubsub_relayed,
            s.pubsub_salvaged,
        ));
        messages.push(
            agent
                .take_topic_messages()
                .into_iter()
                .map(|m| (m.topic, m.msg_id, m.payload.as_slice().to_vec()))
                .collect(),
        );
    }
    PubSubTrace {
        events: sim.events_executed(),
        delivered: sim.net().counters().delivered,
        counters,
        relay,
        messages,
    }
}

#[test]
fn pubsub_mesh_runs_are_byte_identical() {
    let a = run_pubsub_mesh(0x90B_50B5);
    let b = run_pubsub_mesh(0x90B_50B5);
    // The workload actually flowed: 8 "alpha" publishes to 8 subscribers and
    // 4 "beta" publishes to 6 subscribers, every copy delivered.
    assert_eq!(
        a.counters.iter().map(|c| c.0).sum::<u64>(),
        12,
        "publishes recorded"
    );
    for (i, msgs) in a.messages.iter().enumerate() {
        let alpha = msgs.iter().filter(|(t, _, _)| t == "alpha").count();
        let beta = msgs.iter().filter(|(t, _, _)| t == "beta").count();
        assert_eq!(alpha, if i % 2 == 0 { 8 } else { 0 }, "node {i} alpha");
        assert_eq!(beta, if i % 3 == 0 { 4 } else { 0 }, "node {i} beta");
    }
    // The bounded relay tree delegated (16 subscribers > fan-out 4)...
    assert!(
        a.relay.iter().map(|r| r.2).sum::<u64>() > 0,
        "fan-out delegated chunks"
    );
    // ...nothing landed on an unknown topic, and the two same-seed runs are
    // indistinguishable down to every delivered payload byte.
    assert_eq!(a.counters.iter().map(|c| c.2).sum::<u64>(), 0);
    assert_eq!(a, b);
}

/// Per-member stream counters: `(opened, accepted, data_sent, data_received,
/// retransmits, failed, closed, orphan_frames)`.
type StreamCounters = (u64, u64, u64, u64, u64, u64, u64, u64);

/// Outcome of a mixed stream + pub/sub run, in byte-comparable form. The
/// `streams` tuple carries every stream counter the overlay keeps (opened,
/// accepted, data segments sent/received, retransmits, failed, closed,
/// orphan frames), so the stream engine's timers, ACK clocking and teardown
/// are part of the byte-identical contract.
#[derive(Debug, PartialEq)]
struct StreamMeshTrace {
    events: u64,
    delivered: u64,
    /// `(opened, accepted, data_sent, data_received, retransmits, failed,
    /// closed, orphan_frames)` per member.
    streams: Vec<StreamCounters>,
    /// The exact byte stream each receiver drained, per stream.
    received: Vec<Vec<u8>>,
    /// Terminal fates harvested at the four endpoints (true = clean close).
    fates: Vec<bool>,
    /// `(published, received, unknown_topic)` per member.
    pubsub: Vec<(u64, u64, u64)>,
}

/// A 16-node overlay carrying two concurrent virtual streams (1→9 and 4→12)
/// interleaved with pub/sub traffic on one topic. Chunked sends, the
/// handshakes, ACK clocking, FIN teardown and the fan-out all share the
/// fabric, and the whole mix must replay byte-identically under the same
/// seed.
fn run_stream_mesh(seed: u64) -> StreamMeshTrace {
    use ipop_netsim::planetlab;
    const N: usize = 16;
    let mut net = Network::new(seed);
    let plab = planetlab(&mut net, N, 1.0, seed);
    let vip_of = |i: usize| Ipv4Addr::new(172, 16, 4, (i + 1) as u8);
    let members = plab
        .nodes
        .iter()
        .enumerate()
        .map(|(i, &h)| IpopMember::router(h, vip_of(i)))
        .collect();
    ipop::deploy_ipop(&mut net, members, DeployOptions::udp());
    let mut sim = NetworkSim::new(net);
    sim.run_for(Duration::from_secs(30));

    // Static members: the stream targets' overlay addresses are the SHA-1 of
    // their virtual IPs.
    use ipop_overlay::Address;
    let pairs = [(1usize, 9usize), (4usize, 12usize)];
    let now = sim.now();
    sim.net_mut()
        .agent_as_mut::<IpopHostAgent>(plab.nodes[2])
        .unwrap()
        .subscribe(now, "mixed");
    let mut handles = Vec::new();
    for &(src, dst) in &pairs {
        let now = sim.now();
        let agent = sim
            .net_mut()
            .agent_as_mut::<IpopHostAgent>(plab.nodes[src])
            .unwrap();
        let stream = agent.stream_connect(now, Address::from_ip(vip_of(dst)));
        handles.push(stream);
    }

    // Three interleaved rounds: a chunk on each stream plus a publish.
    for round in 0..3u8 {
        for (k, &(src, _)) in pairs.iter().enumerate() {
            let now = sim.now();
            let chunk = vec![0xA0 + (k as u8) * 0x10 + round; 4096];
            let agent = sim
                .net_mut()
                .agent_as_mut::<IpopHostAgent>(plab.nodes[src])
                .unwrap();
            assert!(agent.stream_send(now, handles[k], chunk));
        }
        let now = sim.now();
        sim.net_mut()
            .agent_as_mut::<IpopHostAgent>(plab.nodes[3])
            .unwrap()
            .publish(now, "mixed", ipop_packet::Bytes::from(vec![round, 0x5E]));
        sim.run_for(Duration::from_secs(2));
    }
    for (k, &(src, _)) in pairs.iter().enumerate() {
        let now = sim.now();
        sim.net_mut()
            .agent_as_mut::<IpopHostAgent>(plab.nodes[src])
            .unwrap()
            .stream_close(now, handles[k]);
    }
    sim.run_for(Duration::from_secs(15));

    // Harvest: received bytes and fates at the receivers, fates at the
    // senders, counters everywhere.
    let mut received = Vec::new();
    let mut fates = Vec::new();
    for &(src, dst) in &pairs {
        let receiver = sim
            .net_mut()
            .agent_as_mut::<IpopHostAgent>(plab.nodes[dst])
            .unwrap();
        let accepted = receiver.stream_accept().expect("stream accepted");
        received.push(receiver.take_stream_data(accepted));
        fates.extend(
            receiver
                .take_stream_fates()
                .into_iter()
                .map(|(_, fate)| fate == ipop::StreamFate::Closed),
        );
        let sender = sim
            .net_mut()
            .agent_as_mut::<IpopHostAgent>(plab.nodes[src])
            .unwrap();
        fates.extend(
            sender
                .take_stream_fates()
                .into_iter()
                .map(|(_, fate)| fate == ipop::StreamFate::Closed),
        );
    }
    let mut streams = Vec::with_capacity(N);
    let mut pubsub = Vec::with_capacity(N);
    for &h in &plab.nodes {
        let agent = sim
            .net_mut()
            .agent_as_mut::<IpopHostAgent>(h)
            .expect("member alive");
        let s = agent.overlay_stats();
        streams.push((
            s.stream_opened,
            s.stream_accepted,
            s.stream_data_sent,
            s.stream_data_received,
            s.stream_retransmits,
            s.stream_failed,
            s.stream_closed,
            s.stream_orphan_frames,
        ));
        pubsub.push(agent.pubsub_counters());
    }
    StreamMeshTrace {
        events: sim.events_executed(),
        delivered: sim.net().counters().delivered,
        streams,
        received,
        fates,
        pubsub,
    }
}

#[test]
fn concurrent_stream_runs_are_byte_identical() {
    let a = run_stream_mesh(0x57E4_77A0);
    let b = run_stream_mesh(0x57E4_77A0);
    // Both streams delivered their exact chunk sequence, in order...
    assert_eq!(a.received.len(), 2);
    for (k, bytes) in a.received.iter().enumerate() {
        let want: Vec<u8> = (0..3u8)
            .flat_map(|round| vec![0xA0 + (k as u8) * 0x10 + round; 4096])
            .collect();
        assert_eq!(bytes, &want, "stream {k} delivered byte-exact in order");
    }
    // ...every endpoint tore down cleanly (two fates per stream)...
    assert_eq!(a.fates.len(), 4, "four terminal fates: {:?}", a.fates);
    assert!(a.fates.iter().all(|&clean| clean), "all closes were clean");
    let failed: u64 = a.streams.iter().map(|s| s.5).sum();
    assert_eq!(failed, 0, "no stream hit its retransmit budget");
    // ...the engine's counters balance: both opens accepted, every data
    // segment sent was received...
    assert_eq!(a.streams.iter().map(|s| s.0).sum::<u64>(), 2);
    assert_eq!(a.streams.iter().map(|s| s.1).sum::<u64>(), 2);
    // ...the interleaved pub/sub flowed too...
    assert_eq!(a.pubsub.iter().map(|c| c.1).sum::<u64>(), 3);
    // ...and the whole mix — handshakes, ACK clocks, FIN teardown, fan-out —
    // replays byte-identically, stream counters included.
    assert_eq!(a, b);
}

#[test]
fn identical_seeds_replay_identically() {
    let a = run_fig4_ping(0x5EED);
    let b = run_fig4_ping(0x5EED);
    assert!(a.rtts_ms.len() >= 8, "pings answered: {}", a.rtts_ms.len());
    assert_eq!(a, b);
}

#[test]
fn different_seeds_change_the_trace() {
    let a = run_fig4_ping(3);
    let b = run_fig4_ping(4);
    // Jitter and maintenance randomness differ, so the traces must diverge
    // (while both still deliver the workload).
    assert!(a.rtts_ms.len() >= 8 && b.rtts_ms.len() >= 8);
    assert_ne!((a.events, &a.rtts_ms), (b.events, &b.rtts_ms));
}
