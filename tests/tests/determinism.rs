//! Whole-system determinism: two `Network::new(seed)` runs of the same IPOP
//! scenario must execute the same number of events and produce identical
//! application-level results and traffic counters. This is the property that
//! makes every benchmark table in `ipop-bench` reproducible.

use std::net::Ipv4Addr;

use ipop::prelude::*;
use ipop::IpopHostAgent;
use ipop_apps::ping::PingApp;
use ipop_netsim::fig4_testbed;

/// Outcome of one scenario run, in comparable form.
#[derive(Debug, PartialEq)]
struct RunTrace {
    events: u64,
    rtts_ms: Vec<f64>,
    tx_packets: Vec<u64>,
    rx_packets: Vec<u64>,
    delivered: u64,
}

fn run_fig4_ping(seed: u64) -> RunTrace {
    let mut net = Network::new(seed);
    let tb = fig4_testbed(&mut net);
    let vips = [
        Ipv4Addr::new(172, 16, 0, 3),
        Ipv4Addr::new(172, 16, 0, 4),
        Ipv4Addr::new(172, 16, 0, 51),
        Ipv4Addr::new(172, 16, 0, 2),
        Ipv4Addr::new(172, 16, 0, 18),
        Ipv4Addr::new(172, 16, 0, 20),
    ];
    let hosts = tb.all();
    let members = vips
        .iter()
        .enumerate()
        .map(|(i, &vip)| {
            if i == 1 {
                IpopMember::new(
                    hosts[i],
                    vip,
                    Box::new(
                        PingApp::new(vips[4], 10, Duration::from_millis(50))
                            .with_start_delay(Duration::from_secs(20)),
                    ),
                )
            } else {
                IpopMember::router(hosts[i], vip)
            }
        })
        .collect();
    ipop::deploy_ipop(&mut net, members, DeployOptions::udp());
    let mut sim = NetworkSim::new(net);
    sim.run_for(Duration::from_secs(30));
    let rtts_ms = sim
        .agent_as::<IpopHostAgent>(hosts[1])
        .and_then(|a| a.app_as::<PingApp>())
        .map(|p| p.report().rtts_ms.clone())
        .unwrap_or_default();
    RunTrace {
        events: sim.events_executed(),
        rtts_ms,
        tx_packets: hosts
            .iter()
            .map(|&h| sim.net().host(h).counters.tx_packets)
            .collect(),
        rx_packets: hosts
            .iter()
            .map(|&h| sim.net().host(h).counters.rx_packets)
            .collect(),
        delivered: sim.net().counters().delivered,
    }
}

#[test]
fn identical_seeds_replay_identically() {
    let a = run_fig4_ping(0x5EED);
    let b = run_fig4_ping(0x5EED);
    assert!(a.rtts_ms.len() >= 8, "pings answered: {}", a.rtts_ms.len());
    assert_eq!(a, b);
}

#[test]
fn different_seeds_change_the_trace() {
    let a = run_fig4_ping(3);
    let b = run_fig4_ping(4);
    // Jitter and maintenance randomness differ, so the traces must diverge
    // (while both still deliver the workload).
    assert!(a.rtts_ms.len() >= 8 && b.rtts_ms.len() >= 8);
    assert_ne!((a.events, &a.rtts_ms), (b.events, &b.rtts_ms));
}
