//! Meta-test: the real workspace must be lint-clean. This is the same check
//! CI's lint job runs via the binary, wired into `cargo test` so a violation
//! (or an unjustified suppression) fails the ordinary test suite too.

use std::path::Path;

#[test]
fn the_workspace_has_no_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = ipop_lint::analyze_workspace(&root).expect("workspace readable");
    assert!(
        findings.is_empty(),
        "ipop-lint found {} violation(s) in the workspace:\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.human())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_workspace_actually_contains_scannable_sources() {
    // Guards against the walker silently scanning nothing (which would make
    // the test above pass vacuously, e.g. after a directory rename).
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    for must_exist in [
        "crates/overlay/src/packets.rs",
        "crates/netsim/src/impair.rs",
        "crates/simcore/src/event.rs",
    ] {
        assert!(
            root.join(must_exist).is_file(),
            "{must_exist} moved — update ipop-lint's rule anchors"
        );
    }
}
