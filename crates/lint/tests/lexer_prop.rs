//! Property test for the lexer: a marker identifier is counted exactly once
//! per *code* segment, no matter how many times it appears inside comments,
//! strings, raw strings, or around char/lifetime syntax — i.e. the lexer's
//! literal/comment skipping never bleeds into code or swallows it.

use ipop_lint::lexer::{lex, TokKind};
use proptest::prelude::*;

/// One source segment and how many MARKER identifier tokens it contributes.
fn segment(kind: u8) -> (&'static str, usize) {
    match kind % 7 {
        0 => ("let a = MARKER + 1;", 1),
        1 => ("// a comment mentioning MARKER and MARKER again", 0),
        2 => ("/* block MARKER /* nested MARKER */ tail */", 0),
        3 => ("let s = \"MARKER \\\" escaped MARKER\";", 0),
        4 => ("let r = r#\"raw MARKER \"quoted\" MARKER\"#;", 0),
        5 => ("let c = 'M'; let q = '\\''; fn f<'a>(x: &'a u8) {}", 0),
        _ => ("let b = b\"MARKER\"; let bc = b'M';", 0),
    }
}

proptest! {
    #[test]
    fn marker_count_matches_code_segments(kinds in proptest::collection::vec(0u8..7, 0..24)) {
        let mut src = String::new();
        let mut expected = 0usize;
        for &k in &kinds {
            let (text, count) = segment(k);
            src.push_str(text);
            src.push('\n');
            expected += count;
        }
        let lexed = lex(&src);
        let markers = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident && t.text == "MARKER")
            .count();
        prop_assert_eq!(markers, expected, "source:\n{}", src);

        // Line numbers must be within the source and nondecreasing.
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        let total_lines = kinds.len() as u32 + 1;
        prop_assert!(lines.iter().all(|&l| l >= 1 && l <= total_lines));
        prop_assert!(lines.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn lexing_arbitrary_text_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = lex(&String::from_utf8_lossy(&bytes));
    }
}
