//! D1 fixture: hash containers in a deterministic crate, no justification.

use std::collections::HashMap;
use std::collections::HashSet;

pub struct Router {
    routes: HashMap<u32, u32>,
    seen: HashSet<u64>,
}
