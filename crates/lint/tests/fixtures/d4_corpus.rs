//! D4 fixture corpus: constructs every clean-fixture variant.

fn corpus() -> Vec<Vec<u8>> {
    vec![
        LinkMessage::Hello.to_bytes(),
        LinkMessage::Routed(RoutedPacket::new(RoutedPayload::Data(7))).to_bytes(),
        LinkMessage::Routed(RoutedPacket::new(RoutedPayload::Ack)).to_bytes(),
    ]
}
