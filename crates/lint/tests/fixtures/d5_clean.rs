//! D5 fixture: every counter field has an increment or assignment site.

#[derive(Default)]
pub struct NetCounters {
    pub delivered: u64,
    pub unroutable: u64,
}

#[derive(Default)]
pub struct ImpairmentCounters {
    pub dropped: u64,
}

impl Net {
    fn deliver(&mut self) {
        self.counters.delivered += 1;
    }

    fn unroute(&mut self) {
        self.counters.unroutable += 1;
    }

    fn reset(&mut self) {
        self.impairments.dropped = 0;
    }
}
