//! Suppression-hygiene fixture: a bare allow (no justification) and an
//! unknown rule. Neither suppresses anything.

// lint:allow(d1)
use std::collections::HashMap;

// lint:allow(d9): not a rule this linter has
pub struct X {
    m: HashMap<u8, u8>,
}
