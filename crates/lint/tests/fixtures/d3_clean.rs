//! D3 fixture: total decoders — checked access, slice patterns, and one
//! justified fixed-offset decoder behind an up-front length check.

pub fn from_bytes(data: &[u8]) -> Result<Header, ParseError> {
    let version = *data.first().ok_or(ParseError::Truncated("header"))?;
    let length = data
        .get(1..3)
        .and_then(|s| s.try_into().ok())
        .map(u16::from_be_bytes)
        .ok_or(ParseError::Truncated("header"))?;
    Ok(Header { version, length })
}

// lint:allow(d3, fn): every offset below is covered by the length check on
// the first line; the wire format is fixed-size.
pub fn from_bytes_fixed(data: &[u8]) -> Result<Header, ParseError> {
    if data.len() < 3 {
        return Err(ParseError::Truncated("header"));
    }
    let version = data[0];
    let length = u16::from_be_bytes([data[1], data[2]]);
    Ok(Header { version, length })
}

pub fn encode(h: &Header) -> Vec<u8> {
    // Not a decoder: indexing and unwraps outside ParseError fns are D3-free
    // (clippy's unwrap_used still applies at module level in the real tree).
    let table = [0u8; 4];
    vec![table[0], h.version]
}
