//! D2 fixture: virtual time and the seeded stream, plus one justified
//! wall-clock read that never feeds simulation state.

pub fn measure(clock: &SimClock, rng: &mut SeededRng) -> u64 {
    let t0 = clock.now();
    let _jitter = rng.next_u64();
    // lint:allow(d2): wall-clock below only feeds the operator-facing ev/s
    // report; simulation state advances on SimTime alone.
    let started = std::time::Instant::now();
    let _ = started;
    t0.as_millis()
}
