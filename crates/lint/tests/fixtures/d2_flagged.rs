//! D2 fixture: wall clock and ambient entropy inside simulated code.

use std::time::Instant;

pub fn measure() -> u64 {
    let t0 = Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(1));
    let _sys = std::time::SystemTime::now();
    let mut rng = rand::thread_rng();
    t0.elapsed().as_millis() as u64
}
