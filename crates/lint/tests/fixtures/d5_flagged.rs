//! D5 fixture: `unroutable` is declared and reported but nothing ever
//! increments it.

#[derive(Default)]
pub struct NetCounters {
    pub delivered: u64,
    pub unroutable: u64,
}

#[derive(Default)]
pub struct ImpairmentCounters {
    pub dropped: u64,
}

impl Net {
    fn deliver(&mut self) {
        self.counters.delivered += 1;
    }

    fn impair(&mut self) {
        self.impairments.dropped += 1;
    }
}
