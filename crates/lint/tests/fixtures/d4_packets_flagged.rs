//! D4 fixture: tag 2 skipped (Burst uses 3), Burst has no decoder arm and
//! never reaches the fuzz corpus.

pub enum RoutedPayload {
    Data(u8),
    Ack,
    Burst,
}

pub enum LinkMessage {
    Hello,
    Routed(RoutedPacket),
}

impl RoutedPacket {
    fn write(&self, w: &mut Writer) {
        match &self.payload {
            RoutedPayload::Data(x) => {
                w.u8(0);
                w.u8(*x);
            }
            RoutedPayload::Ack => {
                w.u8(1);
            }
            RoutedPayload::Burst => {
                w.u8(3);
            }
        }
    }

    fn read(r: &mut Reader) -> Result<Self, ParseError> {
        let payload = match r.u8()? {
            0 => RoutedPayload::Data(r.u8()?),
            1 => RoutedPayload::Ack,
            other => return Err(ParseError::BadValue("payload tag")),
        };
        Ok(RoutedPacket { payload })
    }
}

impl LinkMessage {
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            LinkMessage::Hello => w.u8(0),
            LinkMessage::Routed(pkt) => {
                w.u8(1);
                pkt.write(&mut w);
            }
        }
        w.finish()
    }

    fn read(r: &mut Reader) -> Result<Self, ParseError> {
        Ok(match r.u8()? {
            0 => LinkMessage::Hello,
            1 => LinkMessage::Routed(RoutedPacket::read(r)?),
            other => return Err(ParseError::BadValue("link tag")),
        })
    }
}
