//! D3 fixture: a decoder that can panic on hostile input.

pub fn from_bytes(data: &[u8]) -> Result<Header, ParseError> {
    let version = data[0];
    let length = u16::from_be_bytes(data[1..3].try_into().unwrap());
    if version != 4 {
        panic!("bad version");
    }
    assert!(length > 0);
    Ok(Header { version, length })
}
