//! D1 fixture: ordered containers, plus one justified never-iterated set.

use std::collections::{BTreeMap, BTreeSet};
// lint:allow(d1): membership-only overflow set; no code path iterates it, so
// the per-instance hash seed cannot reach any trace.
use std::collections::HashSet;

pub struct Router {
    routes: BTreeMap<u32, u32>,
    ordered: BTreeSet<u64>,
    // lint:allow(d1): same membership-only set as above.
    overflow: HashSet<u64>,
}

pub fn hash_map_in_prose_is_fine() {
    let s = "a HashMap mentioned in a string literal";
    // And a HashMap mentioned in a comment.
    let _ = s;
}
