//! Fixture-driven self-tests: every rule has a flagged fixture that must
//! produce findings and a clean fixture that must not. Fixtures live under
//! `tests/fixtures/` (never compiled, only lexed) and are fed to the
//! analyzer under fake workspace-relative paths, because rules scope by
//! path prefix.

use ipop_lint::analyze_files;
use ipop_lint::report::Finding;

fn run(files: &[(&str, &str)]) -> Vec<Finding> {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    analyze_files(&owned)
}

fn of_rule<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn d1_flags_hash_containers_in_deterministic_crates() {
    let f = run(&[(
        "crates/overlay/src/router.rs",
        include_str!("fixtures/d1_flagged.rs"),
    )]);
    let d1 = of_rule(&f, "d1");
    // Two `use` lines and two field types.
    assert_eq!(d1.len(), 4, "{d1:#?}");
    assert!(d1.iter().any(|f| f.message.contains("HashMap")));
    assert!(d1.iter().any(|f| f.message.contains("HashSet")));
}

#[test]
fn d1_accepts_ordered_containers_and_justified_allows() {
    let f = run(&[(
        "crates/overlay/src/router.rs",
        include_str!("fixtures/d1_clean.rs"),
    )]);
    assert!(of_rule(&f, "d1").is_empty(), "{f:#?}");
    assert!(of_rule(&f, "allow").is_empty(), "{f:#?}");
}

#[test]
fn d1_ignores_non_deterministic_crates() {
    let f = run(&[(
        "crates/apps/src/main_loop.rs",
        include_str!("fixtures/d1_flagged.rs"),
    )]);
    assert!(of_rule(&f, "d1").is_empty(), "{f:#?}");
}

#[test]
fn d2_flags_wall_clock_and_ambient_entropy() {
    let f = run(&[(
        "crates/netsim/src/timing.rs",
        include_str!("fixtures/d2_flagged.rs"),
    )]);
    let d2 = of_rule(&f, "d2");
    assert!(d2.iter().any(|f| f.message.contains("Instant")), "{d2:#?}");
    assert!(d2.iter().any(|f| f.message.contains("SystemTime")));
    assert!(d2.iter().any(|f| f.message.contains("thread_rng")));
    assert!(d2.iter().any(|f| f.message.contains("thread::sleep")));
}

#[test]
fn d2_accepts_sim_time_and_justified_wall_clock() {
    let f = run(&[(
        "crates/bench/src/scale.rs",
        include_str!("fixtures/d2_clean.rs"),
    )]);
    assert!(of_rule(&f, "d2").is_empty(), "{f:#?}");
}

#[test]
fn d2_exempts_bin_entry_points() {
    let f = run(&[(
        "crates/bench/src/bin/profile.rs",
        include_str!("fixtures/d2_flagged.rs"),
    )]);
    assert!(of_rule(&f, "d2").is_empty(), "{f:#?}");
}

#[test]
fn d3_flags_panics_and_indexing_in_decoders() {
    let f = run(&[(
        "crates/packet/src/header.rs",
        include_str!("fixtures/d3_flagged.rs"),
    )]);
    let d3 = of_rule(&f, "d3");
    assert!(d3.len() >= 4, "{d3:#?}");
    assert!(d3.iter().any(|f| f.message.contains(".unwrap()")));
    assert!(d3.iter().any(|f| f.message.contains("panic!")));
    assert!(d3.iter().any(|f| f.message.contains("index expression")));
}

#[test]
fn d3_accepts_total_decoders_and_fn_scope_allows() {
    let f = run(&[(
        "crates/packet/src/header.rs",
        include_str!("fixtures/d3_clean.rs"),
    )]);
    assert!(of_rule(&f, "d3").is_empty(), "{f:#?}");
}

#[test]
fn d3_ignores_files_outside_wire_crates() {
    let f = run(&[(
        "crates/netsim/src/header.rs",
        include_str!("fixtures/d3_flagged.rs"),
    )]);
    assert!(of_rule(&f, "d3").is_empty(), "{f:#?}");
}

const PACKETS_PATH: &str = "crates/overlay/src/packets.rs";
const CORPUS_PATH: &str = "crates/overlay/tests/proptest_fuzz.rs";

#[test]
fn d4_accepts_contiguous_tags_and_full_coverage() {
    let f = run(&[
        (PACKETS_PATH, include_str!("fixtures/d4_packets_clean.rs")),
        (CORPUS_PATH, include_str!("fixtures/d4_corpus.rs")),
    ]);
    assert!(of_rule(&f, "d4").is_empty(), "{f:#?}");
}

#[test]
fn d4_flags_tag_gaps_missing_arms_and_corpus_holes() {
    let f = run(&[
        (PACKETS_PATH, include_str!("fixtures/d4_packets_flagged.rs")),
        (CORPUS_PATH, include_str!("fixtures/d4_corpus.rs")),
    ]);
    let d4 = of_rule(&f, "d4");
    assert!(
        d4.iter().any(|f| f.message.contains("not contiguous")),
        "{d4:#?}"
    );
    assert!(d4.iter().any(|f| f.message.contains("no match arm")));
    assert!(d4.iter().any(|f| f.message.contains("never decoded")));
    assert!(d4
        .iter()
        .any(|f| f.message.contains("never constructed by the fuzz corpus")));
}

#[test]
fn d5_flags_dead_counters() {
    let f = run(&[(
        "crates/netsim/src/counters.rs",
        include_str!("fixtures/d5_flagged.rs"),
    )]);
    let d5 = of_rule(&f, "d5");
    assert_eq!(d5.len(), 1, "{d5:#?}");
    assert!(d5[0].message.contains("unroutable"));
}

#[test]
fn d5_accepts_counters_with_increment_sites() {
    let f = run(&[(
        "crates/netsim/src/counters.rs",
        include_str!("fixtures/d5_clean.rs"),
    )]);
    assert!(of_rule(&f, "d5").is_empty(), "{f:#?}");
}

#[test]
fn unjustified_or_unknown_allows_are_findings_and_do_not_suppress() {
    let f = run(&[(
        "crates/core/src/x.rs",
        include_str!("fixtures/allow_unjustified.rs"),
    )]);
    let allow = of_rule(&f, "allow");
    assert_eq!(allow.len(), 2, "{allow:#?}");
    assert!(allow.iter().any(|f| f.message.contains("no justification")));
    assert!(allow.iter().any(|f| f.message.contains("unknown rule")));
    // The bare allow must NOT have silenced the HashMap findings.
    assert_eq!(of_rule(&f, "d1").len(), 2, "{f:#?}");
}

#[test]
fn seeding_a_violation_into_a_clean_set_fails_the_lint() {
    let clean = [(
        "crates/overlay/src/router.rs".to_string(),
        include_str!("fixtures/d1_clean.rs").to_string(),
    )];
    assert!(of_rule(&analyze_files(&clean), "d1").is_empty());

    let mut seeded = clean.clone();
    seeded[0]
        .1
        .push_str("\npub fn oops() { let m: HashMap<u8, u8> = HashMap::new(); }\n");
    // Both mentions are on one line and dedup to a single finding.
    assert_eq!(of_rule(&analyze_files(&seeded), "d1").len(), 1);
}

#[test]
fn findings_come_out_sorted_and_deduped() {
    let f = run(&[
        (
            "crates/overlay/src/b.rs",
            "use std::collections::HashMap;\n",
        ),
        (
            "crates/overlay/src/a.rs",
            "use std::collections::HashMap;\nuse std::collections::HashSet;\n",
        ),
    ]);
    let d1 = of_rule(&f, "d1");
    assert_eq!(d1.len(), 3);
    let keys: Vec<_> = d1.iter().map(|f| (f.file.as_str(), f.line)).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}
