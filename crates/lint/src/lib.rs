//! `ipop-lint`: project-specific static analysis for the IPOP workspace.
//!
//! The deterministic simulator's guarantees — byte-identical traces per seed,
//! total wire decoders, honest counters — are invariants the compiler cannot
//! see. This crate checks them mechanically with five rules (see README's
//! "Static analysis" table and CONTRACTS.md):
//!
//! * **d1** — no `HashMap`/`HashSet` in deterministic crates
//! * **d2** — no wall clock / ambient randomness outside entry points
//! * **d3** — no panics or direct indexing inside wire decoders
//! * **d4** — wire-tag / enum-variant / fuzz-corpus exhaustiveness
//! * **d5** — every stats counter field has an increment site
//!
//! It is self-contained by design: its own lexer and item scanner instead of
//! `syn`, so the workspace keeps building offline with no new dependencies.
//! Findings are suppressed per site with `// lint:allow(<rule>): <why>` (or
//! `// lint:allow(<rule>, fn): <why>` for a whole function); a suppression
//! without a justification is itself a finding.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;

use std::fs;
use std::io;
use std::path::Path;

use report::Finding;
use scan::KNOWN_RULES;

/// One analyzed source file: the lexed token stream plus the item scan.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (rule scoping keys on it).
    pub path: String,
    pub lexed: lexer::Lexed,
    pub scan: scan::Scan,
}

impl SourceFile {
    pub fn new(path: &str, source: &str) -> Self {
        let lexed = lexer::lex(source);
        let scan = scan::scan(&lexed);
        SourceFile {
            path: path.to_string(),
            lexed,
            scan,
        }
    }
}

/// Analyze an in-memory file set: run every rule, apply suppressions, add
/// suppression-hygiene findings, and return the survivors in stable order.
/// `(path, source)` pairs use workspace-relative paths — rules scope by path
/// prefix, which is what makes this callable on fixtures.
pub fn analyze_files(files: &[(String, String)]) -> Vec<Finding> {
    let parsed: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::new(p, s)).collect();

    let mut findings = Vec::new();
    findings.extend(rules::d1(&parsed));
    findings.extend(rules::d2(&parsed));
    findings.extend(rules::d3(&parsed));
    findings.extend(rules::d4(&parsed));
    findings.extend(rules::d5(&parsed));

    // Apply suppressions: a finding is dropped when a *justified* allow for
    // its rule covers its line. An unjustified or unknown-rule allow never
    // suppresses — it produces its own finding instead, so a bare
    // `lint:allow` cannot silently disable a rule.
    findings.retain(|f| {
        let Some(src) = parsed.iter().find(|s| s.path == f.file) else {
            return true;
        };
        !src.scan.suppressions.iter().any(|s| {
            s.rule == f.rule && s.justified && s.covers.0 <= f.line && f.line <= s.covers.1
        })
    });

    for src in &parsed {
        for s in &src.scan.suppressions {
            if !KNOWN_RULES.contains(&s.rule.as_str()) {
                findings.push(Finding::new(
                    "allow",
                    &src.path,
                    s.comment_line,
                    format!(
                        "lint:allow({}) names an unknown rule (known: {})",
                        s.rule,
                        KNOWN_RULES.join(", ")
                    ),
                ));
            } else if !s.justified {
                findings.push(Finding::new(
                    "allow",
                    &src.path,
                    s.comment_line,
                    format!(
                        "lint:allow({}) has no justification — write \
                         `// lint:allow({}): <why this site is safe>`",
                        s.rule, s.rule
                    ),
                ));
            }
        }
    }

    report::sort(&mut findings);
    findings
}

/// Analyze a real workspace: every `.rs` file under `<root>/crates`, paths
/// made root-relative. Files are gathered in sorted order so the report is
/// identical across platforms and filesystems.
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut paths = Vec::new();
    collect_rs(&root.join("crates"), &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let source = fs::read_to_string(&p)?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        files.push((rel, source));
    }
    Ok(analyze_files(&files))
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
