//! Item-level scan of a token stream: functions (with owner impl and return
//! type), struct fields, enum variants, and `lint:allow` suppressions.
//!
//! This is deliberately not a parser. It walks the token stream once, matches
//! braces, and recognises the handful of shapes the rules need. Anything it
//! does not understand it skips — a lint must degrade to "no finding", never
//! to a crash or a false parse.

use crate::lexer::{Comment, Lexed, TokKind, Token};

/// A `fn` item: free function, inherent/trait method, or trait signature.
#[derive(Clone, Debug)]
pub struct FnItem {
    pub name: String,
    /// The `Self` type of the enclosing `impl` block, if any.
    pub owner: Option<String>,
    /// Textual return type (tokens after `->`, space-joined); empty for `()`.
    pub ret: String,
    /// Token-index range of the body, *inclusive* of both braces. Empty
    /// (`start == end == 0`) for bodiless trait signatures.
    pub body: (usize, usize),
    /// Line of the `fn` keyword.
    pub sig_line: u32,
    /// Line of the closing brace (or of the `;` for signatures).
    pub end_line: u32,
}

#[derive(Clone, Debug)]
pub struct StructField {
    pub name: String,
    pub line: u32,
}

#[derive(Clone, Debug)]
pub struct StructItem {
    pub name: String,
    pub fields: Vec<StructField>,
}

#[derive(Clone, Debug)]
pub struct EnumItem {
    pub name: String,
    pub variants: Vec<String>,
}

/// A parsed `// lint:allow(<rule>[, fn])[: justification]` comment.
#[derive(Clone, Debug)]
pub struct Suppression {
    pub rule: String,
    /// `true` for the `fn` scope variant, which covers the whole following
    /// function body instead of a single line.
    pub fn_scope: bool,
    /// `true` when a non-empty justification follows the closing paren.
    pub justified: bool,
    pub comment_line: u32,
    /// Inclusive line range the suppression covers: the first code line at or
    /// after the comment, widened to the whole fn for `fn`-scope.
    pub covers: (u32, u32),
}

#[derive(Clone, Debug, Default)]
pub struct Scan {
    pub fns: Vec<FnItem>,
    pub structs: Vec<StructItem>,
    pub enums: Vec<EnumItem>,
    pub suppressions: Vec<Suppression>,
}

/// Keywords that may legitimately precede `[` without it being an index
/// expression (pattern or expression-start position).
pub const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "mut", "ref", "return", "match", "if", "else", "move", "as", "break", "continue",
    "loop", "while", "for", "unsafe", "box", "dyn", "where", "yield", "const", "static",
];

pub fn scan(lexed: &Lexed) -> Scan {
    let toks = &lexed.tokens;
    let close = match_braces(toks);
    let mut out = Scan::default();

    // Stack of (impl owner, token index of the impl body's closing brace).
    let mut impls: Vec<(String, usize)> = Vec::new();

    let mut i = 0usize;
    while i < toks.len() {
        while matches!(impls.last(), Some((_, end)) if *end <= i) {
            impls.pop();
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "impl" => {
                // Owner = last ident at angle-depth 0 before the body brace,
                // restarting after `for` so `impl Trait for Type` names Type.
                let mut j = i + 1;
                let mut depth = 0i32;
                let mut owner = String::new();
                while j < toks.len() {
                    let tj = &toks[j];
                    match (tj.kind, tj.text.as_str()) {
                        (TokKind::Punct, "<") => depth += 1,
                        (TokKind::Punct, ">") => depth -= 1,
                        (TokKind::Punct, "<<") => depth += 2,
                        (TokKind::Punct, ">>") => depth -= 2,
                        (TokKind::Punct, "{") if depth <= 0 => break,
                        (TokKind::Punct, ";") if depth <= 0 => break, // impl Trait for T;
                        (TokKind::Ident, "for") if depth <= 0 => owner.clear(),
                        (TokKind::Ident, "where") if depth <= 0 => break,
                        (TokKind::Ident, name) if depth <= 0 => owner = name.to_string(),
                        _ => {}
                    }
                    j += 1;
                }
                if j < toks.len() && toks[j].text == "{" {
                    let end = close[j].unwrap_or(toks.len().saturating_sub(1));
                    impls.push((owner, end));
                }
                i = j + 1;
            }
            "fn" => {
                if let Some((item, next)) = scan_fn(toks, &close, i, impls.last().map(|(o, _)| o)) {
                    out.fns.push(item);
                    i = next;
                } else {
                    i += 1;
                }
            }
            "struct" => {
                let (item, next) = scan_struct(toks, &close, i);
                if let Some(item) = item {
                    out.structs.push(item);
                }
                i = next;
            }
            "enum" => {
                let (item, next) = scan_enum(toks, &close, i);
                if let Some(item) = item {
                    out.enums.push(item);
                }
                i = next;
            }
            _ => i += 1,
        }
    }

    out.suppressions = scan_suppressions(&lexed.comments, toks, &out.fns);
    out
}

/// For every `{` token index, the index of its matching `}`.
fn match_braces(toks: &[Token]) -> Vec<Option<usize>> {
    let mut close = vec![None; toks.len()];
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => stack.push(i),
                "}" => {
                    if let Some(open) = stack.pop() {
                        close[open] = Some(i);
                    }
                }
                _ => {}
            }
        }
    }
    close
}

/// Parse the `fn` starting at token `at`. Returns the item and the index to
/// resume scanning from — just *inside* the body, so nested items are seen.
fn scan_fn(
    toks: &[Token],
    close: &[Option<usize>],
    at: usize,
    owner: Option<&String>,
) -> Option<(FnItem, usize)> {
    let name_tok = toks.get(at + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None; // `fn(` — a function-pointer type, not an item.
    }
    let name = name_tok.text.clone();
    let mut j = at + 2;

    // Skip generic parameters after the name.
    if toks.get(j).map(|t| t.text.as_str()) == Some("<") {
        let mut depth = 0i32;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                "<<" => depth += 2,
                ">>" => depth -= 2,
                _ => {}
            }
            j += 1;
            if depth <= 0 {
                break;
            }
        }
    }

    // Parameter list.
    if toks.get(j).map(|t| t.text.as_str()) != Some("(") {
        return None;
    }
    let mut pdepth = 0i32;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" => pdepth += 1,
            ")" => pdepth -= 1,
            _ => {}
        }
        j += 1;
        if pdepth == 0 {
            break;
        }
    }

    // Return type and where clause, up to `{` or `;`. Angle depth guards
    // against `Fn() -> T` bounds confusing the arrow capture.
    let mut ret = String::new();
    let mut in_ret = false;
    let mut adepth = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") if adepth <= 0 => break,
            (TokKind::Punct, ";") if adepth <= 0 => {
                // Trait signature without a body.
                return Some((
                    FnItem {
                        name,
                        owner: owner.cloned(),
                        ret,
                        body: (0, 0),
                        sig_line: toks[at].line,
                        end_line: t.line,
                    },
                    j + 1,
                ));
            }
            (TokKind::Ident, "where") if adepth <= 0 => in_ret = false,
            (TokKind::Punct, "->") if adepth <= 0 => in_ret = true,
            _ => {
                match t.text.as_str() {
                    "<" => adepth += 1,
                    ">" => adepth -= 1,
                    "<<" => adepth += 2,
                    ">>" => adepth -= 2,
                    _ => {}
                }
                if in_ret {
                    if !ret.is_empty() {
                        ret.push(' ');
                    }
                    ret.push_str(&t.text);
                }
            }
        }
        j += 1;
    }
    let open = j;
    let end = *close.get(open)?;
    let end = end?;
    Some((
        FnItem {
            name,
            owner: owner.cloned(),
            ret,
            body: (open, end),
            sig_line: toks[at].line,
            end_line: toks[end].line,
        },
        open + 1,
    ))
}

fn scan_struct(toks: &[Token], close: &[Option<usize>], at: usize) -> (Option<StructItem>, usize) {
    let Some(name_tok) = toks.get(at + 1) else {
        return (None, at + 1);
    };
    if name_tok.kind != TokKind::Ident {
        return (None, at + 1);
    }
    let name = name_tok.text.clone();
    let mut j = at + 2;
    // Skip generics / where clause up to the deciding delimiter.
    let mut adepth = 0i32;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "<" => adepth += 1,
            ">" => adepth -= 1,
            "<<" => adepth += 2,
            ">>" => adepth -= 2,
            "{" if adepth <= 0 => break,
            "(" | ";" if adepth <= 0 => {
                // Tuple or unit struct: no named fields to check.
                return (
                    Some(StructItem {
                        name,
                        fields: Vec::new(),
                    }),
                    j,
                );
            }
            _ => {}
        }
        j += 1;
    }
    let Some(Some(end)) = close.get(j).copied() else {
        return (None, j + 1);
    };

    // Fields: comma-separated at depth 0; name = ident right before the
    // first `:` of each chunk (skips `pub`, attributes, nested generics).
    let mut fields = Vec::new();
    let mut depth = 0i32;
    let mut chunk_start = j + 1;
    let mut k = j + 1;
    while k <= end {
        let t = &toks[k];
        let d0 = depth == 0;
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            "<<" => depth += 2,
            ">>" => depth -= 2,
            _ => {}
        }
        if (t.text == "," && d0 && t.kind == TokKind::Punct) || k == end {
            if let Some(f) = field_of_chunk(&toks[chunk_start..k]) {
                fields.push(f);
            }
            chunk_start = k + 1;
        }
        k += 1;
    }
    (Some(StructItem { name, fields }), j + 1)
}

/// From one field chunk (tokens between commas), the ident preceding the
/// first top-level `:`.
fn field_of_chunk(chunk: &[Token]) -> Option<StructField> {
    let mut depth = 0i32;
    for (i, t) in chunk.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth -= 1,
            "<<" => depth += 2,
            ">>" => depth -= 2,
            ":" if depth == 0 && t.kind == TokKind::Punct => {
                let prev = chunk[..i].iter().rev().find(|t| t.kind == TokKind::Ident)?;
                return Some(StructField {
                    name: prev.text.clone(),
                    line: prev.line,
                });
            }
            _ => {}
        }
    }
    None
}

fn scan_enum(toks: &[Token], close: &[Option<usize>], at: usize) -> (Option<EnumItem>, usize) {
    let Some(name_tok) = toks.get(at + 1) else {
        return (None, at + 1);
    };
    if name_tok.kind != TokKind::Ident {
        return (None, at + 1);
    }
    let name = name_tok.text.clone();
    let mut j = at + 2;
    let mut adepth = 0i32;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "<" => adepth += 1,
            ">" => adepth -= 1,
            "{" if adepth <= 0 => break,
            ";" if adepth <= 0 => return (None, j),
            _ => {}
        }
        j += 1;
    }
    let Some(Some(end)) = close.get(j).copied() else {
        return (None, j + 1);
    };

    // Variants: first ident of each depth-0 comma chunk, skipping attributes.
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut want_name = true;
    let mut in_attr = 0i32;
    let mut k = j + 1;
    while k < end {
        let t = &toks[k];
        let d0 = depth == 0;
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            "<<" => depth += 2,
            ">>" => depth -= 2,
            _ => {}
        }
        if t.text == "#" && d0 {
            in_attr = depth + 1; // the `[` that follows bumps depth to this
        }
        if in_attr > 0 && depth < in_attr {
            in_attr = 0;
        }
        if want_name && d0 && in_attr == 0 && t.kind == TokKind::Ident && t.text != "#" {
            variants.push(t.text.clone());
            want_name = false;
        }
        if t.text == "," && depth == 0 && t.kind == TokKind::Punct {
            want_name = true;
        }
        k += 1;
    }
    (Some(EnumItem { name, variants }), j + 1)
}

/// Rules this crate knows. Anything else in a `lint:allow` is itself flagged.
pub const KNOWN_RULES: &[&str] = &["d1", "d2", "d3", "d4", "d5"];

fn scan_suppressions(comments: &[Comment], toks: &[Token], fns: &[FnItem]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        // The directive must *start* the comment (after the `//`/`/*`/doc
        // markers) — prose that merely mentions `lint:allow(...)` mid-sentence
        // is not a suppression.
        let body = c.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(after) = body.strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close_at) = after.find(')') else {
            continue;
        };
        let inside = &after[..close_at];
        let mut parts = inside.split(',').map(str::trim);
        let rule = parts.next().unwrap_or("").to_ascii_lowercase();
        let fn_scope = parts.next().map(str::trim) == Some("fn");
        let tail = after[close_at + 1..].trim_start();
        let justified = tail.strip_prefix(':').is_some_and(|j| !j.trim().is_empty());

        // The suppression targets the first code line at/after the comment.
        let target = toks
            .iter()
            .map(|t| t.line)
            .find(|&l| l >= c.line)
            .unwrap_or(c.line);
        let covers = if fn_scope {
            // Widen to the first fn that is still open at the target line.
            fns.iter()
                .find(|f| f.end_line >= target)
                .map(|f| (f.sig_line.min(target), f.end_line))
                .unwrap_or((target, target))
        } else {
            (target, target)
        };
        out.push(Suppression {
            rule,
            fn_scope,
            justified,
            comment_line: c.line,
            covers,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan_src(src: &str) -> Scan {
        scan(&lex(src))
    }

    #[test]
    fn fns_capture_owner_and_return_type() {
        let s = scan_src(
            "impl Reader<'_> {\n\
                 fn u8(&mut self) -> Result<u8, ParseError> { self.take(1) }\n\
             }\n\
             fn free() {}\n\
             impl Display for Thing {\n\
                 fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result { Ok(()) }\n\
             }",
        );
        assert_eq!(s.fns.len(), 3);
        assert_eq!(s.fns[0].owner.as_deref(), Some("Reader"));
        assert!(s.fns[0].ret.contains("ParseError"));
        assert_eq!(s.fns[1].owner, None);
        assert_eq!(s.fns[1].ret, "");
        assert_eq!(s.fns[2].owner.as_deref(), Some("Thing"));
    }

    #[test]
    fn struct_fields_and_enum_variants() {
        let s = scan_src(
            "pub struct Stats {\n\
                 pub delivered: u64,\n\
                 dropped: u64,\n\
                 nested: Vec<(u8, u16)>,\n\
             }\n\
             enum Msg { Hello { from: A }, Ping(u64), #[doc = \"x\"] Close, }",
        );
        let st = &s.structs[0];
        let names: Vec<_> = st.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["delivered", "dropped", "nested"]);
        let en = &s.enums[0];
        assert_eq!(en.variants, ["Hello", "Ping", "Close"]);
    }

    #[test]
    fn fn_scope_suppression_covers_the_whole_body() {
        let s = scan_src(
            "// lint:allow(d3, fn): offsets are pre-checked\n\
             fn from_bytes(d: &[u8]) -> Result<X, ParseError> {\n\
                 let a = d[0];\n\
                 let b = d[1];\n\
             }",
        );
        let sup = &s.suppressions[0];
        assert!(sup.fn_scope && sup.justified);
        assert_eq!(sup.covers, (2, 5));
    }

    #[test]
    fn line_suppression_targets_next_code_line() {
        let s = scan_src(
            "// lint:allow(d1): never iterated, and that is fine because\n\
             // the id bitmap in front absorbs the ordering question\n\
             use std::collections::HashSet;",
        );
        assert_eq!(s.suppressions[0].covers, (3, 3));
        assert!(s.suppressions[0].justified);
    }

    #[test]
    fn unjustified_and_unknown_suppressions_are_recorded() {
        let s = scan_src("// lint:allow(d1)\nlet x = 1;\n// lint:allow(d9): what\nlet y = 2;");
        assert!(!s.suppressions[0].justified);
        assert_eq!(s.suppressions[1].rule, "d9");
    }
}
