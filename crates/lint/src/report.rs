//! Findings and their two output forms: line-oriented human text, and a
//! small hand-rolled JSON document (no serde — this crate has no deps).

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id: `d1`…`d5`, or `allow` for suppression-hygiene findings.
    pub rule: String,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

impl Finding {
    pub fn new(rule: &str, file: &str, line: u32, message: String) -> Self {
        Finding {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            message,
        }
    }

    /// `file:line: [rule] message` — clickable in most terminals.
    pub fn human(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Stable order: file, then line, then rule — so output diffs cleanly.
pub fn sort(findings: &mut Vec<Finding>) {
    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    findings.dedup();
}

/// The whole report as a JSON document.
pub fn to_json(findings: &[Finding]) -> String {
    let mut s = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
            json_str(&f.rule),
            json_str(&f.file),
            f.line,
            json_str(&f.message)
        ));
    }
    s.push_str(&format!("],\"total\":{}}}", findings.len()));
    s
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let f = vec![Finding::new(
            "d1",
            "a.rs",
            3,
            "uses \"HashMap\"\n".to_string(),
        )];
        let j = to_json(&f);
        assert!(j.contains("\\\"HashMap\\\"\\n"));
        assert!(j.ends_with("\"total\":1}"));
        assert!(to_json(&[]).contains("\"total\":0"));
    }
}
