//! CLI for `ipop-lint`.
//!
//! ```text
//! cargo run -p ipop-lint                    # human report, exit 1 on findings
//! cargo run -p ipop-lint -- --json          # JSON on stdout, human on stderr
//! cargo run -p ipop-lint -- --baseline F    # ignore findings listed in F
//! cargo run -p ipop-lint -- --root DIR      # workspace root (default: cwd)
//! ```
//!
//! Exit codes: 0 clean (or fully baselined), 1 findings, 2 usage/IO error.
//!
//! The baseline file is line-oriented: `rule<TAB>file[<TAB>line]`, `#`
//! comments and blank lines ignored. Entries without a line number baseline
//! every finding of that rule in that file. The checked-in baseline is empty
//! and should stay that way — it exists so a future rule tightening can land
//! before its last fixes do.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ipop_lint::report::{to_json, Finding};

fn main() -> ExitCode {
    let mut json = false;
    let mut baseline: Option<PathBuf> = None;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--baseline" => match args.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => return usage("--baseline needs a file"),
            },
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root needs a directory"),
            },
            "--help" | "-h" => {
                eprintln!("usage: ipop-lint [--json] [--baseline FILE] [--root DIR]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if !root.join("Cargo.toml").is_file() || !root.join("crates").is_dir() {
        eprintln!(
            "ipop-lint: {} does not look like the workspace root (no Cargo.toml/crates)",
            root.display()
        );
        return ExitCode::from(2);
    }

    let findings = match ipop_lint::analyze_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ipop-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let baselined = match baseline.as_deref().map(load_baseline).transpose() {
        Ok(b) => b.unwrap_or_default(),
        Err(e) => {
            eprintln!("ipop-lint: baseline: {e}");
            return ExitCode::from(2);
        }
    };
    let (old, new): (Vec<&Finding>, Vec<&Finding>) = findings
        .iter()
        .partition(|f| baselined.iter().any(|b| b.matches(f)));

    let new_owned: Vec<Finding> = new.iter().map(|f| (*f).clone()).collect();
    if json {
        println!("{}", to_json(&new_owned));
    }
    let human = if json {
        |line: String| eprintln!("{line}")
    } else {
        |line: String| println!("{line}")
    };
    for f in &new {
        human(f.human());
    }
    if !old.is_empty() {
        human(format!("({} baselined finding(s) ignored)", old.len()));
    }
    if new.is_empty() {
        human("ipop-lint: clean".to_string());
        ExitCode::SUCCESS
    } else {
        human(format!("ipop-lint: {} finding(s)", new.len()));
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ipop-lint: {msg}\nusage: ipop-lint [--json] [--baseline FILE] [--root DIR]");
    ExitCode::from(2)
}

struct BaselineEntry {
    rule: String,
    file: String,
    line: Option<u32>,
}

impl BaselineEntry {
    fn matches(&self, f: &Finding) -> bool {
        self.rule == f.rule && self.file == f.file && self.line.is_none_or(|l| l == f.line)
    }
}

fn load_baseline(path: &Path) -> std::io::Result<Vec<BaselineEntry>> {
    let text = std::fs::read_to_string(path)?;
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cols = line.split('\t');
        let (Some(rule), Some(file)) = (cols.next(), cols.next()) else {
            continue;
        };
        out.push(BaselineEntry {
            rule: rule.to_string(),
            file: file.to_string(),
            line: cols.next().and_then(|c| c.parse().ok()),
        });
    }
    Ok(out)
}
