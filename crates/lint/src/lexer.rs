//! A small Rust lexer — just enough fidelity for lint rules.
//!
//! The rules in this crate only need a *token stream with line numbers* plus
//! the comments (for `lint:allow` suppressions). That is a much easier target
//! than full parsing, but it still has to get the hard lexical cases right, or
//! a `HashMap` inside a string literal would trip rule D1: nested block
//! comments, escapes in string/char literals, raw strings with arbitrary `#`
//! fences, byte strings, and the `'a` lifetime vs `'a'` char ambiguity.

/// Kind of a lexed token. Comments are collected separately, not as tokens.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the scanner distinguishes keywords by text).
    Ident,
    /// Integer literal, suffix included (`13`, `0xFF`, `42u8`).
    Int,
    /// Float literal (`1.5`, `2.0f64`).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Operator or delimiter, maximal-munch (`::`, `=>`, `+=`, `[`, …).
    Punct,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One comment (line or block, doc or plain) with the line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// Lexer output: code tokens and comments, both in source order.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Multi-char operators, longest first so maximal munch is a prefix scan.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

/// Lex `src`. Never fails: unterminated literals are closed at end of input,
/// and any unrecognised byte becomes a single-char `Punct`, so the rules can
/// run on slightly malformed input (fixtures, mid-edit files) without panics.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    // Count newlines in chars[from..to] into `line`.
    let bump = |line: &mut u32, chars: &[char]| {
        *line += chars.iter().filter(|&&c| c == '\n').count() as u32;
    };

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let (start, l0) = (i, line);
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            out.comments.push(Comment {
                text: chars[start..i].iter().collect(),
                line: l0,
            });
            continue;
        }

        // Identifiers, keywords, and string-literal prefixes (r, b, br, rb).
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            let next = chars.get(i).copied();
            let is_raw_prefix = matches!(word.as_str(), "r" | "br" | "rb");
            let is_byte_prefix = matches!(word.as_str(), "b" | "br" | "rb");
            if (is_raw_prefix || word == "b") && next == Some('"') {
                // b"…" escapes like a normal string; r"…" / br"…" do not.
                let end = if is_raw_prefix {
                    scan_raw_string(&chars, i, 0)
                } else {
                    scan_string(&chars, i)
                };
                bump(&mut line, &chars[i..end]);
                i = end;
                out.tokens.push(tok(TokKind::Str, &word, line));
                continue;
            }
            if is_raw_prefix && next == Some('#') {
                let mut hashes = 0usize;
                while i + hashes < n && chars[i + hashes] == '#' {
                    hashes += 1;
                }
                if chars.get(i + hashes) == Some(&'"') {
                    let end = scan_raw_string(&chars, i + hashes, hashes);
                    bump(&mut line, &chars[i..end]);
                    i = end;
                    out.tokens.push(tok(TokKind::Str, &word, line));
                    continue;
                }
                // r#ident — a raw identifier; fold the `r#` into the name.
                if word == "r" {
                    i += 1; // consume '#'
                    let istart = i;
                    while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    let name: String = chars[istart..i].iter().collect();
                    out.tokens.push(tok(TokKind::Ident, &name, line));
                    continue;
                }
            }
            if is_byte_prefix && !is_raw_prefix && next == Some('\'') {
                let end = scan_char(&chars, i);
                bump(&mut line, &chars[i..end]);
                i = end;
                out.tokens.push(tok(TokKind::Char, &word, line));
                continue;
            }
            out.tokens.push(tok(TokKind::Ident, &word, line));
            continue;
        }

        // Numbers. Suffixes ride along in the text (`42u8`); `1..9` must not
        // lex `1.` as a float.
        if c.is_ascii_digit() {
            let start = i;
            let mut kind = TokKind::Int;
            if c == '0' && matches!(chars.get(i + 1), Some('x' | 'o' | 'b')) {
                i += 2;
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            } else {
                while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    i += 1;
                }
                if i + 1 < n && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    kind = TokKind::Float;
                    i += 1;
                    while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        i += 1;
                    }
                }
                // Type suffix (u8, usize, f64, e-notation).
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                if kind == TokKind::Int && chars[start..i].contains(&'f') {
                    kind = TokKind::Float; // 2f64
                }
            }
            let text: String = chars[start..i].iter().collect();
            out.tokens.push(tok(kind, &text, line));
            continue;
        }

        // Plain strings.
        if c == '"' {
            let end = scan_string(&chars, i);
            bump(&mut line, &chars[i..end]);
            i = end;
            out.tokens.push(tok(TokKind::Str, "\"", line));
            continue;
        }

        // Lifetime or char literal.
        if c == '\'' {
            let one = chars.get(i + 1).copied();
            let two = chars.get(i + 2).copied();
            let is_lifetime = match one {
                Some(x) if x.is_alphabetic() || x == '_' => two != Some('\''),
                _ => false,
            };
            if is_lifetime {
                let start = i + 1;
                i += 1;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                out.tokens.push(tok(TokKind::Lifetime, &text, line));
            } else {
                let end = scan_char(&chars, i);
                bump(&mut line, &chars[i..end]);
                i = end;
                out.tokens.push(tok(TokKind::Char, "'", line));
            }
            continue;
        }

        // Operators and delimiters, longest match first.
        let rest_len = n - i;
        let mut matched = None;
        for p in PUNCTS {
            let pc: Vec<char> = p.chars().collect();
            if pc.len() <= rest_len && chars[i..i + pc.len()] == pc[..] {
                matched = Some(p.to_string());
                break;
            }
        }
        let text = matched.unwrap_or_else(|| c.to_string());
        i += text.chars().count();
        out.tokens.push(tok(TokKind::Punct, &text, line));
    }
    out
}

fn tok(kind: TokKind, text: &str, line: u32) -> Token {
    Token {
        kind,
        text: text.to_string(),
        line,
    }
}

/// From the opening `"` at `chars[at]`, return the index just past the
/// closing quote, honouring `\` escapes (including `\"` and `\\`).
fn scan_string(chars: &[char], at: usize) -> usize {
    let mut i = at + 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    chars.len()
}

/// From the opening `"` at `chars[at]` of a raw string with `hashes` fence
/// characters, return the index just past the closing `"##…`. No escapes.
fn scan_raw_string(chars: &[char], at: usize, hashes: usize) -> usize {
    let n = chars.len();
    let mut i = at + 1;
    while i < n {
        if chars[i] == '"'
            && chars[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            return i + 1 + hashes;
        }
        i += 1;
    }
    n
}

/// From the opening `'` at `chars[at]`, return the index just past the
/// closing quote of a char literal, honouring escapes.
fn scan_char(chars: &[char], at: usize) -> usize {
    // `at` may point at the `b` of a byte literal; find the quote first.
    let mut i = at;
    while i < chars.len() && chars[i] != '\'' {
        i += 1;
    }
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\'' => return i + 1,
            _ => i += 1,
        }
    }
    chars.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            let a = "HashMap in a string";
            // HashMap in a line comment
            /* HashMap /* nested */ still comment */
            let b = r#"HashMap in a raw "quoted" string"#;
            let c = b"HashMap bytes";
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "HashMap").count(), 1);
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        let charlits: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(charlits.len(), 1);
    }

    #[test]
    fn escaped_quote_in_char_literal() {
        // '\'' must not end the literal early and swallow the rest.
        let ids = idents(r"let q = '\''; let after = 1;");
        assert!(ids.contains(&"after".to_string()), "{ids:?}");
    }

    #[test]
    fn ranges_are_not_floats() {
        let toks = lex("for i in 0..19 {}").tokens;
        let ints: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Int)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ints, ["0", "19"]);
        assert!(toks.iter().any(|t| t.text == ".."));
    }

    #[test]
    fn multi_char_operators_munch_maximally() {
        let toks = lex("a += b; c => d; e == f; g <<= 2;").tokens;
        let puncts: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert!(puncts.contains(&"+="));
        assert!(puncts.contains(&"=>"));
        assert!(puncts.contains(&"=="));
        assert!(puncts.contains(&"<<="));
    }

    #[test]
    fn line_numbers_track_multiline_literals() {
        let src = "let s = \"a\nb\nc\";\nlet t = 9;";
        let toks = lex(src).tokens;
        let t9 = toks.iter().find(|t| t.text == "9").unwrap();
        assert_eq!(t9.line, 4);
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        let ids = idents("let r#match = 1;");
        assert!(ids.contains(&"match".to_string()));
    }
}
