//! The five determinism/wire-safety rules, D1–D5. Each rule is a pure
//! function from the analyzed file set to findings; suppression filtering
//! happens in [`crate::analyze_files`], not here.

use crate::lexer::TokKind;
use crate::report::Finding;
use crate::scan::NON_INDEX_KEYWORDS;
use crate::SourceFile;

/// Crates whose behaviour must be a pure function of the seed: everything
/// that runs under the deterministic simulator. `apps` is excluded — that is
/// where wall-clock and OS entropy legitimately enter.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "crates/simcore/",
    "crates/netsim/",
    "crates/overlay/",
    "crates/core/",
    "crates/netstack/",
    "crates/services/",
    "crates/bench/",
];

fn in_deterministic_crate(path: &str) -> bool {
    DETERMINISTIC_CRATES.iter().any(|p| path.starts_with(p))
}

/// D1: no `HashMap`/`HashSet` in deterministic crates. Iteration order of
/// `std` hash containers is seeded per-instance, so any trace that depends on
/// it diverges across runs. Use `BTreeMap`/`BTreeSet`, or justify a
/// never-iterated set with `lint:allow(d1)`.
pub fn d1(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files.iter().filter(|f| in_deterministic_crate(&f.path)) {
        for t in &f.lexed.tokens {
            if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
                out.push(Finding::new(
                    "d1",
                    &f.path,
                    t.line,
                    format!(
                        "{} in a deterministic crate: iteration order is per-instance \
                         random; use BTreeMap/BTreeSet or justify with lint:allow(d1)",
                        t.text
                    ),
                ));
            }
        }
    }
    out
}

/// D2: no wall clock or ambient randomness in deterministic crates (outside
/// `bin/` entry points). `Instant`/`SystemTime` reads and `thread_rng`-style
/// entropy make replays diverge; simulated code must use `SimTime` and the
/// seeded RNG that the harness threads through.
pub fn d2(files: &[SourceFile]) -> Vec<Finding> {
    const BANNED: &[&str] = &["Instant", "SystemTime", "thread_rng", "OsRng"];
    let mut out = Vec::new();
    for f in files
        .iter()
        .filter(|f| in_deterministic_crate(&f.path) && !f.path.contains("/bin/"))
    {
        let toks = &f.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            if BANNED.contains(&t.text.as_str()) {
                out.push(Finding::new(
                    "d2",
                    &f.path,
                    t.line,
                    format!(
                        "{} in a deterministic crate: wall-clock/ambient entropy breaks \
                         replay; use SimTime / the seeded RNG, or justify with lint:allow(d2)",
                        t.text
                    ),
                ));
            }
            // std::thread::sleep — real time passing inside simulated code.
            if t.text == "thread"
                && toks.get(i + 1).map(|t| t.text.as_str()) == Some("::")
                && toks.get(i + 2).map(|t| t.text.as_str()) == Some("sleep")
            {
                out.push(Finding::new(
                    "d2",
                    &f.path,
                    t.line,
                    "thread::sleep in a deterministic crate: virtual time never \
                     advances by real sleeping"
                        .to_string(),
                ));
            }
        }
    }
    out
}

/// D3: wire decoders must be total. Inside any fn of the `packet` or
/// `overlay` crates whose return type mentions `ParseError`, flag the things
/// that can panic on hostile input: `.unwrap()`, `.expect()`, panicking
/// macros, and direct index expressions.
pub fn d3(files: &[SourceFile]) -> Vec<Finding> {
    const PANIC_MACROS: &[&str] = &[
        "panic",
        "unreachable",
        "todo",
        "unimplemented",
        "assert",
        "assert_eq",
        "assert_ne",
    ];
    let mut out = Vec::new();
    for f in files.iter().filter(|f| {
        f.path.starts_with("crates/packet/src/") || f.path.starts_with("crates/overlay/src/")
    }) {
        let toks = &f.lexed.tokens;
        for item in f.scan.fns.iter().filter(|i| i.ret.contains("ParseError")) {
            let (lo, hi) = item.body;
            if hi <= lo {
                continue;
            }
            for k in lo..=hi {
                let t = &toks[k];
                let prev = k.checked_sub(1).map(|p| &toks[p]);
                if t.kind == TokKind::Ident
                    && (t.text == "unwrap" || t.text == "expect")
                    && prev.is_some_and(|p| p.text == ".")
                {
                    out.push(Finding::new(
                        "d3",
                        &f.path,
                        t.line,
                        format!(
                            ".{}() inside decoder `{}`: decode paths must return \
                             ParseError, never panic",
                            t.text, item.name
                        ),
                    ));
                }
                if t.kind == TokKind::Ident
                    && PANIC_MACROS.contains(&t.text.as_str())
                    && toks.get(k + 1).map(|n| n.text.as_str()) == Some("!")
                {
                    out.push(Finding::new(
                        "d3",
                        &f.path,
                        t.line,
                        format!(
                            "{}! inside decoder `{}`: decode paths must return \
                             ParseError, never panic",
                            t.text, item.name
                        ),
                    ));
                }
                if t.kind == TokKind::Punct && t.text == "[" {
                    let indexes = match prev {
                        Some(p) if p.kind == TokKind::Ident => {
                            !NON_INDEX_KEYWORDS.contains(&p.text.as_str())
                        }
                        Some(p) if p.kind == TokKind::Punct => {
                            matches!(p.text.as_str(), ")" | "]" | "?")
                        }
                        _ => false,
                    };
                    if indexes {
                        out.push(Finding::new(
                            "d3",
                            &f.path,
                            t.line,
                            format!(
                                "index expression inside decoder `{}`: use `get`/slice \
                                 patterns/`try_into`, or justify with lint:allow(d3, fn)",
                                item.name
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// One wire family for D4: an enum, the fn that writes its tag bytes, the fn
/// that matches on them, and the fuzz corpus that must construct every
/// variant.
struct WireFamily {
    enum_name: &'static str,
    file: &'static str,
    enc: (&'static str, &'static str), // (owner, fn)
    dec: (&'static str, &'static str),
    corpus: &'static str,
}

const FAMILIES: &[WireFamily] = &[
    WireFamily {
        enum_name: "RoutedPayload",
        file: "crates/overlay/src/packets.rs",
        enc: ("RoutedPacket", "write"),
        dec: ("RoutedPacket", "read"),
        corpus: "crates/overlay/tests/proptest_fuzz.rs",
    },
    WireFamily {
        enum_name: "LinkMessage",
        file: "crates/overlay/src/packets.rs",
        enc: ("LinkMessage", "to_bytes"),
        dec: ("LinkMessage", "read"),
        corpus: "crates/overlay/tests/proptest_fuzz.rs",
    },
];

/// D4: wire-tag exhaustiveness. The literal tags written by the encoder must
/// be contiguous from 0, every one must have a decoder match arm with the
/// same maximum, and every enum variant must appear in the encoder, the
/// decoder, and the fuzz corpus generator. Catches the classic drift: a new
/// variant encoded but not decoded (or never fuzzed).
pub fn d4(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for fam in FAMILIES {
        let Some(src) = files.iter().find(|f| f.path == fam.file) else {
            continue; // not linting that part of the tree (e.g. fixtures)
        };
        let find_fn = |owner: &str, name: &str| {
            src.scan
                .fns
                .iter()
                .find(|f| f.name == name && f.owner.as_deref() == Some(owner))
        };
        let (Some(enc), Some(dec)) = (find_fn(fam.enc.0, fam.enc.1), find_fn(fam.dec.0, fam.dec.1))
        else {
            out.push(Finding::new(
                "d4",
                &src.path,
                1,
                format!(
                    "cannot locate {}::{} / {}::{} — rule D4 lost its anchor; \
                     update the WireFamily table in ipop-lint",
                    fam.enc.0, fam.enc.1, fam.dec.0, fam.dec.1
                ),
            ));
            continue;
        };

        let toks = &src.lexed.tokens;
        // Encoder tags: literal arguments of `.u8(<int>)` calls in the body.
        let mut enc_tags: Vec<u64> = Vec::new();
        for k in enc.body.0..=enc.body.1 {
            if toks[k].text == "."
                && toks.get(k + 1).map(|t| t.text.as_str()) == Some("u8")
                && toks.get(k + 2).map(|t| t.text.as_str()) == Some("(")
            {
                if let Some(v) = toks.get(k + 3).and_then(int_value) {
                    if toks.get(k + 4).map(|t| t.text.as_str()) == Some(")") {
                        enc_tags.push(v);
                    }
                }
            }
        }
        // Decoder tags: `<int> =>` match arms in the body.
        let mut dec_tags: Vec<u64> = Vec::new();
        for k in dec.body.0..=dec.body.1 {
            if toks.get(k + 1).map(|t| t.text.as_str()) == Some("=>") {
                if let Some(v) = int_value(&toks[k]) {
                    dec_tags.push(v);
                }
            }
        }
        enc_tags.sort_unstable();
        enc_tags.dedup();
        dec_tags.sort_unstable();
        dec_tags.dedup();

        if enc_tags.is_empty() {
            out.push(Finding::new(
                "d4",
                &src.path,
                enc.sig_line,
                format!(
                    "no literal wire tags found in {}::{} — rule D4 cannot check {}",
                    fam.enc.0, fam.enc.1, fam.enum_name
                ),
            ));
            continue;
        }
        let max_enc = *enc_tags.last().unwrap_or(&0);
        for tag in 0..=max_enc {
            if !enc_tags.contains(&tag) {
                out.push(Finding::new(
                    "d4",
                    &src.path,
                    enc.sig_line,
                    format!(
                        "{} wire tags are not contiguous: {} is unused below max {} \
                         (retiring a tag needs an explicit reserved write or renumbering)",
                        fam.enum_name, tag, max_enc
                    ),
                ));
            }
            if !dec_tags.contains(&tag) {
                out.push(Finding::new(
                    "d4",
                    &src.path,
                    dec.sig_line,
                    format!(
                        "{} tag {} is encoded by {}::{} but has no match arm in {}::{}",
                        fam.enum_name, tag, fam.enc.0, fam.enc.1, fam.dec.0, fam.dec.1
                    ),
                ));
            }
        }
        if let Some(&max_dec) = dec_tags.last() {
            if max_dec > max_enc {
                out.push(Finding::new(
                    "d4",
                    &src.path,
                    dec.sig_line,
                    format!(
                        "{}::{} decodes tag {} that no encoder writes (max written: {})",
                        fam.dec.0, fam.dec.1, max_dec, max_enc
                    ),
                ));
            }
        }

        // Variant coverage: encoder, decoder, and fuzz corpus must all
        // mention every variant by name.
        let Some(en) = src.scan.enums.iter().find(|e| e.name == fam.enum_name) else {
            out.push(Finding::new(
                "d4",
                &src.path,
                1,
                format!("enum {} not found in {}", fam.enum_name, src.path),
            ));
            continue;
        };
        let corpus = files.iter().find(|f| f.path == fam.corpus);
        let mentions = |range: (usize, usize), name: &str| {
            toks[range.0..=range.1]
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text == name)
        };
        for v in &en.variants {
            if !mentions(enc.body, v) {
                out.push(Finding::new(
                    "d4",
                    &src.path,
                    enc.sig_line,
                    format!(
                        "{}::{} is never encoded by {}::{}",
                        fam.enum_name, v, fam.enc.0, fam.enc.1
                    ),
                ));
            }
            if !mentions(dec.body, v) {
                out.push(Finding::new(
                    "d4",
                    &src.path,
                    dec.sig_line,
                    format!(
                        "{}::{} is never decoded by {}::{}",
                        fam.enum_name, v, fam.dec.0, fam.dec.1
                    ),
                ));
            }
            match corpus {
                Some(c) => {
                    let found = c
                        .lexed
                        .tokens
                        .iter()
                        .any(|t| t.kind == TokKind::Ident && t.text == *v);
                    if !found {
                        out.push(Finding::new(
                            "d4",
                            &c.path,
                            1,
                            format!(
                                "{}::{} is never constructed by the fuzz corpus — mutated-wire \
                                 coverage has a hole",
                                fam.enum_name, v
                            ),
                        ));
                    }
                }
                None => {
                    out.push(Finding::new(
                        "d4",
                        &src.path,
                        1,
                        format!(
                            "fuzz corpus file {} missing for {}",
                            fam.corpus, fam.enum_name
                        ),
                    ));
                    break;
                }
            }
        }
    }
    out
}

/// Parse a decimal or hex integer literal token (`13`, `0x0D`, `7u8`).
fn int_value(t: &crate::lexer::Token) -> Option<u64> {
    if t.kind != TokKind::Int {
        return None;
    }
    let s: String = t.text.chars().filter(|&c| c != '_').collect();
    if let Some(hex) = s.strip_prefix("0x") {
        let hex = hex.trim_end_matches(|c: char| c.is_ascii_alphabetic() && !c.is_ascii_hexdigit());
        return u64::from_str_radix(hex, 16).ok();
    }
    let digits: String = s.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// One counters struct for D5 and the crate whose sources must touch its
/// fields.
const COUNTER_STRUCTS: &[(&str, &str)] = &[
    ("crates/overlay/", "OverlayStats"),
    ("crates/netsim/", "NetCounters"),
    ("crates/netsim/", "ImpairmentCounters"),
];

/// D5: dead-counter detection. Every field of the stats/counters structs must
/// have at least one `.field +=` / `-=` / `=` site in its owning crate — a
/// counter nothing increments silently reports zero forever, which is worse
/// than no counter (it looks like "no drops" instead of "not measured").
pub fn d5(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for &(prefix, struct_name) in COUNTER_STRUCTS {
        let mut decl = None;
        for f in files.iter().filter(|f| f.path.starts_with(prefix)) {
            if let Some(s) = f.scan.structs.iter().find(|s| s.name == struct_name) {
                decl = Some((f, s));
                break;
            }
        }
        let Some((decl_file, st)) = decl else {
            // Only self-check when the crate is part of the analyzed set at
            // all (fixture runs feed single files from other crates).
            if files.iter().any(|f| f.path.starts_with(prefix)) {
                out.push(Finding::new(
                    "d5",
                    &format!("{prefix}src/lib.rs"),
                    1,
                    format!(
                        "struct {struct_name} not found under {prefix} — rule D5 lost its \
                         anchor; update COUNTER_STRUCTS in ipop-lint"
                    ),
                ));
            }
            continue;
        };
        for field in &st.fields {
            let mut touched = false;
            'files: for f in files.iter().filter(|f| f.path.starts_with(prefix)) {
                let toks = &f.lexed.tokens;
                for (i, t) in toks.iter().enumerate() {
                    if t.text == "."
                        && t.kind == TokKind::Punct
                        && toks.get(i + 1).map(|n| n.text.as_str()) == Some(field.name.as_str())
                        && matches!(
                            toks.get(i + 2).map(|n| n.text.as_str()),
                            Some("+=" | "-=" | "=")
                        )
                    {
                        touched = true;
                        break 'files;
                    }
                }
            }
            if !touched {
                out.push(Finding::new(
                    "d5",
                    &decl_file.path,
                    field.line,
                    format!(
                        "{}.{} is never incremented or assigned anywhere in {} — dead \
                         counter reports a permanent zero",
                        struct_name, field.name, prefix
                    ),
                ));
            }
        }
    }
    out
}
