//! The host network stack.
//!
//! One [`NetStack`] instance models one IP interface plus the transport sockets
//! bound to it. Every IPOP host instantiates the stack twice: once attached to the
//! physical interface (the "kernel" stack carrying Brunet overlay traffic) and once
//! attached to the virtual tap interface (the stack that unmodified applications
//! use). The paper attributes most of IPOP's per-packet overhead to exactly this
//! double traversal (Section IV-B), so keeping the two instances literally the same
//! type is both a simplification and a fidelity argument.
//!
//! The stack is poll-driven and clockless: callers push packets in with
//! [`NetStack::handle_packet`], call [`NetStack::poll`] with the current virtual
//! time, and drain [`NetStack::take_packets`] for transmission on the attached
//! device.

use std::collections::VecDeque;
use std::net::Ipv4Addr;

use ipop_packet::icmp::IcmpPacket;
use ipop_packet::ipv4::{Ipv4Packet, Ipv4Payload};
use ipop_packet::tcp::TcpSegment;
use ipop_packet::udp::UdpDatagram;
use ipop_simcore::SimTime;

use crate::socket::{
    EchoReply, PingSocket, Socket, SocketHandle, TcpListener, UdpMessage, UdpSocket,
};
use crate::tcp::{TcpConfig, TcpSocket, TcpState};

/// Errors returned by stack operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StackError {
    /// The requested local port is already bound.
    PortInUse(u16),
    /// The handle does not refer to a live socket of the expected kind.
    BadHandle,
    /// The operation is not valid in the socket's current state.
    InvalidState,
}

impl std::fmt::Display for StackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StackError::PortInUse(p) => write!(f, "port {p} already in use"),
            StackError::BadHandle => write!(f, "invalid socket handle"),
            StackError::InvalidState => write!(f, "operation invalid in current socket state"),
        }
    }
}

impl std::error::Error for StackError {}

/// Configuration of a stack instance.
#[derive(Clone, Debug)]
pub struct StackConfig {
    /// The interface address.
    pub addr: Ipv4Addr,
    /// Interface MTU in bytes (bounds the TCP MSS).
    pub mtu: usize,
    /// Defaults applied to new TCP sockets.
    pub tcp: TcpConfig,
    /// Reply to ICMP echo requests automatically (like a kernel does).
    pub icmp_echo_reply: bool,
    /// Receive-queue capacity (datagrams) for UDP sockets.
    pub udp_rx_queue: usize,
}

impl StackConfig {
    /// A stack bound to `addr` with defaults suitable for the experiments.
    pub fn new(addr: Ipv4Addr) -> Self {
        StackConfig {
            addr,
            mtu: 1500,
            tcp: TcpConfig::default(),
            icmp_echo_reply: true,
            udp_rx_queue: 1024,
        }
    }

    /// Same, but with a reduced MTU (used for the virtual tap interface so that an
    /// encapsulated virtual packet still fits in one physical datagram).
    pub fn with_mtu(mut self, mtu: usize) -> Self {
        self.mtu = mtu;
        // Leave room for the IP and TCP headers within the MTU.
        self.tcp.mss = self.tcp.mss.min(mtu.saturating_sub(40).max(536));
        self
    }
}

/// Counters exposed for tests and metrics.
#[derive(Clone, Copy, Debug, Default)]
pub struct StackCounters {
    /// Packets accepted by [`NetStack::handle_packet`].
    pub rx_packets: u64,
    /// Packets emitted through the outbox.
    pub tx_packets: u64,
    /// Packets dropped because they were not addressed to this interface.
    pub rx_wrong_addr: u64,
    /// Packets dropped because no socket wanted them.
    pub rx_no_socket: u64,
    /// ICMP echo requests answered automatically.
    pub echo_replied: u64,
}

/// A single-interface IPv4 host stack with UDP, TCP and ICMP-echo sockets.
pub struct NetStack {
    cfg: StackConfig,
    sockets: Vec<Socket>,
    outbox: VecDeque<Ipv4Packet>,
    next_ephemeral: u16,
    next_icmp_ident: u16,
    iss_counter: u32,
    ip_ident: u16,
    counters: StackCounters,
}

impl NetStack {
    /// Create a stack for the given configuration.
    pub fn new(cfg: StackConfig) -> Self {
        NetStack {
            cfg,
            sockets: Vec::new(),
            outbox: VecDeque::new(),
            next_ephemeral: 49_152,
            next_icmp_ident: 1,
            iss_counter: 1,
            ip_ident: 0,
            counters: StackCounters::default(),
        }
    }

    /// The interface address.
    pub fn addr(&self) -> Ipv4Addr {
        self.cfg.addr
    }

    /// The interface MTU.
    pub fn mtu(&self) -> usize {
        self.cfg.mtu
    }

    /// Counter snapshot.
    pub fn counters(&self) -> StackCounters {
        self.counters
    }

    fn alloc(&mut self, socket: Socket) -> SocketHandle {
        for (i, slot) in self.sockets.iter_mut().enumerate() {
            if matches!(slot, Socket::Vacant) {
                *slot = socket;
                return SocketHandle(i);
            }
        }
        self.sockets.push(socket);
        SocketHandle(self.sockets.len() - 1)
    }

    fn socket(&self, h: SocketHandle) -> Result<&Socket, StackError> {
        self.sockets.get(h.0).ok_or(StackError::BadHandle)
    }

    fn socket_mut(&mut self, h: SocketHandle) -> Result<&mut Socket, StackError> {
        self.sockets.get_mut(h.0).ok_or(StackError::BadHandle)
    }

    fn udp_port_in_use(&self, port: u16) -> bool {
        self.sockets
            .iter()
            .any(|s| matches!(s, Socket::Udp(u) if u.port == port))
    }

    fn tcp_port_in_use(&self, port: u16) -> bool {
        self.sockets.iter().any(|s| match s {
            Socket::Listener(l) => l.port == port,
            Socket::Tcp(t) => t.local().1 == port,
            _ => false,
        })
    }

    /// Allocate an unused ephemeral port for the given protocol space.
    fn ephemeral_port(&mut self, tcp: bool) -> u16 {
        loop {
            let p = self.next_ephemeral;
            self.next_ephemeral = if self.next_ephemeral == u16::MAX {
                49_152
            } else {
                self.next_ephemeral + 1
            };
            let used = if tcp {
                self.tcp_port_in_use(p)
            } else {
                self.udp_port_in_use(p)
            };
            if !used {
                return p;
            }
        }
    }

    fn next_ip_ident(&mut self) -> u16 {
        self.ip_ident = self.ip_ident.wrapping_add(1);
        self.ip_ident
    }

    fn next_iss(&mut self) -> u32 {
        // Deterministic but spread-out initial sequence numbers.
        self.iss_counter = self
            .iss_counter
            .wrapping_mul(2_654_435_761)
            .wrapping_add(12_345);
        self.iss_counter
    }

    fn enqueue(&mut self, dst: Ipv4Addr, payload: Ipv4Payload) {
        let mut pkt = Ipv4Packet::new(self.cfg.addr, dst, payload);
        pkt.header.identification = self.next_ip_ident();
        self.counters.tx_packets += 1;
        self.outbox.push_back(pkt);
    }

    // ------------------------------------------------------------------- UDP API

    /// Bind a UDP socket to `port` (0 = pick an ephemeral port).
    pub fn udp_bind(&mut self, port: u16) -> Result<SocketHandle, StackError> {
        let port = if port == 0 {
            self.ephemeral_port(false)
        } else {
            port
        };
        if self.udp_port_in_use(port) {
            return Err(StackError::PortInUse(port));
        }
        let capacity = self.cfg.udp_rx_queue;
        Ok(self.alloc(Socket::Udp(UdpSocket::new(port, capacity))))
    }

    /// The local port a UDP socket is bound to.
    pub fn udp_port(&self, h: SocketHandle) -> Result<u16, StackError> {
        match self.socket(h)? {
            Socket::Udp(u) => Ok(u.port),
            _ => Err(StackError::BadHandle),
        }
    }

    /// Send a datagram from a bound UDP socket.
    pub fn udp_send(
        &mut self,
        h: SocketHandle,
        dst: Ipv4Addr,
        dst_port: u16,
        data: impl Into<ipop_packet::Bytes>,
    ) -> Result<(), StackError> {
        let src_port = self.udp_port(h)?;
        self.enqueue(
            dst,
            Ipv4Payload::Udp(UdpDatagram::new(src_port, dst_port, data)),
        );
        Ok(())
    }

    /// Receive the oldest queued datagram on a UDP socket.
    pub fn udp_recv(&mut self, h: SocketHandle) -> Result<Option<UdpMessage>, StackError> {
        match self.socket_mut(h)? {
            Socket::Udp(u) => Ok(u.recv()),
            _ => Err(StackError::BadHandle),
        }
    }

    /// Number of datagrams queued on a UDP socket.
    pub fn udp_pending(&self, h: SocketHandle) -> Result<usize, StackError> {
        match self.socket(h)? {
            Socket::Udp(u) => Ok(u.pending()),
            _ => Err(StackError::BadHandle),
        }
    }

    // ------------------------------------------------------------------ ping API

    /// Open an ICMP echo socket with a unique identifier.
    pub fn ping_open(&mut self) -> SocketHandle {
        let ident = self.next_icmp_ident;
        self.next_icmp_ident = self.next_icmp_ident.wrapping_add(1).max(1);
        self.alloc(Socket::Ping(PingSocket::new(ident)))
    }

    /// The ICMP identifier owned by a ping socket.
    pub fn ping_identifier(&self, h: SocketHandle) -> Result<u16, StackError> {
        match self.socket(h)? {
            Socket::Ping(p) => Ok(p.identifier),
            _ => Err(StackError::BadHandle),
        }
    }

    /// Send an echo request of `payload_len` bytes to `dst`.
    pub fn ping_send(
        &mut self,
        h: SocketHandle,
        dst: Ipv4Addr,
        sequence: u16,
        payload_len: usize,
    ) -> Result<(), StackError> {
        let ident = self.ping_identifier(h)?;
        let payload = vec![0x5A; payload_len];
        self.enqueue(
            dst,
            Ipv4Payload::Icmp(IcmpPacket::echo_request(ident, sequence, payload)),
        );
        Ok(())
    }

    /// Receive the oldest echo reply on a ping socket.
    pub fn ping_recv(&mut self, h: SocketHandle) -> Result<Option<EchoReply>, StackError> {
        match self.socket_mut(h)? {
            Socket::Ping(p) => Ok(p.recv()),
            _ => Err(StackError::BadHandle),
        }
    }

    // ------------------------------------------------------------------- TCP API

    /// Open a passive listener on `port`.
    pub fn tcp_listen(&mut self, port: u16) -> Result<SocketHandle, StackError> {
        if self.tcp_port_in_use(port) {
            return Err(StackError::PortInUse(port));
        }
        let cfg = self.cfg.tcp.clone();
        Ok(self.alloc(Socket::Listener(TcpListener {
            port,
            cfg,
            backlog: VecDeque::new(),
        })))
    }

    /// Accept one pending connection from a listener, if any.
    pub fn tcp_accept(&mut self, h: SocketHandle) -> Result<Option<SocketHandle>, StackError> {
        match self.socket_mut(h)? {
            Socket::Listener(l) => Ok(l.backlog.pop_front()),
            _ => Err(StackError::BadHandle),
        }
    }

    /// Actively open a connection to `dst:dst_port`.
    pub fn tcp_connect(
        &mut self,
        dst: Ipv4Addr,
        dst_port: u16,
        now: SimTime,
    ) -> Result<SocketHandle, StackError> {
        let local_port = self.ephemeral_port(true);
        let iss = self.next_iss();
        let mut cfg = self.cfg.tcp.clone();
        cfg.mss = cfg.mss.min(self.cfg.mtu.saturating_sub(40).max(536));
        let sock = TcpSocket::connect(self.cfg.addr, local_port, dst, dst_port, iss, now, cfg);
        Ok(self.alloc(Socket::Tcp(Box::new(sock))))
    }

    /// Current state of a TCP socket.
    pub fn tcp_state(&self, h: SocketHandle) -> Result<TcpState, StackError> {
        match self.socket(h)? {
            Socket::Tcp(t) => Ok(t.state()),
            Socket::Listener(_) => Ok(TcpState::Listen),
            _ => Err(StackError::BadHandle),
        }
    }

    /// True once the connection is established (and not yet fully closed).
    pub fn tcp_is_established(&self, h: SocketHandle) -> bool {
        matches!(self.socket(h), Ok(Socket::Tcp(t)) if t.is_established())
    }

    /// True when the connection has fully terminated.
    pub fn tcp_is_closed(&self, h: SocketHandle) -> bool {
        matches!(self.socket(h), Ok(Socket::Tcp(t)) if t.is_closed())
    }

    /// The remote (address, port) of a TCP connection socket.
    pub fn tcp_remote(&self, h: SocketHandle) -> Option<(Ipv4Addr, u16)> {
        self.socket(h)
            .ok()
            .and_then(|s| s.as_tcp())
            .map(|t| t.remote())
    }

    /// Queue application data on a TCP socket; returns bytes accepted.
    pub fn tcp_send(&mut self, h: SocketHandle, data: &[u8]) -> Result<usize, StackError> {
        match self.socket_mut(h)? {
            Socket::Tcp(t) => Ok(t.send(data)),
            _ => Err(StackError::BadHandle),
        }
    }

    /// Space currently available in a TCP socket's send buffer.
    pub fn tcp_send_capacity(&self, h: SocketHandle) -> usize {
        self.socket(h)
            .ok()
            .and_then(|s| s.as_tcp())
            .map_or(0, |t| t.send_capacity())
    }

    /// Bytes not yet acknowledged (still queued) on a TCP socket.
    pub fn tcp_unacked(&self, h: SocketHandle) -> usize {
        self.socket(h)
            .ok()
            .and_then(|s| s.as_tcp())
            .map_or(0, |t| t.unacked())
    }

    /// Read up to `max` bytes from a TCP socket.
    pub fn tcp_recv(&mut self, h: SocketHandle, max: usize) -> Result<Vec<u8>, StackError> {
        match self.socket_mut(h)? {
            Socket::Tcp(t) => Ok(t.recv(max)),
            _ => Err(StackError::BadHandle),
        }
    }

    /// Bytes available to read on a TCP socket.
    pub fn tcp_recv_available(&self, h: SocketHandle) -> usize {
        self.socket(h)
            .ok()
            .and_then(|s| s.as_tcp())
            .map_or(0, |t| t.recv_available())
    }

    /// True when the peer has closed its sending direction and all data was read.
    pub fn tcp_recv_finished(&self, h: SocketHandle) -> bool {
        self.socket(h)
            .ok()
            .and_then(|s| s.as_tcp())
            .is_some_and(|t| t.recv_finished())
    }

    /// Gracefully close a TCP socket (FIN after queued data drains).
    pub fn tcp_close(&mut self, h: SocketHandle) -> Result<(), StackError> {
        match self.socket_mut(h)? {
            Socket::Tcp(t) => {
                t.close();
                Ok(())
            }
            Socket::Listener(_) => {
                *self.socket_mut(h)? = Socket::Vacant;
                Ok(())
            }
            _ => Err(StackError::BadHandle),
        }
    }

    /// Abort a TCP socket immediately.
    pub fn tcp_abort(&mut self, h: SocketHandle) -> Result<(), StackError> {
        match self.socket_mut(h)? {
            Socket::Tcp(t) => {
                t.abort();
                Ok(())
            }
            _ => Err(StackError::BadHandle),
        }
    }

    /// Release a fully closed socket's slot.
    pub fn release(&mut self, h: SocketHandle) {
        if let Some(slot) = self.sockets.get_mut(h.0) {
            *slot = Socket::Vacant;
        }
    }

    // ----------------------------------------------------------------- data path

    /// Process one incoming IPv4 packet addressed to this interface.
    pub fn handle_packet(&mut self, now: SimTime, pkt: Ipv4Packet) {
        self.counters.rx_packets += 1;
        if pkt.dst() != self.cfg.addr {
            self.counters.rx_wrong_addr += 1;
            return;
        }
        let src = pkt.src();
        match pkt.payload {
            Ipv4Payload::Icmp(icmp) => self.handle_icmp(src, icmp),
            Ipv4Payload::Udp(udp) => self.handle_udp(src, udp),
            Ipv4Payload::Tcp(tcp) => self.handle_tcp(now, src, tcp),
            Ipv4Payload::Raw(..) => {
                self.counters.rx_no_socket += 1;
            }
        }
    }

    fn handle_icmp(&mut self, src: Ipv4Addr, icmp: IcmpPacket) {
        if icmp.is_echo_request() {
            if self.cfg.icmp_echo_reply {
                let reply = IcmpPacket::echo_reply(&icmp);
                self.counters.echo_replied += 1;
                self.enqueue(src, Ipv4Payload::Icmp(reply));
            }
            return;
        }
        if icmp.is_echo_reply() {
            let ident = icmp.identifier;
            for sock in &mut self.sockets {
                if let Socket::Ping(p) = sock {
                    if p.identifier == ident {
                        p.deliver(EchoReply {
                            from: src,
                            identifier: ident,
                            sequence: icmp.sequence,
                            payload: icmp.payload,
                        });
                        return;
                    }
                }
            }
            self.counters.rx_no_socket += 1;
        }
        // Other ICMP error messages are counted but otherwise ignored by the stack.
    }

    fn handle_udp(&mut self, src: Ipv4Addr, udp: UdpDatagram) {
        let port = udp.dst_port;
        for sock in &mut self.sockets {
            if let Socket::Udp(u) = sock {
                if u.port == port {
                    u.deliver(UdpMessage {
                        src,
                        src_port: udp.src_port,
                        data: udp.payload,
                    });
                    return;
                }
            }
        }
        self.counters.rx_no_socket += 1;
    }

    fn handle_tcp(&mut self, now: SimTime, src: Ipv4Addr, seg: TcpSegment) {
        // 1. An existing connection that matches the 4-tuple.
        for sock in &mut self.sockets {
            if let Socket::Tcp(t) = sock {
                if t.matches(src, &seg) && !t.is_closed() {
                    t.on_segment(now, &seg);
                    return;
                }
            }
        }
        // 2. A listener on the destination port (only for initial SYNs).
        if seg.flags.syn && !seg.flags.ack {
            let listener_idx = self
                .sockets
                .iter()
                .position(|s| matches!(s, Socket::Listener(l) if l.port == seg.dst_port));
            if let Some(idx) = listener_idx {
                let iss = self.next_iss();
                let (child_cfg, child) = {
                    let Socket::Listener(l) = &self.sockets[idx] else {
                        unreachable!()
                    };
                    let template = TcpSocket::listen(self.cfg.addr, l.port, l.cfg.clone());
                    (
                        l.cfg.clone(),
                        TcpSocket::accept(&template, src, &seg, iss, now),
                    )
                };
                let _ = child_cfg;
                let handle = self.alloc(Socket::Tcp(Box::new(child)));
                if let Socket::Listener(l) = &mut self.sockets[idx] {
                    l.backlog.push_back(handle);
                }
                return;
            }
        }
        // 3. Nobody wants it: answer with RST (unless it was itself a RST).
        self.counters.rx_no_socket += 1;
        if !seg.flags.rst {
            let rst = TcpSocket::rst_for(seg.dst_port, &seg);
            self.enqueue(src, Ipv4Payload::Tcp(rst));
        }
    }

    /// Run socket timers and collect outgoing segments into the outbox.
    pub fn poll(&mut self, now: SimTime) {
        for idx in 0..self.sockets.len() {
            let (remote, segments) = match &mut self.sockets[idx] {
                Socket::Tcp(t) => {
                    let segs = t.poll(now);
                    (t.remote().0, segs)
                }
                _ => continue,
            };
            for seg in segments {
                self.enqueue(remote, Ipv4Payload::Tcp(seg));
            }
        }
    }

    /// Drain all packets queued for transmission on the attached device.
    pub fn take_packets(&mut self) -> Vec<Ipv4Packet> {
        self.outbox.drain(..).collect()
    }

    /// True if there are packets waiting in the outbox.
    pub fn has_pending_tx(&self) -> bool {
        !self.outbox.is_empty()
    }

    /// True if some socket could emit segments if polled right now.
    pub fn wants_poll(&self) -> bool {
        self.sockets
            .iter()
            .any(|s| matches!(s, Socket::Tcp(t) if t.wants_poll()))
    }

    /// The earliest timer deadline across all sockets, if any.
    pub fn next_timeout(&self) -> Option<SimTime> {
        self.sockets
            .iter()
            .filter_map(|s| s.as_tcp().and_then(|t| t.next_timeout()))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipop_simcore::Duration;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn pair() -> (NetStack, NetStack) {
        (
            NetStack::new(StackConfig::new(A)),
            NetStack::new(StackConfig::new(B)),
        )
    }

    /// Move packets between the two stacks until both go quiet.
    fn pump(a: &mut NetStack, b: &mut NetStack, now: &mut SimTime) {
        for _ in 0..100_000 {
            a.poll(*now);
            b.poll(*now);
            let from_a = a.take_packets();
            let from_b = b.take_packets();
            if from_a.is_empty() && from_b.is_empty() {
                break;
            }
            *now += Duration::from_micros(200);
            for p in from_a {
                b.handle_packet(*now, p);
            }
            for p in from_b {
                a.handle_packet(*now, p);
            }
        }
    }

    #[test]
    fn udp_round_trip_between_stacks() {
        let (mut a, mut b) = pair();
        let sa = a.udp_bind(5000).unwrap();
        let sb = b.udp_bind(6000).unwrap();
        a.udp_send(sa, B, 6000, b"hello".to_vec()).unwrap();
        let mut now = SimTime::ZERO;
        pump(&mut a, &mut b, &mut now);
        let msg = b.udp_recv(sb).unwrap().expect("datagram delivered");
        assert_eq!(msg.data, b"hello");
        assert_eq!(msg.src, A);
        assert_eq!(msg.src_port, 5000);
    }

    #[test]
    fn udp_port_conflicts_rejected() {
        let (mut a, _) = pair();
        a.udp_bind(5000).unwrap();
        assert_eq!(a.udp_bind(5000), Err(StackError::PortInUse(5000)));
        let eph = a.udp_bind(0).unwrap();
        assert!(a.udp_port(eph).unwrap() >= 49_152);
    }

    #[test]
    fn udp_to_unbound_port_is_counted_not_delivered() {
        let (mut a, mut b) = pair();
        let sa = a.udp_bind(5000).unwrap();
        a.udp_send(sa, B, 7777, vec![1]).unwrap();
        let mut now = SimTime::ZERO;
        pump(&mut a, &mut b, &mut now);
        assert_eq!(b.counters().rx_no_socket, 1);
    }

    #[test]
    fn icmp_echo_is_answered_automatically() {
        let (mut a, mut b) = pair();
        let ping = a.ping_open();
        a.ping_send(ping, B, 1, 56).unwrap();
        let mut now = SimTime::ZERO;
        pump(&mut a, &mut b, &mut now);
        let reply = a.ping_recv(ping).unwrap().expect("echo reply");
        assert_eq!(reply.from, B);
        assert_eq!(reply.sequence, 1);
        assert_eq!(reply.payload.len(), 56);
        assert_eq!(b.counters().echo_replied, 1);
    }

    #[test]
    fn echo_reply_disabled_stays_silent() {
        let mut cfg = StackConfig::new(B);
        cfg.icmp_echo_reply = false;
        let mut b = NetStack::new(cfg);
        let mut a = NetStack::new(StackConfig::new(A));
        let ping = a.ping_open();
        a.ping_send(ping, B, 1, 8).unwrap();
        let mut now = SimTime::ZERO;
        pump(&mut a, &mut b, &mut now);
        assert!(a.ping_recv(ping).unwrap().is_none());
    }

    #[test]
    fn packets_for_other_hosts_are_dropped() {
        let (mut a, mut b) = pair();
        let sa = a.udp_bind(5000).unwrap();
        a.udp_send(sa, Ipv4Addr::new(10, 9, 9, 9), 1, vec![1])
            .unwrap();
        for p in a.take_packets() {
            b.handle_packet(SimTime::ZERO, p);
        }
        assert_eq!(b.counters().rx_wrong_addr, 1);
    }

    #[test]
    fn tcp_connect_transfer_close() {
        let (mut a, mut b) = pair();
        let listener = b.tcp_listen(8080).unwrap();
        let mut now = SimTime::ZERO;
        let client = a.tcp_connect(B, 8080, now).unwrap();
        pump(&mut a, &mut b, &mut now);
        assert!(a.tcp_is_established(client));
        let server = b
            .tcp_accept(listener)
            .unwrap()
            .expect("accepted connection");
        assert!(b.tcp_is_established(server));

        // Client sends 100 kB, server echoes the byte count back.
        let blob: Vec<u8> = (0..100_000u32).map(|i| (i % 256) as u8).collect();
        let mut sent = 0;
        let mut got: Vec<u8> = Vec::new();
        while got.len() < blob.len() {
            if sent < blob.len() {
                sent += a.tcp_send(client, &blob[sent..]).unwrap();
            }
            pump(&mut a, &mut b, &mut now);
            got.extend(b.tcp_recv(server, usize::MAX).unwrap());
        }
        assert_eq!(got, blob);

        a.tcp_close(client).unwrap();
        pump(&mut a, &mut b, &mut now);
        assert!(b.tcp_recv_finished(server));
        b.tcp_close(server).unwrap();
        pump(&mut a, &mut b, &mut now);
        now += Duration::from_secs(2);
        pump(&mut a, &mut b, &mut now);
        assert!(b.tcp_is_closed(server));
        assert!(a.tcp_is_closed(client));
    }

    #[test]
    fn syn_to_closed_port_gets_rst() {
        let (mut a, mut b) = pair();
        let mut now = SimTime::ZERO;
        let client = a.tcp_connect(B, 9999, now).unwrap();
        pump(&mut a, &mut b, &mut now);
        assert!(a.tcp_is_closed(client));
        assert!(matches!(a.socket(client).unwrap(), Socket::Tcp(t) if t.was_reset()));
    }

    #[test]
    fn tcp_listener_port_conflicts_rejected() {
        let (_, mut b) = pair();
        b.tcp_listen(80).unwrap();
        assert_eq!(b.tcp_listen(80), Err(StackError::PortInUse(80)));
    }

    #[test]
    fn release_frees_slot_for_reuse() {
        let (mut a, _) = pair();
        let h1 = a.udp_bind(1000).unwrap();
        a.release(h1);
        let h2 = a.udp_bind(1001).unwrap();
        assert_eq!(h1.0, h2.0, "slot reused");
    }

    #[test]
    fn next_timeout_reflects_tcp_timers() {
        let (mut a, _) = pair();
        assert!(a.next_timeout().is_none());
        let now = SimTime::ZERO;
        let _client = a.tcp_connect(B, 80, now).unwrap();
        a.poll(now); // emits SYN, arms the retransmission timer
        let _ = a.take_packets();
        assert!(a.next_timeout().is_some());
    }
}
