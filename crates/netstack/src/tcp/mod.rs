//! TCP connection state machine (RFC 793) with slow start / AIMD congestion
//! control, fast retransmit and RTO-based recovery.
//!
//! The socket is poll-driven: the owning [`crate::stack::NetStack`] feeds it
//! incoming segments via [`TcpSocket::on_segment`] and periodically calls
//! [`TcpSocket::poll`] to collect segments to transmit. All timing comes from the
//! simulation clock passed in by the caller; the socket never consults wall-clock
//! time.

pub mod congestion;
pub mod rtt;
pub mod seq;

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::net::Ipv4Addr;

use ipop_packet::tcp::{TcpFlags, TcpSegment};
use ipop_simcore::{Duration, SimTime};

use congestion::Congestion;
use rtt::RttEstimator;

/// Connection states (RFC 793 section 3.2).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TcpState {
    /// No connection.
    Closed,
    /// Passive open; only used by listener sockets.
    Listen,
    /// Active open sent a SYN.
    SynSent,
    /// Passive open received a SYN and replied SYN-ACK.
    SynReceived,
    /// Three-way handshake complete.
    Established,
    /// We closed first; FIN sent, awaiting ACK.
    FinWait1,
    /// Our FIN was acknowledged; awaiting the peer's FIN.
    FinWait2,
    /// Peer closed first; we may still send.
    CloseWait,
    /// Both sides closed; our FIN sent after theirs, awaiting its ACK.
    LastAck,
    /// Simultaneous close.
    Closing,
    /// Waiting out 2·MSL before releasing the port.
    TimeWait,
}

/// Tunable parameters for a TCP socket.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per segment).
    pub mss: usize,
    /// Receive buffer capacity in bytes (also the advertised window bound).
    pub recv_buffer: usize,
    /// Send buffer capacity in bytes.
    pub send_buffer: usize,
    /// How long to linger in TIME-WAIT.
    pub time_wait: Duration,
    /// Give up a connection attempt / retransmission after this many RTOs.
    pub max_retries: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1400,
            recv_buffer: 65_535,
            send_buffer: 262_144,
            time_wait: Duration::from_secs(1),
            max_retries: 12,
        }
    }
}

/// A single TCP connection endpoint.
#[derive(Debug)]
pub struct TcpSocket {
    cfg: TcpConfig,
    state: TcpState,
    local_addr: Ipv4Addr,
    local_port: u16,
    remote_addr: Ipv4Addr,
    remote_port: u16,

    // --- send side ---
    iss: u32,
    snd_una: u32,
    snd_nxt: u32,
    snd_wnd: u32,
    /// Bytes from `snd_una` onwards: in-flight first, then unsent.
    send_buf: VecDeque<u8>,
    fin_queued: bool,
    fin_sent: bool,
    fin_seq: u32,
    cong: Congestion,
    rtt: RttEstimator,
    rtx_deadline: Option<SimTime>,
    rtx_count: u32,
    rtt_probe: Option<(u32, SimTime)>,
    dup_acks: u32,
    syn_sent_at: Option<SimTime>,

    // --- receive side ---
    irs: u32,
    rcv_nxt: u32,
    recv_buf: VecDeque<u8>,
    ooo: BTreeMap<u32, Vec<u8>>,
    peer_fin: bool,
    pending_acks: u32,

    time_wait_until: Option<SimTime>,
    reset_by_peer: bool,
}

impl TcpSocket {
    /// A passive listener on `local_port`. It never carries data itself; the stack
    /// derives per-connection sockets from it with [`TcpSocket::accept`].
    pub fn listen(local_addr: Ipv4Addr, local_port: u16, cfg: TcpConfig) -> Self {
        let mut s = Self::raw(local_addr, local_port, Ipv4Addr::UNSPECIFIED, 0, 0, cfg);
        s.state = TcpState::Listen;
        s
    }

    /// An active open towards `remote`, using `iss` as the initial sequence number.
    pub fn connect(
        local_addr: Ipv4Addr,
        local_port: u16,
        remote_addr: Ipv4Addr,
        remote_port: u16,
        iss: u32,
        now: SimTime,
        cfg: TcpConfig,
    ) -> Self {
        let mut s = Self::raw(local_addr, local_port, remote_addr, remote_port, iss, cfg);
        s.state = TcpState::SynSent;
        s.syn_sent_at = Some(now);
        s
    }

    /// A connection derived from a listener that has just received `syn`.
    pub fn accept(
        listener: &TcpSocket,
        peer_addr: Ipv4Addr,
        syn: &TcpSegment,
        iss: u32,
        now: SimTime,
    ) -> Self {
        debug_assert!(syn.flags.syn && !syn.flags.ack);
        let mut cfg = listener.cfg.clone();
        if let Some(mss) = syn.mss {
            cfg.mss = cfg.mss.min(mss as usize);
        }
        let mut s = Self::raw(
            listener.local_addr,
            listener.local_port,
            peer_addr,
            syn.src_port,
            iss,
            cfg,
        );
        s.state = TcpState::SynReceived;
        s.irs = syn.seq;
        s.rcv_nxt = syn.seq.wrapping_add(1);
        s.snd_wnd = u32::from(syn.window);
        s.pending_acks = 1;
        s.syn_sent_at = Some(now);
        s
    }

    fn raw(
        local_addr: Ipv4Addr,
        local_port: u16,
        remote_addr: Ipv4Addr,
        remote_port: u16,
        iss: u32,
        cfg: TcpConfig,
    ) -> Self {
        TcpSocket {
            state: TcpState::Closed,
            local_addr,
            local_port,
            remote_addr,
            remote_port,
            iss,
            snd_una: iss,
            snd_nxt: iss,
            snd_wnd: u32::from(u16::MAX),
            send_buf: VecDeque::new(),
            fin_queued: false,
            fin_sent: false,
            fin_seq: 0,
            cong: Congestion::new(cfg.mss),
            rtt: RttEstimator::new(),
            rtx_deadline: None,
            rtx_count: 0,
            rtt_probe: None,
            dup_acks: 0,
            syn_sent_at: None,
            irs: 0,
            rcv_nxt: 0,
            recv_buf: VecDeque::new(),
            ooo: BTreeMap::new(),
            peer_fin: false,
            pending_acks: 0,
            time_wait_until: None,
            reset_by_peer: false,
            cfg,
        }
    }

    // ----------------------------------------------------------------- accessors

    /// Current connection state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Local (address, port).
    pub fn local(&self) -> (Ipv4Addr, u16) {
        (self.local_addr, self.local_port)
    }

    /// Remote (address, port); unspecified for listeners.
    pub fn remote(&self) -> (Ipv4Addr, u16) {
        (self.remote_addr, self.remote_port)
    }

    /// True once the three-way handshake has completed and the connection has not
    /// yet fully closed.
    pub fn is_established(&self) -> bool {
        matches!(
            self.state,
            TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2 | TcpState::CloseWait
        )
    }

    /// True when the connection is finished (closed, reset or timed out).
    pub fn is_closed(&self) -> bool {
        self.state == TcpState::Closed
    }

    /// True when the peer reset the connection.
    pub fn was_reset(&self) -> bool {
        self.reset_by_peer
    }

    /// Does this segment belong to this connection?
    pub fn matches(&self, peer_addr: Ipv4Addr, seg: &TcpSegment) -> bool {
        self.local_port == seg.dst_port
            && self.remote_port == seg.src_port
            && self.remote_addr == peer_addr
    }

    /// Application-writable space in the send buffer.
    pub fn send_capacity(&self) -> usize {
        if !self.can_send() {
            return 0;
        }
        self.cfg.send_buffer.saturating_sub(self.send_buf.len())
    }

    /// True while the application may still queue data for sending.
    pub fn can_send(&self) -> bool {
        matches!(self.state, TcpState::Established | TcpState::CloseWait) && !self.fin_queued
    }

    /// Bytes queued in the send buffer that have not yet been acknowledged.
    pub fn unacked(&self) -> usize {
        self.send_buf.len()
    }

    /// Bytes available for the application to read.
    pub fn recv_available(&self) -> usize {
        self.recv_buf.len()
    }

    /// True when the peer has closed its direction and everything has been read.
    pub fn recv_finished(&self) -> bool {
        self.peer_fin && self.recv_buf.is_empty() && self.ooo.is_empty()
    }

    /// Queue application data; returns how many bytes were accepted.
    pub fn send(&mut self, data: &[u8]) -> usize {
        let n = self.send_capacity().min(data.len());
        self.send_buf.extend(&data[..n]);
        n
    }

    /// Read up to `max` bytes of in-order received data.
    pub fn recv(&mut self, max: usize) -> Vec<u8> {
        let before = self.recv_window();
        let n = max.min(self.recv_buf.len());
        // Copy out via the deque's slices instead of draining through the
        // byte iterator (this is the ttcp receive hot path).
        let mut data = Vec::with_capacity(n);
        let (a, b) = self.recv_buf.as_slices();
        if n <= a.len() {
            data.extend_from_slice(&a[..n]);
        } else {
            data.extend_from_slice(a);
            data.extend_from_slice(&b[..n - a.len()]);
        }
        self.recv_buf.drain(..n);
        // Reading may reopen a closed (or nearly closed) receive window; advertise
        // it so the peer does not stall waiting for a window update we never send
        // (we implement no persist timer on the sender side).
        if before < self.cfg.mss && self.recv_window() >= self.cfg.mss && self.is_established() {
            self.pending_acks = self.pending_acks.max(1);
        }
        data
    }

    /// Graceful close: a FIN is sent once all queued data has been transmitted.
    pub fn close(&mut self) {
        match self.state {
            TcpState::Closed | TcpState::Listen => self.state = TcpState::Closed,
            TcpState::SynSent => self.state = TcpState::Closed,
            _ => self.fin_queued = true,
        }
    }

    /// Abort: drop all state immediately. The stack emits a RST for us if needed.
    pub fn abort(&mut self) {
        self.state = TcpState::Closed;
        self.send_buf.clear();
        self.recv_buf.clear();
        self.ooo.clear();
    }

    // ------------------------------------------------------------ segment intake

    /// Process an incoming segment addressed to this connection.
    pub fn on_segment(&mut self, now: SimTime, seg: &TcpSegment) {
        if seg.flags.rst {
            if self.state != TcpState::Closed && self.state != TcpState::Listen {
                self.reset_by_peer = true;
                self.state = TcpState::Closed;
            }
            return;
        }
        match self.state {
            TcpState::Closed | TcpState::Listen => {}
            TcpState::SynSent => self.on_segment_syn_sent(now, seg),
            _ => self.on_segment_synchronized(now, seg),
        }
    }

    fn on_segment_syn_sent(&mut self, now: SimTime, seg: &TcpSegment) {
        if !(seg.flags.syn && seg.flags.ack) {
            return;
        }
        if seg.ack != self.iss.wrapping_add(1) {
            return; // not acknowledging our SYN
        }
        if let Some(mss) = seg.mss {
            self.cfg.mss = self.cfg.mss.min(mss as usize);
            self.cong = Congestion::new(self.cfg.mss);
        }
        self.irs = seg.seq;
        self.rcv_nxt = seg.seq.wrapping_add(1);
        self.snd_una = seg.ack;
        self.snd_nxt = seg.ack;
        self.snd_wnd = u32::from(seg.window);
        self.state = TcpState::Established;
        self.pending_acks = 1;
        self.rtx_deadline = None;
        self.rtx_count = 0;
        if let Some(sent) = self.syn_sent_at {
            self.rtt.sample(now.saturating_since(sent));
        }
    }

    fn on_segment_synchronized(&mut self, now: SimTime, seg: &TcpSegment) {
        // --- ACK processing ---
        if seg.flags.ack {
            self.process_ack(now, seg);
        }
        // --- data ---
        if !seg.payload.is_empty() {
            self.process_data(seg.seq, &seg.payload);
        }
        // --- FIN ---
        if seg.flags.fin {
            let fin_seq = seg.seq.wrapping_add(seg.payload.len() as u32);
            if fin_seq == self.rcv_nxt && !self.peer_fin {
                self.peer_fin = true;
                self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                self.pending_acks += 1;
                self.state = match self.state {
                    TcpState::Established => TcpState::CloseWait,
                    TcpState::FinWait1 => TcpState::Closing,
                    TcpState::FinWait2 => {
                        self.time_wait_until = Some(now + self.cfg.time_wait);
                        TcpState::TimeWait
                    }
                    other => other,
                };
            } else if seq::lt(fin_seq, self.rcv_nxt) {
                // Retransmitted FIN we already processed; just re-ACK it.
                self.pending_acks += 1;
            }
        }
    }

    fn process_ack(&mut self, now: SimTime, seg: &TcpSegment) {
        let ack = seg.ack;
        self.snd_wnd = u32::from(seg.window);
        if self.state == TcpState::SynReceived && seq::ge(ack, self.iss.wrapping_add(1)) {
            self.state = TcpState::Established;
            self.snd_una = self.iss.wrapping_add(1);
            self.snd_nxt = self.snd_una;
            self.rtx_deadline = None;
            self.rtx_count = 0;
            if let Some(sent) = self.syn_sent_at {
                self.rtt.sample(now.saturating_since(sent));
            }
        }
        if seq::gt(ack, self.snd_una) && seq::le(ack, self.snd_nxt) {
            let fin_acked = self.fin_sent && ack == self.fin_seq.wrapping_add(1);
            let newly_acked_seq = seq::distance(self.snd_una, ack);
            let data_acked = newly_acked_seq - u32::from(fin_acked);
            // Drop acknowledged bytes from the front of the send buffer.
            let drop = (data_acked as usize).min(self.send_buf.len());
            self.send_buf.drain(..drop);
            self.snd_una = ack;
            self.dup_acks = 0;
            self.cong.on_ack(data_acked as usize, self.snd_una);
            // RTT sample.
            if let Some((probe_seq, sent_at)) = self.rtt_probe {
                if seq::ge(ack, probe_seq) {
                    self.rtt.sample(now.saturating_since(sent_at));
                    self.rtt_probe = None;
                }
            }
            // Restart or stop the retransmission timer.
            self.rtx_count = 0;
            let fin_outstanding = self.fin_sent && !fin_acked;
            if self.bytes_in_flight() == 0 && !fin_outstanding {
                self.rtx_deadline = None;
            } else {
                self.rtx_deadline = Some(now + self.rtt.rto());
            }
            if fin_acked {
                self.state = match self.state {
                    TcpState::FinWait1 => TcpState::FinWait2,
                    TcpState::Closing => {
                        self.time_wait_until = Some(now + self.cfg.time_wait);
                        TcpState::TimeWait
                    }
                    TcpState::LastAck => TcpState::Closed,
                    other => other,
                };
            }
        } else if ack == self.snd_una
            && seg.payload.is_empty()
            && !seg.flags.syn
            && !seg.flags.fin
            && self.bytes_in_flight() > 0
        {
            // Duplicate ACK.
            self.dup_acks += 1;
            if self.dup_acks == 3 && self.cong.on_fast_retransmit(self.snd_nxt) {
                // Go back to the lost segment: rewind snd_nxt so poll() resends it.
                self.snd_nxt = self.snd_una;
                if self.fin_sent {
                    self.fin_sent = false;
                }
                self.rtt_probe = None;
            }
        }
    }

    fn process_data(&mut self, seq_no: u32, payload: &[u8]) {
        // One ACK per received data segment: cumulative when in order, duplicate
        // when out of order (this is what drives the peer's fast retransmit).
        self.pending_acks = (self.pending_acks + 1).min(64);
        let window_end = self.rcv_nxt.wrapping_add(self.recv_window() as u32);
        // Drop data entirely outside the window.
        let seg_end = seq_no.wrapping_add(payload.len() as u32);
        if seq::le(seg_end, self.rcv_nxt) || seq::ge(seq_no, window_end) {
            return;
        }
        // Trim any portion below rcv_nxt (partial retransmission overlap).
        let (start_seq, data) = if seq::lt(seq_no, self.rcv_nxt) {
            let skip = seq::distance(seq_no, self.rcv_nxt) as usize;
            (self.rcv_nxt, &payload[skip.min(payload.len())..])
        } else {
            (seq_no, payload)
        };
        if data.is_empty() {
            return;
        }
        if start_seq == self.rcv_nxt {
            let room = self.recv_window();
            let take = room.min(data.len());
            self.recv_buf.extend(&data[..take]);
            self.rcv_nxt = self.rcv_nxt.wrapping_add(take as u32);
            self.drain_out_of_order();
        } else {
            // Out of order: stash for later (bounded by window, coarse-grained).
            self.ooo.entry(start_seq).or_insert_with(|| data.to_vec());
        }
    }

    fn drain_out_of_order(&mut self) {
        while let Some((&seq_no, _)) = self.ooo.iter().next() {
            if seq::gt(seq_no, self.rcv_nxt) {
                break;
            }
            let (_, data) = self.ooo.remove_entry(&seq_no).unwrap();
            if seq::lt(seq_no, self.rcv_nxt) {
                let skip = seq::distance(seq_no, self.rcv_nxt) as usize;
                if skip >= data.len() {
                    continue;
                }
                let take = (data.len() - skip).min(self.recv_window());
                self.recv_buf.extend(&data[skip..skip + take]);
                self.rcv_nxt = self.rcv_nxt.wrapping_add(take as u32);
            } else {
                let take = data.len().min(self.recv_window());
                self.recv_buf.extend(&data[..take]);
                self.rcv_nxt = self.rcv_nxt.wrapping_add(take as u32);
            }
        }
    }

    // ------------------------------------------------------------------ polling

    /// Collect segments this socket wants to transmit at `now`.
    pub fn poll(&mut self, now: SimTime) -> Vec<TcpSegment> {
        let mut out = Vec::new();
        // TIME-WAIT expiry.
        if self.state == TcpState::TimeWait {
            if let Some(t) = self.time_wait_until {
                if now >= t {
                    self.state = TcpState::Closed;
                    self.time_wait_until = None;
                    self.rtx_deadline = None;
                }
            }
        }
        // Retransmission timeout.
        if let Some(deadline) = self.rtx_deadline {
            if now >= deadline {
                self.on_rto(now);
            }
        }
        match self.state {
            TcpState::SynSent if self.rtx_deadline.is_none() => {
                out.push(self.make_syn(false));
                self.arm_rtx(now);
            }
            TcpState::SynReceived if self.rtx_deadline.is_none() => {
                out.push(self.make_syn(true));
                self.arm_rtx(now);
            }
            TcpState::Established
            | TcpState::CloseWait
            | TcpState::FinWait1
            | TcpState::Closing
            | TcpState::LastAck => {
                self.emit_data(now, &mut out);
                self.maybe_emit_fin(now, &mut out);
            }
            _ => {}
        }
        if self.pending_acks > 0 && out.is_empty() && self.state != TcpState::Closed {
            for _ in 0..self.pending_acks {
                out.push(self.make_ack());
            }
        }
        if !out.is_empty() {
            self.pending_acks = 0;
        }
        out
    }

    /// The earliest virtual time at which this socket needs to be polled again for
    /// timer processing, if any.
    pub fn next_timeout(&self) -> Option<SimTime> {
        // A finished socket has no future work: reporting a stale deadline here
        // would make the owning agent re-arm an immediate wakeup forever.
        if matches!(self.state, TcpState::Closed | TcpState::Listen) {
            return None;
        }
        let mut t = self.rtx_deadline;
        if let Some(tw) = self.time_wait_until {
            t = Some(t.map_or(tw, |x| x.min(tw)));
        }
        t
    }

    /// True if the socket has segments it could emit right now (data within the
    /// window, pending ACK or pending SYN/FIN).
    pub fn wants_poll(&self) -> bool {
        if self.pending_acks > 0 {
            return true;
        }
        match self.state {
            TcpState::SynSent | TcpState::SynReceived => self.rtx_deadline.is_none(),
            TcpState::Established
            | TcpState::CloseWait
            | TcpState::FinWait1
            | TcpState::Closing
            | TcpState::LastAck => self.sendable_bytes() > 0 || (self.fin_queued && !self.fin_sent),
            _ => false,
        }
    }

    fn bytes_in_flight(&self) -> usize {
        // The FIN occupies sequence space until it is acknowledged; once snd_una has
        // advanced past it, the distance no longer includes it.
        let fin_unacked = self.fin_sent && seq::le(self.snd_una, self.fin_seq);
        (seq::distance(self.snd_una, self.snd_nxt) as usize)
            .saturating_sub(usize::from(fin_unacked))
    }

    fn sendable_bytes(&self) -> usize {
        let in_flight = self.bytes_in_flight();
        let unsent = self.send_buf.len().saturating_sub(in_flight);
        let window = self.effective_window().saturating_sub(in_flight);
        unsent.min(window)
    }

    fn effective_window(&self) -> usize {
        (self.snd_wnd as usize).min(self.cong.window())
    }

    fn recv_window(&self) -> usize {
        self.cfg.recv_buffer.saturating_sub(self.recv_buf.len())
    }

    fn emit_data(&mut self, now: SimTime, out: &mut Vec<TcpSegment>) {
        loop {
            let in_flight = self.bytes_in_flight();
            let window = self.effective_window();
            if in_flight >= window {
                break;
            }
            let unsent_offset = in_flight;
            let available = self.send_buf.len().saturating_sub(unsent_offset);
            if available == 0 {
                break;
            }
            let len = available.min(self.cfg.mss).min(window - in_flight);
            if len == 0 {
                break;
            }
            // VecDeque::range gives O(1) access to the unsent region; an
            // iterator-skip here would rescan the buffer and make large transfers
            // quadratic in the send-buffer size.
            let payload: Vec<u8> = self
                .send_buf
                .range(unsent_offset..unsent_offset + len)
                .copied()
                .collect();
            let seg = TcpSegment {
                src_port: self.local_port,
                dst_port: self.remote_port,
                seq: self.snd_nxt,
                ack: self.rcv_nxt,
                flags: TcpFlags::ACK,
                window: self.recv_window().min(u16::MAX as usize) as u16,
                mss: None,
                payload,
            };
            if self.rtt_probe.is_none() {
                self.rtt_probe = Some((self.snd_nxt.wrapping_add(len as u32), now));
            }
            self.snd_nxt = self.snd_nxt.wrapping_add(len as u32);
            out.push(seg);
            if self.rtx_deadline.is_none() {
                self.arm_rtx(now);
            }
        }
    }

    fn maybe_emit_fin(&mut self, now: SimTime, out: &mut Vec<TcpSegment>) {
        let all_data_sent = self.bytes_in_flight() >= self.send_buf.len();
        if self.fin_queued && !self.fin_sent && all_data_sent {
            let seg = TcpSegment {
                src_port: self.local_port,
                dst_port: self.remote_port,
                seq: self.snd_nxt,
                ack: self.rcv_nxt,
                flags: TcpFlags::FIN_ACK,
                window: self.recv_window().min(u16::MAX as usize) as u16,
                mss: None,
                payload: Vec::new(),
            };
            self.fin_seq = self.snd_nxt;
            self.snd_nxt = self.snd_nxt.wrapping_add(1);
            self.fin_sent = true;
            out.push(seg);
            if self.rtx_deadline.is_none() {
                self.arm_rtx(now);
            }
            self.state = match self.state {
                TcpState::Established => TcpState::FinWait1,
                TcpState::CloseWait => TcpState::LastAck,
                other => other,
            };
        }
    }

    fn make_syn(&self, ack: bool) -> TcpSegment {
        TcpSegment {
            src_port: self.local_port,
            dst_port: self.remote_port,
            seq: self.iss,
            ack: if ack { self.rcv_nxt } else { 0 },
            flags: if ack {
                TcpFlags::SYN_ACK
            } else {
                TcpFlags::SYN
            },
            window: self.recv_window().min(u16::MAX as usize) as u16,
            mss: Some(self.cfg.mss as u16),
            payload: Vec::new(),
        }
    }

    fn make_ack(&self) -> TcpSegment {
        TcpSegment::ack(
            self.local_port,
            self.remote_port,
            self.snd_nxt,
            self.rcv_nxt,
            self.recv_window().min(u16::MAX as usize) as u16,
        )
    }

    fn arm_rtx(&mut self, now: SimTime) {
        self.rtx_deadline = Some(now + self.rtt.rto());
    }

    fn on_rto(&mut self, now: SimTime) {
        self.rtx_deadline = None;
        match self.state {
            TcpState::SynSent | TcpState::SynReceived => {
                self.rtx_count += 1;
                if self.rtx_count > self.cfg.max_retries {
                    self.state = TcpState::Closed;
                    return;
                }
                self.rtt.backoff();
                // poll() will resend the SYN because rtx_deadline is now None.
            }
            TcpState::Established
            | TcpState::CloseWait
            | TcpState::FinWait1
            | TcpState::Closing
            | TcpState::LastAck => {
                if self.bytes_in_flight() == 0 && !self.fin_sent {
                    return;
                }
                self.rtx_count += 1;
                if self.rtx_count > self.cfg.max_retries {
                    self.state = TcpState::Closed;
                    return;
                }
                self.rtt.backoff();
                self.cong.on_timeout();
                // Go-back-N: rewind to the first unacknowledged byte.
                self.snd_nxt = self.snd_una;
                if self.fin_sent {
                    self.fin_sent = false;
                }
                self.rtt_probe = None;
                let _ = now;
            }
            _ => {}
        }
    }

    /// Build a RST segment answering an unexpected segment (stack-level helper).
    pub fn rst_for(local_port: u16, seg: &TcpSegment) -> TcpSegment {
        TcpSegment {
            src_port: local_port,
            dst_port: seg.src_port,
            seq: if seg.flags.ack { seg.ack } else { 0 },
            ack: seg.seq.wrapping_add(seg.seq_len()),
            flags: TcpFlags::RST,
            window: 0,
            mss: None,
            payload: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    /// Shuttle segments between two sockets until neither has anything to say,
    /// advancing a fake clock by `step` per exchange.
    fn pump(a: &mut TcpSocket, b: &mut TcpSocket, now: &mut SimTime, step: Duration) {
        for _ in 0..10_000 {
            let from_a = a.poll(*now);
            let from_b = b.poll(*now);
            if from_a.is_empty() && from_b.is_empty() {
                break;
            }
            *now += step;
            for seg in from_a {
                b.on_segment(*now, &seg);
            }
            for seg in from_b {
                a.on_segment(*now, &seg);
            }
        }
    }

    fn established_pair(now: &mut SimTime) -> (TcpSocket, TcpSocket) {
        let listener = TcpSocket::listen(B, 80, TcpConfig::default());
        let mut client = TcpSocket::connect(A, 40_000, B, 80, 1_000, *now, TcpConfig::default());
        // Client emits SYN.
        let syn = client.poll(*now).pop().expect("syn");
        assert!(syn.flags.syn && !syn.flags.ack);
        let mut server = TcpSocket::accept(&listener, A, &syn, 9_000, *now);
        pump(&mut client, &mut server, now, Duration::from_millis(1));
        assert_eq!(client.state(), TcpState::Established);
        assert_eq!(server.state(), TcpState::Established);
        (client, server)
    }

    #[test]
    fn three_way_handshake() {
        let mut now = SimTime::ZERO;
        let (c, s) = established_pair(&mut now);
        assert!(c.is_established());
        assert!(s.is_established());
    }

    #[test]
    fn data_transfer_both_directions() {
        let mut now = SimTime::ZERO;
        let (mut c, mut s) = established_pair(&mut now);
        let msg = vec![0x41u8; 10_000];
        assert_eq!(c.send(&msg), msg.len());
        let reply = b"pong".to_vec();
        assert_eq!(s.send(&reply), 4);
        pump(&mut c, &mut s, &mut now, Duration::from_millis(1));
        assert_eq!(s.recv_available(), 10_000);
        assert_eq!(s.recv(20_000), msg);
        assert_eq!(c.recv(100), reply);
    }

    #[test]
    fn large_transfer_respects_mss_and_delivers_in_order() {
        let mut now = SimTime::ZERO;
        let (mut c, mut s) = established_pair(&mut now);
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let mut sent = 0;
        let mut received = Vec::new();
        while received.len() < data.len() {
            if sent < data.len() {
                sent += c.send(&data[sent..]);
            }
            pump(&mut c, &mut s, &mut now, Duration::from_micros(100));
            received.extend(s.recv(usize::MAX));
        }
        assert_eq!(received, data);
    }

    #[test]
    fn graceful_close_reaches_closed_on_both_sides() {
        let mut now = SimTime::ZERO;
        let (mut c, mut s) = established_pair(&mut now);
        c.send(b"bye");
        c.close();
        pump(&mut c, &mut s, &mut now, Duration::from_millis(1));
        assert_eq!(s.recv(10), b"bye");
        assert!(s.recv_finished());
        s.close();
        pump(&mut c, &mut s, &mut now, Duration::from_millis(1));
        // Client is in TIME-WAIT; let it expire.
        now += Duration::from_secs(2);
        c.poll(now);
        assert_eq!(s.state(), TcpState::Closed);
        assert_eq!(c.state(), TcpState::Closed);
    }

    #[test]
    fn retransmission_recovers_from_loss() {
        let mut now = SimTime::ZERO;
        let (mut c, mut s) = established_pair(&mut now);
        c.send(&vec![7u8; 5_000]);
        // Drop everything the client sends the first time round.
        let lost = c.poll(now);
        assert!(!lost.is_empty());
        // Let the RTO fire.
        now += Duration::from_secs(2);
        pump(&mut c, &mut s, &mut now, Duration::from_millis(1));
        assert_eq!(s.recv(10_000).len(), 5_000);
    }

    #[test]
    fn out_of_order_segments_are_reassembled() {
        let mut now = SimTime::ZERO;
        let (mut c, mut s) = established_pair(&mut now);
        c.send(&(0..4200u32).map(|i| (i % 256) as u8).collect::<Vec<_>>());
        let segs = c.poll(now);
        assert!(segs.len() >= 3, "expected multiple MSS-sized segments");
        // Deliver in reverse order.
        for seg in segs.iter().rev() {
            s.on_segment(now, seg);
        }
        pump(&mut c, &mut s, &mut now, Duration::from_millis(1));
        let got = s.recv(usize::MAX);
        assert_eq!(
            got,
            (0..4200u32).map(|i| (i % 256) as u8).collect::<Vec<_>>()
        );
    }

    #[test]
    fn reset_closes_connection() {
        let mut now = SimTime::ZERO;
        let (mut c, s) = established_pair(&mut now);
        let rst = TcpSegment {
            src_port: 80,
            dst_port: 40_000,
            seq: 0,
            ack: 0,
            flags: TcpFlags::RST,
            window: 0,
            mss: None,
            payload: vec![],
        };
        c.on_segment(now, &rst);
        assert!(c.is_closed());
        assert!(c.was_reset());
        assert!(!s.is_closed());
    }

    #[test]
    fn connect_times_out_without_peer() {
        let now0 = SimTime::ZERO;
        let mut c = TcpSocket::connect(
            A,
            1,
            B,
            2,
            55,
            now0,
            TcpConfig {
                max_retries: 3,
                ..TcpConfig::default()
            },
        );
        let mut now = now0;
        for _ in 0..200 {
            now += Duration::from_secs(5);
            c.poll(now);
            if c.is_closed() {
                break;
            }
        }
        assert!(c.is_closed());
    }

    #[test]
    fn send_respects_buffer_capacity() {
        let mut now = SimTime::ZERO;
        let (mut c, _s) = established_pair(&mut now);
        let huge = vec![0u8; 10_000_000];
        let accepted = c.send(&huge);
        assert!(accepted <= TcpConfig::default().send_buffer);
        assert_eq!(
            c.send_capacity(),
            TcpConfig::default().send_buffer - accepted
        );
    }

    #[test]
    fn listener_does_not_emit_segments() {
        let mut l = TcpSocket::listen(B, 80, TcpConfig::default());
        assert!(l.poll(SimTime::ZERO).is_empty());
        assert_eq!(l.state(), TcpState::Listen);
    }

    #[test]
    fn fast_retransmit_on_dup_acks() {
        let mut now = SimTime::ZERO;
        let (mut c, mut s) = established_pair(&mut now);
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 256) as u8).collect();
        c.send(&data);
        let mut segs = c.poll(now);
        assert!(segs.len() >= 4);
        // Lose the first segment; deliver the rest, generating dup ACKs.
        segs.remove(0);
        for seg in &segs {
            s.on_segment(now, seg);
        }
        // Server acks (all duplicates of rcv_nxt), client should fast-retransmit
        // without waiting for a full RTO.
        pump(&mut c, &mut s, &mut now, Duration::from_millis(1));
        assert!(
            now.saturating_since(SimTime::ZERO) < Duration::from_millis(900),
            "recovered via fast retransmit, not RTO (took {now})"
        );
        let got = s.recv(usize::MAX);
        assert_eq!(got.len(), 20_000.min(data.len()));
    }
}
