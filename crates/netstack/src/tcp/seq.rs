//! Modular (wrapping) sequence-number arithmetic, RFC 793 style.
//!
//! All comparisons are made modulo 2^32 under the assumption that the two values
//! being compared are within half the sequence space of each other — true for any
//! realistic window size.

/// `a < b` in sequence space.
pub fn lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// `a <= b` in sequence space.
pub fn le(a: u32, b: u32) -> bool {
    a == b || lt(a, b)
}

/// `a > b` in sequence space.
pub fn gt(a: u32, b: u32) -> bool {
    lt(b, a)
}

/// `a >= b` in sequence space.
pub fn ge(a: u32, b: u32) -> bool {
    le(b, a)
}

/// `lo <= x < hi` in sequence space.
pub fn in_range(x: u32, lo: u32, hi: u32) -> bool {
    ge(x, lo) && lt(x, hi)
}

/// The distance from `a` forward to `b` (i.e. `b - a` mod 2^32).
pub fn distance(a: u32, b: u32) -> u32 {
    b.wrapping_sub(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_ordering() {
        assert!(lt(1, 2));
        assert!(!lt(2, 1));
        assert!(le(2, 2));
        assert!(gt(5, 3));
        assert!(ge(5, 5));
    }

    #[test]
    fn wraparound_ordering() {
        let near_max = u32::MAX - 10;
        let wrapped = 5u32;
        assert!(lt(near_max, wrapped));
        assert!(gt(wrapped, near_max));
        assert!(le(near_max, wrapped));
        assert!(ge(wrapped, near_max));
    }

    #[test]
    fn range_checks() {
        assert!(in_range(5, 5, 10));
        assert!(in_range(9, 5, 10));
        assert!(!in_range(10, 5, 10));
        // Range spanning the wrap point.
        assert!(in_range(u32::MAX, u32::MAX - 2, 3));
        assert!(in_range(1, u32::MAX - 2, 3));
        assert!(!in_range(4, u32::MAX - 2, 3));
    }

    #[test]
    fn distances() {
        assert_eq!(distance(10, 15), 5);
        assert_eq!(distance(u32::MAX, 4), 5);
        assert_eq!(distance(7, 7), 0);
    }
}
