//! RTT estimation and retransmission timeout (RFC 6298).

use ipop_simcore::Duration;

/// Smoothed RTT estimator producing the retransmission timeout.
#[derive(Clone, Debug)]
pub struct RttEstimator {
    srtt: Option<Duration>,
    rttvar: Duration,
    rto: Duration,
    min_rto: Duration,
    max_rto: Duration,
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl RttEstimator {
    /// A fresh estimator with the conventional 1 s initial RTO, clamped to
    /// [200 ms, 60 s].
    pub fn new() -> Self {
        RttEstimator {
            srtt: None,
            rttvar: Duration::ZERO,
            rto: Duration::from_secs(1),
            min_rto: Duration::from_millis(200),
            max_rto: Duration::from_secs(60),
        }
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> Duration {
        self.rto
    }

    /// Smoothed RTT, if at least one sample has been taken.
    pub fn srtt(&self) -> Option<Duration> {
        self.srtt
    }

    /// Incorporate a new RTT sample (from a segment that was not retransmitted).
    pub fn sample(&mut self, rtt: Duration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // RFC 6298: rttvar = 3/4 rttvar + 1/4 |srtt - rtt|; srtt = 7/8 srtt + 1/8 rtt
                let diff = if srtt >= rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar =
                    Duration::from_nanos((self.rttvar.as_nanos() * 3 + diff.as_nanos()) / 4);
                self.srtt = Some(Duration::from_nanos(
                    (srtt.as_nanos() * 7 + rtt.as_nanos()) / 8,
                ));
            }
        }
        let srtt = self.srtt.unwrap();
        let var_term = self.rttvar * 4;
        let candidate = srtt + var_term.max(Duration::from_millis(10));
        self.rto = candidate.max(self.min_rto).min(self.max_rto);
    }

    /// Exponential backoff after a retransmission timeout fires.
    pub fn backoff(&mut self) {
        self.rto = (self.rto * 2).min(self.max_rto);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::new();
        assert_eq!(e.rto(), Duration::from_secs(1));
        e.sample(Duration::from_millis(100));
        assert_eq!(e.srtt(), Some(Duration::from_millis(100)));
        // RTO = srtt + 4*rttvar = 100 + 200 = 300ms
        assert_eq!(e.rto(), Duration::from_millis(300));
    }

    #[test]
    fn smooths_towards_samples() {
        let mut e = RttEstimator::new();
        e.sample(Duration::from_millis(100));
        for _ in 0..50 {
            e.sample(Duration::from_millis(10));
        }
        let srtt = e.srtt().unwrap();
        assert!(srtt < Duration::from_millis(15), "srtt {srtt}");
        assert!(e.rto() >= Duration::from_millis(200), "min RTO clamp");
    }

    #[test]
    fn stable_rtt_gives_tight_rto() {
        let mut e = RttEstimator::new();
        for _ in 0..100 {
            e.sample(Duration::from_millis(40));
        }
        // Variance decays towards zero, RTO approaches srtt + max(4*var, 10ms) >= 200ms floor
        assert_eq!(e.srtt(), Some(Duration::from_millis(40)));
        assert!(e.rto() <= Duration::from_millis(250));
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let mut e = RttEstimator::new();
        e.sample(Duration::from_millis(100));
        let r0 = e.rto();
        e.backoff();
        assert_eq!(e.rto(), r0 * 2);
        for _ in 0..20 {
            e.backoff();
        }
        assert_eq!(e.rto(), Duration::from_secs(60));
    }
}
