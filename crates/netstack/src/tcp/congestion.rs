//! TCP congestion control: slow start, congestion avoidance, fast retransmit /
//! fast recovery (NewReno-flavoured, RFC 5681).
//!
//! The congestion window is what shapes the throughput comparisons in the paper's
//! Tables II and III: when the virtual-network TCP runs on top of a Brunet-TCP
//! overlay link, losses and delays on the physical connection stall the inner
//! connection's window growth (TCP-over-TCP), which is why IPOP-TCP achieves a
//! smaller fraction of the physical bandwidth than IPOP-UDP.

/// Congestion-control state for one connection.
#[derive(Clone, Debug)]
pub struct Congestion {
    cwnd: f64,
    ssthresh: f64,
    mss: f64,
    in_recovery: bool,
    recovery_point: u32,
}

impl Congestion {
    /// Initial window per RFC 6928 (min(10·MSS, 14600 B) simplified to 4·MSS to
    /// stay closer to the 2006-era stacks the paper measured).
    pub fn new(mss: usize) -> Self {
        let mss = mss as f64;
        Congestion {
            cwnd: 4.0 * mss,
            ssthresh: f64::INFINITY,
            mss,
            in_recovery: false,
            recovery_point: 0,
        }
    }

    /// Current congestion window in bytes.
    pub fn window(&self) -> usize {
        self.cwnd.max(self.mss) as usize
    }

    /// Current slow-start threshold in bytes (`usize::MAX` when still unbounded).
    pub fn ssthresh(&self) -> usize {
        if self.ssthresh.is_finite() {
            self.ssthresh as usize
        } else {
            usize::MAX
        }
    }

    /// True while recovering from a fast retransmit.
    pub fn in_recovery(&self) -> bool {
        self.in_recovery
    }

    /// In slow start (below ssthresh)?
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// New data acknowledged: grow the window.
    ///
    /// `acked` is the number of bytes newly acknowledged, `snd_una` the new lowest
    /// unacknowledged sequence number (used to detect the end of fast recovery).
    pub fn on_ack(&mut self, acked: usize, snd_una: u32) {
        if self.in_recovery {
            if super::seq::ge(snd_una, self.recovery_point) {
                // Full ACK: leave recovery with the deflated window; normal
                // growth resumes with the next ACK (RFC 6582 §3.2 step 1).
                self.in_recovery = false;
                self.cwnd = self.ssthresh;
                return;
            } else {
                // Partial ACK: stay in recovery, keep the window steady.
                return;
            }
        }
        if self.in_slow_start() {
            self.cwnd += acked as f64;
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh;
            }
        } else {
            // Congestion avoidance: roughly one MSS per RTT.
            self.cwnd += self.mss * self.mss / self.cwnd;
        }
    }

    /// Three duplicate ACKs observed: fast retransmit. `snd_nxt` is the highest
    /// sequence sent, recorded as the recovery point. Returns `true` if this
    /// transition entered recovery (caller should retransmit the lost segment).
    pub fn on_fast_retransmit(&mut self, snd_nxt: u32) -> bool {
        if self.in_recovery {
            return false;
        }
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.mss);
        self.cwnd = self.ssthresh + 3.0 * self.mss;
        self.in_recovery = true;
        self.recovery_point = snd_nxt;
        true
    }

    /// Retransmission timeout fired: collapse to one MSS and restart slow start.
    pub fn on_timeout(&mut self) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.mss);
        self.cwnd = self.mss;
        self.in_recovery = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: usize = 1460;

    #[test]
    fn starts_in_slow_start_with_small_window() {
        let c = Congestion::new(MSS);
        assert!(c.in_slow_start());
        assert_eq!(c.window(), 4 * MSS);
        assert_eq!(c.ssthresh(), usize::MAX);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut c = Congestion::new(MSS);
        let w0 = c.window();
        // Acknowledge a full window worth of data (one RTT).
        c.on_ack(w0, 1_000);
        assert_eq!(c.window(), 2 * w0);
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        let mut c = Congestion::new(MSS);
        c.on_timeout(); // ssthresh = 2*MSS, cwnd = MSS
        c.on_ack(MSS, 10); // slow start up to ssthresh
        assert!(!c.in_slow_start());
        let w = c.window();
        // One full window of ACKs grows cwnd by about one MSS.
        let mut acked = 0;
        while acked < w {
            c.on_ack(MSS, 20);
            acked += MSS;
        }
        let grown = c.window() as i64 - w as i64;
        assert!(
            (grown - MSS as i64).abs() < MSS as i64 / 2,
            "grew by {grown}"
        );
    }

    #[test]
    fn fast_retransmit_halves_window() {
        let mut c = Congestion::new(MSS);
        for _ in 0..10 {
            c.on_ack(c.window(), 100); // grow a lot
        }
        let before = c.window();
        assert!(c.on_fast_retransmit(5_000));
        assert!(c.in_recovery());
        assert!(c.ssthresh() >= before / 2 - MSS && c.ssthresh() <= before / 2 + MSS);
        // Second signal while recovering is ignored.
        assert!(!c.on_fast_retransmit(5_000));
    }

    #[test]
    fn recovery_exits_on_full_ack() {
        let mut c = Congestion::new(MSS);
        for _ in 0..6 {
            c.on_ack(c.window(), 100);
        }
        c.on_fast_retransmit(9_000);
        let ssthresh = c.ssthresh();
        // Partial ACK keeps us in recovery.
        c.on_ack(MSS, 8_000);
        assert!(c.in_recovery());
        // Full ACK past the recovery point deflates to ssthresh.
        c.on_ack(MSS, 9_001);
        assert!(!c.in_recovery());
        assert_eq!(c.window(), ssthresh);
    }

    #[test]
    fn timeout_collapses_to_one_mss() {
        let mut c = Congestion::new(MSS);
        for _ in 0..6 {
            c.on_ack(c.window(), 100);
        }
        c.on_timeout();
        assert_eq!(c.window(), MSS);
        assert!(c.in_slow_start());
    }

    #[test]
    fn window_never_below_one_mss() {
        let mut c = Congestion::new(MSS);
        c.on_timeout();
        c.on_timeout();
        assert!(c.window() >= MSS);
    }
}
