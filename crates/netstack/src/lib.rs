//! A from-scratch host TCP/IP stack used on both sides of the IPOP tap device.
//!
//! The stack provides:
//!
//! * [`stack::NetStack`] — a poll-driven single-interface IPv4 host with UDP, TCP
//!   and ICMP-echo sockets. Brunet's transports run on an instance attached to the
//!   physical interface; unmodified applications run on a second instance attached
//!   to the virtual tap interface, exactly mirroring the double stack traversal the
//!   paper identifies as IPOP's main per-packet cost.
//! * [`tcp`] — the TCP state machine: three-way handshake, sliding window,
//!   retransmission, slow start / AIMD congestion control and fast retransmit.
//! * [`tap::TapDevice`] and [`eth::EthAdapter`] — the frame-level plumbing between
//!   the virtual stack and the user-level IPOP node, including the static-ARP
//!   "non-existent gateway" trick that keeps ARP contained inside the host.

pub mod eth;
pub mod socket;
pub mod stack;
pub mod tap;
pub mod tcp;

pub use eth::{ArpTable, EthAdapter, EthCounters};
pub use socket::{EchoReply, SocketHandle, UdpMessage};
pub use stack::{NetStack, StackConfig, StackCounters, StackError};
pub use tap::{TapCounters, TapDevice};
pub use tcp::{TcpConfig, TcpState};
