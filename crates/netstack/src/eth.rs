//! The Ethernet/ARP adaptation layer between a [`crate::stack::NetStack`] and a
//! frame-level device (the tap interface).
//!
//! IPOP's host configuration (paper Section III-A) gives every virtual interface a
//! route for the whole virtual address space via a *non-existent gateway* plus a
//! static ARP entry mapping that gateway to a fabricated MAC address. The effect is
//! that the kernel emits only IP frames addressed to the gateway MAC — ARP never
//! needs to leave the host — and IPOP can treat every frame read from the tap as
//! "an IP packet for the overlay". This module reproduces exactly that behaviour
//! and also implements ordinary dynamic ARP so tests can show the containment is a
//! configuration choice, not a simulator shortcut.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use ipop_packet::arp::{ArpOperation, ArpPacket};
use ipop_packet::ether::{EthernetFrame, FramePayload, MacAddr};
use ipop_packet::ipv4::Ipv4Packet;

/// An ARP cache with optional static entries.
#[derive(Debug, Default)]
pub struct ArpTable {
    entries: BTreeMap<Ipv4Addr, MacAddr>,
}

impl ArpTable {
    /// An empty table.
    pub fn new() -> Self {
        ArpTable {
            entries: BTreeMap::new(),
        }
    }

    /// Insert or replace an entry.
    pub fn insert(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.entries.insert(ip, mac);
    }

    /// Look up the MAC for an IP.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<MacAddr> {
        self.entries.get(&ip).copied()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Counters for the adapter.
#[derive(Clone, Copy, Debug, Default)]
pub struct EthCounters {
    /// ARP requests emitted by this host.
    pub arp_requests_sent: u64,
    /// ARP replies emitted by this host.
    pub arp_replies_sent: u64,
    /// ARP packets received.
    pub arp_received: u64,
    /// IPv4 packets delivered up to the stack.
    pub ipv4_delivered: u64,
    /// Frames ignored (wrong destination MAC, unknown EtherType).
    pub ignored: u64,
}

/// Glue between an IP stack and an Ethernet device.
#[derive(Debug)]
pub struct EthAdapter {
    mac: MacAddr,
    ip: Ipv4Addr,
    /// Next-hop gateway for every destination ("via gateway" route). `None` means
    /// destinations are resolved on-link.
    gateway: Option<Ipv4Addr>,
    arp: ArpTable,
    /// Packets waiting for ARP resolution, keyed by next-hop.
    pending: Vec<(Ipv4Addr, Ipv4Packet)>,
    counters: EthCounters,
}

impl EthAdapter {
    /// An adapter for interface `mac`/`ip` resolving destinations on-link.
    pub fn new(mac: MacAddr, ip: Ipv4Addr) -> Self {
        EthAdapter {
            mac,
            ip,
            gateway: None,
            arp: ArpTable::new(),
            pending: Vec::new(),
            counters: EthCounters::default(),
        }
    }

    /// IPOP-style configuration: route everything via `gateway_ip` and install a
    /// static ARP entry for it, so no ARP request ever leaves the host.
    pub fn with_static_gateway(
        mac: MacAddr,
        ip: Ipv4Addr,
        gateway_ip: Ipv4Addr,
        gateway_mac: MacAddr,
    ) -> Self {
        let mut a = Self::new(mac, ip);
        a.gateway = Some(gateway_ip);
        a.arp.insert(gateway_ip, gateway_mac);
        a
    }

    /// The interface MAC.
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// The interface IP.
    pub fn ip(&self) -> Ipv4Addr {
        self.ip
    }

    /// Counter snapshot.
    pub fn counters(&self) -> EthCounters {
        self.counters
    }

    /// Read-only view of the ARP table.
    pub fn arp_table(&self) -> &ArpTable {
        &self.arp
    }

    /// Add a static ARP entry.
    pub fn add_static_arp(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.arp.insert(ip, mac);
    }

    fn next_hop(&self, dst: Ipv4Addr) -> Ipv4Addr {
        self.gateway.unwrap_or(dst)
    }

    /// Encapsulate an outgoing IP packet into frames. If the next hop's MAC is
    /// unknown, an ARP request frame is produced instead and the packet is parked
    /// until the reply arrives.
    pub fn encapsulate(&mut self, pkt: Ipv4Packet) -> Vec<EthernetFrame> {
        let hop = self.next_hop(pkt.dst());
        match self.arp.lookup(hop) {
            Some(mac) => vec![EthernetFrame::ipv4(self.mac, mac, pkt)],
            None => {
                self.pending.push((hop, pkt));
                self.counters.arp_requests_sent += 1;
                vec![EthernetFrame::arp(
                    self.mac,
                    MacAddr::BROADCAST,
                    ArpPacket::request(self.mac, self.ip, hop),
                )]
            }
        }
    }

    /// Process a frame received from the device. Returns the IP packets to hand to
    /// the stack and any frames to transmit in response (ARP replies, packets that
    /// were waiting for resolution).
    pub fn process_frame(&mut self, frame: EthernetFrame) -> (Vec<Ipv4Packet>, Vec<EthernetFrame>) {
        let mut up = Vec::new();
        let mut out = Vec::new();
        let for_us = frame.dst == self.mac || frame.dst.is_broadcast();
        if !for_us {
            self.counters.ignored += 1;
            return (up, out);
        }
        match frame.payload {
            FramePayload::Ipv4(pkt) => {
                self.counters.ipv4_delivered += 1;
                up.push(pkt);
            }
            FramePayload::Arp(arp) => {
                self.counters.arp_received += 1;
                match arp.operation {
                    ArpOperation::Request => {
                        // Learn the asker and answer if they want us.
                        self.arp.insert(arp.sender_ip, arp.sender_mac);
                        if arp.target_ip == self.ip {
                            self.counters.arp_replies_sent += 1;
                            out.push(EthernetFrame::arp(
                                self.mac,
                                arp.sender_mac,
                                ArpPacket::reply_to(&arp, self.mac, self.ip),
                            ));
                        }
                    }
                    ArpOperation::Reply => {
                        self.arp.insert(arp.sender_ip, arp.sender_mac);
                        // Flush packets that were waiting for this resolution.
                        let resolved = arp.sender_ip;
                        let mac = arp.sender_mac;
                        let mut still_waiting = Vec::new();
                        for (hop, pkt) in self.pending.drain(..) {
                            if hop == resolved {
                                out.push(EthernetFrame::ipv4(self.mac, mac, pkt));
                            } else {
                                still_waiting.push((hop, pkt));
                            }
                        }
                        self.pending = still_waiting;
                    }
                }
            }
            FramePayload::Other(..) => {
                self.counters.ignored += 1;
            }
        }
        (up, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipop_packet::ipv4::Ipv4Payload;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    fn pkt(src: Ipv4Addr, dst: Ipv4Addr) -> Ipv4Packet {
        Ipv4Packet::new(src, dst, Ipv4Payload::Raw(99, vec![1, 2, 3].into()))
    }

    #[test]
    fn static_gateway_never_emits_arp() {
        let gw_mac = MacAddr::local(200);
        let mut eth = EthAdapter::with_static_gateway(
            MacAddr::local(1),
            ip(172, 16, 0, 2),
            ip(172, 16, 0, 254),
            gw_mac,
        );
        for host in 3..20u8 {
            let frames = eth.encapsulate(pkt(ip(172, 16, 0, 2), ip(172, 16, 0, host)));
            assert_eq!(frames.len(), 1);
            assert!(matches!(frames[0].payload, FramePayload::Ipv4(_)));
            assert_eq!(frames[0].dst, gw_mac);
        }
        assert_eq!(eth.counters().arp_requests_sent, 0);
    }

    #[test]
    fn dynamic_arp_resolution_flow() {
        let mut a = EthAdapter::new(MacAddr::local(1), ip(10, 0, 0, 1));
        let mut b = EthAdapter::new(MacAddr::local(2), ip(10, 0, 0, 2));

        // A wants to send to B but has no ARP entry: emits a request, parks the packet.
        let frames = a.encapsulate(pkt(ip(10, 0, 0, 1), ip(10, 0, 0, 2)));
        assert_eq!(frames.len(), 1);
        assert!(matches!(frames[0].payload, FramePayload::Arp(_)));

        // B receives the request and answers.
        let (up_b, replies) = b.process_frame(frames.into_iter().next().unwrap());
        assert!(up_b.is_empty());
        assert_eq!(replies.len(), 1);
        assert_eq!(b.counters().arp_replies_sent, 1);
        // B also learned A's mapping from the request.
        assert_eq!(
            b.arp_table().lookup(ip(10, 0, 0, 1)),
            Some(MacAddr::local(1))
        );

        // A receives the reply and releases the parked packet.
        let (up_a, out_a) = a.process_frame(replies.into_iter().next().unwrap());
        assert!(up_a.is_empty());
        assert_eq!(out_a.len(), 1);
        assert_eq!(out_a[0].dst, MacAddr::local(2));

        // B finally receives the data frame.
        let (up_b2, _) = b.process_frame(out_a.into_iter().next().unwrap());
        assert_eq!(up_b2.len(), 1);
        assert_eq!(up_b2[0].dst(), ip(10, 0, 0, 2));
    }

    #[test]
    fn frames_for_other_macs_are_ignored() {
        let mut a = EthAdapter::new(MacAddr::local(1), ip(10, 0, 0, 1));
        let foreign = EthernetFrame::ipv4(
            MacAddr::local(5),
            MacAddr::local(6),
            pkt(ip(1, 1, 1, 1), ip(2, 2, 2, 2)),
        );
        let (up, out) = a.process_frame(foreign);
        assert!(up.is_empty() && out.is_empty());
        assert_eq!(a.counters().ignored, 1);
    }

    #[test]
    fn arp_request_for_other_ip_learns_but_does_not_reply() {
        let mut a = EthAdapter::new(MacAddr::local(1), ip(10, 0, 0, 1));
        let req = EthernetFrame::arp(
            MacAddr::local(9),
            MacAddr::BROADCAST,
            ArpPacket::request(MacAddr::local(9), ip(10, 0, 0, 9), ip(10, 0, 0, 77)),
        );
        let (_, out) = a.process_frame(req);
        assert!(out.is_empty());
        assert_eq!(
            a.arp_table().lookup(ip(10, 0, 0, 9)),
            Some(MacAddr::local(9))
        );
    }
}
