//! Socket objects owned by a [`crate::stack::NetStack`].
//!
//! UDP and ICMP-echo ("ping") sockets are simple bounded queues; TCP sockets wrap
//! the full state machine from [`crate::tcp`]. Applications never hold sockets
//! directly — they hold [`SocketHandle`]s and go through the stack, which is what
//! lets the whole host be a plain state machine inside the discrete-event
//! simulation.

use std::collections::VecDeque;
use std::net::Ipv4Addr;

use ipop_packet::Bytes;

use crate::tcp::{TcpConfig, TcpSocket};

/// Handle referring to a socket inside one stack.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SocketHandle(pub(crate) usize);

/// A datagram delivered to a UDP socket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UdpMessage {
    /// Sender address.
    pub src: Ipv4Addr,
    /// Sender port.
    pub src_port: u16,
    /// Payload (shared buffer; cloning is a refcount bump).
    pub data: Bytes,
}

/// A bound UDP endpoint with a bounded receive queue.
#[derive(Debug)]
pub struct UdpSocket {
    /// Bound local port.
    pub port: u16,
    rx: VecDeque<UdpMessage>,
    capacity: usize,
    dropped: u64,
}

impl UdpSocket {
    /// Create a socket bound to `port` with space for `capacity` queued datagrams.
    pub fn new(port: u16, capacity: usize) -> Self {
        UdpSocket {
            port,
            rx: VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Queue an incoming datagram, dropping it if the queue is full (as a kernel
    /// socket buffer would).
    pub fn deliver(&mut self, msg: UdpMessage) {
        if self.rx.len() >= self.capacity {
            self.dropped += 1;
        } else {
            self.rx.push_back(msg);
        }
    }

    /// Take the oldest queued datagram.
    pub fn recv(&mut self) -> Option<UdpMessage> {
        self.rx.pop_front()
    }

    /// Number of datagrams waiting.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }

    /// Datagrams dropped due to a full receive queue.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// An echo reply delivered to a ping socket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EchoReply {
    /// Which host answered.
    pub from: Ipv4Addr,
    /// Echo identifier.
    pub identifier: u16,
    /// Echo sequence number.
    pub sequence: u16,
    /// Echoed payload.
    pub payload: Vec<u8>,
}

/// An ICMP echo ("ping") socket identified by its ICMP identifier.
#[derive(Debug)]
pub struct PingSocket {
    /// The ICMP identifier this socket owns.
    pub identifier: u16,
    rx: VecDeque<EchoReply>,
}

impl PingSocket {
    /// Create a ping socket owning `identifier`.
    pub fn new(identifier: u16) -> Self {
        PingSocket {
            identifier,
            rx: VecDeque::new(),
        }
    }

    /// Queue an incoming echo reply.
    pub fn deliver(&mut self, reply: EchoReply) {
        self.rx.push_back(reply);
    }

    /// Take the oldest queued reply.
    pub fn recv(&mut self) -> Option<EchoReply> {
        self.rx.pop_front()
    }

    /// Number of replies waiting.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }
}

/// A passive TCP listener: incoming SYNs spawn connection sockets that wait here
/// until the application accepts them.
#[derive(Debug)]
pub struct TcpListener {
    /// Listening port.
    pub port: u16,
    /// Configuration inherited by accepted connections.
    pub cfg: TcpConfig,
    /// Connection sockets not yet accepted by the application.
    pub backlog: VecDeque<SocketHandle>,
}

/// The socket table entry.
#[derive(Debug)]
pub enum Socket {
    /// A UDP endpoint.
    Udp(UdpSocket),
    /// An ICMP echo endpoint.
    Ping(PingSocket),
    /// A TCP connection.
    Tcp(Box<TcpSocket>),
    /// A passive TCP listener.
    Listener(TcpListener),
    /// A freed slot available for reuse.
    Vacant,
}

impl Socket {
    /// The TCP connection inside, if this is one.
    pub fn as_tcp(&self) -> Option<&TcpSocket> {
        match self {
            Socket::Tcp(s) => Some(s),
            _ => None,
        }
    }

    /// Mutable access to the TCP connection inside, if this is one.
    pub fn as_tcp_mut(&mut self) -> Option<&mut TcpSocket> {
        match self {
            Socket::Tcp(s) => Some(s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_socket_queues_and_drops() {
        let mut s = UdpSocket::new(5000, 2);
        let msg = |i: u8| UdpMessage {
            src: Ipv4Addr::new(10, 0, 0, i),
            src_port: 1,
            data: vec![i].into(),
        };
        s.deliver(msg(1));
        s.deliver(msg(2));
        s.deliver(msg(3)); // dropped
        assert_eq!(s.pending(), 2);
        assert_eq!(s.dropped(), 1);
        assert_eq!(s.recv().unwrap().data, vec![1]);
        assert_eq!(s.recv().unwrap().data, vec![2]);
        assert!(s.recv().is_none());
    }

    #[test]
    fn ping_socket_fifo() {
        let mut p = PingSocket::new(7);
        p.deliver(EchoReply {
            from: Ipv4Addr::LOCALHOST,
            identifier: 7,
            sequence: 1,
            payload: vec![],
        });
        p.deliver(EchoReply {
            from: Ipv4Addr::LOCALHOST,
            identifier: 7,
            sequence: 2,
            payload: vec![],
        });
        assert_eq!(p.pending(), 2);
        assert_eq!(p.recv().unwrap().sequence, 1);
        assert_eq!(p.recv().unwrap().sequence, 2);
        assert!(p.recv().is_none());
    }
}
