//! The tap virtual network interface.
//!
//! A tap device is a pair of frame queues between the kernel and a user-level
//! process (paper Section III-A): frames the kernel transmits on the interface
//! become readable by the process, and frames the process writes appear to the
//! kernel as if received on the interface. IPOP opens the tap device, reads the
//! Ethernet frames the applications generate, extracts the IP packets and tunnels
//! them over the overlay; on the way back it writes reconstructed frames into the
//! device.

use std::collections::VecDeque;

use ipop_packet::ether::{EthernetFrame, MacAddr};

/// Counters describing tap activity (used to assert ARP containment in tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct TapCounters {
    /// Frames written by the kernel (application traffic heading to IPOP).
    pub kernel_tx: u64,
    /// Frames written by the user-level process (IPOP traffic heading to the apps).
    pub user_tx: u64,
    /// Frames dropped because a queue was full.
    pub dropped: u64,
}

/// A tap device: two bounded frame queues.
#[derive(Debug)]
pub struct TapDevice {
    mac: MacAddr,
    /// Frames from the kernel waiting to be read by the user-level process.
    to_user: VecDeque<EthernetFrame>,
    /// Frames from the user-level process waiting to be received by the kernel.
    to_kernel: VecDeque<EthernetFrame>,
    capacity: usize,
    counters: TapCounters,
}

impl TapDevice {
    /// Create a tap device with the given interface MAC address.
    pub fn new(mac: MacAddr) -> Self {
        Self::with_capacity(mac, 4096)
    }

    /// Create a tap device with bounded queues of `capacity` frames each.
    pub fn with_capacity(mac: MacAddr, capacity: usize) -> Self {
        TapDevice {
            mac,
            to_user: VecDeque::new(),
            to_kernel: VecDeque::new(),
            capacity,
            counters: TapCounters::default(),
        }
    }

    /// The tap interface's MAC address.
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// Counter snapshot.
    pub fn counters(&self) -> TapCounters {
        self.counters
    }

    /// Kernel side: transmit a frame on the interface (application traffic).
    pub fn kernel_write(&mut self, frame: EthernetFrame) {
        if self.to_user.len() >= self.capacity {
            self.counters.dropped += 1;
            return;
        }
        self.counters.kernel_tx += 1;
        self.to_user.push_back(frame);
    }

    /// User side (IPOP): read the next frame the kernel transmitted.
    pub fn user_read(&mut self) -> Option<EthernetFrame> {
        self.to_user.pop_front()
    }

    /// User side (IPOP): inject a frame into the kernel.
    pub fn user_write(&mut self, frame: EthernetFrame) {
        if self.to_kernel.len() >= self.capacity {
            self.counters.dropped += 1;
            return;
        }
        self.counters.user_tx += 1;
        self.to_kernel.push_back(frame);
    }

    /// Kernel side: receive the next frame injected by the user-level process.
    pub fn kernel_read(&mut self) -> Option<EthernetFrame> {
        self.to_kernel.pop_front()
    }

    /// Frames waiting to be read by the user-level process.
    pub fn pending_user(&self) -> usize {
        self.to_user.len()
    }

    /// Frames waiting to be received by the kernel.
    pub fn pending_kernel(&self) -> usize {
        self.to_kernel.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipop_packet::arp::ArpPacket;
    use std::net::Ipv4Addr;

    fn frame() -> EthernetFrame {
        EthernetFrame::arp(
            MacAddr::local(1),
            MacAddr::BROADCAST,
            ArpPacket::request(
                MacAddr::local(1),
                Ipv4Addr::new(172, 16, 0, 2),
                Ipv4Addr::new(172, 16, 0, 1),
            ),
        )
    }

    #[test]
    fn frames_flow_both_ways_in_fifo_order() {
        let mut tap = TapDevice::new(MacAddr::local(9));
        assert_eq!(tap.mac(), MacAddr::local(9));
        tap.kernel_write(frame());
        tap.kernel_write(frame());
        assert_eq!(tap.pending_user(), 2);
        assert!(tap.user_read().is_some());
        assert!(tap.user_read().is_some());
        assert!(tap.user_read().is_none());

        tap.user_write(frame());
        assert_eq!(tap.pending_kernel(), 1);
        assert!(tap.kernel_read().is_some());
        assert!(tap.kernel_read().is_none());
        assert_eq!(tap.counters().kernel_tx, 2);
        assert_eq!(tap.counters().user_tx, 1);
    }

    #[test]
    fn full_queue_drops_frames() {
        let mut tap = TapDevice::with_capacity(MacAddr::local(1), 1);
        tap.kernel_write(frame());
        tap.kernel_write(frame());
        assert_eq!(tap.pending_user(), 1);
        assert_eq!(tap.counters().dropped, 1);
    }
}
