//! Network Address Translation boxes.
//!
//! The paper (Section III-D) relies on the STUN classification of NATs into four
//! types — full cone, (address-)restricted cone, port-restricted cone and symmetric
//! — and on the property shared by all of them that a reply from the exact endpoint
//! an internal host contacted is always allowed back in. Brunet's decentralized
//! traversal exploits that property (plus the stability of the mapping for the
//! three cone types) to hole-punch direct connections without any STUN server.
//! This module implements all four behaviours so the overlay's traversal logic can
//! be exercised against each.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// A transport endpoint (address, port). For ICMP the "port" is the echo
/// identifier, mirroring how real NATs translate ICMP query sessions.
pub type Endpoint = (Ipv4Addr, u16);

/// The four common NAT behaviours described by STUN (RFC 3489).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum NatType {
    /// Any external host may send to an established mapping.
    FullCone,
    /// Only external *addresses* previously contacted may send back.
    RestrictedCone,
    /// Only external (address, port) pairs previously contacted may send back.
    PortRestrictedCone,
    /// A distinct mapping per destination; only that destination may reply and the
    /// external port is unpredictable to third parties.
    Symmetric,
}

impl NatType {
    /// Whether the external mapping is independent of the destination — the
    /// property the paper notes holds for "three out of four of the common NAT
    /// types (all but the symmetric)" and which makes advertised translated
    /// addresses reusable by other peers.
    pub fn endpoint_independent(self) -> bool {
        !matches!(self, NatType::Symmetric)
    }
}

#[derive(Clone, Debug)]
struct Mapping {
    internal: Endpoint,
    external_port: u16,
    /// Remote endpoints this mapping has sent to (used by the filtering policy).
    contacted: Vec<Endpoint>,
}

/// A NAT box translating between a private site network and its public address.
#[derive(Debug)]
pub struct NatBox {
    nat_type: NatType,
    public_ip: Ipv4Addr,
    next_port: u16,
    /// For cone NATs: one mapping per internal endpoint.
    /// For symmetric NATs: one mapping per (internal endpoint, destination).
    mappings: Vec<Mapping>,
    by_external_port: BTreeMap<u16, usize>,
    /// Statistics: packets dropped by the inbound filter.
    pub inbound_filtered: u64,
}

impl NatBox {
    /// A NAT of the given type owning `public_ip`.
    pub fn new(nat_type: NatType, public_ip: Ipv4Addr) -> Self {
        NatBox {
            nat_type,
            public_ip,
            next_port: 20_000,
            mappings: Vec::new(),
            by_external_port: BTreeMap::new(),
            inbound_filtered: 0,
        }
    }

    /// The NAT's public address.
    pub fn public_ip(&self) -> Ipv4Addr {
        self.public_ip
    }

    /// The NAT's behaviour class.
    pub fn nat_type(&self) -> NatType {
        self.nat_type
    }

    /// Number of active mappings.
    pub fn mapping_count(&self) -> usize {
        self.mappings.len()
    }

    fn find_outbound(&self, internal: Endpoint, dst: Endpoint) -> Option<usize> {
        self.mappings.iter().position(|m| {
            m.internal == internal
                && (self.nat_type.endpoint_independent()
                    || m.contacted.first().is_some_and(|d| *d == dst))
        })
    }

    /// Translate an outbound packet from `internal` towards `dst`.
    ///
    /// Returns the external (public) endpoint that the packet's source should be
    /// rewritten to. Creates the mapping if necessary and records `dst` as a
    /// contacted endpoint for the filtering policy.
    pub fn outbound(&mut self, internal: Endpoint, dst: Endpoint) -> Endpoint {
        let idx = match self.find_outbound(internal, dst) {
            Some(i) => i,
            None => {
                let port = self.allocate_port();
                self.mappings.push(Mapping {
                    internal,
                    external_port: port,
                    contacted: Vec::new(),
                });
                let i = self.mappings.len() - 1;
                self.by_external_port.insert(port, i);
                i
            }
        };
        let m = &mut self.mappings[idx];
        if !m.contacted.contains(&dst) {
            m.contacted.push(dst);
        }
        (self.public_ip, m.external_port)
    }

    /// Translate an inbound packet arriving at `external_port` from `src`.
    ///
    /// Returns the internal endpoint to forward to, or `None` if the packet is
    /// filtered by the NAT's policy (no mapping, or the sender is not allowed by
    /// the cone/symmetric filtering rule).
    pub fn inbound(&mut self, external_port: u16, src: Endpoint) -> Option<Endpoint> {
        let Some(&idx) = self.by_external_port.get(&external_port) else {
            self.inbound_filtered += 1;
            return None;
        };
        let m = &self.mappings[idx];
        let allowed = match self.nat_type {
            NatType::FullCone => true,
            NatType::RestrictedCone => m.contacted.iter().any(|(ip, _)| *ip == src.0),
            NatType::PortRestrictedCone | NatType::Symmetric => m.contacted.contains(&src),
        };
        if allowed {
            Some(m.internal)
        } else {
            self.inbound_filtered += 1;
            None
        }
    }

    /// The external endpoint currently mapped for `internal` towards `dst`, if one
    /// exists (what a peer would observe as the translated address).
    pub fn external_for(&self, internal: Endpoint, dst: Endpoint) -> Option<Endpoint> {
        self.find_outbound(internal, dst)
            .map(|i| (self.public_ip, self.mappings[i].external_port))
    }

    fn allocate_port(&mut self) -> u16 {
        loop {
            let p = self.next_port;
            self.next_port = if self.next_port == u16::MAX {
                20_000
            } else {
                self.next_port + 1
            };
            if !self.by_external_port.contains_key(&p) {
                return p;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PUB: Ipv4Addr = Ipv4Addr::new(128, 227, 56, 1);
    const IN_A: Endpoint = (Ipv4Addr::new(192, 168, 1, 10), 4000);
    const PEER_X: Endpoint = (Ipv4Addr::new(13, 0, 0, 1), 7000);
    const PEER_Y: Endpoint = (Ipv4Addr::new(14, 0, 0, 2), 8000);

    #[test]
    fn reply_from_contacted_endpoint_always_allowed() {
        // The property the paper singles out: for every NAT type, B can reply to A
        // after A sent to B.
        for ty in [
            NatType::FullCone,
            NatType::RestrictedCone,
            NatType::PortRestrictedCone,
            NatType::Symmetric,
        ] {
            let mut nat = NatBox::new(ty, PUB);
            let (pub_ip, pub_port) = nat.outbound(IN_A, PEER_X);
            assert_eq!(pub_ip, PUB);
            assert_eq!(nat.inbound(pub_port, PEER_X), Some(IN_A), "{ty:?}");
        }
    }

    #[test]
    fn full_cone_allows_third_parties() {
        let mut nat = NatBox::new(NatType::FullCone, PUB);
        let (_, port) = nat.outbound(IN_A, PEER_X);
        assert_eq!(nat.inbound(port, PEER_Y), Some(IN_A));
    }

    #[test]
    fn restricted_cone_filters_by_address() {
        let mut nat = NatBox::new(NatType::RestrictedCone, PUB);
        let (_, port) = nat.outbound(IN_A, PEER_X);
        // Same address, different port: allowed.
        assert_eq!(nat.inbound(port, (PEER_X.0, 9_999)), Some(IN_A));
        // Different address: filtered.
        assert_eq!(nat.inbound(port, PEER_Y), None);
        assert_eq!(nat.inbound_filtered, 1);
    }

    #[test]
    fn port_restricted_cone_filters_by_address_and_port() {
        let mut nat = NatBox::new(NatType::PortRestrictedCone, PUB);
        let (_, port) = nat.outbound(IN_A, PEER_X);
        assert_eq!(nat.inbound(port, PEER_X), Some(IN_A));
        assert_eq!(nat.inbound(port, (PEER_X.0, 9_999)), None);
    }

    #[test]
    fn cone_nats_reuse_the_same_external_port_across_destinations() {
        for ty in [
            NatType::FullCone,
            NatType::RestrictedCone,
            NatType::PortRestrictedCone,
        ] {
            let mut nat = NatBox::new(ty, PUB);
            let (_, p1) = nat.outbound(IN_A, PEER_X);
            let (_, p2) = nat.outbound(IN_A, PEER_Y);
            assert_eq!(p1, p2, "{ty:?} keeps one mapping per internal endpoint");
            assert!(ty.endpoint_independent());
        }
    }

    #[test]
    fn symmetric_nat_allocates_per_destination_ports() {
        let mut nat = NatBox::new(NatType::Symmetric, PUB);
        let (_, p1) = nat.outbound(IN_A, PEER_X);
        let (_, p2) = nat.outbound(IN_A, PEER_Y);
        assert_ne!(p1, p2);
        assert!(!NatType::Symmetric.endpoint_independent());
        // The mapping towards X only admits X.
        assert_eq!(nat.inbound(p1, PEER_Y), None);
        assert_eq!(nat.inbound(p1, PEER_X), Some(IN_A));
        assert_eq!(nat.mapping_count(), 2);
    }

    #[test]
    fn unsolicited_inbound_is_dropped() {
        let mut nat = NatBox::new(NatType::FullCone, PUB);
        assert_eq!(nat.inbound(33_333, PEER_X), None);
        assert_eq!(nat.inbound_filtered, 1);
    }

    #[test]
    fn mapping_is_stable_and_observable() {
        let mut nat = NatBox::new(NatType::PortRestrictedCone, PUB);
        let ext = nat.outbound(IN_A, PEER_X);
        assert_eq!(nat.external_for(IN_A, PEER_X), Some(ext));
        // Sending again does not change the mapping.
        assert_eq!(nat.outbound(IN_A, PEER_X), ext);
        assert_eq!(nat.mapping_count(), 1);
    }
}
