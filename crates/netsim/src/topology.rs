//! Topology builders for the paper's testbeds.
//!
//! * [`fig4_testbed`] — the six-machine LAN/WAN testbed of Fig. 4: the ACIS private
//!   LAN at the University of Florida behind a NAT (F1, F2, F4), a second UF
//!   machine on the campus network (F3), and the firewalled VIMS (V1) and LSU (L1)
//!   machines reached over Abilene.
//! * [`planetlab`] — a Planet-Lab-like deployment of `n` single-host sites with
//!   heterogeneous wide-area latencies and high CPU load, used for the Fig. 5
//!   experiment.
//! * [`lan_pair`] / [`wan_pair`] — minimal two-host topologies used by unit tests
//!   and micro-benchmarks.

use std::net::Ipv4Addr;

use ipop_simcore::{Duration, StreamRng};

use crate::firewall::{Firewall, HostMatch, ProtoMatch, Rule};
use crate::host::HostId;
use crate::link::LinkParams;
use crate::nat::{NatBox, NatType};
use crate::network::Network;
use crate::site::{Prefix, SiteSpec};

/// Handles to the hosts of the Fig. 4 testbed.
#[derive(Clone, Debug)]
pub struct Fig4Testbed {
    /// VM on the ACIS private LAN (GSX server host).
    pub f1: HostId,
    /// Physical host on the ACIS private LAN — LAN experiments run between F2 and F4.
    pub f2: HostId,
    /// Machine on a different UF LAN, publicly reachable (SSH gateway for LFW).
    pub f3: HostId,
    /// Dual-homed VM: on the ACIS LAN but with a public campus address — the file
    /// server of the LSS experiment and one end of the WAN experiments.
    pub f4: HostId,
    /// Machine at VIMS, behind the VFW firewall — the other end of the WAN
    /// experiments.
    pub v1: HostId,
    /// Machine at LSU, behind the LFW firewall (outbound TCP restricted to F3).
    pub l1: HostId,
    /// Physical addresses, in the same order as the handles above.
    pub addrs: [Ipv4Addr; 6],
}

impl Fig4Testbed {
    /// All six hosts.
    pub fn all(&self) -> [HostId; 6] {
        [self.f1, self.f2, self.f3, self.f4, self.v1, self.l1]
    }
}

/// Build the Fig. 4 testbed inside `net`.
///
/// Physical addresses follow the paper where given (F4's public address is
/// 128.227.56.83) and use documentation/private ranges elsewhere.
pub fn fig4_testbed(net: &mut Network) -> Fig4Testbed {
    // Wide-area core: Abilene path UF ⇄ VIMS/LSU. Calibrated so the physical WAN
    // ping RTT lands in the paper's 34–39 ms band.
    net.core.latency = Duration::from_millis(13);
    net.core.jitter = Duration::from_micros(250);

    // ACIS laboratory: private LAN behind a NAT to the campus network. The LAN is
    // 100 Mbit switched; the campus/WAN egress is what bounds WAN throughput
    // (~12 Mbit/s, matching the ~1.4-1.5 MB/s physical ttcp numbers of Table III).
    let acis = net.add_site(
        SiteSpec::open("ACIS")
            .with_lan(LinkParams::lan_100mbit())
            .with_access(LinkParams::wan(Duration::from_millis(2), 12.0))
            .with_nat(
                NatBox::new(NatType::PortRestrictedCone, Ipv4Addr::new(128, 227, 56, 1)),
                Prefix::new(Ipv4Addr::new(10, 227, 0, 0), 16),
            ),
    );

    // UF campus network: F3 lives here with a public address, no middleboxes.
    let ufl = net.add_site(
        SiteSpec::open("UFL")
            .with_lan(LinkParams::lan_100mbit())
            .with_access(LinkParams::wan(Duration::from_millis(1), 100.0)),
    );

    // VIMS: V1 behind a default-deny-inbound firewall; SSH allowed only from F3.
    // ICMP echo and the ttcp measurement port are admitted inbound: the paper's
    // *physical* baseline rows (Tables I and III) could only be measured because
    // that traffic was allowed; IPOP itself never needs these exceptions.
    let mut vfw = Firewall::default_deny_inbound();
    let f3_addr = Ipv4Addr::new(128, 227, 120, 51);
    vfw.add_rule(Rule::allow_inbound(
        ProtoMatch::Tcp,
        HostMatch::Addr(f3_addr),
        Some(22),
    ));
    vfw.add_rule(Rule::allow_inbound(ProtoMatch::Icmp, HostMatch::Any, None));
    vfw.add_rule(Rule::allow_inbound(
        ProtoMatch::Tcp,
        HostMatch::Any,
        Some(5201),
    ));
    let vims = net.add_site(
        SiteSpec::open("VIMS")
            .with_lan(LinkParams::lan_100mbit())
            .with_access(LinkParams::wan(Duration::from_millis(3), 12.0))
            .with_firewall(vfw),
    );

    // LSU: L1 behind a firewall that additionally restricts outbound TCP to F3
    // (UDP is unrestricted, which is why the Brunet-UDP overlay still forms).
    let mut lfw = Firewall::default_deny_inbound().with_default_outbound_deny();
    lfw.add_rule(Rule::allow_inbound(
        ProtoMatch::Tcp,
        HostMatch::Addr(f3_addr),
        Some(22),
    ));
    lfw.add_rule(Rule::allow_inbound(ProtoMatch::Icmp, HostMatch::Any, None));
    lfw.add_rule(Rule::allow_outbound(
        ProtoMatch::Tcp,
        HostMatch::Addr(f3_addr),
        None,
    ));
    lfw.add_rule(Rule::allow_outbound(ProtoMatch::Udp, HostMatch::Any, None));
    lfw.add_rule(Rule::allow_outbound(ProtoMatch::Icmp, HostMatch::Any, None));
    let lsu = net.add_site(
        SiteSpec::open("LSU")
            .with_lan(LinkParams::lan_100mbit())
            .with_access(LinkParams::wan(Duration::from_millis(4), 12.0))
            .with_firewall(lfw),
    );

    let addrs = [
        Ipv4Addr::new(10, 227, 0, 3),    // F1 (ACIS private)
        Ipv4Addr::new(10, 227, 0, 2),    // F2 (ACIS private)
        f3_addr,                         // F3 (UF campus, public)
        Ipv4Addr::new(128, 227, 56, 83), // F4 (public, per the paper)
        Ipv4Addr::new(139, 70, 24, 100), // V1 (VIMS)
        Ipv4Addr::new(130, 39, 128, 20), // L1 (LSU)
    ];

    let f1 = net.add_host("F1", acis, addrs[0]);
    let f2 = net.add_host("F2", acis, addrs[1]);
    let f3 = net.add_host("F3", ufl, addrs[2]);
    let f4 = net.add_host("F4", acis, addrs[3]); // dual-homed: public address on the ACIS site
    let v1 = net.add_host("V1", vims, addrs[4]);
    let l1 = net.add_host("L1", lsu, addrs[5]);

    Fig4Testbed {
        f1,
        f2,
        f3,
        f4,
        v1,
        l1,
        addrs,
    }
}

/// A Planet-Lab-like overlay testbed: `n` single-host sites, heterogeneous
/// latencies, every node heavily CPU-loaded (`load` ≈ 10 in the paper's runs).
pub struct PlanetLab {
    /// The Planet-Lab nodes.
    pub nodes: Vec<HostId>,
    /// Their physical addresses.
    pub addrs: Vec<Ipv4Addr>,
}

/// Build a Planet-Lab-like topology of `n` nodes with the given CPU `load`.
pub fn planetlab(net: &mut Network, n: usize, load: f64, seed: u64) -> PlanetLab {
    assert!((2..=4000).contains(&n), "unreasonable Planet-Lab size");
    let mut rng = StreamRng::new(seed, "topology.planetlab");
    net.core.latency = Duration::from_millis(18);
    net.core.jitter = Duration::from_millis(2);
    let mut nodes = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for i in 0..n {
        // Access latencies spread between 2 and 60 ms one-way: cross-node RTTs land
        // roughly in the 40-160 ms band the paper describes (>100 ms for many pairs).
        let access_ms = 2.0 + rng.unit() * 58.0;
        let bw_mbps = 5.0 + rng.unit() * 45.0;
        let site = net.add_site(
            SiteSpec::open(&format!("plab-site-{i:03}"))
                .with_lan(LinkParams::lan_100mbit())
                .with_access(LinkParams::wan(
                    Duration::from_millis_f64(access_ms),
                    bw_mbps,
                )),
        );
        let addr = Ipv4Addr::new(172, 20, (i / 250) as u8, (i % 250 + 1) as u8);
        let id = net.add_host_with_load(&format!("planetlab-{i:03}"), site, addr, load);
        nodes.push(id);
        addrs.push(addr);
    }
    PlanetLab { nodes, addrs }
}

/// Two hosts on one open LAN site. Returns `(host_a, host_b, addr_a, addr_b)`.
pub fn lan_pair(net: &mut Network) -> (HostId, HostId, Ipv4Addr, Ipv4Addr) {
    let site = net.add_site(SiteSpec::open("LAN"));
    let a_addr = Ipv4Addr::new(10, 50, 0, 1);
    let b_addr = Ipv4Addr::new(10, 50, 0, 2);
    let a = net.add_host("lan-a", site, a_addr);
    let b = net.add_host("lan-b", site, b_addr);
    (a, b, a_addr, b_addr)
}

/// Two hosts at separate open sites across the wide-area core.
/// Returns `(host_a, host_b, addr_a, addr_b)`.
pub fn wan_pair(net: &mut Network) -> (HostId, HostId, Ipv4Addr, Ipv4Addr) {
    net.core.latency = Duration::from_millis(13);
    let s1 = net.add_site(
        SiteSpec::open("SITE-A").with_access(LinkParams::wan(Duration::from_millis(2), 12.0)),
    );
    let s2 = net.add_site(
        SiteSpec::open("SITE-B").with_access(LinkParams::wan(Duration::from_millis(3), 12.0)),
    );
    let a_addr = Ipv4Addr::new(128, 1, 0, 1);
    let b_addr = Ipv4Addr::new(139, 2, 0, 2);
    let a = net.add_host("wan-a", s1, a_addr);
    let b = net.add_host("wan-b", s2, b_addr);
    (a, b, a_addr, b_addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_has_six_hosts_across_four_sites() {
        let mut net = Network::new(1);
        let tb = fig4_testbed(&mut net);
        assert_eq!(net.host_count(), 6);
        assert_eq!(tb.all().len(), 6);
        // F2 is private (behind the ACIS NAT); F4 and V1 are publicly addressable.
        let f2_site = net.host(tb.f2).site;
        assert!(net.site(f2_site).is_private_addr(net.host(tb.f2).addr));
        assert!(!net
            .site(net.host(tb.f4).site)
            .is_private_addr(net.host(tb.f4).addr));
        // V1 and L1 sit behind firewalls.
        assert!(net.site(net.host(tb.v1).site).firewall.is_some());
        assert!(net.site(net.host(tb.l1).site).firewall.is_some());
        // All addresses resolve back to their hosts.
        for (i, host) in tb.all().into_iter().enumerate() {
            assert_eq!(net.host_by_addr(tb.addrs[i]), Some(host));
        }
    }

    #[test]
    fn planetlab_builds_requested_size_with_load() {
        let mut net = Network::new(2);
        let plab = planetlab(&mut net, 118, 10.0, 7);
        assert_eq!(plab.nodes.len(), 118);
        assert_eq!(net.host_count(), 118);
        assert!(net
            .hosts()
            .iter()
            .all(|h| (h.load - 10.0).abs() < f64::EPSILON));
        // Addresses are unique (checked by add_host, but assert the count matches).
        let unique: std::collections::BTreeSet<_> = plab.addrs.iter().collect();
        assert_eq!(unique.len(), 118);
    }

    #[test]
    fn pair_builders() {
        let mut net = Network::new(3);
        let (a, b, aa, ab) = lan_pair(&mut net);
        assert_eq!(net.host(a).site, net.host(b).site);
        assert_ne!(aa, ab);
        let mut net2 = Network::new(4);
        let (c, d, _, _) = wan_pair(&mut net2);
        assert_ne!(net2.host(c).site, net2.host(d).site);
    }

    #[test]
    #[should_panic(expected = "unreasonable Planet-Lab size")]
    fn planetlab_rejects_tiny_sizes() {
        let mut net = Network::new(5);
        planetlab(&mut net, 1, 10.0, 7);
    }
}
