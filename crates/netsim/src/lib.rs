//! Physical-network simulator for the IPOP reproduction.
//!
//! The paper evaluates IPOP on real testbeds (a University of Florida LAN, a
//! three-site wide-area deployment and a 118-node Planet-Lab slice). This crate is
//! the substitute substrate: a deterministic discrete-event model of hosts, sites,
//! links, NAT boxes, firewalls and CPU contention that exercises the same code
//! paths — user-level packet processing, double kernel-stack traversal,
//! NAT/firewall reachability — that produce the paper's measurements.
//!
//! The crate deliberately knows nothing about IPOP or Brunet: it moves IPv4 packets
//! between [`host::HostAgent`]s. The overlay, the IPOP node and the applications
//! are all implemented as agents in the higher crates.

pub mod calibration;
pub mod firewall;
pub mod host;
pub mod impair;
pub mod link;
pub mod nat;
pub mod network;
pub mod scale;
pub mod site;
pub mod topology;

pub use calibration::Calibration;
pub use firewall::{Direction, Firewall, HostMatch, ProtoMatch, Rule};
pub use host::{Host, HostAgent, HostCounters, HostCtx, HostId};
pub use impair::{ImpairmentCounters, LinkImpairment};
pub use link::{Link, LinkOutcome, LinkParams, LinkState};
pub use nat::{Endpoint, NatBox, NatType};
pub use network::{Control, CoreParams, NetCounters, NetEvent, Network, NetworkSim, SiteId};
pub use scale::ScaleNet;
pub use site::{Prefix, Site, SiteSpec};
pub use topology::{fig4_testbed, lan_pair, planetlab, wan_pair, Fig4Testbed, PlanetLab};
