//! Lossy/adversarial link impairments.
//!
//! The paper pitches IPOP for wide-area grids where packet loss, duplication,
//! corruption and reordering are routine, not exceptional. A [`LinkImpairment`]
//! describes such a dirty path between two hosts: every field is a
//! deterministic, seed-driven probability applied on the delivery path (the
//! same hook the partition primitive uses), so an impaired run replays
//! byte-identically under the same experiment seed.
//!
//! Impairments compose with partitions: a partition drops the packet before
//! the impairment is even consulted, exactly like a mid-path outage on an
//! already-lossy route.

use ipop_packet::ipv4::{Ipv4Packet, Ipv4Payload};
use ipop_packet::Bytes;
use ipop_simcore::{Duration, StreamRng};

/// Probabilistic misbehaviour of one host pair's path (or, as the network
/// default, of every path). All probabilities are per delivered packet.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkImpairment {
    /// Probability the packet is silently dropped.
    pub loss: f64,
    /// Probability the packet is delivered twice (the copy arrives up to
    /// [`LinkImpairment::reorder_window`] later).
    pub duplicate: f64,
    /// Probability 1–3 payload bytes are flipped in flight. The structured
    /// simulator carries parsed packets, so corruption targets the opaque
    /// payload bytes (UDP/TCP payloads, ICMP bodies, raw protocols) — the
    /// part of the packet that reaches the overlay's wire decoders. This
    /// models corruption that slipped past link/transport checksums, the
    /// adversarial case codec hardening exists for.
    pub corrupt: f64,
    /// Probability the packet is held back by a uniform extra delay in
    /// `(0, reorder_window]`, letting later packets overtake it.
    pub reorder: f64,
    /// Bound on the extra delay a reordered (or duplicated) packet suffers.
    pub reorder_window: Duration,
}

impl LinkImpairment {
    /// No impairment at all (every probability zero).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builder: set the loss probability.
    pub fn with_loss(mut self, p: f64) -> Self {
        self.loss = p;
        self
    }

    /// Builder: set the duplication probability.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate = p;
        self
    }

    /// Builder: set the corruption probability.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.corrupt = p;
        self
    }

    /// Builder: set the reordering probability and its delay bound.
    pub fn with_reorder(mut self, p: f64, window: Duration) -> Self {
        self.reorder = p;
        self.reorder_window = window.max(Duration::from_micros(1));
        self
    }

    /// True when every probability is zero (the impairment does nothing).
    pub fn is_noop(&self) -> bool {
        self.loss <= 0.0 && self.duplicate <= 0.0 && self.corrupt <= 0.0 && self.reorder <= 0.0
    }
}

/// What an impairment has done so far, per impaired pair (and aggregated in
/// [`crate::NetCounters`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ImpairmentCounters {
    /// Packets silently dropped.
    pub dropped: u64,
    /// Extra copies delivered.
    pub duplicated: u64,
    /// Packets whose payload bytes were flipped.
    pub corrupted: u64,
    /// Packets held back to let later traffic overtake them.
    pub reordered: u64,
}

/// Flip 1–3 bytes of an owned buffer in place. Returns `false` when empty.
fn flip_vec(owned: &mut [u8], rng: &mut StreamRng) -> bool {
    if owned.is_empty() {
        return false;
    }
    let flips = 1 + rng.index(3.min(owned.len()));
    for _ in 0..flips {
        let at = rng.index(owned.len());
        // XOR with a non-zero byte so the flip always changes the value.
        owned[at] ^= (rng.range_u64(1, 256)) as u8;
    }
    true
}

/// Flip 1–3 bytes of a shared buffer, returning the corrupted copy. The
/// original buffer may back cached wire images elsewhere, so corruption is
/// copy-on-write.
fn flip_bytes(bytes: &Bytes, rng: &mut StreamRng) -> Option<Bytes> {
    if bytes.is_empty() {
        return None;
    }
    let mut owned = bytes.to_vec();
    flip_vec(&mut owned, rng);
    Some(Bytes::from(owned))
}

/// Corrupt the opaque payload bytes of `pkt` in place. Returns `false` when
/// the packet has no corruptible bytes (e.g. an empty payload), in which case
/// it is delivered intact and not counted as corrupted.
pub(crate) fn corrupt_packet(pkt: &mut Ipv4Packet, rng: &mut StreamRng) -> bool {
    match &mut pkt.payload {
        Ipv4Payload::Udp(udp) => {
            if let Some(flipped) = flip_bytes(&udp.payload, rng) {
                udp.payload = flipped;
                return true;
            }
            false
        }
        Ipv4Payload::Tcp(tcp) => flip_vec(&mut tcp.payload, rng),
        Ipv4Payload::Icmp(icmp) => flip_vec(&mut icmp.payload, rng),
        Ipv4Payload::Raw(_, data) => {
            if let Some(flipped) = flip_bytes(data, rng) {
                *data = flipped;
                return true;
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipop_packet::udp::UdpDatagram;
    use std::net::Ipv4Addr;

    #[test]
    fn builders_compose() {
        let imp = LinkImpairment::none()
            .with_loss(0.01)
            .with_duplicate(0.02)
            .with_corrupt(0.03)
            .with_reorder(0.04, Duration::from_millis(5));
        assert_eq!(imp.loss, 0.01);
        assert_eq!(imp.duplicate, 0.02);
        assert_eq!(imp.corrupt, 0.03);
        assert_eq!(imp.reorder, 0.04);
        assert_eq!(imp.reorder_window, Duration::from_millis(5));
        assert!(!imp.is_noop());
        assert!(LinkImpairment::none().is_noop());
    }

    #[test]
    fn corruption_changes_udp_payload_bytes() {
        let mut rng = StreamRng::new(7, "test.corrupt");
        let original = vec![0xAAu8; 64];
        let mut pkt = Ipv4Packet::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Payload::Udp(UdpDatagram::new(1, 2, original.clone())),
        );
        assert!(corrupt_packet(&mut pkt, &mut rng));
        let Ipv4Payload::Udp(udp) = &pkt.payload else {
            panic!("payload kind preserved");
        };
        assert_eq!(udp.payload.len(), original.len());
        assert_ne!(udp.payload.as_slice(), original.as_slice());
    }

    #[test]
    fn empty_payload_is_not_corruptible() {
        let mut rng = StreamRng::new(7, "test.corrupt");
        let mut pkt = Ipv4Packet::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Payload::Udp(UdpDatagram::new(1, 2, Vec::new())),
        );
        assert!(!corrupt_packet(&mut pkt, &mut rng));
    }

    #[test]
    fn corruption_is_copy_on_write() {
        let mut rng = StreamRng::new(9, "test.cow");
        let shared = Bytes::from(vec![0x55u8; 32]);
        let mut pkt = Ipv4Packet::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Payload::Udp(UdpDatagram::new(1, 2, shared.clone())),
        );
        assert!(corrupt_packet(&mut pkt, &mut rng));
        // The original shared buffer is untouched.
        assert_eq!(shared, vec![0x55u8; 32]);
    }
}
