//! Hosts and the agent interface.
//!
//! A host is a machine attached to a site's network segment: it has one physical
//! IPv4 address, a CPU-load figure, and a single [`HostAgent`] — the software stack
//! running on it (for IPOP experiments that agent owns the physical network stack,
//! the Brunet node, the tap device, the virtual stack and the application; for
//! baseline experiments it owns just a stack and an application).
//!
//! Agents are plain state machines: the network calls [`HostAgent::on_start`] once,
//! then [`HostAgent::on_packet`] for every delivered packet and
//! [`HostAgent::on_timer`] for every timer the agent armed. All interaction with
//! the outside world goes through the [`HostCtx`] handle passed into those calls.

use std::any::Any;
use std::net::Ipv4Addr;

use ipop_packet::ipv4::Ipv4Packet;
use ipop_simcore::{Duration, SimTime, StreamRng, TimerToken};

use crate::network::{NetEvent, SiteId};

/// Identifier of a host in the network.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct HostId(pub usize);

/// Per-host traffic counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct HostCounters {
    /// Packets handed to the network by this host.
    pub tx_packets: u64,
    /// Bytes handed to the network by this host.
    pub tx_bytes: u64,
    /// Packets delivered to this host's agent.
    pub rx_packets: u64,
    /// Bytes delivered to this host's agent.
    pub rx_bytes: u64,
}

/// A machine in the simulated physical network.
pub struct Host {
    /// Identifier.
    pub id: HostId,
    /// Human-readable name (e.g. `"F2"`, `"V1"`, `"planetlab-042"`).
    pub name: String,
    /// The site whose network segment this host sits on.
    pub site: SiteId,
    /// The host's physical IPv4 address (private if the site NATs it).
    pub addr: Ipv4Addr,
    /// CPU load factor: 1.0 for an idle machine, ≈10 for a contended Planet-Lab
    /// node. Scales the user-level processing costs.
    pub load: f64,
    /// The instant until which the host CPU is busy processing earlier packets.
    pub cpu_busy_until: SimTime,
    /// Traffic counters.
    pub counters: HostCounters,
    pub(crate) agent: Option<Box<dyn HostAgent>>,
    pub(crate) rng: StreamRng,
}

impl Host {
    pub(crate) fn new(
        id: HostId,
        name: String,
        site: SiteId,
        addr: Ipv4Addr,
        load: f64,
        rng: StreamRng,
    ) -> Self {
        Host {
            id,
            name,
            site,
            addr,
            load,
            cpu_busy_until: SimTime::ZERO,
            counters: HostCounters::default(),
            agent: None,
            rng,
        }
    }

    /// Occupy the host CPU for `work` starting no earlier than `now`; returns the
    /// completion instant. Models a FIFO per-host processing queue.
    pub fn occupy_cpu(&mut self, now: SimTime, work: Duration) -> SimTime {
        let start = now.max(self.cpu_busy_until);
        let done = start + work;
        self.cpu_busy_until = done;
        done
    }
}

/// The software running on a host.
///
/// Implementations live in higher crates (`ipop`, `ipop-apps`); the network only
/// ever talks to this trait.
pub trait HostAgent: Any {
    /// Called once when the simulation starts.
    fn on_start(&mut self, ctx: &mut HostCtx<'_, '_>);
    /// Called for every packet delivered to this host.
    fn on_packet(&mut self, ctx: &mut HostCtx<'_, '_>, pkt: Ipv4Packet);
    /// Called when a timer armed via [`HostCtx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut HostCtx<'_, '_>, token: TimerToken);
    /// Downcasting support so experiments can extract results after a run.
    fn as_any(&self) -> &dyn Any;
    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// What an agent is allowed to do while handling an event.
pub struct HostCtx<'a, 'q> {
    pub(crate) net: &'a mut crate::network::Network,
    pub(crate) ctl: &'a mut crate::network::Control<'q>,
    pub(crate) host: HostId,
}

impl HostCtx<'_, '_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.ctl.now()
    }

    /// This host's identifier.
    pub fn host_id(&self) -> HostId {
        self.host
    }

    /// This host's physical address.
    pub fn addr(&self) -> Ipv4Addr {
        self.net.host(self.host).addr
    }

    /// This host's name.
    pub fn name(&self) -> &str {
        &self.net.host(self.host).name
    }

    /// This host's CPU load factor.
    pub fn load(&self) -> f64 {
        self.net.host(self.host).load
    }

    /// The calibration constants in effect.
    pub fn calibration(&self) -> crate::calibration::Calibration {
        self.net.calibration
    }

    /// The host's private random stream.
    pub fn rng(&mut self) -> &mut StreamRng {
        &mut self.net.host_mut(self.host).rng
    }

    /// Transmit a packet on the physical network, charging only the kernel
    /// stack-traversal cost.
    pub fn send(&mut self, pkt: Ipv4Packet) {
        self.send_with_processing(pkt, Duration::ZERO);
    }

    /// Transmit a packet, charging `extra_processing` of host CPU time on top of
    /// the kernel stack-traversal cost (used by IPOP for its user-level work).
    pub fn send_with_processing(&mut self, pkt: Ipv4Packet, extra_processing: Duration) {
        let host = self.host;
        self.net.transmit(self.ctl, host, pkt, extra_processing);
    }

    /// Occupy the host CPU for `work` without sending anything (used to account for
    /// receive-side user-level processing). Returns the completion instant.
    pub fn consume_cpu(&mut self, work: Duration) -> SimTime {
        let now = self.ctl.now();
        self.net.host_mut(self.host).occupy_cpu(now, work)
    }

    /// Arm a timer that will call [`HostAgent::on_timer`] with `token` after
    /// `delay`.
    pub fn set_timer(&mut self, delay: Duration, token: TimerToken) {
        let host = self.host;
        self.ctl
            .schedule_event_in(delay, NetEvent::Timer(host, token));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_queue_is_fifo() {
        let rng = StreamRng::new(1, "host");
        let mut h = Host::new(
            HostId(0),
            "test".into(),
            SiteId(0),
            Ipv4Addr::new(10, 0, 0, 1),
            1.0,
            rng,
        );
        let t0 = SimTime::ZERO;
        let done1 = h.occupy_cpu(t0, Duration::from_millis(2));
        assert_eq!(done1, t0 + Duration::from_millis(2));
        // Second job queued behind the first even though it "arrives" at t0.
        let done2 = h.occupy_cpu(t0, Duration::from_millis(3));
        assert_eq!(done2, t0 + Duration::from_millis(5));
        // A job arriving after the queue drained starts immediately.
        let late = t0 + Duration::from_millis(50);
        let done3 = h.occupy_cpu(late, Duration::from_millis(1));
        assert_eq!(done3, late + Duration::from_millis(1));
    }
}
