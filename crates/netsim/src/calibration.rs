//! Calibration constants for host processing costs.
//!
//! The paper's latency numbers are dominated not by the physical links but by what
//! happens inside the hosts: every packet sent on the virtual network traverses a
//! kernel TCP/IP stack twice (once on the virtual interface, once on the physical
//! one) and is handled in between by the user-level IPOP process, a C#/Mono program
//! reading and writing a character device. These constants are the simulator's
//! stand-ins for those costs. They were chosen so that the *physical* baselines land
//! in the ranges Table I/II report for the 2006-era testbed, and the IPOP overhead
//! falls in the 6–10 ms band the paper highlights; EXPERIMENTS.md records the
//! resulting paper-vs-measured comparison.
//!
//! The user-level cost scales with the host's CPU load (Section IV-D attributes the
//! 1.4 s Planet-Lab overhead to CPU loads in excess of 10), which is how the Fig. 5
//! experiment is reproduced.

use ipop_simcore::Duration;

/// Per-host processing-cost model.
#[derive(Clone, Copy, Debug)]
pub struct Calibration {
    /// Cost of one traversal of the kernel TCP/IP stack (per packet).
    pub kernel_stack_cost: Duration,
    /// Cost of the kernel⇄tap character-device crossing (per frame).
    pub tap_crossing_cost: Duration,
    /// User-level IPOP processing *latency* per packet at CPU load 1 (read frame,
    /// extract IP, hash lookup, encapsulate, route decision, write to transport).
    /// This is how long one packet spends inside the user-level router.
    pub ipop_processing_cost: Duration,
    /// User-level IPOP *occupancy* per packet at CPU load 1: the CPU time one
    /// packet exclusively consumes in steady state. Smaller than the latency
    /// cost because the router pipelines (reads, processing and writes of
    /// consecutive packets overlap; syscall batching amortises context
    /// switches). This is what bounds sustained throughput: the paper's Table II
    /// shows the user-level router saturating around 2 MB/s on a LAN (~1500
    /// packets/s each way), an order of magnitude more than 1/latency would
    /// allow.
    pub ipop_pipeline_cost: Duration,
    /// User-level overlay routing cost per packet when merely forwarding on behalf
    /// of other nodes (no tap crossing involved).
    pub overlay_forward_cost: Duration,
    /// Fixed scheduling quantum added per user-level wakeup when the host is
    /// heavily loaded (models timeslice waits on contended Planet-Lab nodes).
    pub load_scheduling_quantum: Duration,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            kernel_stack_cost: Duration::from_micros(120),
            tap_crossing_cost: Duration::from_micros(180),
            ipop_processing_cost: Duration::from_micros(1250),
            ipop_pipeline_cost: Duration::from_micros(330),
            overlay_forward_cost: Duration::from_micros(700),
            load_scheduling_quantum: Duration::from_millis(60),
        }
    }
}

impl Calibration {
    /// The user-level IPOP cost on a host with the given CPU load factor.
    ///
    /// Load 1.0 means an otherwise idle machine. The cost grows linearly with load
    /// (the process gets 1/load of the CPU) plus, beyond load ≈ 2, a scheduling
    /// quantum term: on a heavily contended node the user-level router must first
    /// wait to be scheduled at all.
    pub fn ipop_cost_at_load(&self, load: f64) -> Duration {
        self.scaled(self.ipop_processing_cost, load)
    }

    /// The overlay forwarding cost on a host with the given CPU load factor.
    pub fn forward_cost_at_load(&self, load: f64) -> Duration {
        self.scaled(self.overlay_forward_cost, load)
    }

    /// The per-packet CPU *occupancy* of the user-level router at the given
    /// load. Scales with the CPU share only — the scheduling quantum is a wait,
    /// not work, so it contributes to latency but not to occupancy.
    pub fn pipeline_cost_at_load(&self, load: f64) -> Duration {
        self.ipop_pipeline_cost.mul_f64(load.max(1.0))
    }

    fn scaled(&self, base: Duration, load: f64) -> Duration {
        let load = load.max(1.0);
        let cpu_share = base.mul_f64(load);
        let scheduling = if load > 2.0 {
            self.load_scheduling_quantum.mul_f64((load - 2.0) / 10.0)
        } else {
            Duration::ZERO
        };
        cpu_share + scheduling
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_host_pays_the_base_cost() {
        let c = Calibration::default();
        assert_eq!(c.ipop_cost_at_load(1.0), c.ipop_processing_cost);
        assert_eq!(
            c.ipop_cost_at_load(0.0),
            c.ipop_processing_cost,
            "load clamps to 1"
        );
    }

    #[test]
    fn cost_grows_with_load() {
        let c = Calibration::default();
        assert!(c.ipop_cost_at_load(2.0) > c.ipop_cost_at_load(1.0));
        assert!(c.ipop_cost_at_load(10.0) > c.ipop_cost_at_load(2.0));
    }

    #[test]
    fn planet_lab_load_costs_hundreds_of_milliseconds() {
        // At load ≈ 10 the per-packet user-level cost must be large enough that a
        // 2-hop overlay path accumulates RTTs over a second (paper Fig. 5).
        let c = Calibration::default();
        let cost = c.forward_cost_at_load(10.0);
        assert!(cost >= Duration::from_millis(50), "cost {cost}");
        assert!(cost <= Duration::from_millis(500), "cost {cost}");
    }

    #[test]
    fn pipeline_occupancy_is_well_below_latency() {
        let c = Calibration::default();
        assert!(c.pipeline_cost_at_load(1.0) < c.ipop_cost_at_load(1.0) / 2);
        // Sustained per-host packet rate (data + ACK both directions) must allow
        // the paper's ~2 MB/s LAN ttcp ceiling: ≥ 1400 B packets at ≥ 1400/s.
        let per_packet = c.pipeline_cost_at_load(1.0) + c.tap_crossing_cost;
        assert!(
            per_packet <= Duration::from_micros(700),
            "occupancy {per_packet}"
        );
    }

    #[test]
    fn ipop_lan_overhead_band() {
        // Two endpoints, each adding tap crossing + ipop processing + an extra
        // kernel stack traversal per direction, must land in the paper's 6-10 ms
        // round-trip overhead band at load 1.
        let c = Calibration::default();
        let per_direction = (c.tap_crossing_cost
            + c.ipop_cost_at_load(1.0)
            + c.kernel_stack_cost) // extra stack traversal on the virtual interface
            * 2; // both endpoints process the packet
        let rtt_overhead = per_direction * 2;
        let ms = rtt_overhead.as_millis_f64();
        assert!((5.0..=11.0).contains(&ms), "overhead {ms} ms");
    }
}
