//! Sites: the administrative domains of the testbed.
//!
//! A site groups hosts that share a LAN segment, an access link to the wide-area
//! core, and (optionally) a firewall and/or a NAT box at its border — mirroring the
//! three domains of the paper's Fig. 4 testbed (the ACIS private LAN behind a NAT,
//! and the VIMS and LSU machines behind site firewalls) as well as the many
//! single-host "sites" of the Planet-Lab experiment.

use std::net::Ipv4Addr;

use ipop_simcore::Duration;

use crate::firewall::Firewall;
use crate::link::{Link, LinkParams};
use crate::nat::NatBox;

/// An IPv4 prefix, used to decide whether an address is internal to a site.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Prefix {
    /// Network address.
    pub network: Ipv4Addr,
    /// Prefix length in bits.
    pub len: u8,
}

impl Prefix {
    /// Construct a prefix.
    pub fn new(network: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length out of range");
        Prefix { network, len }
    }

    /// Does `addr` fall inside this prefix?
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        if self.len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - self.len);
        (u32::from(addr) & mask) == (u32::from(self.network) & mask)
    }
}

/// Parameters for building a site.
#[derive(Debug)]
pub struct SiteSpec {
    /// Human-readable name (e.g. `"ACIS"`, `"VIMS"`).
    pub name: String,
    /// LAN segment parameters (host ⇄ site border).
    pub lan: LinkParams,
    /// Access link parameters (site border ⇄ wide-area core), outbound direction.
    pub access_up: LinkParams,
    /// Access link parameters, inbound direction.
    pub access_down: LinkParams,
    /// Border firewall, if any.
    pub firewall: Option<Firewall>,
    /// Border NAT, if any.
    pub nat: Option<NatBox>,
    /// The private prefix NATed hosts live in (addresses outside it are assumed to
    /// be publicly routable even when the site has a NAT).
    pub private_prefix: Option<Prefix>,
}

impl SiteSpec {
    /// A plain site: open firewall policy, no NAT, 100 Mbit LAN, fast access link.
    pub fn open(name: &str) -> Self {
        SiteSpec {
            name: name.to_string(),
            lan: LinkParams::lan_100mbit(),
            access_up: LinkParams::wan(Duration::from_millis(1), 100.0),
            access_down: LinkParams::wan(Duration::from_millis(1), 100.0),
            firewall: None,
            nat: None,
            private_prefix: None,
        }
    }

    /// Builder: set the LAN parameters.
    pub fn with_lan(mut self, lan: LinkParams) -> Self {
        self.lan = lan;
        self
    }

    /// Builder: set both directions of the access link.
    pub fn with_access(mut self, params: LinkParams) -> Self {
        self.access_up = params;
        self.access_down = params;
        self
    }

    /// Builder: install a firewall.
    pub fn with_firewall(mut self, fw: Firewall) -> Self {
        self.firewall = Some(fw);
        self
    }

    /// Builder: install a NAT for hosts inside `private_prefix`.
    pub fn with_nat(mut self, nat: NatBox, private_prefix: Prefix) -> Self {
        self.nat = Some(nat);
        self.private_prefix = Some(private_prefix);
        self
    }
}

/// A site instantiated inside the network.
pub struct Site {
    /// Name.
    pub name: String,
    /// Shared LAN segment.
    pub lan: Link,
    /// Access link, site → core.
    pub access_up: Link,
    /// Access link, core → site.
    pub access_down: Link,
    /// Border firewall.
    pub firewall: Option<Firewall>,
    /// Border NAT.
    pub nat: Option<NatBox>,
    /// Private prefix (see [`SiteSpec::private_prefix`]).
    pub private_prefix: Option<Prefix>,
}

impl Site {
    pub(crate) fn from_spec(spec: SiteSpec) -> Self {
        Site {
            name: spec.name,
            lan: Link::new(spec.lan),
            access_up: Link::new(spec.access_up),
            access_down: Link::new(spec.access_down),
            firewall: spec.firewall,
            nat: spec.nat,
            private_prefix: spec.private_prefix,
        }
    }

    /// Is `addr` one of this site's private (NATed) addresses?
    pub fn is_private_addr(&self, addr: Ipv4Addr) -> bool {
        self.private_prefix.is_some_and(|p| p.contains(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nat::NatType;

    #[test]
    fn prefix_matching() {
        let p = Prefix::new(Ipv4Addr::new(192, 168, 1, 0), 24);
        assert!(p.contains(Ipv4Addr::new(192, 168, 1, 77)));
        assert!(!p.contains(Ipv4Addr::new(192, 168, 2, 1)));
        let everything = Prefix::new(Ipv4Addr::UNSPECIFIED, 0);
        assert!(everything.contains(Ipv4Addr::new(8, 8, 8, 8)));
        let host_route = Prefix::new(Ipv4Addr::new(10, 0, 0, 7), 32);
        assert!(host_route.contains(Ipv4Addr::new(10, 0, 0, 7)));
        assert!(!host_route.contains(Ipv4Addr::new(10, 0, 0, 8)));
    }

    #[test]
    fn site_spec_builders() {
        let spec = SiteSpec::open("ACIS")
            .with_nat(
                NatBox::new(NatType::PortRestrictedCone, Ipv4Addr::new(128, 227, 56, 1)),
                Prefix::new(Ipv4Addr::new(192, 168, 0, 0), 16),
            )
            .with_firewall(Firewall::default_deny_inbound());
        let site = Site::from_spec(spec);
        assert!(site.is_private_addr(Ipv4Addr::new(192, 168, 3, 4)));
        assert!(!site.is_private_addr(Ipv4Addr::new(128, 227, 56, 83)));
        assert!(site.nat.is_some());
        assert!(site.firewall.is_some());
    }

    #[test]
    fn open_site_has_no_middleboxes() {
        let site = Site::from_spec(SiteSpec::open("UFL"));
        assert!(site.nat.is_none());
        assert!(site.firewall.is_none());
        assert!(!site.is_private_addr(Ipv4Addr::new(10, 0, 0, 1)));
    }
}
