//! Stateful site firewalls.
//!
//! The paper's testbed (Fig. 4) places V1 behind the VIMS firewall and L1 behind
//! the LSU firewall: neither accepts unsolicited inbound connections (except SSH
//! from one specific host), and LFW even restricts *outbound* TCP to a single
//! destination. IPOP still achieves bidirectional virtual connectivity because the
//! overlay only ever needs outbound-initiated flows plus the reply traffic a
//! stateful firewall always admits. The model here is a standard first-match rule
//! list plus a connection-tracking table for established flows.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use ipop_packet::ipv4::{Ipv4Packet, Protocol};

/// Direction of a packet relative to the protected site.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Leaving the site.
    Outbound,
    /// Entering the site.
    Inbound,
}

/// Which hosts a rule applies to.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum HostMatch {
    /// Any address.
    Any,
    /// Exactly this address.
    Addr(Ipv4Addr),
}

impl HostMatch {
    fn matches(&self, addr: Ipv4Addr) -> bool {
        match self {
            HostMatch::Any => true,
            HostMatch::Addr(a) => *a == addr,
        }
    }
}

/// Which protocols a rule applies to.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ProtoMatch {
    /// Any protocol.
    Any,
    /// TCP only.
    Tcp,
    /// UDP only.
    Udp,
    /// ICMP only.
    Icmp,
}

impl ProtoMatch {
    fn matches(&self, p: Protocol) -> bool {
        match self {
            ProtoMatch::Any => true,
            ProtoMatch::Tcp => p == Protocol::Tcp,
            ProtoMatch::Udp => p == Protocol::Udp,
            ProtoMatch::Icmp => p == Protocol::Icmp,
        }
    }
}

/// A single filtering rule.
#[derive(Copy, Clone, Debug)]
pub struct Rule {
    /// Direction this rule applies to.
    pub direction: Direction,
    /// Protocol filter.
    pub proto: ProtoMatch,
    /// Remote (off-site) host filter.
    pub remote: HostMatch,
    /// Destination-port filter (`None` = any). For inbound rules this is the port
    /// on the protected host; for outbound rules the port on the remote host.
    pub dst_port: Option<u16>,
    /// Permit or deny.
    pub allow: bool,
}

impl Rule {
    /// Allow inbound traffic to `dst_port` from `remote`.
    pub fn allow_inbound(proto: ProtoMatch, remote: HostMatch, dst_port: Option<u16>) -> Self {
        Rule {
            direction: Direction::Inbound,
            proto,
            remote,
            dst_port,
            allow: true,
        }
    }

    /// Allow outbound traffic to `remote` (any port unless given).
    pub fn allow_outbound(proto: ProtoMatch, remote: HostMatch, dst_port: Option<u16>) -> Self {
        Rule {
            direction: Direction::Outbound,
            proto,
            remote,
            dst_port,
            allow: true,
        }
    }

    /// Deny outbound traffic to `remote`.
    pub fn deny_outbound(proto: ProtoMatch, remote: HostMatch) -> Self {
        Rule {
            direction: Direction::Outbound,
            proto,
            remote,
            dst_port: None,
            allow: false,
        }
    }
}

/// Identity of a flow for connection tracking: (internal endpoint, remote endpoint,
/// protocol number). Ports are zero for ICMP, where the echo identifier is used.
type FlowKey = (Ipv4Addr, u16, Ipv4Addr, u16, u8);

/// A stateful firewall guarding one site.
#[derive(Debug)]
pub struct Firewall {
    rules: Vec<Rule>,
    default_outbound_allow: bool,
    default_inbound_allow: bool,
    established: BTreeSet<FlowKey>,
    /// Packets dropped, for diagnostics.
    pub dropped: u64,
}

impl Firewall {
    /// A firewall with the common policy: all outbound allowed, all unsolicited
    /// inbound denied, reply traffic of established flows allowed.
    pub fn default_deny_inbound() -> Self {
        Firewall {
            rules: Vec::new(),
            default_outbound_allow: true,
            default_inbound_allow: false,
            established: BTreeSet::new(),
            dropped: 0,
        }
    }

    /// A fully open firewall (used for sites that have none).
    pub fn open() -> Self {
        Firewall {
            rules: Vec::new(),
            default_outbound_allow: true,
            default_inbound_allow: true,
            established: BTreeSet::new(),
            dropped: 0,
        }
    }

    /// Restrict the default outbound policy to deny (LFW-style).
    pub fn with_default_outbound_deny(mut self) -> Self {
        self.default_outbound_allow = false;
        self
    }

    /// Append a rule (first match wins).
    pub fn add_rule(&mut self, rule: Rule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// Number of tracked established flows.
    pub fn established_flows(&self) -> usize {
        self.established.len()
    }

    /// Does the default policy admit unsolicited inbound traffic? (Used to judge
    /// whether a host behind this firewall can serve as an overlay bootstrap.)
    pub fn accepts_unsolicited_inbound(&self) -> bool {
        self.default_inbound_allow
    }

    fn flow_key(internal: (Ipv4Addr, u16), remote: (Ipv4Addr, u16), proto: Protocol) -> FlowKey {
        (internal.0, internal.1, remote.0, remote.1, proto.value())
    }

    fn packet_ports(pkt: &Ipv4Packet) -> (u16, u16) {
        match pkt.ports() {
            Some(p) => p,
            None => match &pkt.payload {
                ipop_packet::ipv4::Ipv4Payload::Icmp(icmp) => (icmp.identifier, icmp.identifier),
                _ => (0, 0),
            },
        }
    }

    /// Filter a packet crossing the firewall. `internal_side_src` tells the
    /// firewall whether the packet originates inside the site (outbound) or outside
    /// (inbound). Returns `true` if the packet may pass.
    pub fn permit(&mut self, direction: Direction, pkt: &Ipv4Packet) -> bool {
        let proto = pkt.protocol();
        let (src_port, dst_port) = Self::packet_ports(pkt);
        let verdict = match direction {
            Direction::Outbound => {
                let remote = pkt.dst();
                let decision = self
                    .rules
                    .iter()
                    .find(|r| {
                        r.direction == Direction::Outbound
                            && r.proto.matches(proto)
                            && r.remote.matches(remote)
                            && r.dst_port.is_none_or(|p| p == dst_port)
                    })
                    .map(|r| r.allow)
                    .unwrap_or(self.default_outbound_allow);
                if decision {
                    // Track the flow so replies are admitted.
                    self.established.insert(Self::flow_key(
                        (pkt.src(), src_port),
                        (remote, dst_port),
                        proto,
                    ));
                }
                decision
            }
            Direction::Inbound => {
                let remote = pkt.src();
                // 1. Reply traffic of an established outbound flow.
                let key = Self::flow_key((pkt.dst(), dst_port), (remote, src_port), proto);
                if self.established.contains(&key) {
                    return true;
                }
                // 2. Explicit rules.
                self.rules
                    .iter()
                    .find(|r| {
                        r.direction == Direction::Inbound
                            && r.proto.matches(proto)
                            && r.remote.matches(remote)
                            && r.dst_port.is_none_or(|p| p == dst_port)
                    })
                    .map(|r| r.allow)
                    .unwrap_or(self.default_inbound_allow)
            }
        };
        if !verdict {
            self.dropped += 1;
        }
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipop_packet::icmp::IcmpPacket;
    use ipop_packet::ipv4::Ipv4Payload;
    use ipop_packet::tcp::TcpSegment;
    use ipop_packet::udp::UdpDatagram;

    const INSIDE: Ipv4Addr = Ipv4Addr::new(10, 5, 0, 2);
    const OUTSIDE: Ipv4Addr = Ipv4Addr::new(128, 227, 1, 1);
    const OTHER: Ipv4Addr = Ipv4Addr::new(192, 5, 5, 5);

    fn udp_packet(src: Ipv4Addr, sp: u16, dst: Ipv4Addr, dp: u16) -> Ipv4Packet {
        Ipv4Packet::new(
            src,
            dst,
            Ipv4Payload::Udp(UdpDatagram::new(sp, dp, vec![1])),
        )
    }

    fn tcp_syn(src: Ipv4Addr, sp: u16, dst: Ipv4Addr, dp: u16) -> Ipv4Packet {
        Ipv4Packet::new(
            src,
            dst,
            Ipv4Payload::Tcp(TcpSegment::syn(sp, dp, 1, 1000, 1400)),
        )
    }

    #[test]
    fn unsolicited_inbound_denied_but_replies_allowed() {
        let mut fw = Firewall::default_deny_inbound();
        // Unsolicited inbound UDP: dropped.
        assert!(!fw.permit(Direction::Inbound, &udp_packet(OUTSIDE, 7000, INSIDE, 4000)));
        // Outbound first...
        assert!(fw.permit(
            Direction::Outbound,
            &udp_packet(INSIDE, 4000, OUTSIDE, 7000)
        ));
        assert_eq!(fw.established_flows(), 1);
        // ...then the reply is admitted.
        assert!(fw.permit(Direction::Inbound, &udp_packet(OUTSIDE, 7000, INSIDE, 4000)));
        // But a different remote port is still blocked.
        assert!(!fw.permit(Direction::Inbound, &udp_packet(OUTSIDE, 7001, INSIDE, 4000)));
        assert_eq!(fw.dropped, 2);
    }

    #[test]
    fn ssh_style_inbound_exception() {
        // VFW/LFW: only F3 may open inbound connections, and only to port 22.
        let mut fw = Firewall::default_deny_inbound();
        fw.add_rule(Rule::allow_inbound(
            ProtoMatch::Tcp,
            HostMatch::Addr(OUTSIDE),
            Some(22),
        ));
        assert!(fw.permit(Direction::Inbound, &tcp_syn(OUTSIDE, 5555, INSIDE, 22)));
        assert!(!fw.permit(Direction::Inbound, &tcp_syn(OUTSIDE, 5555, INSIDE, 80)));
        assert!(!fw.permit(Direction::Inbound, &tcp_syn(OTHER, 5555, INSIDE, 22)));
    }

    #[test]
    fn outbound_default_deny_with_exception() {
        // LFW only allows outgoing TCP connections to one machine.
        let mut fw = Firewall::default_deny_inbound().with_default_outbound_deny();
        fw.add_rule(Rule::allow_outbound(
            ProtoMatch::Tcp,
            HostMatch::Addr(OUTSIDE),
            None,
        ));
        fw.add_rule(Rule::allow_outbound(ProtoMatch::Udp, HostMatch::Any, None));
        assert!(fw.permit(Direction::Outbound, &tcp_syn(INSIDE, 1000, OUTSIDE, 4001)));
        assert!(!fw.permit(Direction::Outbound, &tcp_syn(INSIDE, 1000, OTHER, 4001)));
        // UDP anywhere is fine under the exception rule.
        assert!(fw.permit(Direction::Outbound, &udp_packet(INSIDE, 1000, OTHER, 4001)));
    }

    #[test]
    fn icmp_echo_uses_identifier_for_state() {
        let mut fw = Firewall::default_deny_inbound();
        let request = Ipv4Packet::new(
            INSIDE,
            OUTSIDE,
            Ipv4Payload::Icmp(IcmpPacket::echo_request(42, 1, vec![0; 8])),
        );
        let reply = Ipv4Packet::new(
            OUTSIDE,
            INSIDE,
            Ipv4Payload::Icmp(IcmpPacket::echo_reply(&IcmpPacket::echo_request(
                42,
                1,
                vec![0; 8],
            ))),
        );
        assert!(fw.permit(Direction::Outbound, &request));
        assert!(fw.permit(Direction::Inbound, &reply));
        // A reply with a different identifier is unsolicited.
        let stray = Ipv4Packet::new(
            OUTSIDE,
            INSIDE,
            Ipv4Payload::Icmp(IcmpPacket::echo_reply(&IcmpPacket::echo_request(
                43,
                1,
                vec![0; 8],
            ))),
        );
        assert!(!fw.permit(Direction::Inbound, &stray));
    }

    #[test]
    fn open_firewall_permits_everything() {
        let mut fw = Firewall::open();
        assert!(fw.permit(Direction::Inbound, &tcp_syn(OUTSIDE, 1, INSIDE, 80)));
        assert!(fw.permit(Direction::Outbound, &udp_packet(INSIDE, 1, OTHER, 2)));
        assert_eq!(fw.dropped, 0);
    }
}
