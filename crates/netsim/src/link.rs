//! Link model: propagation latency, serialization (bandwidth), jitter, loss and a
//! drop-tail queue expressed as a "busy until" horizon.
//!
//! Every physical path in the simulator is assembled from link segments (a LAN
//! segment, site access links, a wide-area core segment). The transfer-time model
//! is the classic store-and-forward one: a packet of `b` bytes leaving at time `t`
//! on a link that is busy until `u` begins serialization at `max(t, u)`, occupies
//! the link for `b / bandwidth`, then propagates for `latency (+ jitter)`.

use ipop_simcore::{Duration, SimTime, StreamRng};

/// Static parameters of a link segment.
#[derive(Clone, Copy, Debug)]
pub struct LinkParams {
    /// One-way propagation latency.
    pub latency: Duration,
    /// Bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Standard deviation of per-packet jitter (normal, truncated at zero).
    pub jitter: Duration,
    /// Independent per-packet loss probability in `[0, 1]`.
    pub loss: f64,
    /// Maximum queueing backlog; packets that would have to wait longer than this
    /// for serialization are dropped (drop-tail).
    pub max_queue_delay: Duration,
}

impl LinkParams {
    /// A typical switched 100 Mbit/s laboratory LAN segment.
    pub fn lan_100mbit() -> Self {
        LinkParams {
            latency: Duration::from_micros(80),
            bandwidth_bps: 100e6 / 8.0,
            jitter: Duration::from_micros(15),
            loss: 0.0,
            max_queue_delay: Duration::from_millis(200),
        }
    }

    /// A wide-area path segment with the given one-way latency and bandwidth.
    pub fn wan(latency: Duration, bandwidth_mbps: f64) -> Self {
        LinkParams {
            latency,
            bandwidth_bps: bandwidth_mbps * 1e6 / 8.0,
            jitter: Duration::from_micros(200),
            loss: 0.0,
            max_queue_delay: Duration::from_millis(500),
        }
    }

    /// Builder: set the loss probability.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Builder: set the jitter standard deviation.
    pub fn with_jitter(mut self, jitter: Duration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Time to serialize `bytes` onto this link.
    pub fn serialization(&self, bytes: usize) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.bandwidth_bps)
    }
}

/// Per-direction dynamic state of a link segment.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkState {
    /// The instant until which the transmitter is busy serializing earlier packets.
    pub busy_until: SimTime,
    /// Packets transmitted.
    pub tx_packets: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
    /// Packets dropped (loss or full queue).
    pub dropped: u64,
}

/// The outcome of offering a packet to a link segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkOutcome {
    /// The packet will arrive at the far end of the segment at the given time.
    Delivered(SimTime),
    /// The packet was dropped (random loss or queue overflow).
    Dropped,
}

/// A link segment: static parameters plus per-direction state.
#[derive(Clone, Debug)]
pub struct Link {
    /// Static parameters.
    pub params: LinkParams,
    /// Dynamic state.
    pub state: LinkState,
}

impl Link {
    /// A new idle link.
    pub fn new(params: LinkParams) -> Self {
        Link { params, state: LinkState::default() }
    }

    /// Offer a packet of `bytes` bytes to the link at time `depart`.
    pub fn transmit(&mut self, depart: SimTime, bytes: usize, rng: &mut StreamRng) -> LinkOutcome {
        if self.params.loss > 0.0 && rng.chance(self.params.loss) {
            self.state.dropped += 1;
            return LinkOutcome::Dropped;
        }
        let start = depart.max(self.state.busy_until);
        let queue_delay = start.saturating_since(depart);
        if queue_delay > self.params.max_queue_delay {
            self.state.dropped += 1;
            return LinkOutcome::Dropped;
        }
        let ser = self.params.serialization(bytes);
        self.state.busy_until = start + ser;
        let jitter = if self.params.jitter.is_zero() {
            Duration::ZERO
        } else {
            rng.normal(Duration::ZERO, self.params.jitter)
        };
        let arrival = self.state.busy_until + self.params.latency + jitter;
        self.state.tx_packets += 1;
        self.state.tx_bytes += bytes as u64;
        LinkOutcome::Delivered(arrival)
    }

    /// Observed utilisation: bytes transmitted so far.
    pub fn tx_bytes(&self) -> u64 {
        self.state.tx_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StreamRng {
        StreamRng::new(1, "link-test")
    }

    #[test]
    fn serialization_time_scales_with_size() {
        let p = LinkParams::wan(Duration::from_millis(10), 8.0); // 1 MB/s
        assert_eq!(p.serialization(1_000_000), Duration::from_secs(1));
        assert_eq!(p.serialization(1_000), Duration::from_millis(1));
    }

    #[test]
    fn idle_link_delivers_after_latency_plus_serialization() {
        let mut link = Link::new(LinkParams {
            latency: Duration::from_millis(5),
            bandwidth_bps: 1e6,
            jitter: Duration::ZERO,
            loss: 0.0,
            max_queue_delay: Duration::from_secs(1),
        });
        let out = link.transmit(SimTime::ZERO, 1_000, &mut rng());
        // 1000 bytes at 1 MB/s = 1 ms serialization + 5 ms latency.
        assert_eq!(out, LinkOutcome::Delivered(SimTime::ZERO + Duration::from_millis(6)));
    }

    #[test]
    fn back_to_back_packets_queue_behind_each_other() {
        let mut link = Link::new(LinkParams {
            latency: Duration::from_millis(1),
            bandwidth_bps: 1e6,
            jitter: Duration::ZERO,
            loss: 0.0,
            max_queue_delay: Duration::from_secs(1),
        });
        let mut r = rng();
        let a = link.transmit(SimTime::ZERO, 1_000, &mut r);
        let b = link.transmit(SimTime::ZERO, 1_000, &mut r);
        let (LinkOutcome::Delivered(ta), LinkOutcome::Delivered(tb)) = (a, b) else {
            panic!("both delivered")
        };
        assert_eq!(tb.saturating_since(ta), Duration::from_millis(1));
        assert_eq!(link.state.tx_packets, 2);
        assert_eq!(link.tx_bytes(), 2_000);
    }

    #[test]
    fn bandwidth_bounds_throughput() {
        // Push 100 packets of 10 kB through a 1 MB/s link: the last arrival must be
        // no earlier than 1 second after the first departure.
        let mut link = Link::new(LinkParams {
            latency: Duration::from_micros(10),
            bandwidth_bps: 1e6,
            jitter: Duration::ZERO,
            loss: 0.0,
            max_queue_delay: Duration::from_secs(60),
        });
        let mut r = rng();
        let mut last = SimTime::ZERO;
        for _ in 0..100 {
            if let LinkOutcome::Delivered(t) = link.transmit(SimTime::ZERO, 10_000, &mut r) {
                last = last.max(t);
            }
        }
        assert!(last.saturating_since(SimTime::ZERO) >= Duration::from_secs(1));
    }

    #[test]
    fn full_queue_drops() {
        let mut link = Link::new(LinkParams {
            latency: Duration::ZERO,
            bandwidth_bps: 1e3, // 1 kB/s: 1 packet of 1 kB = 1 s serialization
            jitter: Duration::ZERO,
            loss: 0.0,
            max_queue_delay: Duration::from_millis(1500),
        });
        let mut r = rng();
        assert!(matches!(link.transmit(SimTime::ZERO, 1_000, &mut r), LinkOutcome::Delivered(_)));
        assert!(matches!(link.transmit(SimTime::ZERO, 1_000, &mut r), LinkOutcome::Delivered(_)));
        // Third packet would wait 2 s > 1.5 s limit.
        assert_eq!(link.transmit(SimTime::ZERO, 1_000, &mut r), LinkOutcome::Dropped);
        assert_eq!(link.state.dropped, 1);
    }

    #[test]
    fn lossy_link_drops_roughly_the_configured_fraction() {
        let mut link = Link::new(LinkParams::lan_100mbit().with_loss(0.3));
        let mut r = rng();
        let mut dropped = 0;
        for _ in 0..10_000 {
            if link.transmit(SimTime::ZERO, 100, &mut r) == LinkOutcome::Dropped {
                dropped += 1;
            }
        }
        assert!((2_500..3_500).contains(&dropped), "dropped {dropped}");
    }
}
