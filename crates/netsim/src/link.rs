//! Link model: propagation latency, serialization (bandwidth), jitter, loss and a
//! drop-tail queue expressed as a "busy until" horizon.
//!
//! Every physical path in the simulator is assembled from link segments (a LAN
//! segment, site access links, a wide-area core segment). The transfer-time model
//! is the classic store-and-forward one: a packet of `b` bytes leaving at time `t`
//! on a link that is busy until `u` begins serialization at `max(t, u)`, occupies
//! the link for `b / bandwidth`, then propagates for `latency (+ jitter)`.

use ipop_simcore::{Duration, SimTime, StreamRng};

/// Static parameters of a link segment.
#[derive(Clone, Copy, Debug)]
pub struct LinkParams {
    /// One-way propagation latency.
    pub latency: Duration,
    /// Bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Standard deviation of per-packet jitter (normal, truncated at zero).
    pub jitter: Duration,
    /// Independent per-packet loss probability in `[0, 1]`.
    pub loss: f64,
    /// Maximum queueing backlog; packets that would have to wait longer than this
    /// for serialization are dropped (drop-tail).
    pub max_queue_delay: Duration,
}

impl LinkParams {
    /// A typical switched 100 Mbit/s laboratory LAN segment.
    pub fn lan_100mbit() -> Self {
        LinkParams {
            latency: Duration::from_micros(80),
            bandwidth_bps: 100e6 / 8.0,
            jitter: Duration::from_micros(15),
            loss: 0.0,
            max_queue_delay: Duration::from_millis(200),
        }
    }

    /// A wide-area path segment with the given one-way latency and bandwidth.
    pub fn wan(latency: Duration, bandwidth_mbps: f64) -> Self {
        LinkParams {
            latency,
            bandwidth_bps: bandwidth_mbps * 1e6 / 8.0,
            jitter: Duration::from_micros(200),
            loss: 0.0,
            max_queue_delay: Duration::from_millis(500),
        }
    }

    /// Builder: set the loss probability.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Builder: set the jitter standard deviation.
    pub fn with_jitter(mut self, jitter: Duration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Time to serialize `bytes` onto this link.
    pub fn serialization(&self, bytes: usize) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.bandwidth_bps)
    }
}

/// Per-direction dynamic state of a link segment.
#[derive(Clone, Debug, Default)]
pub struct LinkState {
    /// The end of the latest serialization window (diagnostics; the scheduler
    /// below is work-conserving, so this is *not* a blocking horizon).
    pub busy_until: SimTime,
    /// Outstanding serialization windows `(start, end)`, sorted by start. A
    /// packet can reach this link at a future instant (its flight time through
    /// upstream segments is already known), so the transmitter keeps a schedule
    /// instead of a single horizon: a reservation in the future must not block
    /// a packet that wants the wire *now*.
    reservations: Vec<(SimTime, SimTime)>,
    /// `(depart, start)` of the most recent offer, used to keep the schedule
    /// FIFO for monotone offers: a packet offered after another with an equal
    /// or earlier depart must not gap-fit ahead of it (a real transmitter
    /// cannot reorder its own queue). Offers with *earlier* departs — packets
    /// that were already in flight upstream — may still use idle gaps.
    last_offer: Option<(SimTime, SimTime)>,
    /// Packets transmitted.
    pub tx_packets: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
    /// Packets dropped (loss or full queue).
    pub dropped: u64,
}

/// The outcome of offering a packet to a link segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkOutcome {
    /// The packet will arrive at the far end of the segment at the given time.
    Delivered(SimTime),
    /// The packet was dropped (random loss or queue overflow).
    Dropped,
}

/// A link segment: static parameters plus per-direction state.
#[derive(Clone, Debug)]
pub struct Link {
    /// Static parameters.
    pub params: LinkParams,
    /// Dynamic state.
    pub state: LinkState,
}

impl Link {
    /// A new idle link.
    pub fn new(params: LinkParams) -> Self {
        Link {
            params,
            state: LinkState::default(),
        }
    }

    /// Offer a packet of `bytes` bytes to the link at time `depart` (which may
    /// lie in the future when the packet is still in flight through upstream
    /// segments). `now` is the current simulation time, used to prune the
    /// reservation schedule — no future offer can start before `now`.
    ///
    /// The transmitter is a work-conserving single server: the packet is placed
    /// into the earliest idle gap at or after `depart` that fits its
    /// serialization time, so a reservation in the future never delays a packet
    /// that wants the (currently idle) wire earlier.
    pub fn transmit(
        &mut self,
        now: SimTime,
        depart: SimTime,
        bytes: usize,
        rng: &mut StreamRng,
    ) -> LinkOutcome {
        if self.params.loss > 0.0 && rng.chance(self.params.loss) {
            self.state.dropped += 1;
            return LinkOutcome::Dropped;
        }
        self.state.reservations.retain(|&(_, end)| end > now);
        let ser = self.params.serialization(bytes);
        // Earliest gap-fit at or after `depart` — but never ahead of a
        // previous offer whose depart was not later than ours (same-sender
        // FIFO; see `LinkState::last_offer`).
        let mut start = depart;
        if let Some((prev_depart, prev_start)) = self.state.last_offer {
            if depart >= prev_depart {
                start = start.max(prev_start);
            }
        }
        for &(s, e) in &self.state.reservations {
            if start + ser <= s {
                break;
            }
            if e > start {
                start = e;
            }
        }
        let queue_delay = start.saturating_since(depart);
        if queue_delay > self.params.max_queue_delay {
            self.state.dropped += 1;
            return LinkOutcome::Dropped;
        }
        let end = start + ser;
        let pos = self
            .state
            .reservations
            .partition_point(|&(s, _)| s <= start);
        self.state.reservations.insert(pos, (start, end));
        self.state.last_offer = Some((depart, start));
        self.state.busy_until = self.state.busy_until.max(end);
        let jitter = if self.params.jitter.is_zero() {
            Duration::ZERO
        } else {
            rng.normal(Duration::ZERO, self.params.jitter)
        };
        let arrival = end + self.params.latency + jitter;
        self.state.tx_packets += 1;
        self.state.tx_bytes += bytes as u64;
        LinkOutcome::Delivered(arrival)
    }

    /// Observed utilisation: bytes transmitted so far.
    pub fn tx_bytes(&self) -> u64 {
        self.state.tx_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StreamRng {
        StreamRng::new(1, "link-test")
    }

    #[test]
    fn serialization_time_scales_with_size() {
        let p = LinkParams::wan(Duration::from_millis(10), 8.0); // 1 MB/s
        assert_eq!(p.serialization(1_000_000), Duration::from_secs(1));
        assert_eq!(p.serialization(1_000), Duration::from_millis(1));
    }

    #[test]
    fn idle_link_delivers_after_latency_plus_serialization() {
        let mut link = Link::new(LinkParams {
            latency: Duration::from_millis(5),
            bandwidth_bps: 1e6,
            jitter: Duration::ZERO,
            loss: 0.0,
            max_queue_delay: Duration::from_secs(1),
        });
        let out = link.transmit(SimTime::ZERO, SimTime::ZERO, 1_000, &mut rng());
        // 1000 bytes at 1 MB/s = 1 ms serialization + 5 ms latency.
        assert_eq!(
            out,
            LinkOutcome::Delivered(SimTime::ZERO + Duration::from_millis(6))
        );
    }

    #[test]
    fn back_to_back_packets_queue_behind_each_other() {
        let mut link = Link::new(LinkParams {
            latency: Duration::from_millis(1),
            bandwidth_bps: 1e6,
            jitter: Duration::ZERO,
            loss: 0.0,
            max_queue_delay: Duration::from_secs(1),
        });
        let mut r = rng();
        let a = link.transmit(SimTime::ZERO, SimTime::ZERO, 1_000, &mut r);
        let b = link.transmit(SimTime::ZERO, SimTime::ZERO, 1_000, &mut r);
        let (LinkOutcome::Delivered(ta), LinkOutcome::Delivered(tb)) = (a, b) else {
            panic!("both delivered")
        };
        assert_eq!(tb.saturating_since(ta), Duration::from_millis(1));
        assert_eq!(link.state.tx_packets, 2);
        assert_eq!(link.tx_bytes(), 2_000);
    }

    #[test]
    fn bandwidth_bounds_throughput() {
        // Push 100 packets of 10 kB through a 1 MB/s link: the last arrival must be
        // no earlier than 1 second after the first departure.
        let mut link = Link::new(LinkParams {
            latency: Duration::from_micros(10),
            bandwidth_bps: 1e6,
            jitter: Duration::ZERO,
            loss: 0.0,
            max_queue_delay: Duration::from_secs(60),
        });
        let mut r = rng();
        let mut last = SimTime::ZERO;
        for _ in 0..100 {
            if let LinkOutcome::Delivered(t) =
                link.transmit(SimTime::ZERO, SimTime::ZERO, 10_000, &mut r)
            {
                last = last.max(t);
            }
        }
        assert!(last.saturating_since(SimTime::ZERO) >= Duration::from_secs(1));
    }

    #[test]
    fn future_reservation_does_not_block_earlier_packets() {
        // A packet still in flight upstream reserves the wire 15 ms from now; a
        // packet wanting the wire immediately must pass through the idle gap
        // (this exact head-of-line inversion made synchronized overlay ticks
        // inflate same-site latency by two orders of magnitude).
        let mut link = Link::new(LinkParams {
            latency: Duration::from_micros(80),
            bandwidth_bps: 12.5e6,
            jitter: Duration::ZERO,
            loss: 0.0,
            max_queue_delay: Duration::from_millis(200),
        });
        let mut r = rng();
        let now = SimTime::ZERO;
        let future = now + Duration::from_millis(15);
        let LinkOutcome::Delivered(far) = link.transmit(now, future, 1_000, &mut r) else {
            panic!("delivered");
        };
        assert!(far >= future);
        // An immediate packet is not queued behind the future reservation.
        let LinkOutcome::Delivered(near) = link.transmit(now, now, 1_000, &mut r) else {
            panic!("delivered");
        };
        assert!(
            near.saturating_since(now) < Duration::from_millis(1),
            "near packet delayed to {near}"
        );
    }

    #[test]
    fn monotone_offers_stay_fifo_despite_gaps() {
        // A big packet pushed past a cross-traffic window must not be overtaken
        // by a small later-offered packet that would fit the gap: a real
        // transmitter serves its own queue in order.
        let mut link = Link::new(LinkParams {
            latency: Duration::ZERO,
            bandwidth_bps: 1e6, // 1 ms per 1000 B
            jitter: Duration::ZERO,
            loss: 0.0,
            max_queue_delay: Duration::from_secs(1),
        });
        let mut r = rng();
        let now = SimTime::ZERO;
        // Cross-traffic window [0.5 ms, 1.5 ms).
        let cross = now + Duration::from_micros(500);
        assert!(matches!(
            link.transmit(now, cross, 1_000, &mut r),
            LinkOutcome::Delivered(_)
        ));
        // Big packet at t=0 does not fit the 0.5 ms gap -> starts at 1.5 ms.
        let LinkOutcome::Delivered(big) = link.transmit(now, now, 1_000, &mut r) else {
            panic!("delivered");
        };
        // Smaller later packet must queue behind it, not slip into the gap.
        let later = now + Duration::from_micros(100);
        let LinkOutcome::Delivered(small) = link.transmit(now, later, 100, &mut r) else {
            panic!("delivered");
        };
        assert!(small > big, "small packet overtook: {small} vs {big}");
    }

    #[test]
    fn reservations_prune_against_sim_time() {
        let mut link = Link::new(LinkParams {
            latency: Duration::ZERO,
            bandwidth_bps: 1e6,
            jitter: Duration::ZERO,
            loss: 0.0,
            max_queue_delay: Duration::from_secs(10),
        });
        let mut r = rng();
        for i in 0..1_000u64 {
            let t = SimTime::ZERO + Duration::from_millis(i);
            assert!(matches!(
                link.transmit(t, t, 100, &mut r),
                LinkOutcome::Delivered(_)
            ));
        }
        // Old windows are discarded; the schedule stays small.
        assert!(
            link.state.reservations.len() <= 2,
            "len {}",
            link.state.reservations.len()
        );
    }

    #[test]
    fn full_queue_drops() {
        let mut link = Link::new(LinkParams {
            latency: Duration::ZERO,
            bandwidth_bps: 1e3, // 1 kB/s: 1 packet of 1 kB = 1 s serialization
            jitter: Duration::ZERO,
            loss: 0.0,
            max_queue_delay: Duration::from_millis(1500),
        });
        let mut r = rng();
        assert!(matches!(
            link.transmit(SimTime::ZERO, SimTime::ZERO, 1_000, &mut r),
            LinkOutcome::Delivered(_)
        ));
        assert!(matches!(
            link.transmit(SimTime::ZERO, SimTime::ZERO, 1_000, &mut r),
            LinkOutcome::Delivered(_)
        ));
        // Third packet would wait 2 s > 1.5 s limit.
        assert_eq!(
            link.transmit(SimTime::ZERO, SimTime::ZERO, 1_000, &mut r),
            LinkOutcome::Dropped
        );
        assert_eq!(link.state.dropped, 1);
    }

    #[test]
    fn lossy_link_drops_roughly_the_configured_fraction() {
        let mut link = Link::new(LinkParams::lan_100mbit().with_loss(0.3));
        let mut r = rng();
        let mut dropped = 0;
        for _ in 0..10_000 {
            if link.transmit(SimTime::ZERO, SimTime::ZERO, 100, &mut r) == LinkOutcome::Dropped {
                dropped += 1;
            }
        }
        assert!((2_500..3_500).contains(&dropped), "dropped {dropped}");
    }
}
