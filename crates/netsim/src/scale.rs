//! Flat interned address space and latency model for very large worlds.
//!
//! The full [`network::Network`](crate::network) model — per-host agents,
//! per-link state machines, NAT boxes — costs too much per node to reach the
//! 10k–100k scale the overlay's Kleinberg routing needs for a meaningful
//! stretch measurement. [`ScaleNet`] is the deliberately minimal substrate
//! for those runs: node identity is a dense `u32`, endpoints and latencies
//! are *computed*, not stored, so the whole network model is a few words
//! regardless of node count.
//!
//! * **Interned endpoints** — node `i` owns `10.x.y.z:4001` where `x.y.z`
//!   encodes `i + 1`; both directions of the mapping are arithmetic, so there
//!   is no `HashMap<Endpoint, NodeId>` scaling with the world.
//! * **Deterministic latency** — a base propagation delay plus per-pair
//!   jitter derived by hashing `(seed, src, dst)`: stable across runs and
//!   across shard layouts, no per-pair state.
//! * **Shard mapping** — nodes are partitioned into contiguous blocks for the
//!   sharded simulator; neighbours on the ring land in the same shard, so
//!   most near-edge chatter stays shard-local.

use std::net::Ipv4Addr;

use ipop_simcore::Duration;

use crate::nat::Endpoint;

/// Interned endpoint space + latency model for 10k–100k node runs.
#[derive(Copy, Clone, Debug)]
pub struct ScaleNet {
    nodes: u32,
    shards: u32,
    /// Nodes per shard (last shard may be short).
    chunk: u32,
    seed: u64,
    /// Minimum one-way delay; also the sharded simulator's slice width.
    base: Duration,
    /// Jitter span added on top of `base` (exclusive).
    jitter: Duration,
}

/// Port every scale node listens on.
pub const SCALE_PORT: u16 = 4001;

/// FNV-1a over a few words; the workspace's standard cheap deterministic hash.
fn fnv(words: &[u64]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

impl ScaleNet {
    /// A network of `nodes` nodes split into `shards` contiguous blocks.
    /// Pair latency is `base + hash(seed, src, dst) % jitter`.
    pub fn new(nodes: u32, shards: u32, seed: u64, base: Duration, jitter: Duration) -> Self {
        assert!(nodes > 0 && shards > 0);
        assert!(
            nodes < (1 << 24),
            "endpoint interning encodes node ids in 24 bits"
        );
        assert!(!base.is_zero(), "zero-latency links would break slicing");
        ScaleNet {
            nodes,
            shards: shards.min(nodes),
            chunk: nodes.div_ceil(shards.min(nodes)),
            seed,
            base,
            jitter,
        }
    }

    /// Total node count.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The minimum one-way latency: the widest safe slice for the sharded
    /// simulator (a cross-shard message always lands at least one slice out).
    pub fn min_latency(&self) -> Duration {
        self.base
    }

    /// The interned endpoint of node `id`: `10.x.y.z:4001` encoding `id + 1`.
    pub fn endpoint(&self, id: u32) -> Endpoint {
        debug_assert!(id < self.nodes);
        let v = 0x0A00_0000u32 | (id + 1);
        (Ipv4Addr::from(v), SCALE_PORT)
    }

    /// Invert [`ScaleNet::endpoint`]. Returns `None` for endpoints outside
    /// the interned space.
    pub fn node_of(&self, ep: &Endpoint) -> Option<u32> {
        if ep.1 != SCALE_PORT {
            return None;
        }
        let v = u32::from(ep.0);
        if v & 0xFF00_0000 != 0x0A00_0000 {
            return None;
        }
        let id = (v & 0x00FF_FFFF).checked_sub(1)?;
        (id < self.nodes).then_some(id)
    }

    /// The shard owning node `id` (contiguous blocks).
    pub fn shard_of(&self, id: u32) -> u32 {
        debug_assert!(id < self.nodes);
        id / self.chunk
    }

    /// First node of `shard`.
    pub fn shard_start(&self, shard: u32) -> u32 {
        shard * self.chunk
    }

    /// One past the last node of `shard`.
    pub fn shard_end(&self, shard: u32) -> u32 {
        ((shard + 1) * self.chunk).min(self.nodes)
    }

    /// One-way latency from `src` to `dst`: base plus a per-ordered-pair
    /// jitter that is a pure function of `(seed, src, dst)` — identical
    /// across runs and independent of shard layout.
    pub fn latency(&self, src: u32, dst: u32) -> Duration {
        let j = self.jitter.as_nanos();
        if j == 0 {
            return self.base;
        }
        Duration::from_nanos(self.base.as_nanos() + fnv(&[self.seed, src as u64, dst as u64]) % j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> ScaleNet {
        ScaleNet::new(
            10_000,
            8,
            42,
            Duration::from_millis(1),
            Duration::from_millis(9),
        )
    }

    #[test]
    fn endpoint_interning_round_trips() {
        let n = net();
        for id in [0u32, 1, 199, 200, 9_999] {
            let ep = n.endpoint(id);
            assert_eq!(n.node_of(&ep), Some(id), "id {id} via {ep:?}");
        }
        // Outside the space: wrong port, wrong prefix, out of range.
        assert_eq!(n.node_of(&(Ipv4Addr::new(10, 0, 0, 1), 9999)), None);
        assert_eq!(
            n.node_of(&(Ipv4Addr::new(192, 168, 0, 1), SCALE_PORT)),
            None
        );
        assert_eq!(n.node_of(&(Ipv4Addr::new(10, 0, 39, 17), SCALE_PORT)), None);
        assert_eq!(n.node_of(&(Ipv4Addr::new(10, 0, 0, 0), SCALE_PORT)), None);
    }

    #[test]
    fn shards_partition_the_nodes() {
        let n = ScaleNet::new(10_001, 8, 7, Duration::from_millis(1), Duration::ZERO);
        let mut covered = 0u32;
        for s in 0..n.shards() {
            let (lo, hi) = (n.shard_start(s), n.shard_end(s));
            assert!(lo < hi, "shard {s} non-empty");
            for id in lo..hi {
                assert_eq!(n.shard_of(id), s);
            }
            covered += hi - lo;
        }
        assert_eq!(covered, 10_001);
    }

    #[test]
    fn more_shards_than_nodes_collapses() {
        let n = ScaleNet::new(3, 16, 7, Duration::from_millis(1), Duration::ZERO);
        assert_eq!(n.shards(), 3);
        assert_eq!(n.shard_of(2), 2);
    }

    #[test]
    fn latency_is_deterministic_and_bounded() {
        let a = net();
        let b = net();
        for (s, d) in [(0u32, 1u32), (17, 9_000), (42, 42)] {
            let l = a.latency(s, d);
            assert_eq!(l, b.latency(s, d), "pure function of (seed, src, dst)");
            assert!(l >= a.min_latency());
            assert!(l < a.min_latency() + Duration::from_millis(9));
        }
        // Jitter actually varies and is direction-sensitive.
        assert_ne!(a.latency(0, 1), a.latency(1, 0));
    }
}
