//! The physical network: sites, hosts, and the packet delivery path.
//!
//! [`Network`] is the "world" type driven by the discrete-event simulator. It owns
//! every site (LAN + access links + firewall + NAT) and every host (CPU model +
//! agent), and implements the transmit path: source-host CPU queueing, outbound
//! firewall and NAT processing, link-by-link latency/bandwidth, inbound NAT and
//! firewall processing at the destination site, destination-host CPU queueing and
//! finally agent dispatch.
//!
//! [`NetworkSim`] wraps a `Network` in a [`Simulator`] and provides the run loop
//! used by the examples, tests and the experiment harness.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use ipop_packet::ipv4::{Ipv4Packet, Ipv4Payload};
use ipop_simcore::sim::{Control as GenericControl, Event};
use ipop_simcore::{Duration, SimTime, Simulator, StreamRng, TimerToken};

use crate::calibration::Calibration;
use crate::firewall::Direction;
use crate::host::{Host, HostAgent, HostCtx, HostId};
use crate::impair::{corrupt_packet, ImpairmentCounters, LinkImpairment};
use crate::link::LinkOutcome;
use crate::site::{Site, SiteSpec};

/// Identifier of a site in the network.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SiteId(pub usize);

/// The typed event payload of the network simulation.
///
/// Every event on the packet hot path is one of these variants, dispatched by
/// `match` — scheduling costs no heap allocation, unlike a boxed closure.
#[derive(Debug)]
pub enum NetEvent {
    /// Call a host agent's `on_start` (scheduled once per host by
    /// [`NetworkSim::start`]).
    Start(HostId),
    /// Fire a timer armed via [`HostCtx::set_timer`].
    Timer(HostId, TimerToken),
    /// A packet finishes its final link and arrives at the destination NIC;
    /// receive-side kernel processing then queues on the host CPU.
    ///
    /// The packet is boxed so heap entries stay small (the queue moves entries
    /// during sift operations); the same box travels on into [`NetEvent::Deliver`],
    /// so the whole delivery costs a single allocation.
    Arrival {
        /// Destination host.
        dst: HostId,
        /// The arriving packet.
        pkt: Box<Ipv4Packet>,
    },
    /// Receive-side kernel processing is done; hand the packet to the agent.
    Deliver {
        /// Destination host.
        dst: HostId,
        /// The delivered packet.
        pkt: Box<Ipv4Packet>,
    },
}

/// The scheduling handle network events receive ([`GenericControl`] specialised
/// to the typed [`NetEvent`] payload).
pub type Control<'a> = GenericControl<'a, Network, NetEvent>;

impl Event<Network> for NetEvent {
    fn fire(self, net: &mut Network, ctl: &mut Control<'_>) {
        match self {
            NetEvent::Start(host) => Network::dispatch_start(net, ctl, host),
            NetEvent::Timer(host, token) => Network::dispatch_timer(net, ctl, host, token),
            NetEvent::Arrival { dst, pkt } => {
                // Receive-side kernel processing queues on the destination CPU.
                let kernel_cost = net.calibration.kernel_stack_cost;
                let deliver_at = net.hosts[dst.0].occupy_cpu(ctl.now(), kernel_cost);
                ctl.schedule_event_at(deliver_at, NetEvent::Deliver { dst, pkt });
            }
            NetEvent::Deliver { dst, pkt } => Network::dispatch_packet(net, ctl, dst, *pkt),
        }
    }
}

/// Network-wide drop/delivery counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetCounters {
    /// Packets delivered to an agent.
    pub delivered: u64,
    /// Packets with no matching destination host or NAT mapping target.
    pub unroutable: u64,
    /// Packets dropped by an outbound firewall policy.
    pub firewall_out_dropped: u64,
    /// Packets dropped by an inbound firewall policy.
    pub firewall_in_dropped: u64,
    /// Packets filtered by a NAT (no mapping or disallowed sender).
    pub nat_filtered: u64,
    /// Packets dropped by a link (loss or queue overflow).
    pub link_dropped: u64,
    /// Packets dropped because source and destination host are currently in
    /// different partition groups (see [`Network::set_partition_group`]).
    pub partition_dropped: u64,
    /// Packets dropped by a link impairment (see
    /// [`Network::set_link_impairment`]).
    pub impair_dropped: u64,
    /// Extra packet copies delivered by a duplicating impairment.
    pub impair_duplicated: u64,
    /// Packets whose payload bytes a corrupting impairment flipped.
    pub impair_corrupted: u64,
    /// Packets a reordering impairment held back past later traffic.
    pub impair_reordered: u64,
}

/// The core latency/jitter applied between any two distinct sites.
#[derive(Clone, Copy, Debug)]
pub struct CoreParams {
    /// One-way latency across the wide-area core.
    pub latency: Duration,
    /// Jitter standard deviation.
    pub jitter: Duration,
}

impl Default for CoreParams {
    fn default() -> Self {
        CoreParams {
            latency: Duration::from_millis(12),
            jitter: Duration::from_micros(300),
        }
    }
}

/// The simulated physical network.
pub struct Network {
    /// Host-processing calibration constants.
    pub calibration: Calibration,
    /// Wide-area core parameters.
    pub core: CoreParams,
    sites: Vec<Site>,
    hosts: Vec<Host>,
    addr_to_host: BTreeMap<Ipv4Addr, HostId>,
    nat_public_to_site: BTreeMap<Ipv4Addr, SiteId>,
    counters: NetCounters,
    link_rng: StreamRng,
    host_rng_seed: u64,
    /// Partition group per host (indexed by `HostId`); packets between hosts
    /// in different groups are dropped in the core. Empty = no partition.
    partition: Vec<u8>,
    /// Per-pair link impairments (normalized `(min, max)` host keys — an
    /// impairment is symmetric) with their per-link counters. `BTreeMap` for
    /// deterministic iteration in diagnostics.
    impairments: BTreeMap<(usize, usize), (LinkImpairment, ImpairmentCounters)>,
    /// Impairment applied to every pair without a specific entry.
    default_impairment: Option<(LinkImpairment, ImpairmentCounters)>,
    /// Dedicated stream for impairment draws: seeded separately from the link
    /// stream so enabling an impairment never perturbs link-level jitter/loss
    /// draws of unimpaired runs.
    impair_rng: StreamRng,
}

impl Network {
    /// An empty network seeded for reproducibility.
    pub fn new(seed: u64) -> Self {
        Network {
            calibration: Calibration::default(),
            core: CoreParams::default(),
            sites: Vec::new(),
            hosts: Vec::new(),
            addr_to_host: BTreeMap::new(),
            nat_public_to_site: BTreeMap::new(),
            counters: NetCounters::default(),
            link_rng: StreamRng::new(seed, "netsim.links"),
            host_rng_seed: seed,
            partition: Vec::new(),
            impairments: BTreeMap::new(),
            default_impairment: None,
            impair_rng: StreamRng::new(seed, "netsim.impair"),
        }
    }

    // ------------------------------------------------------------------ building

    /// Add a site.
    pub fn add_site(&mut self, spec: SiteSpec) -> SiteId {
        let id = SiteId(self.sites.len());
        let site = Site::from_spec(spec);
        if let Some(nat) = &site.nat {
            self.nat_public_to_site.insert(nat.public_ip(), id);
        }
        self.sites.push(site);
        id
    }

    /// Add a host with CPU load 1.0.
    pub fn add_host(&mut self, name: &str, site: SiteId, addr: Ipv4Addr) -> HostId {
        self.add_host_with_load(name, site, addr, 1.0)
    }

    /// Add a host with an explicit CPU load factor.
    pub fn add_host_with_load(
        &mut self,
        name: &str,
        site: SiteId,
        addr: Ipv4Addr,
        load: f64,
    ) -> HostId {
        assert!(site.0 < self.sites.len(), "unknown site");
        assert!(
            !self.addr_to_host.contains_key(&addr),
            "duplicate physical address {addr}"
        );
        let id = HostId(self.hosts.len());
        let rng = StreamRng::new(self.host_rng_seed, &format!("netsim.host.{name}.{}", id.0));
        self.hosts
            .push(Host::new(id, name.to_string(), site, addr, load, rng));
        self.addr_to_host.insert(addr, id);
        id
    }

    /// Install the agent for a host (replacing any existing one).
    pub fn set_agent(&mut self, host: HostId, agent: Box<dyn HostAgent>) {
        self.hosts[host.0].agent = Some(agent);
    }

    // ----------------------------------------------------------------- accessors

    /// Borrow a host.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.0]
    }

    /// Can `host` receive unsolicited traffic from anywhere on the network?
    /// True when its address is not hidden behind a site NAT and the site
    /// firewall (if any) admits unsolicited inbound traffic by default. Overlay
    /// deployments use this to choose a bootstrap node everyone can reach.
    pub fn publicly_reachable(&self, host: HostId) -> bool {
        let host = &self.hosts[host.0];
        let site = &self.sites[host.site.0];
        if site.is_private_addr(host.addr) {
            return false;
        }
        site.firewall
            .as_ref()
            .is_none_or(|fw| fw.accepts_unsolicited_inbound())
    }

    /// Borrow a host mutably.
    pub fn host_mut(&mut self, id: HostId) -> &mut Host {
        &mut self.hosts[id.0]
    }

    /// All hosts.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Borrow a site.
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.0]
    }

    /// Borrow a site mutably.
    pub fn site_mut(&mut self, id: SiteId) -> &mut Site {
        &mut self.sites[id.0]
    }

    /// Find a host by its physical address.
    pub fn host_by_addr(&self, addr: Ipv4Addr) -> Option<HostId> {
        self.addr_to_host.get(&addr).copied()
    }

    /// Find a host by name.
    pub fn host_by_name(&self, name: &str) -> Option<HostId> {
        self.hosts.iter().find(|h| h.name == name).map(|h| h.id)
    }

    /// Network-wide counters.
    pub fn counters(&self) -> NetCounters {
        self.counters
    }

    /// Put `host` in partition group `group`. Hosts in different groups
    /// cannot exchange packets (dropped in the core, counted in
    /// [`NetCounters::partition_dropped`]) until [`Network::heal_partition`].
    /// Models a network split — hosts stay up, unlike a crash.
    pub fn set_partition_group(&mut self, host: HostId, group: u8) {
        if self.partition.len() < self.hosts.len() {
            self.partition.resize(self.hosts.len(), 0);
        }
        self.partition[host.0] = group;
    }

    /// Remove any partition: every pair of hosts can talk again.
    pub fn heal_partition(&mut self) {
        self.partition.clear();
    }

    /// Are two hosts currently separated by a partition?
    pub fn partitioned(&self, a: HostId, b: HostId) -> bool {
        if self.partition.is_empty() {
            return false;
        }
        let group = |h: HostId| self.partition.get(h.0).copied().unwrap_or(0);
        group(a) != group(b)
    }

    /// Normalized (symmetric) impairment key for a host pair.
    fn impair_key(a: HostId, b: HostId) -> (usize, usize) {
        (a.0.min(b.0), a.0.max(b.0))
    }

    /// Impair the path between `a` and `b` (both directions): every packet
    /// between them is subjected to the impairment's loss / duplication /
    /// corruption / reordering draws on the delivery path. Replaces any
    /// previous impairment on the pair; composes with partitions (a partition
    /// drops the packet before the impairment is consulted).
    pub fn set_link_impairment(&mut self, a: HostId, b: HostId, imp: LinkImpairment) {
        self.impairments
            .insert(Self::impair_key(a, b), (imp, ImpairmentCounters::default()));
    }

    /// Remove the impairment between `a` and `b` (pair-specific entries only;
    /// the default impairment, if any, applies again).
    pub fn clear_link_impairment(&mut self, a: HostId, b: HostId) {
        self.impairments.remove(&Self::impair_key(a, b));
    }

    /// Impair every host pair without a pair-specific entry (e.g. 1% global
    /// loss). Pair-specific impairments take precedence.
    pub fn set_default_impairment(&mut self, imp: LinkImpairment) {
        self.default_impairment = Some((imp, ImpairmentCounters::default()));
    }

    /// Remove every impairment — pair-specific and default.
    pub fn heal_impairments(&mut self) {
        self.impairments.clear();
        self.default_impairment = None;
    }

    /// Counters of the impairment on pair `(a, b)`, if one is set.
    pub fn impairment_counters(&self, a: HostId, b: HostId) -> Option<ImpairmentCounters> {
        self.impairments
            .get(&Self::impair_key(a, b))
            .map(|(_, c)| *c)
    }

    /// Counters of the default (all-pairs) impairment, if one is set.
    pub fn default_impairment_counters(&self) -> Option<ImpairmentCounters> {
        self.default_impairment.as_ref().map(|(_, c)| *c)
    }

    /// Downcast a host's agent to a concrete type.
    pub fn agent_as<T: 'static>(&self, host: HostId) -> Option<&T> {
        self.hosts[host.0]
            .agent
            .as_deref()
            .and_then(|a| a.as_any().downcast_ref::<T>())
    }

    /// Downcast a host's agent to a concrete type, mutably.
    pub fn agent_as_mut<T: 'static>(&mut self, host: HostId) -> Option<&mut T> {
        self.hosts[host.0]
            .agent
            .as_deref_mut()
            .and_then(|a| a.as_any_mut().downcast_mut::<T>())
    }

    // ----------------------------------------------------------------- data path

    /// Ports relevant for NAT/firewall processing: transport ports, or the ICMP
    /// identifier for echo traffic.
    fn flow_ports(pkt: &Ipv4Packet) -> (u16, u16) {
        match (&pkt.payload, pkt.ports()) {
            (_, Some(p)) => p,
            (Ipv4Payload::Icmp(icmp), None) => (icmp.identifier, icmp.identifier),
            _ => (0, 0),
        }
    }

    fn rewrite_src(pkt: &mut Ipv4Packet, addr: Ipv4Addr, port: u16) {
        pkt.header.src = addr;
        match &mut pkt.payload {
            Ipv4Payload::Udp(u) => u.src_port = port,
            Ipv4Payload::Tcp(t) => t.src_port = port,
            Ipv4Payload::Icmp(i) => i.identifier = port,
            Ipv4Payload::Raw(..) => {}
        }
    }

    fn rewrite_dst(pkt: &mut Ipv4Packet, addr: Ipv4Addr, port: u16) {
        pkt.header.dst = addr;
        match &mut pkt.payload {
            Ipv4Payload::Udp(u) => u.dst_port = port,
            Ipv4Payload::Tcp(t) => t.dst_port = port,
            Ipv4Payload::Icmp(i) => i.identifier = port,
            Ipv4Payload::Raw(..) => {}
        }
    }

    /// Transmit a packet from `src_host`. Called by [`HostCtx::send_with_processing`].
    pub(crate) fn transmit(
        &mut self,
        ctl: &mut Control<'_>,
        src_host: HostId,
        mut pkt: Ipv4Packet,
        extra_processing: Duration,
    ) {
        let now = ctl.now();
        let bytes = pkt.wire_len();
        let kernel_cost = self.calibration.kernel_stack_cost;

        // 1. Source host: accounting and CPU queueing.
        let (depart, src_site_id) = {
            let host = &mut self.hosts[src_host.0];
            host.counters.tx_packets += 1;
            host.counters.tx_bytes += bytes as u64;
            (
                host.occupy_cpu(now, kernel_cost + extra_processing),
                host.site,
            )
        };

        let dst_ip = pkt.dst();

        // 2. Same-site delivery: only the LAN segment is involved.
        if let Some(&dst_host) = self.addr_to_host.get(&dst_ip) {
            if self.hosts[dst_host.0].site == src_site_id {
                let outcome =
                    self.sites[src_site_id.0]
                        .lan
                        .transmit(now, depart, bytes, &mut self.link_rng);
                match outcome {
                    LinkOutcome::Delivered(arrival) => {
                        self.schedule_delivery(ctl, src_host, dst_host, pkt, arrival)
                    }
                    LinkOutcome::Dropped => self.counters.link_dropped += 1,
                }
                return;
            }
        }

        // 3. Leaving the source site: outbound firewall, then NAT.
        if let Some(fw) = &mut self.sites[src_site_id.0].firewall {
            if !fw.permit(Direction::Outbound, &pkt) {
                self.counters.firewall_out_dropped += 1;
                return;
            }
        }
        // NAT/firewall flow ports, computed once for the whole trip; refreshed
        // only when a NAT rewrite actually changes the packet.
        let mut ports = Self::flow_ports(&pkt);
        let src_is_private = self.sites[src_site_id.0].is_private_addr(pkt.src());
        if src_is_private {
            if let Some(nat) = &mut self.sites[src_site_id.0].nat {
                let (pub_ip, pub_port) = nat.outbound((pkt.src(), ports.0), (dst_ip, ports.1));
                Self::rewrite_src(&mut pkt, pub_ip, pub_port);
                ports = Self::flow_ports(&pkt);
            }
        }

        // 4. Source LAN and access link.
        let mut t = depart;
        {
            let Network {
                sites,
                link_rng,
                counters,
                ..
            } = self;
            let site = &mut sites[src_site_id.0];
            for link in [&mut site.lan, &mut site.access_up] {
                match link.transmit(now, t, bytes, link_rng) {
                    LinkOutcome::Delivered(arrival) => t = arrival,
                    LinkOutcome::Dropped => {
                        counters.link_dropped += 1;
                        return;
                    }
                }
            }
        }

        // 5. Wide-area core.
        t += self.core.latency;
        if !self.core.jitter.is_zero() {
            t += self.link_rng.normal(Duration::ZERO, self.core.jitter);
        }

        // 6. Resolve the destination: a NAT's public address or a host address.
        let (dst_site_id, dst_host) = if let Some(&site_id) = self.nat_public_to_site.get(&dst_ip) {
            let internal = {
                let nat = self.sites[site_id.0].nat.as_mut().expect("nat site");
                nat.inbound(ports.1, (pkt.src(), ports.0))
            };
            match internal {
                Some((internal_ip, internal_port)) => {
                    Self::rewrite_dst(&mut pkt, internal_ip, internal_port);
                    match self.addr_to_host.get(&internal_ip) {
                        Some(&h) => (site_id, h),
                        None => {
                            self.counters.unroutable += 1;
                            return;
                        }
                    }
                }
                None => {
                    self.counters.nat_filtered += 1;
                    return;
                }
            }
        } else if let Some(&h) = self.addr_to_host.get(&dst_ip) {
            let site_id = self.hosts[h.0].site;
            // A private address is not reachable from outside its site.
            if self.sites[site_id.0].is_private_addr(dst_ip) {
                self.counters.unroutable += 1;
                return;
            }
            (site_id, h)
        } else {
            self.counters.unroutable += 1;
            return;
        };

        // 7. Destination-site inbound firewall.
        if let Some(fw) = &mut self.sites[dst_site_id.0].firewall {
            if !fw.permit(Direction::Inbound, &pkt) {
                self.counters.firewall_in_dropped += 1;
                return;
            }
        }

        // 8. Destination access link and LAN.
        {
            let Network {
                sites,
                link_rng,
                counters,
                ..
            } = self;
            let site = &mut sites[dst_site_id.0];
            for link in [&mut site.access_down, &mut site.lan] {
                match link.transmit(now, t, bytes, link_rng) {
                    LinkOutcome::Delivered(arrival) => t = arrival,
                    LinkOutcome::Dropped => {
                        counters.link_dropped += 1;
                        return;
                    }
                }
            }
        }

        self.schedule_delivery(ctl, src_host, dst_host, pkt, t);
    }

    fn schedule_delivery(
        &mut self,
        ctl: &mut Control<'_>,
        src: HostId,
        dst: HostId,
        pkt: Ipv4Packet,
        arrival: SimTime,
    ) {
        // An active partition severs connectivity between groups; the packet
        // vanishes in the network, exactly like a mid-path outage.
        if self.partitioned(src, dst) {
            self.counters.partition_dropped += 1;
            return;
        }
        // Impairment layer: the pair-specific entry wins over the default.
        let slot = match self.impairments.get_mut(&Self::impair_key(src, dst)) {
            Some(slot) => Some(slot),
            None => self.default_impairment.as_mut(),
        };
        let Some((imp, counters)) = slot else {
            ctl.schedule_event_at(
                arrival,
                NetEvent::Arrival {
                    dst,
                    pkt: Box::new(pkt),
                },
            );
            return;
        };
        let rng = &mut self.impair_rng;
        if imp.loss > 0.0 && rng.chance(imp.loss) {
            counters.dropped += 1;
            self.counters.impair_dropped += 1;
            return;
        }
        let mut pkt = pkt;
        if imp.corrupt > 0.0 && rng.chance(imp.corrupt) && corrupt_packet(&mut pkt, rng) {
            counters.corrupted += 1;
            self.counters.impair_corrupted += 1;
        }
        let window_ns = imp.reorder_window.max(Duration::from_micros(1)).as_nanos();
        if imp.duplicate > 0.0 && rng.chance(imp.duplicate) {
            counters.duplicated += 1;
            self.counters.impair_duplicated += 1;
            let copy_at = arrival + Duration::from_nanos(rng.range_u64(1, window_ns + 1));
            ctl.schedule_event_at(
                copy_at,
                NetEvent::Arrival {
                    dst,
                    pkt: Box::new(pkt.clone()),
                },
            );
        }
        let mut arrival = arrival;
        if imp.reorder > 0.0 && rng.chance(imp.reorder) {
            counters.reordered += 1;
            self.counters.impair_reordered += 1;
            // Hold the packet back so later traffic can overtake it.
            arrival += Duration::from_nanos(rng.range_u64(1, window_ns + 1));
        }
        ctl.schedule_event_at(
            arrival,
            NetEvent::Arrival {
                dst,
                pkt: Box::new(pkt),
            },
        );
    }

    /// Deliver a packet to a host's agent (internal dispatch).
    pub(crate) fn dispatch_packet(
        net: &mut Network,
        ctl: &mut Control<'_>,
        host: HostId,
        pkt: Ipv4Packet,
    ) {
        let Some(mut agent) = net.hosts[host.0].agent.take() else {
            return;
        };
        net.counters.delivered += 1;
        net.hosts[host.0].counters.rx_packets += 1;
        net.hosts[host.0].counters.rx_bytes += pkt.wire_len() as u64;
        {
            let mut ctx = HostCtx { net, ctl, host };
            agent.on_packet(&mut ctx, pkt);
        }
        if net.hosts[host.0].agent.is_none() {
            net.hosts[host.0].agent = Some(agent);
        }
    }

    /// Deliver a timer to a host's agent (internal dispatch).
    pub(crate) fn dispatch_timer(
        net: &mut Network,
        ctl: &mut Control<'_>,
        host: HostId,
        token: TimerToken,
    ) {
        let Some(mut agent) = net.hosts[host.0].agent.take() else {
            return;
        };
        {
            let mut ctx = HostCtx { net, ctl, host };
            agent.on_timer(&mut ctx, token);
        }
        if net.hosts[host.0].agent.is_none() {
            net.hosts[host.0].agent = Some(agent);
        }
    }

    /// Call every agent's `on_start` (internal dispatch used by [`NetworkSim`]).
    pub(crate) fn dispatch_start(net: &mut Network, ctl: &mut Control<'_>, host: HostId) {
        let Some(mut agent) = net.hosts[host.0].agent.take() else {
            return;
        };
        {
            let mut ctx = HostCtx { net, ctl, host };
            agent.on_start(&mut ctx);
        }
        if net.hosts[host.0].agent.is_none() {
            net.hosts[host.0].agent = Some(agent);
        }
    }
}

/// A network bound to a discrete-event simulator.
pub struct NetworkSim {
    sim: Simulator<Network, NetEvent>,
    started: bool,
}

impl NetworkSim {
    /// Wrap a network in a simulator.
    pub fn new(net: Network) -> Self {
        NetworkSim {
            sim: Simulator::new(net),
            started: false,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Borrow the network.
    pub fn net(&self) -> &Network {
        self.sim.world()
    }

    /// Borrow the network mutably.
    pub fn net_mut(&mut self) -> &mut Network {
        self.sim.world_mut()
    }

    /// Schedule every host's `on_start` at the current time (idempotent).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let host_count = self.sim.world().host_count();
        for i in 0..host_count {
            self.sim
                .schedule_event_in(Duration::ZERO, NetEvent::Start(HostId(i)));
        }
    }

    /// Schedule `on_start` for one host at the current virtual time. Used for
    /// agents installed (via [`Network::set_agent`]) *after* the simulation
    /// started — mid-run joiners in churn workloads; [`NetworkSim::start`]
    /// only reaches agents present at time zero.
    pub fn start_host(&mut self, host: HostId) {
        self.sim
            .schedule_event_in(Duration::ZERO, NetEvent::Start(host));
    }

    /// Run until the event queue drains (all agents idle).
    pub fn run(&mut self) {
        self.start();
        self.sim.run();
    }

    /// Run for a span of virtual time.
    pub fn run_for(&mut self, span: Duration) {
        self.start();
        self.sim.run_for(span);
    }

    /// Run until an absolute virtual time.
    pub fn run_until(&mut self, t: SimTime) {
        self.start();
        self.sim.run_until(t);
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.sim.executed()
    }

    /// Number of events still pending in the queue.
    pub fn pending(&self) -> usize {
        self.sim.pending()
    }

    /// Downcast a host's agent.
    pub fn agent_as<T: 'static>(&self, host: HostId) -> Option<&T> {
        self.net().agent_as::<T>(host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firewall::Firewall;
    use crate::link::LinkParams;
    use crate::nat::{NatBox, NatType};
    use crate::site::{Prefix, SiteSpec};
    use ipop_packet::udp::UdpDatagram;
    use std::any::Any;

    /// A test agent: sends one UDP datagram at start (if told to), echoes
    /// everything it receives back to the sender, and records what it saw.
    struct EchoAgent {
        send_to: Option<(Ipv4Addr, u16)>,
        received: Vec<(Ipv4Addr, Vec<u8>)>,
        received_at: Vec<SimTime>,
        timers: Vec<TimerToken>,
    }

    impl EchoAgent {
        fn new(send_to: Option<(Ipv4Addr, u16)>) -> Self {
            EchoAgent {
                send_to,
                received: Vec::new(),
                received_at: Vec::new(),
                timers: Vec::new(),
            }
        }
    }

    impl HostAgent for EchoAgent {
        fn on_start(&mut self, ctx: &mut HostCtx<'_, '_>) {
            if let Some((dst, port)) = self.send_to {
                let pkt = Ipv4Packet::new(
                    ctx.addr(),
                    dst,
                    Ipv4Payload::Udp(UdpDatagram::new(4000, port, b"ping".to_vec())),
                );
                ctx.send(pkt);
            }
            ctx.set_timer(Duration::from_secs(5), TimerToken(42));
        }

        fn on_packet(&mut self, ctx: &mut HostCtx<'_, '_>, pkt: Ipv4Packet) {
            self.received_at.push(ctx.now());
            if let Ipv4Payload::Udp(udp) = &pkt.payload {
                self.received.push((pkt.src(), udp.payload.to_vec()));
                if udp.payload == b"ping" {
                    let reply = Ipv4Packet::new(
                        ctx.addr(),
                        pkt.src(),
                        Ipv4Payload::Udp(UdpDatagram::new(
                            udp.dst_port,
                            udp.src_port,
                            b"pong".to_vec(),
                        )),
                    );
                    ctx.send(reply);
                }
            }
        }

        fn on_timer(&mut self, _ctx: &mut HostCtx<'_, '_>, token: TimerToken) {
            self.timers.push(token);
        }

        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    #[test]
    fn same_site_round_trip_is_sub_millisecond() {
        let mut net = Network::new(1);
        let acis = net.add_site(SiteSpec::open("ACIS"));
        let a = net.add_host("F2", acis, ip(10, 1, 0, 2));
        let b = net.add_host("F4", acis, ip(10, 1, 0, 4));
        net.set_agent(a, Box::new(EchoAgent::new(Some((ip(10, 1, 0, 4), 9000)))));
        net.set_agent(b, Box::new(EchoAgent::new(None)));
        let mut sim = NetworkSim::new(net);
        sim.run_for(Duration::from_secs(1));
        let replies = &sim.agent_as::<EchoAgent>(a).unwrap().received;
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].1, b"pong");
        let rtt = sim.agent_as::<EchoAgent>(a).unwrap().received_at[0];
        assert!(
            rtt.saturating_since(SimTime::ZERO) < Duration::from_millis(2),
            "LAN rtt {rtt}"
        );
        assert_eq!(sim.net().counters().delivered, 2); // ping delivered at B, pong delivered at A
    }

    #[test]
    fn cross_site_latency_includes_core_and_access() {
        let mut net = Network::new(2);
        net.core.latency = Duration::from_millis(14);
        net.core.jitter = Duration::ZERO;
        let s1 = net.add_site(
            SiteSpec::open("ACIS").with_access(LinkParams::wan(Duration::from_millis(2), 50.0)),
        );
        let s2 = net.add_site(
            SiteSpec::open("VIMS").with_access(LinkParams::wan(Duration::from_millis(2), 50.0)),
        );
        let a = net.add_host("F4", s1, ip(128, 227, 56, 83));
        let b = net.add_host("V1", s2, ip(139, 70, 24, 100));
        net.set_agent(
            a,
            Box::new(EchoAgent::new(Some((ip(139, 70, 24, 100), 9000)))),
        );
        net.set_agent(b, Box::new(EchoAgent::new(None)));
        let mut sim = NetworkSim::new(net);
        sim.run_for(Duration::from_secs(2));
        let agent = sim.agent_as::<EchoAgent>(a).unwrap();
        assert_eq!(agent.received.len(), 1);
        let rtt = agent.received_at[0].saturating_since(SimTime::ZERO);
        // One-way ≈ 2 + 14 + 2 = 18 ms plus LAN/processing; RTT ≈ 36-40 ms.
        assert!(
            rtt >= Duration::from_millis(34) && rtt <= Duration::from_millis(44),
            "WAN rtt {rtt}"
        );
    }

    #[test]
    fn timers_fire() {
        let mut net = Network::new(3);
        let s = net.add_site(SiteSpec::open("X"));
        let a = net.add_host("A", s, ip(10, 0, 0, 1));
        net.set_agent(a, Box::new(EchoAgent::new(None)));
        let mut sim = NetworkSim::new(net);
        sim.run_for(Duration::from_secs(10));
        assert_eq!(
            sim.agent_as::<EchoAgent>(a).unwrap().timers,
            vec![TimerToken(42)]
        );
    }

    #[test]
    fn firewall_blocks_unsolicited_but_allows_outbound_initiated() {
        let mut net = Network::new(4);
        let open = net.add_site(SiteSpec::open("UFL"));
        let guarded =
            net.add_site(SiteSpec::open("VIMS").with_firewall(Firewall::default_deny_inbound()));
        let outside = net.add_host("F4", open, ip(128, 227, 56, 83));
        let inside = net.add_host("V1", guarded, ip(139, 70, 24, 100));
        // The outside host pings first: should be dropped by the inbound firewall.
        net.set_agent(
            outside,
            Box::new(EchoAgent::new(Some((ip(139, 70, 24, 100), 9000)))),
        );
        // The inside host also sends to the outside host: allowed, and the reply
        // comes back through the established flow.
        net.set_agent(
            inside,
            Box::new(EchoAgent::new(Some((ip(128, 227, 56, 83), 9000)))),
        );
        let mut sim = NetworkSim::new(net);
        sim.run_for(Duration::from_secs(2));
        assert!(sim.net().counters().firewall_in_dropped >= 1);
        let inside_agent = sim.agent_as::<EchoAgent>(inside).unwrap();
        // The inside host got the pong for its own ping but never saw the outside ping.
        assert_eq!(inside_agent.received.len(), 1);
        assert_eq!(inside_agent.received[0].1, b"pong");
        let outside_agent = sim.agent_as::<EchoAgent>(outside).unwrap();
        // The outside host saw the inside host's ping (and replied to it).
        assert!(outside_agent.received.iter().any(|(_, d)| d == b"ping"));
        // But never received a pong for its own blocked ping.
        assert!(!outside_agent.received.iter().any(|(_, d)| d == b"pong"));
    }

    #[test]
    fn nat_translates_and_replies_flow_back() {
        let mut net = Network::new(5);
        let nat_site = net.add_site(SiteSpec::open("ACIS").with_nat(
            NatBox::new(NatType::PortRestrictedCone, ip(128, 227, 56, 1)),
            Prefix::new(ip(192, 168, 0, 0), 16),
        ));
        let public_site = net.add_site(SiteSpec::open("VIMS"));
        let inside = net.add_host("F2", nat_site, ip(192, 168, 0, 2));
        let outside = net.add_host("V1", public_site, ip(139, 70, 24, 100));
        net.set_agent(
            inside,
            Box::new(EchoAgent::new(Some((ip(139, 70, 24, 100), 9000)))),
        );
        net.set_agent(outside, Box::new(EchoAgent::new(None)));
        let mut sim = NetworkSim::new(net);
        sim.run_for(Duration::from_secs(2));
        let outside_agent = sim.agent_as::<EchoAgent>(outside).unwrap();
        assert_eq!(outside_agent.received.len(), 1);
        // The outside host saw the NAT's public address, not the private one.
        assert_eq!(outside_agent.received[0].0, ip(128, 227, 56, 1));
        // And the reply made it back inside.
        let inside_agent = sim.agent_as::<EchoAgent>(inside).unwrap();
        assert_eq!(inside_agent.received.len(), 1);
        assert_eq!(inside_agent.received[0].1, b"pong");
    }

    #[test]
    fn unsolicited_packet_to_nat_public_ip_is_filtered() {
        let mut net = Network::new(6);
        let nat_site = net.add_site(SiteSpec::open("ACIS").with_nat(
            NatBox::new(NatType::PortRestrictedCone, ip(128, 227, 56, 1)),
            Prefix::new(ip(192, 168, 0, 0), 16),
        ));
        let public_site = net.add_site(SiteSpec::open("VIMS"));
        let _inside = net.add_host("F2", nat_site, ip(192, 168, 0, 2));
        let outside = net.add_host("V1", public_site, ip(139, 70, 24, 100));
        // Outside host sends to the NAT public address without any prior outbound flow.
        net.set_agent(
            outside,
            Box::new(EchoAgent::new(Some((ip(128, 227, 56, 1), 9000)))),
        );
        let mut sim = NetworkSim::new(net);
        sim.run_for(Duration::from_secs(1));
        assert_eq!(sim.net().counters().nat_filtered, 1);
        assert_eq!(sim.net().counters().delivered, 0);
    }

    #[test]
    fn private_addresses_are_not_routable_from_outside() {
        let mut net = Network::new(7);
        let nat_site = net.add_site(SiteSpec::open("ACIS").with_nat(
            NatBox::new(NatType::FullCone, ip(128, 227, 56, 1)),
            Prefix::new(ip(192, 168, 0, 0), 16),
        ));
        let public_site = net.add_site(SiteSpec::open("VIMS"));
        let _inside = net.add_host("F2", nat_site, ip(192, 168, 0, 2));
        let outside = net.add_host("V1", public_site, ip(139, 70, 24, 100));
        net.set_agent(
            outside,
            Box::new(EchoAgent::new(Some((ip(192, 168, 0, 2), 9000)))),
        );
        let mut sim = NetworkSim::new(net);
        sim.run_for(Duration::from_secs(1));
        assert_eq!(sim.net().counters().unroutable, 1);
    }

    #[test]
    fn packets_to_unknown_addresses_count_as_unroutable() {
        let mut net = Network::new(8);
        let s = net.add_site(SiteSpec::open("X"));
        let a = net.add_host("A", s, ip(10, 0, 0, 1));
        net.set_agent(a, Box::new(EchoAgent::new(Some((ip(99, 99, 99, 99), 1)))));
        let mut sim = NetworkSim::new(net);
        sim.run_for(Duration::from_secs(1));
        assert_eq!(sim.net().counters().unroutable, 1);
    }

    #[test]
    fn partition_drops_cross_group_packets_until_healed() {
        let mut net = Network::new(12);
        let s1 = net.add_site(SiteSpec::open("A"));
        let s2 = net.add_site(SiteSpec::open("B"));
        let a = net.add_host("A1", s1, ip(10, 1, 0, 1));
        let b = net.add_host("B1", s2, ip(10, 2, 0, 1));
        net.set_agent(a, Box::new(EchoAgent::new(Some((ip(10, 2, 0, 1), 9000)))));
        net.set_agent(b, Box::new(EchoAgent::new(None)));
        net.set_partition_group(b, 1);
        let mut sim = NetworkSim::new(net);
        sim.run_for(Duration::from_secs(1));
        assert_eq!(sim.net().counters().partition_dropped, 1);
        assert_eq!(sim.net().counters().delivered, 0);
        assert!(sim.agent_as::<EchoAgent>(b).unwrap().received.is_empty());
        // Heal, then drive a fresh exchange (B pings A): traffic flows again.
        sim.net_mut().heal_partition();
        sim.net_mut()
            .set_agent(b, Box::new(EchoAgent::new(Some((ip(10, 1, 0, 1), 9000)))));
        sim.start_host(b);
        sim.run_for(Duration::from_secs(1));
        assert!(
            sim.net().counters().delivered >= 1,
            "healed partition delivers"
        );
    }

    #[test]
    fn same_site_partition_also_drops() {
        // The partition check runs on the delivery path, so even two hosts on
        // one LAN segment are split when their groups differ.
        let mut net = Network::new(13);
        let s = net.add_site(SiteSpec::open("X"));
        let a = net.add_host("A", s, ip(10, 0, 0, 1));
        let b = net.add_host("B", s, ip(10, 0, 0, 2));
        net.set_agent(a, Box::new(EchoAgent::new(Some((ip(10, 0, 0, 2), 9000)))));
        net.set_agent(b, Box::new(EchoAgent::new(None)));
        net.set_partition_group(a, 1);
        let mut sim = NetworkSim::new(net);
        sim.run_for(Duration::from_secs(1));
        assert_eq!(sim.net().counters().partition_dropped, 1);
        assert_eq!(sim.net().counters().delivered, 0);
    }

    #[test]
    fn late_started_host_joins_the_simulation() {
        let mut net = Network::new(14);
        let s = net.add_site(SiteSpec::open("X"));
        let a = net.add_host("A", s, ip(10, 0, 0, 1));
        let b = net.add_host("B", s, ip(10, 0, 0, 2));
        net.set_agent(b, Box::new(EchoAgent::new(None)));
        let mut sim = NetworkSim::new(net);
        sim.run_for(Duration::from_secs(1));
        // A's agent arrives mid-run and is started explicitly.
        sim.net_mut()
            .set_agent(a, Box::new(EchoAgent::new(Some((ip(10, 0, 0, 2), 9000)))));
        sim.start_host(a);
        sim.run_for(Duration::from_secs(1));
        let replies = &sim.agent_as::<EchoAgent>(a).unwrap().received;
        assert_eq!(replies.len(), 1, "late joiner sent and got its pong");
    }

    #[test]
    fn host_lookup_helpers() {
        let mut net = Network::new(9);
        let s = net.add_site(SiteSpec::open("X"));
        let a = net.add_host("alpha", s, ip(10, 0, 0, 1));
        assert_eq!(net.host_by_name("alpha"), Some(a));
        assert_eq!(net.host_by_addr(ip(10, 0, 0, 1)), Some(a));
        assert_eq!(net.host_by_name("beta"), None);
        assert_eq!(net.host(a).name, "alpha");
    }

    #[test]
    #[should_panic(expected = "duplicate physical address")]
    fn duplicate_addresses_are_rejected() {
        let mut net = Network::new(10);
        let s = net.add_site(SiteSpec::open("X"));
        net.add_host("A", s, ip(10, 0, 0, 1));
        net.add_host("B", s, ip(10, 0, 0, 1));
    }

    /// One site, two hosts, A pings B. Returns (net, a, b).
    fn ping_pair(seed: u64) -> (Network, HostId, HostId) {
        let mut net = Network::new(seed);
        let s = net.add_site(SiteSpec::open("X"));
        let a = net.add_host("A", s, ip(10, 0, 0, 1));
        let b = net.add_host("B", s, ip(10, 0, 0, 2));
        net.set_agent(a, Box::new(EchoAgent::new(Some((ip(10, 0, 0, 2), 9000)))));
        net.set_agent(b, Box::new(EchoAgent::new(None)));
        (net, a, b)
    }

    #[test]
    fn full_loss_impairment_drops_and_counts() {
        let (mut net, a, b) = ping_pair(20);
        net.set_link_impairment(a, b, LinkImpairment::none().with_loss(1.0));
        let mut sim = NetworkSim::new(net);
        sim.run_for(Duration::from_secs(1));
        assert_eq!(sim.net().counters().delivered, 0);
        assert_eq!(sim.net().counters().impair_dropped, 1);
        let per_pair = sim.net().impairment_counters(a, b).unwrap();
        assert_eq!(per_pair.dropped, 1);
        // The per-pair key is symmetric.
        assert_eq!(sim.net().impairment_counters(b, a), Some(per_pair));
    }

    #[test]
    fn duplication_delivers_an_extra_copy() {
        let (mut net, a, b) = ping_pair(21);
        net.set_link_impairment(
            a,
            b,
            LinkImpairment::none()
                .with_duplicate(1.0)
                .with_reorder(0.0, Duration::from_millis(2)),
        );
        let mut sim = NetworkSim::new(net);
        sim.run_for(Duration::from_secs(1));
        // The ping and each pong it triggers are all duplicated.
        let pings = sim
            .agent_as::<EchoAgent>(b)
            .unwrap()
            .received
            .iter()
            .filter(|(_, d)| d == b"ping")
            .count();
        assert_eq!(pings, 2, "one original + one duplicate");
        assert!(sim.net().counters().impair_duplicated >= 1);
        assert!(sim.net().impairment_counters(a, b).unwrap().duplicated >= 1);
    }

    #[test]
    fn corruption_flips_payload_but_still_delivers() {
        let (mut net, a, b) = ping_pair(22);
        net.set_link_impairment(a, b, LinkImpairment::none().with_corrupt(1.0));
        let mut sim = NetworkSim::new(net);
        sim.run_for(Duration::from_secs(1));
        let received = &sim.agent_as::<EchoAgent>(b).unwrap().received;
        assert_eq!(received.len(), 1, "corrupted packets are still delivered");
        assert_ne!(received[0].1, b"ping", "payload bytes were flipped");
        assert_eq!(sim.net().counters().impair_corrupted, 1);
        assert_eq!(sim.net().impairment_counters(a, b).unwrap().corrupted, 1);
    }

    #[test]
    fn reordering_delays_but_still_delivers() {
        let (mut net, a, b) = ping_pair(23);
        net.set_link_impairment(
            a,
            b,
            LinkImpairment::none().with_reorder(1.0, Duration::from_millis(50)),
        );
        let mut sim = NetworkSim::new(net);
        sim.run_for(Duration::from_secs(1));
        let agent = sim.agent_as::<EchoAgent>(b).unwrap();
        assert_eq!(agent.received.len(), 1);
        assert!(sim.net().counters().impair_reordered >= 1);
    }

    #[test]
    fn default_impairment_applies_everywhere_but_pair_entry_wins() {
        let (mut net, a, b) = ping_pair(24);
        // Default: total loss. Pair override: clean. The override wins, so the
        // ping goes through and the default counters stay untouched.
        net.set_default_impairment(LinkImpairment::none().with_loss(1.0));
        net.set_link_impairment(a, b, LinkImpairment::none());
        let mut sim = NetworkSim::new(net);
        sim.run_for(Duration::from_secs(1));
        assert!(sim.net().counters().delivered >= 2, "ping + pong delivered");
        assert_eq!(sim.net().default_impairment_counters().unwrap().dropped, 0);
        // Now drop the override: the lossy default applies again.
        sim.net_mut().clear_link_impairment(a, b);
        sim.net_mut()
            .set_agent(a, Box::new(EchoAgent::new(Some((ip(10, 0, 0, 2), 9000)))));
        sim.start_host(a);
        sim.run_for(Duration::from_secs(1));
        assert_eq!(sim.net().default_impairment_counters().unwrap().dropped, 1);
    }

    #[test]
    fn heal_impairments_restores_clean_delivery() {
        let (mut net, a, b) = ping_pair(25);
        net.set_default_impairment(LinkImpairment::none().with_loss(1.0));
        net.set_link_impairment(a, b, LinkImpairment::none().with_loss(1.0));
        let mut sim = NetworkSim::new(net);
        sim.run_for(Duration::from_secs(1));
        assert_eq!(sim.net().counters().delivered, 0);
        sim.net_mut().heal_impairments();
        sim.net_mut()
            .set_agent(a, Box::new(EchoAgent::new(Some((ip(10, 0, 0, 2), 9000)))));
        sim.start_host(a);
        sim.run_for(Duration::from_secs(1));
        assert!(sim.net().counters().delivered >= 2, "healed link delivers");
        assert!(sim.net().impairment_counters(a, b).is_none());
        assert!(sim.net().default_impairment_counters().is_none());
    }

    #[test]
    fn partition_drop_takes_precedence_over_impairment() {
        let (mut net, a, b) = ping_pair(26);
        net.set_link_impairment(a, b, LinkImpairment::none().with_loss(1.0));
        net.set_partition_group(a, 1);
        let mut sim = NetworkSim::new(net);
        sim.run_for(Duration::from_secs(1));
        assert_eq!(sim.net().counters().partition_dropped, 1);
        // The impairment was never consulted for the partition-dropped packet.
        assert_eq!(sim.net().counters().impair_dropped, 0);
        assert_eq!(sim.net().impairment_counters(a, b).unwrap().dropped, 0);
    }

    #[test]
    fn impaired_runs_are_deterministic() {
        let run = || {
            let (mut net, a, b) = ping_pair(27);
            net.set_link_impairment(
                a,
                b,
                LinkImpairment::none()
                    .with_loss(0.3)
                    .with_duplicate(0.3)
                    .with_corrupt(0.3)
                    .with_reorder(0.3, Duration::from_millis(5)),
            );
            let mut sim = NetworkSim::new(net);
            sim.run_for(Duration::from_secs(2));
            let c = sim.net().impairment_counters(a, b).unwrap();
            (c, sim.net().counters().delivered)
        };
        assert_eq!(run(), run(), "same seed, same impairment outcome");
    }
}
