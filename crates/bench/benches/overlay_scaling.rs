//! Criterion benchmark: end-to-end simulation cost and overlay self-configuration
//! as the virtual network grows. This is the "adding a node costs the same no
//! matter how large the network already is" scalability claim, measured as wall
//! time to simulate a fixed virtual-time window per overlay size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::net::Ipv4Addr;

use ipop::prelude::*;
use ipop_netsim::planetlab;

fn build_and_run(n: usize) -> usize {
    let mut net = Network::new(99);
    let plab = planetlab(&mut net, n, 1.0, 3);
    let members = plab
        .nodes
        .iter()
        .enumerate()
        .map(|(i, &h)| {
            IpopMember::router(
                h,
                Ipv4Addr::new(172, 17, (i / 200) as u8, (i % 200 + 1) as u8),
            )
        })
        .collect();
    ipop::deploy_ipop(&mut net, members, DeployOptions::udp());
    let mut sim = NetworkSim::new(net);
    sim.run_for(Duration::from_secs(15));
    // Return the number of connected nodes so the work cannot be optimised away.
    plab.nodes
        .iter()
        .filter(|&&h| {
            sim.agent_as::<IpopHostAgent>(h)
                .is_some_and(|a| a.is_connected())
        })
        .count()
}

fn bench_overlay_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay_self_configuration");
    group.sample_size(10);
    for n in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let connected = build_and_run(n);
                assert!(connected >= n - 1, "overlay failed to form for n={n}");
                connected
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overlay_scaling);
criterion_main!(benches);
