//! Criterion micro-benchmarks for the hot per-packet code paths: SHA-1 address
//! mapping, packet serialization, checksums and overlay routing-table lookups.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::net::Ipv4Addr;

use ipop_overlay::packets::{
    ConnectionKind, DeliveryMode, LinkMessage, RoutedPacket, RoutedPayload,
};
use ipop_overlay::table::{Connection, ConnectionState, ConnectionTable};
use ipop_overlay::Address;
use ipop_packet::icmp::IcmpPacket;
use ipop_packet::ipv4::{Ipv4Packet, Ipv4Payload};
use ipop_packet::sha1::Sha1;
use ipop_packet::tcp::TcpSegment;
use ipop_simcore::SimTime;

fn bench_sha1(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha1");
    for size in [4usize, 64, 1400] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("digest_{size}B"), |b| {
            b.iter(|| Sha1::digest(&data))
        });
    }
    group.finish();
}

fn bench_ip_to_overlay_address(c: &mut Criterion) {
    c.bench_function("address/from_ip", |b| {
        b.iter(|| Address::from_ip(std::hint::black_box(Ipv4Addr::new(172, 16, 0, 2))))
    });
}

fn bench_packet_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet_codec");
    let src = Ipv4Addr::new(172, 16, 0, 2);
    let dst = Ipv4Addr::new(172, 16, 0, 18);
    let icmp = Ipv4Packet::new(
        src,
        dst,
        Ipv4Payload::Icmp(IcmpPacket::echo_request(7, 1, vec![0; 56])),
    );
    let tcp = Ipv4Packet::new(
        src,
        dst,
        Ipv4Payload::Tcp(TcpSegment::data(5001, 5201, 1, 1, vec![0; 1400])),
    );
    group.throughput(Throughput::Bytes(tcp.wire_len() as u64));
    group.bench_function("serialize_icmp", |b| b.iter(|| icmp.to_bytes()));
    group.bench_function("serialize_tcp_1400B", |b| b.iter(|| tcp.to_bytes()));
    let tcp_bytes = tcp.to_bytes();
    group.bench_function("parse_tcp_1400B", |b| {
        b.iter(|| Ipv4Packet::from_bytes(&tcp_bytes).unwrap())
    });
    group.finish();
}

fn bench_encapsulation(c: &mut Criterion) {
    // The full IPOP encapsulation of Fig. 3: virtual IP packet -> bytes -> routed
    // overlay packet -> link message bytes.
    let src = Ipv4Addr::new(172, 16, 0, 2);
    let dst = Ipv4Addr::new(172, 16, 0, 18);
    let vpkt = Ipv4Packet::new(
        src,
        dst,
        Ipv4Payload::Tcp(TcpSegment::data(5001, 5201, 1, 1, vec![0; 1400])),
    );
    c.bench_function("ipop/encapsulate_1400B", |b| {
        b.iter(|| {
            let routed = RoutedPacket::new(
                Address::from_ip(src),
                Address::from_ip(dst),
                DeliveryMode::Exact,
                RoutedPayload::IpTunnel(vpkt.to_bytes().into()),
            );
            LinkMessage::Routed(routed).to_bytes()
        })
    });
}

fn bench_connection_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("connection_table");
    for n in [8usize, 64, 256] {
        let mut table = ConnectionTable::new();
        for i in 0..n {
            let peer = Address::from_key(format!("node-{i}").as_bytes());
            table.upsert(Connection {
                peer,
                endpoint: (Ipv4Addr::new(10, 0, (i / 250) as u8, (i % 250) as u8), 4001),
                kind: ConnectionKind::Near,
                state: ConnectionState::Established,
                last_heard: SimTime::ZERO,
                last_ping_sent: SimTime::ZERO,
            });
        }
        let target = Address::from_ip(Ipv4Addr::new(172, 16, 0, 77));
        group.bench_function(format!("closest_to_{n}_edges"), |b| {
            b.iter_batched(
                || target,
                |t| table.closest_to(&t).map(|c| c.peer),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sha1,
    bench_ip_to_overlay_address,
    bench_packet_codec,
    bench_encapsulation,
    bench_connection_table
);
criterion_main!(benches);
