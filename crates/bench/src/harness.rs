//! Shared scaffolding for the scenario benchmark binaries.
//!
//! Every scenario bin (`selfconfig_churn`, `migration_churn`,
//! `dht_durability`, `lossy_churn`, `fanout_bench`, …) repeats the same
//! frame: parse `--quick`/`--out PATH`, run, summarise latency vectors, write
//! a hand-rendered JSON artefact at the repo root. This module holds that
//! frame once so the bins only contain their scenario.

/// Parsed command line of a scenario benchmark binary.
pub struct BenchCli {
    /// `--quick` / `-q`: run the scaled-down CI-sized workload.
    pub quick: bool,
    /// Artefact path: `--out PATH`, defaulting to `<artifact>` at the repo
    /// root.
    pub out_path: String,
    /// The raw arguments, for bins with extra flags.
    pub args: Vec<String>,
}

impl BenchCli {
    /// `"quick"` or `"full"`, as reported in the artefact.
    pub fn mode(&self) -> &'static str {
        if self.quick {
            "quick"
        } else {
            "full"
        }
    }

    /// Write the rendered JSON artefact and log the path.
    pub fn write_artifact(&self, json: &str) {
        std::fs::write(&self.out_path, json)
            .unwrap_or_else(|e| panic!("write {}: {e}", self.out_path));
        eprintln!("wrote {}", self.out_path);
    }
}

/// Parse the standard scenario-bin command line. `artifact` is the default
/// output file name, placed at the repo root (two levels above the bench
/// crate).
pub fn bench_cli(artifact: &str) -> BenchCli {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("{}/../../{artifact}", env!("CARGO_MANIFEST_DIR")));
    BenchCli {
        quick,
        out_path,
        args,
    }
}

/// Mean of a sample; 0 when empty.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Maximum of a sample; 0 when empty.
pub fn fmax(xs: &[f64]) -> f64 {
    xs.iter().cloned().fold(0.0, f64::max)
}

/// Value at the `q` quantile (`0.0..=1.0`) of an unsorted sample; 0 when
/// empty. Sorts a copy — scenario result vectors, not hot paths.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    sorted[((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)) as usize]
}

/// Success ratio with the empty case counted as success (no work, nothing
/// failed) — the convention every scenario artefact uses.
pub fn rate(num: usize, den: usize) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_helpers_handle_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(fmax(&[]), 0.0);
        assert_eq!(fmax(&[1.0, 5.0, 3.0]), 5.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert_eq!(rate(0, 0), 1.0);
        assert_eq!(rate(3, 4), 0.75);
    }

    #[test]
    fn quantile_picks_order_statistics() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 100.0);
        assert_eq!(quantile(&xs, 0.5), 50.0);
        // Unsorted input is handled.
        let mut rev = xs.clone();
        rev.reverse();
        assert_eq!(quantile(&rev, 0.99), 99.0);
    }
}
