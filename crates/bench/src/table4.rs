//! Table IV — execution time of the LSS parallel application over IPOP, sequential
//! (1 compute node) vs parallel (4 compute nodes), with cold and warm NFS caches.

use rayon::prelude::*;

use ipop_apps::lss::LssParams;

use crate::report::{f, Table};

/// One row (one node count).
#[derive(Clone, Debug)]
pub struct LssRow {
    /// Number of compute nodes.
    pub nodes: usize,
    /// Time for the first image (cold caches), seconds.
    pub image1_s: f64,
    /// Total time for the remaining images (warm caches), seconds.
    pub rest_s: f64,
    /// Total run time, seconds.
    pub total_s: f64,
    /// Paper values for the same row, seconds (image1, rest, total).
    pub paper: (f64, f64, f64),
}

/// Run Table IV with the given workload parameters.
pub fn run(params: LssParams) -> Vec<LssRow> {
    [1usize, 4usize]
        .into_par_iter()
        .map(|nodes| {
            let report = crate::scenarios::fig4_lss(nodes, params.clone(), 0x7ab1e4);
            let paper = if nodes == 1 {
                (811.0, 834.0, 1645.0)
            } else {
                (378.0, 217.0, 595.0)
            };
            LssRow {
                nodes,
                image1_s: report.first_image(),
                rest_s: report.remaining_images(),
                total_s: report.total(),
                paper,
            }
        })
        .collect()
}

/// Render rows as the printed table, including the warm-cache speed-up.
pub fn render(rows: &[LssRow], params: &LssParams) -> Table {
    let mut table = Table::new(
        &format!(
            "Table IV - LSS execution times ({} images, {} x {} MB databases)",
            params.images,
            params.databases,
            params.database_size / (1024 * 1024)
        ),
        &[
            "# nodes",
            "image 1 (s)",
            "images 2-N (s)",
            "total (s)",
            "paper img1/rest/total (s)",
        ],
    );
    for row in rows {
        table.row(&[
            row.nodes.to_string(),
            f(row.image1_s, 0),
            f(row.rest_s, 0),
            f(row.total_s, 0),
            format!(
                "{:.0} / {:.0} / {:.0}",
                row.paper.0, row.paper.1, row.paper.2
            ),
        ]);
    }
    if let (Some(seq), Some(par)) = (
        rows.iter().find(|r| r.nodes == 1),
        rows.iter().find(|r| r.nodes == 4),
    ) {
        if par.rest_s > 0.0 {
            table.row(&[
                "speed-up (warm)".to_string(),
                String::new(),
                f(seq.rest_s / par.rest_s, 2),
                String::new(),
                "paper: 3.8".to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_lss_shows_cold_cache_penalty_and_parallel_speedup() {
        // A drastically scaled-down workload (small databases, short compute) that
        // still exhibits both effects Table IV reports.
        let params = LssParams {
            images: 3,
            databases: 4,
            database_size: 256 * 1024,
            compute_per_mb: ipop_simcore::Duration::from_secs(8),
        };
        let rows = run(params);
        let seq = rows.iter().find(|r| r.nodes == 1).unwrap();
        let par = rows.iter().find(|r| r.nodes == 4).unwrap();
        assert!(
            seq.total_s > 0.0 && par.total_s > 0.0,
            "both runs completed"
        );
        // Cold first image is slower than a warm one in the sequential run.
        let seq_warm_per_image = seq.rest_s / 2.0;
        assert!(
            seq.image1_s > seq_warm_per_image,
            "cold image ({}) slower than warm ({})",
            seq.image1_s,
            seq_warm_per_image
        );
        // Parallel warm-cache phase shows a clear speed-up (>2x with 4 nodes).
        assert!(
            seq.rest_s / par.rest_s > 2.0,
            "warm speed-up {} too small",
            seq.rest_s / par.rest_s
        );
    }
}
