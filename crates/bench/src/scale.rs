//! 10k–100k node overlay scale harness: Kleinberg shortcut routing measured
//! where it matters.
//!
//! Every other experiment in this crate runs tens of nodes through the full
//! physical-network model. This harness instead drives [`OverlayNode`]s
//! directly on top of the interned flat substrate
//! ([`ipop_netsim::ScaleNet`]) and the sharded deterministic simulator
//! ([`ipop_simcore::ShardedSim`]), which is what makes 100k nodes tractable:
//!
//! * node identity is a dense `u32`; endpoints and link latencies are
//!   computed, not stored;
//! * the ring is warm-started — near edges and half of each node's shortcut
//!   budget are seeded directly — then real maintenance runs: every node
//!   ticks [`request_shortcut`-style] maintenance for a configurable number
//!   of rounds, forming its remaining Far edges through routed
//!   ConnectRequests over the live overlay;
//! * after maintenance, a probe workload measures greedy routing: random
//!   node pairs exchange Exact-mode packets and the delivered hop counts
//!   give the routing stretch against the `log₂N` Kleinberg ideal.
//!
//! Identical seeds produce identical histories whether the shards run
//! sequentially or fanned out over threads ([`ScaleReport::trace_hash`]
//! proves it — `ring_10k --verify` and a tier-1 test compare the two).

use std::sync::Arc;

use ipop_netsim::ScaleNet;
use ipop_overlay::address::Address;
use ipop_overlay::node::{OverlayConfig, OverlayNode};
use ipop_overlay::packets::{ConnectionKind, LinkMessage};
use ipop_simcore::{
    Duration, ShardCtl, ShardRunOutcome, ShardWorld, ShardedSim, SimTime, StreamRng,
};

/// Parameters of one scale run.
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    /// Overlay size.
    pub nodes: u32,
    /// Shard count for the parallel simulator (fixed, not machine-derived,
    /// so reports are comparable across hosts).
    pub shards: u32,
    /// Root seed: addresses, latencies, probe pairs, node RNG streams.
    pub seed: u64,
    /// Structured-near connections per ring side.
    pub near_per_side: usize,
    /// Far (shortcut) connection budget per node.
    pub max_shortcuts: usize,
    /// Shortcuts seeded directly at start; the rest form through live
    /// maintenance (`0..=max_shortcuts`).
    pub seeded_shortcuts: usize,
    /// Overlay maintenance cadence.
    pub maintenance_interval: Duration,
    /// Maintenance rounds each node runs before the probe phase.
    pub maintenance_ticks: u32,
    /// Number of routing probes (random src → random dst, Exact mode).
    pub probes: u32,
    /// Fan shards out over threads; `false` runs them sequentially.
    /// Both settings produce identical histories.
    pub parallel: bool,
    /// Pub/sub relay-tree out-degree on every node (only exercised by the
    /// fan-out workload, [`crate::fanout`]).
    pub pubsub_fanout: usize,
    /// Per-link deterministic latency jitter on top of the 1 ms slice base.
    /// Zero gives every link exactly the base latency — the uniform substrate
    /// the stream-fairness workload ([`crate::streams`]) measures on.
    pub link_jitter: Duration,
}

impl ScaleConfig {
    /// Defaults for an `nodes`-node ring: 8 shards, 2+2 near edges, 4-slot
    /// shortcut budget half-seeded, 10 maintenance rounds at 500 ms, one
    /// probe per node.
    pub fn ring(nodes: u32) -> Self {
        ScaleConfig {
            nodes,
            shards: 8,
            seed: 0x5CA1E,
            near_per_side: 2,
            max_shortcuts: 4,
            seeded_shortcuts: 2,
            maintenance_interval: Duration::from_millis(500),
            maintenance_ticks: 10,
            probes: nodes,
            parallel: true,
            pubsub_fanout: 4,
            link_jitter: Duration::from_millis(9),
        }
    }
}

/// Outcome of one scale run.
#[derive(Clone, Debug)]
pub struct ScaleReport {
    pub nodes: u32,
    pub shards: u32,
    /// Simulator events executed.
    pub events: u64,
    /// Virtual seconds simulated.
    pub virtual_s: f64,
    pub probes_sent: u64,
    pub probes_delivered: u64,
    /// Hop counts of delivered probes.
    pub hops: Vec<u32>,
    /// Established Far edges per node, averaged.
    pub mean_far: f64,
    /// Nodes that reached their full `max_shortcuts` budget.
    pub full_budget_nodes: u32,
    /// Exact-mode packets dropped at the closest-but-not-target node.
    pub dropped_no_target: u64,
    /// Packets dropped on TTL exhaustion.
    pub dropped_ttl: u64,
    /// FNV digest of the full `(time, seq)` execution history — identical
    /// for sequential and parallel runs of the same config.
    pub trace_hash: u64,
    /// Whether the event queues drained before the time limit.
    pub drained: bool,
}

impl ScaleReport {
    pub fn mean_hops(&self) -> f64 {
        if self.hops.is_empty() {
            return f64::NAN;
        }
        self.hops.iter().map(|&h| h as f64).sum::<f64>() / self.hops.len() as f64
    }

    /// Hop count at the `q` quantile (`0.0..=1.0`) of delivered probes.
    pub fn hops_quantile(&self, q: f64) -> u32 {
        if self.hops.is_empty() {
            return 0;
        }
        let mut sorted = self.hops.clone();
        sorted.sort_unstable();
        sorted[((sorted.len() - 1) as f64 * q) as usize]
    }

    pub fn log2n(&self) -> f64 {
        (self.nodes as f64).log2()
    }

    /// Mean hops over the `log₂N` Kleinberg ideal.
    pub fn stretch(&self) -> f64 {
        self.mean_hops() / self.log2n()
    }

    pub fn delivery_rate(&self) -> f64 {
        if self.probes_sent == 0 {
            return f64::NAN;
        }
        self.probes_delivered as f64 / self.probes_sent as f64
    }
}

/// Events driving the scale world.
enum ScaleEv {
    /// A link message from node `src` arriving at node `dst`.
    Deliver {
        src: u32,
        dst: u32,
        msg: LinkMessage,
    },
    /// Maintenance tick on `dst`; reschedules itself `remaining` more times.
    Tick { dst: u32, remaining: u32 },
    /// Node `src` originates an Exact-mode probe to node `target`'s address.
    Probe { src: u32, target: u32 },
}

/// One shard: a contiguous block of nodes plus local measurement state.
struct ScaleShardWorld {
    net: ScaleNet,
    /// Maintenance tick cadence.
    interval: Duration,
    /// First node id of this shard.
    lo: u32,
    nodes: Vec<OverlayNode>,
    /// Global id → overlay address (shared, read-only).
    addrs: Arc<Vec<Address>>,
    hops: Vec<u32>,
    probes_sent: u64,
    probes_delivered: u64,
}

impl ScaleShardWorld {
    /// Flush node `idx`'s outbox into the event fabric and harvest delivered
    /// probe packets. Every link message — same shard or not — crosses the
    /// slice barrier with its full link latency, so shard layout never
    /// affects delivery times.
    fn pump(&mut self, idx: usize, now: SimTime, ctl: &mut ShardCtl<ScaleEv>) {
        let src = self.lo + idx as u32;
        let node = &mut self.nodes[idx];
        for (ep, msg) in node.take_outbox() {
            let Some(dst) = self.net.node_of(&ep) else {
                continue;
            };
            let at = now + self.net.latency(src, dst);
            ctl.send(
                self.net.shard_of(dst) as usize,
                at,
                ScaleEv::Deliver { src, dst, msg },
            );
        }
        for pkt in node.take_delivered() {
            self.probes_delivered += 1;
            self.hops.push(pkt.hops as u32);
        }
    }
}

impl ShardWorld for ScaleShardWorld {
    type Ev = ScaleEv;

    fn handle(&mut self, now: SimTime, ev: ScaleEv, ctl: &mut ShardCtl<ScaleEv>) {
        match ev {
            ScaleEv::Deliver { src, dst, msg } => {
                let idx = (dst - self.lo) as usize;
                let from = self.net.endpoint(src);
                self.nodes[idx].on_message(now, from, msg);
                self.pump(idx, now, ctl);
            }
            ScaleEv::Tick { dst, remaining } => {
                let idx = (dst - self.lo) as usize;
                self.nodes[idx].on_tick(now);
                self.pump(idx, now, ctl);
                if remaining > 0 {
                    ctl.send_local(
                        now + self.interval,
                        ScaleEv::Tick {
                            dst,
                            remaining: remaining - 1,
                        },
                    );
                }
            }
            ScaleEv::Probe { src, target } => {
                let idx = (src - self.lo) as usize;
                let dst_addr = self.addrs[target as usize];
                self.probes_sent += 1;
                self.nodes[idx].send_ip(now, dst_addr, vec![0u8; 8]);
                self.pump(idx, now, ctl);
            }
        }
    }
}

/// Deterministic unique ring addresses for `n` nodes, in ascending ring
/// order (node `i` is node `i+1`'s counter-clockwise neighbour).
fn ring_addresses(n: u32, seed: u64) -> Vec<Address> {
    let mut rng = StreamRng::new(seed, "scale-addresses");
    let mut addrs: Vec<Address> = (0..n)
        .map(|_| {
            let mut b = [0u8; 20];
            for chunk in b.chunks_mut(8) {
                let w = rng.next_u64().to_le_bytes();
                chunk.copy_from_slice(&w[..chunk.len()]);
            }
            Address(b)
        })
        .collect();
    addrs.sort_unstable();
    addrs.dedup();
    assert_eq!(addrs.len(), n as usize, "160-bit address collision");
    addrs
}

/// The interned substrate plus warm-started overlay nodes shared by the
/// scale and fan-out workloads.
pub struct WarmRing {
    /// The interned flat substrate (`Copy`; every shard keeps one).
    pub net: ScaleNet,
    /// Global node id → overlay address, in ascending ring order.
    pub addrs: Arc<Vec<Address>>,
    /// One warm-started node per id: near edges to `near_per_side` ring
    /// neighbours each side, `seeded_shortcuts` harmonically-drawn Far edges.
    pub nodes: Vec<OverlayNode>,
    /// The event-slice width the substrate was built with.
    pub slice: Duration,
}

/// Build the substrate and warm-start the ring: near edges to the
/// `near_per_side` ring neighbours on each side, plus `seeded_shortcuts`
/// harmonically-drawn Far edges (both directions, like a completed
/// handshake). The remaining shortcut budget is left for live maintenance
/// to fill.
pub fn build_warm_ring(cfg: &ScaleConfig) -> WarmRing {
    assert!(cfg.nodes >= 8, "ring too small to be interesting");
    assert!(cfg.seeded_shortcuts <= cfg.max_shortcuts);
    let slice = Duration::from_millis(1);
    let net = ScaleNet::new(cfg.nodes, cfg.shards, cfg.seed, slice, cfg.link_jitter);
    let n = cfg.nodes as usize;
    let addrs = Arc::new(ring_addresses(cfg.nodes, cfg.seed));
    // Hop budget: greedy tail paths run a small multiple of log₂N; the wire
    // default (32) starts truncating the tail beyond ~10k nodes.
    let packet_ttl = ((4.0 * (cfg.nodes as f64).log2()) as u8).clamp(32, 128);

    let mut nodes: Vec<OverlayNode> = (0..n)
        .map(|i| {
            let oc = OverlayConfig::new(addrs[i], net.endpoint(i as u32))
                .without_link_monitor()
                .without_anti_entropy()
                .with_near_per_side(cfg.near_per_side)
                .with_max_shortcuts(cfg.max_shortcuts)
                .with_maintenance_interval(cfg.maintenance_interval)
                .with_packet_ttl(packet_ttl)
                .with_pubsub_fanout(cfg.pubsub_fanout);
            OverlayNode::new(oc, StreamRng::new(cfg.seed, &format!("scale-node-{i}")))
        })
        .collect();

    let t0 = SimTime::ZERO;
    for (i, node) in nodes.iter_mut().enumerate() {
        for d in 1..=cfg.near_per_side.min(n / 2) {
            for j in [(i + d) % n, (i + n - d) % n] {
                if j != i {
                    node.seed_connection(
                        t0,
                        addrs[j],
                        net.endpoint(j as u32),
                        ConnectionKind::Near,
                    );
                }
            }
        }
    }
    let mut far_rng = StreamRng::new(cfg.seed, "scale-seed-far");
    for i in 0..n {
        for _ in 0..cfg.seeded_shortcuts {
            // Symphony/Kleinberg harmonic draw over ring offsets: n^u with
            // u uniform in (0,1) gives P(offset = d) ∝ 1/d.
            let offset = ((n as f64).powf(far_rng.unit()) as usize).clamp(1, n - 1);
            let j = (i + offset) % n;
            if j == i
                || nodes[i].connections().contains(&addrs[j])
                || nodes[j].connections().contains(&addrs[i])
            {
                continue; // degenerate draw; maintenance will top the budget up
            }
            nodes[i].seed_connection(t0, addrs[j], net.endpoint(j as u32), ConnectionKind::Far);
            nodes[j].seed_connection(t0, addrs[i], net.endpoint(i as u32), ConnectionKind::Far);
        }
    }
    WarmRing {
        net,
        addrs,
        nodes,
        slice,
    }
}

/// Run one scale experiment.
pub fn run_scale(cfg: &ScaleConfig) -> ScaleReport {
    let WarmRing {
        net,
        addrs,
        nodes,
        slice,
    } = build_warm_ring(cfg);
    let n = cfg.nodes as usize;
    let t0 = SimTime::ZERO;

    // Partition into contiguous shards (ring neighbours share a shard).
    let mut worlds = Vec::with_capacity(net.shards() as usize);
    let mut nodes = nodes.into_iter();
    for s in 0..net.shards() {
        let count = (net.shard_end(s) - net.shard_start(s)) as usize;
        worlds.push(ScaleShardWorld {
            net,
            interval: cfg.maintenance_interval,
            lo: net.shard_start(s),
            nodes: nodes.by_ref().take(count).collect(),
            addrs: Arc::clone(&addrs),
            hops: Vec::new(),
            probes_sent: 0,
            probes_delivered: 0,
        });
    }

    let mut sim = ShardedSim::new(worlds, slice, cfg.parallel);

    // Maintenance ticks, staggered across one interval so 100k nodes do not
    // all tick in the same slice.
    let interval_ns = cfg.maintenance_interval.as_nanos();
    for i in 0..cfg.nodes {
        let at = t0 + Duration::from_nanos(i as u64 * interval_ns / cfg.nodes as u64);
        sim.schedule(
            net.shard_of(i) as usize,
            at,
            ScaleEv::Tick {
                dst: i,
                remaining: cfg.maintenance_ticks,
            },
        );
    }

    // Probe phase: random pairs, spaced 1 ms apart after maintenance settles.
    let probe_start = t0 + Duration::from_nanos(interval_ns * (cfg.maintenance_ticks as u64 + 2));
    let mut probe_rng = StreamRng::new(cfg.seed, "scale-probes");
    for p in 0..cfg.probes {
        let src = probe_rng.index(n) as u32;
        let mut target = probe_rng.index(n) as u32;
        if target == src {
            target = (src + 1) % cfg.nodes;
        }
        sim.schedule(
            net.shard_of(src) as usize,
            probe_start + Duration::from_millis(p as u64),
            ScaleEv::Probe { src, target },
        );
    }

    // Generous limit: probes plus a minute of routing time; the run drains
    // long before it (ticks are finite, probes terminate or TTL out).
    let limit = probe_start + Duration::from_millis(cfg.probes as u64) + Duration::from_secs(60);
    let outcome = sim.run_until(limit);

    let mut hops = Vec::new();
    let mut probes_sent = 0;
    let mut probes_delivered = 0;
    let mut far_total = 0usize;
    let mut full_budget = 0u32;
    let mut dropped_no_target = 0;
    let mut dropped_ttl = 0;
    for w in sim.worlds() {
        hops.extend_from_slice(&w.hops);
        probes_sent += w.probes_sent;
        probes_delivered += w.probes_delivered;
        for node in &w.nodes {
            let far = node.connections().count_kind(ConnectionKind::Far);
            far_total += far;
            if far >= cfg.max_shortcuts {
                full_budget += 1;
            }
            let s = node.stats();
            dropped_no_target += s.dropped_no_target;
            dropped_ttl += s.dropped_ttl;
        }
    }

    ScaleReport {
        nodes: cfg.nodes,
        shards: net.shards(),
        events: sim.executed(),
        virtual_s: sim.now().saturating_since(SimTime::ZERO).as_secs_f64(),
        probes_sent,
        probes_delivered,
        hops,
        mean_far: far_total as f64 / cfg.nodes as f64,
        full_budget_nodes: full_budget,
        dropped_no_target,
        dropped_ttl,
        trace_hash: sim.trace_hash(),
        drained: outcome == ShardRunOutcome::Drained,
    }
}

/// Run the same config sequentially and in parallel; return the two reports.
/// Histories must match bit-for-bit (`trace_hash` and all measurements) —
/// the `--verify` mode of the scale binaries and a tier-1 test assert it.
pub fn run_both_modes(cfg: &ScaleConfig) -> (ScaleReport, ScaleReport) {
    let mut seq = cfg.clone();
    seq.parallel = false;
    let mut par = cfg.clone();
    par.parallel = true;
    (run_scale(&seq), run_scale(&par))
}

/// Shared `main` for the `ring_10k`/`ring_100k` binaries.
///
/// Flags: `--quick` (fewer maintenance rounds and probes, CI-sized),
/// `--out PATH` (default `BENCH_scale.json` at the repo root),
/// `--verify` (additionally run a 1k-node config both sequentially and in
/// parallel and fail unless the histories match bit-for-bit).
pub fn scale_bin_main(scenario: &'static str, nodes: u32) {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let verify = args.iter().any(|a| a == "--verify");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("{}/../../BENCH_scale.json", env!("CARGO_MANIFEST_DIR")));
    let mode = if quick { "quick" } else { "full" };

    let mut cfg = ScaleConfig::ring(nodes);
    if quick {
        cfg.maintenance_ticks = 6;
        cfg.probes = (nodes / 5).max(1000).min(nodes);
    }

    let verified = if verify {
        eprintln!("{scenario}: verifying parallel == sequential on a 1k ring…");
        let (seq, par) = run_both_modes(&ScaleConfig {
            shards: 8,
            maintenance_ticks: 4,
            probes: 500,
            ..ScaleConfig::ring(1000)
        });
        let ok = seq.trace_hash == par.trace_hash && seq.hops == par.hops;
        assert!(
            ok,
            "determinism violation: sequential {:#x} vs parallel {:#x}",
            seq.trace_hash, par.trace_hash
        );
        eprintln!(
            "  ok: trace {:#018x}, {} events",
            par.trace_hash, par.events
        );
        Some(true)
    } else {
        None
    };

    eprintln!(
        "{scenario} ({mode} mode): {} nodes, {} shards, {} maintenance rounds, {} probes",
        cfg.nodes, cfg.shards, cfg.maintenance_ticks, cfg.probes
    );
    // lint:allow(d2): wall-clock here only measures real elapsed time for the
    // ev/s report; it never feeds simulation state, which runs on SimTime.
    let started = std::time::Instant::now();
    let r = run_scale(&cfg);
    let wall_s = started.elapsed().as_secs_f64();
    let ev_s = r.events as f64 / wall_s;

    eprintln!(
        "  {} events in {:.2}s wall / {:.1}s virtual -> {:.0} ev/s",
        r.events, wall_s, r.virtual_s, ev_s
    );
    eprintln!(
        "  probes: {}/{} delivered ({:.2}%), hops mean {:.2} p99 {} max {} | log2N {:.2} -> stretch {:.2}",
        r.probes_delivered,
        r.probes_sent,
        100.0 * r.delivery_rate(),
        r.mean_hops(),
        r.hops_quantile(0.99),
        r.hops_quantile(1.0),
        r.log2n(),
        r.stretch()
    );
    eprintln!(
        "  shortcuts: mean Far {:.2}, {} / {} nodes at full budget; drops: no_target {}, ttl {}",
        r.mean_far, r.full_budget_nodes, r.nodes, r.dropped_no_target, r.dropped_ttl
    );

    let verified_json = match verified {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    };
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"scale\",\n");
    json.push_str(&format!("  \"scenario\": \"{scenario}\",\n"));
    json.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    json.push_str(&format!("  \"nodes\": {},\n", r.nodes));
    json.push_str(&format!("  \"shards\": {},\n", r.shards));
    json.push_str(&format!("  \"events\": {},\n", r.events));
    json.push_str(&format!("  \"wall_s\": {wall_s:.3},\n"));
    json.push_str(&format!("  \"virtual_s\": {:.1},\n", r.virtual_s));
    json.push_str(&format!("  \"events_per_sec\": {ev_s:.1},\n"));
    json.push_str(&format!(
        "  \"probes\": {{ \"sent\": {}, \"delivered\": {}, \"delivery_rate\": {:.4} }},\n",
        r.probes_sent,
        r.probes_delivered,
        r.delivery_rate()
    ));
    json.push_str(&format!(
        "  \"hops\": {{ \"mean\": {:.3}, \"p50\": {}, \"p99\": {}, \"max\": {} }},\n",
        r.mean_hops(),
        r.hops_quantile(0.5),
        r.hops_quantile(0.99),
        r.hops_quantile(1.0)
    ));
    json.push_str(&format!("  \"log2n\": {:.3},\n", r.log2n()));
    json.push_str(&format!("  \"stretch\": {:.3},\n", r.stretch()));
    json.push_str(&format!(
        "  \"shortcuts\": {{ \"mean_far\": {:.3}, \"full_budget_nodes\": {} }},\n",
        r.mean_far, r.full_budget_nodes
    ));
    json.push_str(&format!(
        "  \"dropped\": {{ \"no_target\": {}, \"ttl\": {} }},\n",
        r.dropped_no_target, r.dropped_ttl
    ));
    json.push_str(&format!(
        "  \"determinism\": {{ \"verified\": {verified_json}, \"trace_hash\": \"{:#018x}\" }}\n",
        r.trace_hash
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_scale.json");
    eprintln!("wrote {out_path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScaleConfig {
        ScaleConfig {
            shards: 4,
            maintenance_ticks: 4,
            probes: 64,
            ..ScaleConfig::ring(128)
        }
    }

    #[test]
    fn small_ring_routes_all_probes() {
        let r = run_scale(&small());
        assert!(r.drained, "run must drain");
        assert_eq!(r.probes_sent, 64);
        assert_eq!(r.probes_delivered, 64, "every probe must arrive");
        assert_eq!(r.dropped_no_target, 0, "no blackholed probes");
        assert!(r.mean_far >= 2.0, "seeded shortcuts survive maintenance");
        // 128 nodes: log2 = 7; greedy with shortcuts must beat ring walking
        // (mean ~32 hops on a bare 128-ring with 2 near per side).
        assert!(
            r.mean_hops() < 3.0 * r.log2n(),
            "mean hops {} vs log2N {}",
            r.mean_hops(),
            r.log2n()
        );
    }

    #[test]
    fn parallel_and_sequential_histories_match() {
        let (seq, par) = run_both_modes(&small());
        assert_eq!(seq.trace_hash, par.trace_hash);
        assert_eq!(seq.events, par.events);
        assert_eq!(seq.hops, par.hops);
        assert_eq!(seq.probes_delivered, par.probes_delivered);
        assert_eq!(seq.mean_far, par.mean_far);
    }

    #[test]
    fn same_config_replays_identically() {
        let a = run_scale(&small());
        let b = run_scale(&small());
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a.hops, b.hops);
    }

    #[test]
    fn maintenance_fills_the_shortcut_budget() {
        // Zero seeded shortcuts: every Far edge must come from live
        // request_shortcut maintenance over the seeded ring.
        let mut cfg = small();
        cfg.seeded_shortcuts = 0;
        cfg.maintenance_ticks = 8;
        cfg.probes = 16;
        let r = run_scale(&cfg);
        assert!(r.drained);
        assert!(
            r.mean_far >= 1.0,
            "maintenance formed shortcuts (mean_far {})",
            r.mean_far
        );
        assert_eq!(r.probes_delivered, r.probes_sent);
    }
}
