//! Plain-text table formatting for the experiment binaries, including the paper's
//! reference values so the output is directly comparable.

/// A formatted comparison table.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.rows.push(cells.to_vec());
        self
    }

    /// Render to a string with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render and print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Format a float with the given number of decimals.
pub fn f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Format a ratio as a percentage string.
pub fn pct(part: f64, whole: f64) -> String {
    if whole <= 0.0 {
        "-".to_string()
    } else {
        format!("{:.0}%", 100.0 * part / whole)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("Demo", &["scenario", "mean (ms)"]);
        t.row(&["physical".to_string(), f(0.898, 3)]);
        t.row(&["IPOP-UDP".to_string(), f(6.859, 3)]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("physical"));
        assert!(s.contains("6.859"));
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    fn percentage_helper() {
        assert_eq!(pct(2389.0, 8255.0), "29%");
        assert_eq!(pct(1.0, 0.0), "-");
        assert_eq!(f(1.23456, 2), "1.23");
    }
}
