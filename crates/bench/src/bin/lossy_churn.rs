//! Adversarial-network benchmark: the DHT durability workload (write storm
//! with mid-storm owner/hop crashes) replayed over a network that is never
//! clean — 1 % loss plus bounded reordering on every path, packet
//! duplication, and one actively corrupting link through the bootstrap.
//! Proves the robustness stack end to end: hardened decoders drop corrupted
//! datagrams at ingress instead of panicking or mis-parsing, phi-accrual
//! suspicion keeps lossy-but-live edges out of the dead list, duplicated
//! packets never mint duplicate address allocations, and every record still
//! survives and reconverges. Tracked across PRs in `BENCH_adversarial.json`.
//!
//! The scenario:
//!
//! 1. **Converge dirty** — N members form the ring while every path already
//!    drops, duplicates and reorders packets, and the bootstrap's links
//!    additionally flip bytes.
//! 2. **Write storm under fire** — publishers register guest mappings;
//!    halfway through, ring owners and hop nodes crash unannounced.
//! 3. **Reconverge** — a prober retries cache-bypassing reads until every
//!    mapping resolves. Invariants: 100 % survival, zero duplicate virtual
//!    address allocations, zero dead-edge verdicts between convergence and
//!    the crash (no false positives from loss — join-time verdicts are the
//!    monitor garbage-collecting phantom peers minted by corrupted-but-
//!    parseable packets, reported separately), corrupted datagrams counted
//!    and dropped.
//!
//! The whole scenario then runs a second time with the FNV-64 link
//! integrity tag enabled: corrupted-but-parseable datagrams are now rejected
//! at ingress before they can mint phantom peers, so the artefact reports
//! the ghost-edge delta between the two runs alongside the tag-reject count.
//!
//! Usage: `lossy_churn [--quick] [--out PATH]`

use std::collections::BTreeSet;
use std::net::Ipv4Addr;
use std::time::Instant;

use ipop::prelude::*;
use ipop::IpopHostAgent;
use ipop_bench::harness::{bench_cli, fmax, mean, rate};
use ipop_netsim::{planetlab, LinkImpairment};
use ipop_overlay::Address;
use ipop_simcore::SimTime;

struct Params {
    nodes: usize,
    publishers: usize,
    guests_per_publisher: usize,
    owners_crashed: usize,
    hops_crashed: usize,
    lease_ttl: Duration,
    sweep_interval: Duration,
    probe_window: Duration,
    loss: f64,
    duplicate: f64,
    reorder: f64,
    corrupt: f64,
}

struct Results {
    records: usize,
    resolved: usize,
    reconverge_s: Vec<f64>,
    crashed: usize,
    duplicate_allocations: usize,
    ghost_edges_collected: u64,
    false_dead_edges: u64,
    dead_edges: u64,
    probes_sent: u64,
    probe_timeouts: u64,
    malformed_dropped: u64,
    tag_rejects: u64,
    impair_dropped: u64,
    impair_duplicated: u64,
    impair_corrupted: u64,
    impair_reordered: u64,
    events: u64,
    wall_s: f64,
}

fn vip(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(172, 16, 7, (i + 1) as u8)
}

fn guest_ip(publisher: usize, g: usize) -> Ipv4Addr {
    Ipv4Addr::new(172, 16, 8, (publisher * 8 + g + 1) as u8)
}

/// Count live members sharing a virtual IP — must be zero even when the
/// network duplicates the datagrams that carried the allocations.
fn duplicate_allocations(
    sim: &NetworkSim,
    hosts: &[ipop_netsim::HostId],
    crashed: &BTreeSet<usize>,
) -> usize {
    let mut seen: Vec<Ipv4Addr> = Vec::new();
    let mut dups = 0;
    for (i, &h) in hosts.iter().enumerate() {
        if crashed.contains(&i) {
            continue;
        }
        let Some(agent) = sim.agent_as::<IpopHostAgent>(h) else {
            continue;
        };
        if agent.has_address() {
            let ip = agent.virtual_ip();
            if seen.contains(&ip) {
                dups += 1;
            } else {
                seen.push(ip);
            }
        }
    }
    dups
}

fn dead_edge_total(
    sim: &NetworkSim,
    hosts: &[ipop_netsim::HostId],
    crashed: &BTreeSet<usize>,
) -> u64 {
    hosts
        .iter()
        .enumerate()
        .filter(|(i, _)| !crashed.contains(i))
        .filter_map(|(_, &h)| sim.agent_as::<IpopHostAgent>(h))
        .map(|a| a.overlay_stats().dead_edges_detected)
        .sum()
}

fn run(p: &Params, seed: u64, integrity_tag: bool) -> Results {
    let started = Instant::now();
    let mut net = Network::new(seed);
    let plab = planetlab(&mut net, p.nodes, 1.0, seed);
    let members = plab
        .nodes
        .iter()
        .enumerate()
        .map(|(i, &h)| IpopMember::router(h, vip(i)))
        .collect();
    let mut options = DeployOptions {
        brunet_arp: true,
        ..DeployOptions::udp()
    }
    .with_lease_ttl(p.lease_ttl)
    .with_dht_sweep_interval(p.sweep_interval);
    if integrity_tag {
        options = options.with_link_integrity_tag();
    }
    let hosts = ipop::deploy_ipop(&mut net, members, options);

    // The whole run happens on a dirty WAN: every path loses, duplicates and
    // reorders packets...
    net.set_default_impairment(
        LinkImpairment::none()
            .with_loss(p.loss)
            .with_duplicate(p.duplicate)
            .with_reorder(p.reorder, Duration::from_millis(20)),
    );
    // ...and the bootstrap's links also flip bytes (pair entries replace the
    // default, so they carry the loss/dup/reorder rates too). Every member
    // talks to the bootstrap while joining, so the corruption is guaranteed
    // to hit real traffic.
    for &h in &plab.nodes[1..] {
        net.set_link_impairment(
            plab.nodes[0],
            h,
            LinkImpairment::none()
                .with_loss(p.loss)
                .with_duplicate(p.duplicate)
                .with_reorder(p.reorder, Duration::from_millis(20))
                .with_corrupt(p.corrupt),
        );
    }
    let mut sim = NetworkSim::new(net);

    // Phase 1: converge under impairment. Corrupted-but-parseable packets
    // (a flipped byte inside a 20-byte overlay address survives every
    // checksum) mint phantom peers during the join storm; the link monitor
    // garbage-collects those ghost edges — their probes are acked under the
    // real peer's address, so they accumulate genuine misses. Snapshot the
    // verdict count here: everything up to now is ghost GC, anything *after*
    // is a live edge falsely killed.
    sim.run_for(Duration::from_secs(60));
    let none = BTreeSet::new();
    let converge_dead_edges = dead_edge_total(&sim, &hosts, &none);

    // Phase 2: write storm with mid-storm crashes (same shape as the
    // dht_durability bench: victims are ring owners of already-written keys
    // plus uninvolved hop nodes, never publishers or the prober).
    let publishers: Vec<usize> = (1..=p.publishers).collect();
    let mut crashed: BTreeSet<usize> = BTreeSet::new();
    let mut crash_time = SimTime::ZERO;
    let mut false_dead_edges = 0;
    let mut publish_time: Vec<(Ipv4Addr, SimTime)> = Vec::new();
    for batch in 0..p.guests_per_publisher {
        for &pb in &publishers {
            let now = sim.now();
            let ip = guest_ip(pb, batch);
            sim.net_mut()
                .agent_as_mut::<IpopHostAgent>(hosts[pb])
                .unwrap()
                .route_for(now, ip);
            publish_time.push((ip, now));
        }
        sim.run_for(Duration::from_millis(500));
        if batch == p.guests_per_publisher / 2 && crashed.is_empty() {
            // Every dead-edge verdict since convergence condemned a
            // live-but-lossy peer: the false-positive count the phi layer
            // must hold at 0 (pre-convergence verdicts are ghost-edge GC,
            // excluded via the snapshot).
            false_dead_edges =
                dead_edge_total(&sim, &hosts, &crashed).saturating_sub(converge_dead_edges);
            let mut victims: Vec<usize> = Vec::new();
            for &(ip, _) in &publish_time {
                if victims.len() >= p.owners_crashed {
                    break;
                }
                let key = Address::from_ip(ip);
                let owner = (0..p.nodes)
                    .filter(|i| !crashed.contains(i) && !victims.contains(i))
                    .filter(|i| !publishers.contains(i) && *i != 0)
                    .min_by_key(|&i| Address::from_ip(vip(i)).ring_distance(&key));
                if let Some(o) = owner {
                    victims.push(o);
                }
            }
            let mut hops = 0usize;
            for i in (1..p.nodes).rev() {
                if hops >= p.hops_crashed {
                    break;
                }
                if !publishers.contains(&i) && !victims.contains(&i) {
                    victims.push(i);
                    hops += 1;
                }
            }
            crash_time = sim.now();
            for &v in &victims {
                crashed.insert(v);
                ipop::deploy_plain(sim.net_mut(), hosts[v], Box::new(ipop::NullApp));
            }
        }
    }

    // Phase 3: reconvergence through the still-impaired network.
    let records = publish_time.len();
    let mut unresolved: Vec<(Ipv4Addr, SimTime)> = publish_time
        .iter()
        .map(|&(ip, at)| (ip, at.max(crash_time)))
        .collect();
    let mut reconverge_s: Vec<f64> = Vec::new();
    let deadline = sim.now() + p.probe_window;
    while !unresolved.is_empty() && sim.now() < deadline {
        let now = sim.now();
        let mut tokens: Vec<(u64, usize)> = Vec::new();
        {
            let prober = sim
                .net_mut()
                .agent_as_mut::<IpopHostAgent>(hosts[0])
                .unwrap();
            let _ = prober.take_probe_results();
            for (idx, &(ip, _)) in unresolved.iter().enumerate() {
                tokens.push((prober.resolve_ip(now, ip), idx));
            }
        }
        sim.run_for(Duration::from_millis(500));
        let results = sim
            .net_mut()
            .agent_as_mut::<IpopHostAgent>(hosts[0])
            .unwrap()
            .take_probe_results();
        let resolved_now: Vec<usize> = results
            .iter()
            .filter(|(_, addr)| addr.is_some())
            .filter_map(|(token, _)| tokens.iter().find(|(t, _)| t == token).map(|&(_, idx)| idx))
            .collect();
        let at = sim.now();
        let mut remove: Vec<usize> = resolved_now;
        remove.sort_unstable();
        remove.dedup();
        for &idx in remove.iter().rev() {
            let (_, since) = unresolved.remove(idx);
            reconverge_s.push(at.saturating_since(since).as_secs_f64());
        }
    }

    // Census.
    let mut probes_sent = 0;
    let mut probe_timeouts = 0;
    let mut malformed_dropped = 0;
    let mut tag_rejects = 0;
    for (i, &h) in hosts.iter().enumerate() {
        if crashed.contains(&i) {
            continue;
        }
        let Some(agent) = sim.agent_as::<IpopHostAgent>(h) else {
            continue;
        };
        let s = agent.overlay_stats();
        probes_sent += s.link_probes_sent;
        probe_timeouts += s.link_probe_timeouts;
        malformed_dropped += s.malformed_dropped;
        tag_rejects += agent.transport_tag_rejects();
    }
    let net_counters = sim.net().counters();

    Results {
        records,
        resolved: reconverge_s.len(),
        reconverge_s,
        crashed: crashed.len(),
        duplicate_allocations: duplicate_allocations(&sim, &hosts, &crashed),
        ghost_edges_collected: converge_dead_edges,
        false_dead_edges,
        dead_edges: dead_edge_total(&sim, &hosts, &crashed),
        probes_sent,
        probe_timeouts,
        malformed_dropped,
        tag_rejects,
        impair_dropped: net_counters.impair_dropped,
        impair_duplicated: net_counters.impair_duplicated,
        impair_corrupted: net_counters.impair_corrupted,
        impair_reordered: net_counters.impair_reordered,
        events: sim.events_executed(),
        wall_s: started.elapsed().as_secs_f64(),
    }
}

fn render_json(mode: &str, p: &Params, r: &Results, tagged: &Results) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"lossy_churn\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"nodes\": {nodes},\n",
            "  \"records\": {records},\n",
            "  \"crashed_total\": {crashed},\n",
            "  \"impairment\": {{\n",
            "    \"loss\": {loss:.3},\n",
            "    \"duplicate\": {dup:.3},\n",
            "    \"reorder\": {reorder:.3},\n",
            "    \"corrupt_bootstrap_links\": {corrupt:.3},\n",
            "    \"packets_dropped\": {idrop},\n",
            "    \"packets_duplicated\": {idup},\n",
            "    \"packets_corrupted\": {icorr},\n",
            "    \"packets_reordered\": {ireord}\n",
            "  }},\n",
            "  \"invariants\": {{\n",
            "    \"duplicate_allocations\": {dupalloc},\n",
            "    \"ghost_edges_collected_during_join\": {ghosts},\n",
            "    \"false_dead_edges_post_convergence\": {falsedead},\n",
            "    \"malformed_dropped\": {malformed},\n",
            "    \"survival_rate\": {rate:.4}\n",
            "  }},\n",
            "  \"survival\": {{\n",
            "    \"resolved\": {resolved},\n",
            "    \"rate\": {rate:.4}\n",
            "  }},\n",
            "  \"reconverge\": {{\n",
            "    \"mean_s\": {rmean:.3},\n",
            "    \"max_s\": {rmax:.3}\n",
            "  }},\n",
            "  \"link_monitor\": {{\n",
            "    \"probes_sent\": {probes},\n",
            "    \"probe_timeouts\": {ptimeouts},\n",
            "    \"dead_edges_detected\": {dead}\n",
            "  }},\n",
            "  \"integrity_tag\": {{\n",
            "    \"ghost_edges_plain\": {ghosts},\n",
            "    \"ghost_edges_tagged\": {tghosts},\n",
            "    \"ghost_edge_delta\": {gdelta},\n",
            "    \"tag_rejects\": {trejects},\n",
            "    \"tagged_survival_rate\": {trate:.4},\n",
            "    \"tagged_duplicate_allocations\": {tdupalloc}\n",
            "  }},\n",
            "  \"events\": {events},\n",
            "  \"wall_s\": {wall:.3}\n",
            "}}\n",
        ),
        mode = mode,
        nodes = p.nodes,
        records = r.records,
        crashed = r.crashed,
        loss = p.loss,
        dup = p.duplicate,
        reorder = p.reorder,
        corrupt = p.corrupt,
        idrop = r.impair_dropped,
        idup = r.impair_duplicated,
        icorr = r.impair_corrupted,
        ireord = r.impair_reordered,
        dupalloc = r.duplicate_allocations,
        ghosts = r.ghost_edges_collected,
        falsedead = r.false_dead_edges,
        malformed = r.malformed_dropped,
        rate = rate(r.resolved, r.records),
        resolved = r.resolved,
        rmean = mean(&r.reconverge_s),
        rmax = fmax(&r.reconverge_s),
        probes = r.probes_sent,
        ptimeouts = r.probe_timeouts,
        dead = r.dead_edges,
        tghosts = tagged.ghost_edges_collected,
        gdelta = r.ghost_edges_collected as i64 - tagged.ghost_edges_collected as i64,
        trejects = tagged.tag_rejects,
        trate = rate(tagged.resolved, tagged.records),
        tdupalloc = tagged.duplicate_allocations,
        events = r.events,
        wall = r.wall_s + tagged.wall_s,
    )
}

fn main() {
    let cli = bench_cli("BENCH_adversarial.json");
    let mode = cli.mode();
    let p = if cli.quick {
        Params {
            nodes: 20,
            publishers: 8,
            guests_per_publisher: 2,
            owners_crashed: 2,
            hops_crashed: 1,
            lease_ttl: Duration::from_secs(600),
            sweep_interval: Duration::from_secs(10),
            probe_window: Duration::from_secs(90),
            loss: 0.01,
            duplicate: 0.01,
            reorder: 0.02,
            corrupt: 0.02,
        }
    } else {
        Params {
            nodes: 40,
            publishers: 12,
            guests_per_publisher: 3,
            owners_crashed: 4,
            hops_crashed: 2,
            lease_ttl: Duration::from_secs(600),
            sweep_interval: Duration::from_secs(10),
            probe_window: Duration::from_secs(90),
            loss: 0.01,
            duplicate: 0.01,
            reorder: 0.02,
            corrupt: 0.02,
        }
    };

    eprintln!(
        "lossy_churn ({mode} mode): {} nodes, {} records, {}+{} crashes, {:.0}% loss + dup + reorder, corrupting bootstrap links",
        p.nodes,
        p.publishers * p.guests_per_publisher,
        p.owners_crashed,
        p.hops_crashed,
        p.loss * 100.0,
    );
    let r = run(&p, 0xAD5E_7A1A, false);
    eprintln!(
        "  survival: {}/{} records resolved ({:.1}%); reconverge mean {:.2} s / max {:.2} s",
        r.resolved,
        r.records,
        rate(r.resolved, r.records) * 100.0,
        mean(&r.reconverge_s),
        fmax(&r.reconverge_s),
    );
    eprintln!(
        "  invariants: {} duplicate allocations, {} false dead edges post-convergence, {} malformed dropped ({} ghost edges collected during join)",
        r.duplicate_allocations, r.false_dead_edges, r.malformed_dropped, r.ghost_edges_collected,
    );
    eprintln!(
        "  impairment: {} dropped / {} duplicated / {} corrupted / {} reordered packets",
        r.impair_dropped, r.impair_duplicated, r.impair_corrupted, r.impair_reordered,
    );
    if r.resolved < r.records {
        eprintln!(
            "  WARNING: {} records never resolved inside the probe window",
            r.records - r.resolved
        );
    }
    if r.duplicate_allocations > 0 {
        eprintln!("  WARNING: duplicate virtual address allocations under duplication");
    }
    if r.false_dead_edges > 0 {
        eprintln!("  WARNING: live edges were declared dead after convergence, before any crash");
    }

    // Second run, same seed, with the FNV-64 link integrity tag on: corrupted
    // datagrams die at ingress, so the ghost-edge count should collapse.
    eprintln!("lossy_churn ({mode} mode): re-running with the link integrity tag enabled");
    let tagged = run(&p, 0xAD5E_7A1A, true);
    eprintln!(
        "  integrity tag: ghost edges {} -> {} (delta {}), {} tag rejects, survival {:.1}%, {} duplicate allocations",
        r.ghost_edges_collected,
        tagged.ghost_edges_collected,
        r.ghost_edges_collected as i64 - tagged.ghost_edges_collected as i64,
        tagged.tag_rejects,
        rate(tagged.resolved, tagged.records) * 100.0,
        tagged.duplicate_allocations,
    );
    if tagged.ghost_edges_collected > r.ghost_edges_collected {
        eprintln!("  WARNING: the integrity tag increased the ghost-edge count");
    }

    let json = render_json(mode, &p, &r, &tagged);
    cli.write_artifact(&json);
}
