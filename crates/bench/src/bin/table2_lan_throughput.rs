//! Regenerates Table II: LAN ttcp throughput, physical vs IPOP-TCP vs IPOP-UDP.
//!
//! Run with `--quick` for a smaller transfer.

fn main() {
    let bytes = if ipop_bench::quick_mode() {
        8_000_000
    } else {
        ipop_apps::ttcp::sizes::LARGE
    };
    let rows = ipop_bench::table2::run(bytes);
    ipop_bench::table2::render(&rows, bytes).print();
}
