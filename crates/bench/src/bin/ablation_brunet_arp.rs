//! Ablation for Section III-E: Brunet-ARP DHT mapping, multiple virtual IPs per
//! node and VM migration.

fn main() {
    let result = ipop_bench::ablations::brunet_arp();
    ipop_bench::ablations::render_brunet_arp(&result).print();
}
