//! 10 000-node overlay scale benchmark: Kleinberg shortcut routing stretch
//! and sharded-simulator throughput, written to `BENCH_scale.json`.
//!
//! Usage: `ring_10k [--quick] [--verify] [--out PATH]`

fn main() {
    ipop_bench::scale::scale_bin_main("ring_10k", 10_000);
}
