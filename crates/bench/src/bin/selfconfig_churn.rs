//! Self-configuration churn benchmark: dynamic-membership workloads the
//! static harness cannot express, tracked across PRs in `BENCH_selfconfig.json`.
//!
//! The scenario exercises the whole self-configuration stack:
//!
//! 1. **Join** — 64 nodes (32 with `--quick`) join a Planet-Lab-like overlay
//!    knowing only the virtual subnet (a /24) and one bootstrap endpoint. Each
//!    draws, claims (atomic `DhtCreate`) and confirms its own address;
//!    the benchmark measures allocation latency, collisions and duplicates.
//! 2. **Churn** — a spread of nodes that *own other nodes' Brunet-ARP mapping
//!    keys* crash (agents replaced outright, no goodbye), so the ring must
//!    repair and the replicated soft-state DHT must keep the mappings alive.
//! 3. **Resolve** — a surviving node probes the mapping of every surviving
//!    address; the benchmark reports the resolution success rate, overall and
//!    restricted to mappings whose DHT owner crashed.
//!
//! Usage: `selfconfig_churn [--quick] [--out PATH]`

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::time::Instant;

use ipop::prelude::*;
use ipop_bench::harness::{bench_cli, fmax, mean, rate};
use ipop_netsim::planetlab;
use ipop_overlay::Address;
use ipop_simcore::SimTime;

struct Results {
    nodes: usize,
    crashed: usize,
    /// Virtual seconds until every dynamic node was bound.
    all_bound_s: f64,
    bound: usize,
    dynamic_total: usize,
    duplicates: usize,
    collisions: u64,
    latency_mean_s: f64,
    latency_max_s: f64,
    probes: usize,
    resolved: usize,
    orphan_probes: usize,
    orphan_resolved: usize,
    dht_records: u64,
    dht_bytes: u64,
    dht_replicas: u64,
    dht_refreshes: u64,
    dht_expired: u64,
    events: u64,
    wall_s: f64,
}

fn run(nodes: usize, churn: usize, seed: u64) -> Results {
    let started = Instant::now();
    let mut net = Network::new(seed);
    let plab = planetlab(&mut net, nodes, 1.0, seed);
    let mut members = vec![IpopMember::router(
        plab.nodes[0],
        Ipv4Addr::new(172, 16, 0, 1),
    )];
    for (i, &h) in plab.nodes.iter().enumerate().skip(1) {
        members.push(IpopMember::dynamic_router(h).with_hostname(&format!("grid-{i}")));
    }
    let options = DeployOptions {
        brunet_arp: true,
        ..DeployOptions::udp()
    }
    .with_dynamic_subnet(Ipv4Addr::new(172, 16, 9, 0), 24);
    deploy_ipop(&mut net, members, options);
    let mut sim = NetworkSim::new(net);

    // Phase 1: join until every dynamic node is bound (or the deadline).
    let deadline = SimTime::ZERO + Duration::from_secs(180);
    let all_bound = |sim: &NetworkSim| {
        plab.nodes[1..].iter().all(|&h| {
            sim.agent_as::<IpopHostAgent>(h)
                .is_some_and(|a| a.has_address())
        })
    };
    while !all_bound(&sim) && sim.now() < deadline {
        sim.run_for(Duration::from_secs(1));
    }
    let all_bound_s = sim.now().as_secs_f64();

    let mut ips = Vec::new();
    let mut latencies = Vec::new();
    let mut collisions = 0u64;
    for &h in &plab.nodes[1..] {
        let agent = sim.agent_as::<IpopHostAgent>(h).expect("ipop agent");
        collisions += agent.allocation_collisions().unwrap_or(0);
        if agent.has_address() {
            ips.push(agent.virtual_ip());
            if let Some(l) = agent.allocation_latency() {
                latencies.push(l.as_secs_f64());
            }
        }
    }
    let bound = ips.len();
    let mut seen = BTreeMap::new();
    for ip in &ips {
        *seen.entry(*ip).or_insert(0usize) += 1;
    }
    let duplicates = seen.values().filter(|&&c| c > 1).count();
    let latency_mean_s = mean(&latencies);
    let latency_max_s = fmax(&latencies);

    // Pre-churn mapping census: every bound node's address, overlay address,
    // and which node owns its mapping key on the ring (the node ring-closest
    // to SHA-1(ip)).
    let owner_of = |sim: &NetworkSim, key: Address| -> usize {
        (0..nodes)
            .filter(|&i| sim.agent_as::<IpopHostAgent>(plab.nodes[i]).is_some())
            .min_by_key(|&i| {
                sim.agent_as::<IpopHostAgent>(plab.nodes[i])
                    .unwrap()
                    .overlay_address()
                    .ring_distance(&key)
            })
            .expect("live nodes remain")
    };
    let mappings: Vec<(usize, Ipv4Addr, Address, usize)> = plab.nodes[1..]
        .iter()
        .enumerate()
        .map(|(k, &h)| (k + 1, h))
        .filter_map(|(i, h)| {
            let agent = sim.agent_as::<IpopHostAgent>(h)?;
            if !agent.has_address() {
                return None;
            }
            let ip = agent.virtual_ip();
            let owner = owner_of(&sim, Address::from_ip(ip));
            Some((i, ip, agent.overlay_address(), owner))
        })
        .collect();

    // Phase 2: crash owners of *other* nodes' mappings, keeping the bootstrap
    // (0) and the prober (1) alive.
    let mut victims: Vec<usize> = Vec::new();
    for &(i, _ip, _addr, o) in &mappings {
        if victims.len() >= churn {
            break;
        }
        if o != i && o != 0 && o != 1 && !victims.contains(&o) {
            victims.push(o);
        }
    }
    for &v in &victims {
        deploy_plain(sim.net_mut(), plab.nodes[v], Box::new(NullApp));
    }
    // Ring repair: wait out the connection timeout (45 s) plus slack.
    sim.run_for(Duration::from_secs(75));

    // Phase 3: a surviving node resolves every surviving address. A mapping is
    // "orphaned" when its pre-churn DHT owner crashed — those are the ones
    // only replication can keep resolvable.
    let survivors: Vec<usize> = (1..nodes).filter(|i| !victims.contains(i)).collect();
    let prober = plab.nodes[survivors[0]];
    let mut expected: BTreeMap<u64, (Ipv4Addr, Address, bool)> = BTreeMap::new();
    for &(i, ip, addr, owner) in &mappings {
        if victims.contains(&i) || i == survivors[0] {
            continue;
        }
        let orphaned = victims.contains(&owner);
        let now = sim.now();
        let token = sim
            .net_mut()
            .agent_as_mut::<IpopHostAgent>(prober)
            .unwrap()
            .resolve_ip(now, ip);
        expected.insert(token, (ip, addr, orphaned));
    }
    sim.run_for(Duration::from_secs(15));
    let results = sim
        .net_mut()
        .agent_as_mut::<IpopHostAgent>(prober)
        .unwrap()
        .take_probe_results();
    let mut probes = 0;
    let mut resolved = 0;
    let mut orphan_probes = 0;
    let mut orphan_resolved = 0;
    for (token, got) in results {
        let Some((_ip, want, orphaned)) = expected.get(&token) else {
            continue;
        };
        probes += 1;
        let ok = got == Some(*want);
        if ok {
            resolved += 1;
        }
        if *orphaned {
            orphan_probes += 1;
            if ok {
                orphan_resolved += 1;
            }
        }
    }

    // DHT health across the survivors.
    let mut dht = (0u64, 0u64, 0u64, 0u64, 0u64);
    for &i in std::iter::once(&0).chain(survivors.iter()) {
        if let Some(agent) = sim.agent_as::<IpopHostAgent>(plab.nodes[i]) {
            let s = agent.overlay_stats();
            dht.0 += s.dht_records;
            dht.1 += s.dht_bytes;
            dht.2 += s.dht_replicas;
            dht.3 += s.dht_refreshes;
            dht.4 += s.dht_expired;
        }
    }

    Results {
        nodes,
        crashed: victims.len(),
        all_bound_s,
        bound,
        dynamic_total: nodes - 1,
        duplicates,
        collisions,
        latency_mean_s,
        latency_max_s,
        probes,
        resolved,
        orphan_probes,
        orphan_resolved,
        dht_records: dht.0,
        dht_bytes: dht.1,
        dht_replicas: dht.2,
        dht_refreshes: dht.3,
        dht_expired: dht.4,
        events: sim.events_executed(),
        wall_s: started.elapsed().as_secs_f64(),
    }
}

fn render_json(mode: &str, r: &Results) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"selfconfig_churn\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"nodes\": {nodes},\n",
            "  \"crashed_owners\": {crashed},\n",
            "  \"allocation\": {{\n",
            "    \"dynamic_nodes\": {dynamic_total},\n",
            "    \"bound\": {bound},\n",
            "    \"duplicates\": {duplicates},\n",
            "    \"collisions\": {collisions},\n",
            "    \"all_bound_virtual_s\": {all_bound:.1},\n",
            "    \"latency_mean_s\": {lmean:.3},\n",
            "    \"latency_max_s\": {lmax:.3}\n",
            "  }},\n",
            "  \"resolution\": {{\n",
            "    \"probes\": {probes},\n",
            "    \"resolved\": {resolved},\n",
            "    \"success_rate\": {rate:.4},\n",
            "    \"orphaned_probes\": {oprobes},\n",
            "    \"orphaned_resolved\": {oresolved},\n",
            "    \"orphaned_success_rate\": {orate:.4}\n",
            "  }},\n",
            "  \"dht\": {{\n",
            "    \"records\": {records},\n",
            "    \"bytes\": {bytes},\n",
            "    \"replicas_held\": {replicas},\n",
            "    \"refreshes_sent\": {refreshes},\n",
            "    \"expired\": {expired}\n",
            "  }},\n",
            "  \"events\": {events},\n",
            "  \"wall_s\": {wall:.3}\n",
            "}}\n",
        ),
        mode = mode,
        nodes = r.nodes,
        crashed = r.crashed,
        dynamic_total = r.dynamic_total,
        bound = r.bound,
        duplicates = r.duplicates,
        collisions = r.collisions,
        all_bound = r.all_bound_s,
        lmean = r.latency_mean_s,
        lmax = r.latency_max_s,
        probes = r.probes,
        resolved = r.resolved,
        rate = rate(r.resolved, r.probes),
        oprobes = r.orphan_probes,
        oresolved = r.orphan_resolved,
        orate = rate(r.orphan_resolved, r.orphan_probes),
        records = r.dht_records,
        bytes = r.dht_bytes,
        replicas = r.dht_replicas,
        refreshes = r.dht_refreshes,
        expired = r.dht_expired,
        events = r.events,
        wall = r.wall_s,
    )
}

fn main() {
    let cli = bench_cli("BENCH_selfconfig.json");
    let mode = cli.mode();
    let (nodes, churn) = if cli.quick { (32, 4) } else { (64, 6) };

    eprintln!("selfconfig_churn ({mode} mode): {nodes} nodes, crashing up to {churn} DHT owners");
    let r = run(nodes, churn, 0x5e1f_c0f6);
    eprintln!(
        "  allocation: {}/{} bound in {:.0} virtual s, {} duplicates, {} collisions, latency mean {:.2} s / max {:.2} s",
        r.bound, r.dynamic_total, r.all_bound_s, r.duplicates, r.collisions,
        r.latency_mean_s, r.latency_max_s,
    );
    eprintln!(
        "  churn: {} owners crashed; resolution {}/{} ({:.1}%), orphaned mappings {}/{}",
        r.crashed,
        r.resolved,
        r.probes,
        100.0 * r.resolved as f64 / r.probes.max(1) as f64,
        r.orphan_resolved,
        r.orphan_probes,
    );
    eprintln!(
        "  dht: {} records / {} B, {} replicas held, {} refreshes, {} expired; {} events in {:.2} s wall",
        r.dht_records, r.dht_bytes, r.dht_replicas, r.dht_refreshes, r.dht_expired,
        r.events, r.wall_s,
    );
    if r.duplicates > 0 {
        eprintln!("  WARNING: duplicate allocations detected");
    }

    let json = render_json(mode, &r);
    cli.write_artifact(&json);
}
