//! Hot-path benchmark: wall-clock events/sec and packets/sec over three
//! fixed-seed scenarios, tracked across PRs in `BENCH_hotpath.json`.
//!
//! The three scenarios stress the three legs of the simulator hot path:
//!
//! * **lan_ttcp** — an IPOP-UDP bulk transfer between two hosts on one LAN
//!   (Table II shape): dominated by the virtual TCP stack and the tap path.
//! * **wan_ttcp** — the same transfer across the wide-area core (Table III
//!   shape, F4 → V1): the paper-calibrated scenario (~638 KB/s), dominated by
//!   per-packet event scheduling and tunnel encode/decode.
//! * **ring_churn** — a 64-node overlay ring that loses nodes mid-run:
//!   dominated by maintenance traffic, routed forwarding and timer churn.
//!
//! Usage: `hotpath_bench [--quick] [--out PATH]`
//!
//! Every run rewrites `BENCH_hotpath.json` at the repo root with the frozen
//! pre-refactor baseline (recorded once, commit 44500e1) next to the current
//! numbers, so the perf trajectory of every later PR stays visible.

use std::net::Ipv4Addr;
use std::time::Instant;

use ipop::prelude::*;
use ipop_apps::ttcp::TtcpApp;
use ipop_netsim::fig4_testbed;
use ipop_simcore::SimTime;

/// Outcome of one scenario run.
struct ScenarioResult {
    name: &'static str,
    /// Simulator events executed.
    events: u64,
    /// Packets delivered to agents on the physical network.
    packets: u64,
    /// Wall-clock seconds the run took.
    wall_s: f64,
    /// Virtual seconds simulated.
    virtual_s: f64,
    /// Application-level throughput in KB/s, where the scenario measures one.
    kbps: Option<f64>,
}

impl ScenarioResult {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s
    }
    fn packets_per_sec(&self) -> f64 {
        self.packets as f64 / self.wall_s
    }
}

/// Baseline events/sec measured on the pre-refactor tree (commit 44500e1:
/// closure-based scheduler, deep-copied packet payloads, binary event heap),
/// running this same benchmark binary. Recorded as the best of several runs
/// interleaved with the refactored binary on the same machine, so the two
/// sides saw identical machine conditions. The two trees execute the exact
/// same simulation — identical event counts and throughputs — so events/sec
/// compares per-event wall cost directly.
/// `(scenario, quick events/sec, full events/sec)`.
const BASELINE_EVENTS_PER_SEC: [(&str, f64, f64); 3] = [
    ("lan_ttcp", 1_931_000.0, 3_253_000.0),
    ("wan_ttcp", 3_286_000.0, 3_385_000.0),
    ("ring_churn", 729_000.0, 1_100_000.0),
];

const VIPS: [Ipv4Addr; 6] = [
    Ipv4Addr::new(172, 16, 0, 3),  // F1
    Ipv4Addr::new(172, 16, 0, 4),  // F2
    Ipv4Addr::new(172, 16, 0, 51), // F3
    Ipv4Addr::new(172, 16, 0, 2),  // F4
    Ipv4Addr::new(172, 16, 0, 18), // V1
    Ipv4Addr::new(172, 16, 0, 20), // L1
];

/// Overlay warm-up before the measured transfer starts.
const WARMUP: Duration = Duration::from_secs(20);

/// An IPOP-UDP ttcp transfer between two Fig. 4 testbed hosts.
fn fig4_ttcp_scenario(
    name: &'static str,
    src: usize,
    dst: usize,
    bytes: u64,
    seed: u64,
) -> ScenarioResult {
    let mut net = Network::new(seed);
    let tb = fig4_testbed(&mut net);
    let hosts = tb.all();
    const PORT: u16 = 5201;
    let members = VIPS
        .iter()
        .enumerate()
        .map(|(i, &vip)| {
            if i == src {
                IpopMember::new(
                    hosts[i],
                    vip,
                    Box::new(TtcpApp::sender(VIPS[dst], PORT, bytes).with_start_delay(WARMUP)),
                )
            } else if i == dst {
                IpopMember::new(hosts[i], vip, Box::new(TtcpApp::receiver(PORT)))
            } else {
                IpopMember::router(hosts[i], vip)
            }
        })
        .collect();
    deploy_ipop(&mut net, members, DeployOptions::udp());
    let src_host = hosts[src];

    let mut sim = NetworkSim::new(net);
    let started = Instant::now();
    let deadline = SimTime::ZERO + Duration::from_secs(1200);
    loop {
        let finished = sim
            .agent_as::<IpopHostAgent>(src_host)
            .and_then(|a| a.app_as::<TtcpApp>())
            .is_some_and(|t| t.finished());
        if finished || sim.now() >= deadline {
            break;
        }
        let before = sim.events_executed();
        sim.run_for(Duration::from_secs(1).min(deadline - sim.now()));
        if sim.events_executed() == before {
            break; // queue drained early
        }
    }
    let wall_s = started.elapsed().as_secs_f64();
    if std::env::var("HOTPATH_DEBUG").is_ok() {
        eprintln!(
            "  [debug] {name}: pending events at end = {}",
            sim.pending()
        );
    }
    let report = sim
        .agent_as::<IpopHostAgent>(src_host)
        .and_then(|a| a.app_as::<TtcpApp>())
        .map(|t| t.report())
        .unwrap_or_default();
    ScenarioResult {
        name,
        events: sim.events_executed(),
        packets: sim.net().counters().delivered,
        wall_s,
        virtual_s: sim.now().saturating_since(SimTime::ZERO).as_secs_f64(),
        kbps: Some(report.kbps),
    }
}

/// A 64-node overlay ring that loses `churn` nodes mid-run and has to repair
/// itself around them while a ping workload keeps crossing the ring.
fn ring_churn_scenario(nodes: usize, churn: usize, run_secs: u64, seed: u64) -> ScenarioResult {
    let mut net = Network::new(seed);
    let plab = ipop_netsim::planetlab(&mut net, nodes, 1.0, seed);
    let vip_of = |i: usize| Ipv4Addr::new(172, 16, 2 + (i / 200) as u8, (i % 200 + 1) as u8);
    let src_idx = 1;
    let dst_idx = nodes / 2;
    let mut members = Vec::new();
    for (i, &h) in plab.nodes.iter().enumerate() {
        if i == src_idx {
            members.push(IpopMember::new(
                h,
                vip_of(i),
                Box::new(
                    ipop_apps::ping::PingApp::new(
                        vip_of(dst_idx),
                        u32::MAX,
                        Duration::from_millis(200),
                    )
                    .with_start_delay(Duration::from_secs(30))
                    .with_timeout(Duration::from_secs(5)),
                ),
            ));
        } else {
            members.push(IpopMember::router(h, vip_of(i)));
        }
    }
    deploy_ipop(&mut net, members, DeployOptions::udp());

    let mut sim = NetworkSim::new(net);
    let started = Instant::now();
    let half = run_secs / 2;
    sim.run_for(Duration::from_secs(half));
    // Kill `churn` routers spread around the ring: their agents are replaced by
    // dead weight, so their edges time out and the ring must re-converge.
    for k in 0..churn {
        let idx = 2 + k * (nodes - 2) / churn.max(1);
        if idx == src_idx || idx == dst_idx {
            continue;
        }
        deploy_plain(sim.net_mut(), plab.nodes[idx], Box::new(NullApp));
    }
    sim.run_for(Duration::from_secs(run_secs - half));
    let wall_s = started.elapsed().as_secs_f64();
    ScenarioResult {
        name: "ring_churn",
        events: sim.events_executed(),
        packets: sim.net().counters().delivered,
        wall_s,
        virtual_s: sim.now().saturating_since(SimTime::ZERO).as_secs_f64(),
        kbps: None,
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_string()
    }
}

fn render_json(mode: &str, results: &[ScenarioResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"hotpath\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"baseline\": {\n");
    out.push_str("    \"commit\": \"44500e1\",\n");
    out.push_str("    \"note\": \"closure-based scheduler, deep-copied packet payloads (pre typed-event refactor)\",\n");
    out.push_str("    \"events_per_sec\": {\n");
    let quick = mode == "quick";
    for (i, (name, q, f)) in BASELINE_EVENTS_PER_SEC.iter().enumerate() {
        let v = if quick { *q } else { *f };
        let comma = if i + 1 < BASELINE_EVENTS_PER_SEC.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!("      \"{name}\": {}{comma}\n", json_f(v)));
    }
    out.push_str("    }\n  },\n");
    out.push_str("  \"current\": {\n");
    let quick_or_full = |q: f64, f: f64| if quick { q } else { f };
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let kbps = r.kbps.map(json_f).unwrap_or_else(|| "null".to_string());
        let baseline = BASELINE_EVENTS_PER_SEC
            .iter()
            .find(|(n, _, _)| *n == r.name)
            .map(|&(_, q, f)| quick_or_full(q, f))
            .unwrap_or(0.0);
        let speedup = if baseline > 0.0 {
            format!("{:.2}", r.events_per_sec() / baseline)
        } else {
            "null".to_string()
        };
        out.push_str(&format!(
            "    \"{}\": {{ \"events\": {}, \"packets\": {}, \"wall_s\": {:.3}, \"virtual_s\": {:.1}, \"events_per_sec\": {}, \"packets_per_sec\": {}, \"kbps\": {}, \"speedup_vs_baseline\": {speedup} }}{comma}\n",
            r.name,
            r.events,
            r.packets,
            r.wall_s,
            r.virtual_s,
            json_f(r.events_per_sec()),
            json_f(r.packets_per_sec()),
            kbps,
        ));
    }
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let only = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("{}/../../BENCH_hotpath.json", env!("CARGO_MANIFEST_DIR")));
    let mode = if quick { "quick" } else { "full" };
    let (ttcp_bytes, churn_secs, mut iters) = if quick {
        (8_000_000u64, 120u64, 2u32)
    } else {
        (32_000_000u64, 300u64, 3u32)
    };
    // Override for profiling sessions (denser samples from a longer run).
    if let Some(n) = std::env::var("HOTPATH_ITERS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
    {
        iters = n;
    }

    eprintln!("hotpath_bench ({mode} mode)");
    // Runs are deterministic, so repeated runs execute the identical event
    // trace; keep the one with the best wall time (least scheduler noise).
    let fastest = |run: &dyn Fn() -> ScenarioResult| {
        (0..iters)
            .map(|_| run())
            .min_by(|a, b| a.wall_s.total_cmp(&b.wall_s))
            .expect("at least one iteration")
    };
    let want = |name: &str| only.as_deref().is_none_or(|o| o == name);
    let mut results = Vec::new();
    // LAN: F2 -> F4 (Table II shape). WAN: F4 -> V1 (Table III shape).
    if want("lan_ttcp") {
        results.push(fastest(&|| {
            fig4_ttcp_scenario("lan_ttcp", 1, 3, ttcp_bytes, 0x407b47)
        }));
    }
    // The WAN leg always transfers the paper's calibrated 13.09 MB with the
    // Table III seed, so the reported KB/s stays comparable with the paper's
    // 638 KB/s target (and with `table3_wan_throughput`).
    if want("wan_ttcp") {
        results.push(fastest(&|| {
            fig4_ttcp_scenario("wan_ttcp", 3, 4, 13_090_000, 0x7ab1e3)
        }));
    }
    if want("ring_churn") {
        results.push(fastest(&|| {
            ring_churn_scenario(64, 6, churn_secs, 0x407b47)
        }));
    }

    let quick_or_full = |q: f64, f: f64| if quick { q } else { f };
    for r in &results {
        let baseline = BASELINE_EVENTS_PER_SEC
            .iter()
            .find(|(n, _, _)| *n == r.name)
            .map(|&(_, q, f)| quick_or_full(q, f))
            .unwrap_or(0.0);
        let speedup = if baseline > 0.0 {
            format!(" ({:.2}x baseline)", r.events_per_sec() / baseline)
        } else {
            String::new()
        };
        eprintln!(
            "  {:<11} {:>9} events in {:>6.2}s wall / {:>6.1}s virtual -> {:>9.0} ev/s{}, {:>7.0} pkt/s{}",
            r.name,
            r.events,
            r.wall_s,
            r.virtual_s,
            r.events_per_sec(),
            speedup,
            r.packets_per_sec(),
            r.kbps
                .map(|k| format!(", {k:.0} KB/s"))
                .unwrap_or_default(),
        );
    }

    let json = render_json(mode, &results);
    std::fs::write(&out_path, &json).expect("write BENCH_hotpath.json");
    eprintln!("wrote {out_path}");
}
