//! VM-migration-under-churn benchmark: guest IPs hop between hosts while
//! nodes crash, join, and the network partitions — the workload the paper's
//! Section III-E motivates (Brunet-ARP soft-state mappings re-resolving a
//! migrated VM) and the one the quorum DHT must survive. Tracked across PRs
//! in `BENCH_migration.json`.
//!
//! The scenario:
//!
//! 1. **Join** — N nodes (one static bootstrap, the rest dynamic) allocate
//!    addresses from a /24 through the quorum claim path.
//! 2. **Migrate under churn** — G guest IPs are registered (`route_for`) on
//!    host nodes; senders ping each guest continuously; every round each
//!    guest migrates to a new host (`unroute_for`/`route_for`) while pool
//!    nodes crash and fresh nodes join mid-run. Measured per migration:
//!    the *blackout window* (from `unroute_for` to the first packet delivered
//!    at the new host), the packets lost inside it (ICMP sequence gap), and
//!    the DHT *resolution latency* of the migrated mapping.
//! 3. **Partition** — the network splits; joiners allocate on both sides;
//!    after healing, lost-lease detection (quorum renewals) must leave
//!    **zero duplicate allocations** once the settle period elapses.
//!
//! Usage: `migration_churn [--quick] [--out PATH]`

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;
use std::time::Instant;

use ipop::prelude::*;
use ipop_apps::ping::PingApp;
use ipop_bench::harness::{bench_cli, fmax, mean};
use ipop_netsim::{planetlab, HostId};
use ipop_overlay::{Address, Distance};
use ipop_packet::ipv4::Ipv4Payload;
use ipop_simcore::SimTime;

struct Params {
    /// IPOP members deployed at time zero (index 0 is the static bootstrap).
    nodes: usize,
    /// Spare hosts that join mid-run.
    spares: usize,
    /// Guest IPs migrating between hosts.
    guests: usize,
    /// Migration rounds (every guest migrates once per round).
    rounds: usize,
    lease_ttl: Duration,
    arp_cache_ttl: Duration,
}

struct Results {
    nodes: usize,
    guests: usize,
    migrations: usize,
    bound: usize,
    dynamic_total: usize,
    crashed: usize,
    joined: usize,
    blackouts_s: Vec<f64>,
    unresolved_migrations: usize,
    lost_packets: u64,
    resolution_latencies_s: Vec<f64>,
    duplicates_after_heal: usize,
    leases_lost: u64,
    renewal_timeouts: u64,
    read_repairs: u64,
    quorum_write_timeouts: u64,
    partition_dropped: u64,
    events: u64,
    wall_s: f64,
}

fn guest_ip(g: usize) -> Ipv4Addr {
    Ipv4Addr::new(172, 16, 9, 200 + g as u8)
}

fn run(p: &Params, seed: u64) -> Results {
    let started = Instant::now();
    let total_hosts = p.nodes + p.spares;
    let mut net = Network::new(seed);
    let plab = planetlab(&mut net, total_hosts, 1.0, seed);
    let reserved: Vec<Ipv4Addr> = (0..p.guests).map(guest_ip).collect();

    // Bootstrap is static; senders (1..=guests) and everyone else dynamic.
    // Each sender pings "its" guest IP for the whole run; the guests never
    // answer — the pings are a delivery probe stream, not an RTT measurement.
    let mut members = vec![IpopMember::router(
        plab.nodes[0],
        Ipv4Addr::new(172, 16, 0, 1),
    )];
    for (i, &h) in plab.nodes.iter().enumerate().take(p.nodes).skip(1) {
        let member = if (1..=p.guests).contains(&i) {
            IpopMember::dynamic(
                h,
                Box::new(
                    PingApp::new(guest_ip(i - 1), 20_000, Duration::from_millis(500))
                        .with_start_delay(Duration::from_secs(130))
                        .with_timeout(Duration::from_secs(1)),
                ),
            )
        } else {
            IpopMember::dynamic_router(h)
        };
        members.push(member.with_hostname(&format!("grid-{i}")));
    }
    let options = DeployOptions {
        brunet_arp: true,
        ..DeployOptions::udp()
    }
    .with_dynamic_subnet(Ipv4Addr::new(172, 16, 9, 0), 24)
    .with_lease_ttl(p.lease_ttl)
    .with_arp_cache_ttl(p.arp_cache_ttl)
    .with_reserved_ips(reserved.clone());
    deploy_ipop(&mut net, members, options);
    let mut sim = NetworkSim::new(net);

    let mut crashed: BTreeSet<usize> = BTreeSet::new();
    let mut joined = 0usize;
    let mut next_spare = p.nodes;

    // Phase 1: join.
    sim.run_for(Duration::from_secs(120));
    let bound = (1..p.nodes)
        .filter(|&i| {
            sim.agent_as::<IpopHostAgent>(plab.nodes[i])
                .is_some_and(|a| a.has_address())
        })
        .count();

    // Assign each guest an initial host from the pool (everyone who is not
    // the bootstrap, a sender, or a guest host already).
    let pool: Vec<usize> = (p.guests + 1..p.nodes).collect();
    assert!(pool.len() >= p.guests + p.rounds, "pool large enough");
    let mut guest_host: Vec<usize> = (0..p.guests).map(|g| pool[g]).collect();
    let now = sim.now();
    for (g, &h) in guest_host.iter().enumerate() {
        sim.net_mut()
            .agent_as_mut::<IpopHostAgent>(plab.nodes[h])
            .unwrap()
            .route_for(now, guest_ip(g));
    }
    // Let the mappings replicate and the senders come up (pings start at 130).
    sim.run_until(SimTime::ZERO + Duration::from_secs(150));

    // Arrival log per guest: (delivery time, member index, ICMP sequence).
    let mut arrivals: Vec<Vec<(SimTime, usize, u16)>> = vec![Vec::new(); p.guests];
    let drain = |sim: &mut NetworkSim,
                 arrivals: &mut Vec<Vec<(SimTime, usize, u16)>>,
                 crashed: &BTreeSet<usize>| {
        for i in 0..p.nodes {
            if crashed.contains(&i) {
                continue;
            }
            let Some(agent) = sim.net_mut().agent_as_mut::<IpopHostAgent>(plab.nodes[i]) else {
                continue;
            };
            for (t, pkt) in agent.take_guest_packets_timed() {
                let dst = pkt.dst();
                let Some(g) = (0..p.guests).find(|&g| guest_ip(g) == dst) else {
                    continue;
                };
                if let Ipv4Payload::Icmp(icmp) = &pkt.payload {
                    arrivals[g].push((t, i, icmp.sequence));
                }
            }
        }
    };

    // Phase 2: migration rounds under churn.
    let mut migration_log: Vec<(usize, SimTime, usize)> = Vec::new(); // (guest, at, new host)
    let mut resolution_latencies_s: Vec<f64> = Vec::new();
    let mut migrations = 0usize;
    for round in 0..p.rounds {
        // Migrate every guest to the next free pool host.
        let mut moved: Vec<(usize, SimTime, usize)> = Vec::new(); // (guest, at, new host)
        for g in 0..p.guests {
            let old = guest_host[g];
            let Some(&new) = pool
                .iter()
                .find(|i| !crashed.contains(i) && !guest_host.contains(i) && **i != old)
            else {
                continue;
            };
            let now = sim.now();
            sim.net_mut()
                .agent_as_mut::<IpopHostAgent>(plab.nodes[old])
                .unwrap()
                .unroute_for(now, guest_ip(g));
            sim.net_mut()
                .agent_as_mut::<IpopHostAgent>(plab.nodes[new])
                .unwrap()
                .route_for(now, guest_ip(g));
            guest_host[g] = new;
            moved.push((g, now, new));
            migrations += 1;
        }

        // Let the migration puts land and replicate before the churn event
        // fires — a crash and a migration are independent events, not
        // synchronized to the same instant.
        let settle_end = sim.now() + Duration::from_secs(3);
        while sim.now() < settle_end {
            sim.run_for(Duration::from_millis(500));
            drain(&mut sim, &mut arrivals, &crashed);
        }

        // Churn: odd rounds crash a pool node nobody is using, even rounds
        // (after the first) start a fresh joiner on a spare host. The ring
        // owner and replica holders of each guest mapping are spared: crashing
        // one black-holes that mapping's puts/gets until ring repair (the 45 s
        // connection timeout, longer than a round) — that fault class is
        // measured separately by selfconfig_churn's orphaned-mapping
        // resolution; here the blackout metric isolates migration pickup.
        if round % 2 == 1 {
            let protected: BTreeSet<usize> = (0..p.guests)
                .flat_map(|g| {
                    let key = Address::from_ip(guest_ip(g));
                    let mut live: Vec<(Distance, usize)> = (0..p.nodes)
                        .filter(|i| !crashed.contains(i))
                        .filter_map(|i| {
                            sim.agent_as::<IpopHostAgent>(plab.nodes[i])
                                .map(|a| (a.overlay_address().ring_distance(&key), i))
                        })
                        .collect();
                    live.sort();
                    live.into_iter().take(3).map(|(_, i)| i).collect::<Vec<_>>()
                })
                .collect();
            if let Some(&victim) = pool
                .iter()
                .find(|i| !crashed.contains(i) && !guest_host.contains(i) && !protected.contains(i))
            {
                crashed.insert(victim);
                deploy_plain(sim.net_mut(), plab.nodes[victim], Box::new(NullApp));
            }
        } else if round > 0 && next_spare < total_hosts {
            let h = plab.nodes[next_spare];
            spawn_joiner(&mut sim, &plab.addrs[0], h, p, &reserved, next_spare);
            next_spare += 1;
            joined += 1;
        }

        // Resolution latency: the bootstrap probes the first migrated mapping
        // (a cache-bypassing quorum read) and we step until the answer lands
        // (measurement granularity: one 500 ms step).
        let probe = moved.first().map(|&(g, _, _)| g);
        let mut probe_issued: Option<SimTime> = None;
        if let Some(g) = probe {
            let now = sim.now();
            sim.net_mut()
                .agent_as_mut::<IpopHostAgent>(plab.nodes[0])
                .unwrap()
                .resolve_ip(now, guest_ip(g));
            probe_issued = Some(now);
        }

        // Run out the round in small steps, draining guest deliveries.
        let round_end = sim.now() + Duration::from_secs(22);
        while sim.now() < round_end {
            sim.run_for(Duration::from_millis(500));
            drain(&mut sim, &mut arrivals, &crashed);
            if let Some(issued) = probe_issued {
                let results = sim
                    .net_mut()
                    .agent_as_mut::<IpopHostAgent>(plab.nodes[0])
                    .unwrap()
                    .take_probe_results();
                if let Some((_, addr)) = results.first() {
                    if addr.is_some() {
                        resolution_latencies_s
                            .push(sim.now().saturating_since(issued).as_secs_f64());
                    }
                    probe_issued = None;
                }
            }
        }
        migration_log.extend(moved);
    }

    // Grace period so the last round's migrations finish delivering before
    // the partition starts.
    let grace_end = sim.now() + Duration::from_secs(20);
    while sim.now() < grace_end {
        sim.run_for(Duration::from_millis(500));
        drain(&mut sim, &mut arrivals, &crashed);
    }

    // Blackout + loss per migration: the first delivery at the new host after
    // the migration instant ends the blackout; the ICMP sequence gap against
    // the last delivery anywhere before it counts the packets lost inside.
    let mut blackouts_s: Vec<f64> = Vec::new();
    let mut unresolved = 0usize;
    let mut lost_packets = 0u64;
    for &(g, at, new) in &migration_log {
        // Bound each migration's window at the guest's *next* migration: a
        // guest can rotate back onto a previously used host, and a later
        // tenancy's deliveries must not silently resolve an earlier
        // migration that in fact never delivered.
        let until = migration_log
            .iter()
            .filter(|&&(g2, at2, _)| g2 == g && at2 > at)
            .map(|&(_, at2, _)| at2)
            .min()
            .unwrap_or(SimTime::MAX);
        let first_new = arrivals[g]
            .iter()
            .filter(|(t, host, _)| *host == new && *t >= at && *t < until)
            .min_by_key(|(t, _, seq)| (*t, *seq))
            .copied();
        let last_old = arrivals[g]
            .iter()
            .filter(|(t, host, _)| *host != new && *t < at)
            .max_by_key(|(t, _, seq)| (*t, *seq))
            .copied();
        match first_new {
            Some((t, _, first_seq)) => {
                blackouts_s.push(t.saturating_since(at).as_secs_f64());
                if let Some((_, _, last_seq)) = last_old {
                    lost_packets += u64::from(first_seq.saturating_sub(last_seq + 1));
                }
            }
            None => {
                unresolved += 1;
                eprintln!(
                    "  WARNING: guest {} never delivered at member {new} after the {at:?} migration",
                    guest_ip(g),
                );
            }
        }
    }

    // Phase 3: partition. A quarter of the live pool (no bootstrap, senders
    // or guest hosts) splits off; one joiner starts on each side; after the
    // heal and a settle period covering several renewal intervals, no
    // duplicate allocation may survive.
    let minority: Vec<usize> = pool
        .iter()
        .filter(|i| !crashed.contains(i) && !guest_host.contains(i))
        .take(p.nodes / 4)
        .copied()
        .collect();
    for &i in &minority {
        sim.net_mut().set_partition_group(plab.nodes[i], 1);
    }
    // Majority-side joiner bootstraps off the static node, minority-side off
    // a minority member.
    if next_spare + 1 < total_hosts && !minority.is_empty() {
        let h = plab.nodes[next_spare];
        spawn_joiner(&mut sim, &plab.addrs[0], h, p, &reserved, next_spare);
        next_spare += 1;
        joined += 1;
        let h = plab.nodes[next_spare];
        sim.net_mut().set_partition_group(h, 1);
        let minority_bootstrap = plab.addrs[minority[0]];
        spawn_joiner(&mut sim, &minority_bootstrap, h, p, &reserved, next_spare);
        next_spare += 1;
        joined += 1;
    }
    let partition_end = sim.now() + Duration::from_secs(60);
    while sim.now() < partition_end {
        sim.run_for(Duration::from_secs(1));
        drain(&mut sim, &mut arrivals, &crashed);
    }
    sim.net_mut().heal_partition();
    let settle_end = sim.now() + Duration::from_secs(70);
    while sim.now() < settle_end {
        sim.run_for(Duration::from_secs(1));
        drain(&mut sim, &mut arrivals, &crashed);
    }

    // Final census across every live IPOP agent (members + joiners). The
    // duplicate check spans everyone with an address; the bound count is
    // members-only so the ratio reads against `dynamic_total`.
    let mut ips: BTreeMap<Ipv4Addr, usize> = BTreeMap::new();
    let mut bound_final = 0usize;
    let mut leases_lost = 0u64;
    let mut renewal_timeouts = 0u64;
    let mut read_repairs = 0u64;
    let mut quorum_write_timeouts = 0u64;
    for i in 0..next_spare {
        if crashed.contains(&i) {
            continue;
        }
        let Some(agent) = sim.agent_as::<IpopHostAgent>(plab.nodes[i]) else {
            continue;
        };
        let s = agent.overlay_stats();
        leases_lost += s.dht_leases_lost;
        renewal_timeouts += s.dht_renewal_timeouts;
        read_repairs += s.dht_read_repairs;
        quorum_write_timeouts += s.dht_quorum_write_timeouts;
        if i > 0 && agent.has_address() {
            if i < p.nodes {
                bound_final += 1;
            }
            *ips.entry(agent.virtual_ip()).or_insert(0) += 1;
        }
    }
    let duplicates_after_heal = ips.values().filter(|&&c| c > 1).count();

    Results {
        nodes: p.nodes,
        guests: p.guests,
        migrations,
        bound: bound.max(bound_final),
        dynamic_total: p.nodes - 1,
        crashed: crashed.len(),
        joined,
        blackouts_s,
        unresolved_migrations: unresolved,
        lost_packets,
        resolution_latencies_s,
        duplicates_after_heal,
        leases_lost,
        renewal_timeouts,
        read_repairs,
        quorum_write_timeouts,
        partition_dropped: sim.net().counters().partition_dropped,
        events: sim.events_executed(),
        wall_s: started.elapsed().as_secs_f64(),
    }
}

/// Start a dynamic node on a spare host mid-run (churn joiner).
fn spawn_joiner(
    sim: &mut NetworkSim,
    bootstrap_addr: &Ipv4Addr,
    host: HostId,
    p: &Params,
    reserved: &[Ipv4Addr],
    index: usize,
) {
    let cfg = IpopConfig::dynamic((Ipv4Addr::new(172, 16, 9, 0), 24))
        .with_bootstrap(vec![(*bootstrap_addr, 4001)])
        .with_lease_ttl(p.lease_ttl)
        .with_brunet_arp_cache_ttl(p.arp_cache_ttl)
        .with_reserved_ips(reserved.to_vec())
        .with_hostname(&format!("joiner-{index}"));
    let phys = sim.net().host(host).addr;
    let agent = IpopHostAgent::new(cfg, phys, Box::new(NullApp));
    sim.net_mut().set_agent(host, Box::new(agent));
    sim.start_host(host);
}

/// The acceptance bound on the blackout window: the sender-side ARP cache TTL
/// (a stale mapping ages out and re-resolves at most one TTL after the
/// migration) plus 5 s of slack for the resolution round trip and the first
/// post-migration delivery.
fn blackout_bound_s(p: &Params) -> f64 {
    p.arp_cache_ttl.as_secs_f64() + 5.0
}

fn render_json(mode: &str, p: &Params, r: &Results) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"migration_churn\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"nodes\": {nodes},\n",
            "  \"guests\": {guests},\n",
            "  \"arp_cache_ttl_s\": {arp_ttl:.1},\n",
            "  \"lease_ttl_s\": {lease_ttl:.1},\n",
            "  \"allocation\": {{\n",
            "    \"dynamic_nodes\": {dynamic_total},\n",
            "    \"bound\": {bound},\n",
            "    \"joined_mid_run\": {joined},\n",
            "    \"crashed\": {crashed}\n",
            "  }},\n",
            "  \"migration\": {{\n",
            "    \"migrations\": {migrations},\n",
            "    \"blackout_mean_s\": {bmean:.3},\n",
            "    \"blackout_max_s\": {bmax:.3},\n",
            "    \"blackout_bound_s\": {bbound:.1},\n",
            "    \"blackout_within_bound\": {bok},\n",
            "    \"unresolved\": {unresolved},\n",
            "    \"lost_packets\": {lost},\n",
            "    \"resolution_latency_mean_s\": {rmean:.3},\n",
            "    \"resolution_latency_max_s\": {rmax:.3}\n",
            "  }},\n",
            "  \"partition\": {{\n",
            "    \"partition_dropped\": {pdropped},\n",
            "    \"duplicates_after_heal\": {dups},\n",
            "    \"leases_lost\": {lost_leases},\n",
            "    \"renewal_timeouts\": {rt},\n",
            "    \"quorum_write_timeouts\": {qwt},\n",
            "    \"read_repairs\": {repairs}\n",
            "  }},\n",
            "  \"events\": {events},\n",
            "  \"wall_s\": {wall:.3}\n",
            "}}\n",
        ),
        mode = mode,
        nodes = r.nodes,
        guests = r.guests,
        arp_ttl = p.arp_cache_ttl.as_secs_f64(),
        lease_ttl = p.lease_ttl.as_secs_f64(),
        dynamic_total = r.dynamic_total,
        bound = r.bound,
        joined = r.joined,
        crashed = r.crashed,
        migrations = r.migrations,
        bmean = mean(&r.blackouts_s),
        bmax = fmax(&r.blackouts_s),
        // The bound is the cache TTL (when the sender's stale entry ages out
        // and re-resolves) plus slack for the resolution round trip and the
        // first delivery — stated explicitly in the artifact, not implied.
        bbound = blackout_bound_s(p),
        bok = r.unresolved_migrations == 0 && fmax(&r.blackouts_s) <= blackout_bound_s(p),
        unresolved = r.unresolved_migrations,
        lost = r.lost_packets,
        rmean = mean(&r.resolution_latencies_s),
        rmax = fmax(&r.resolution_latencies_s),
        pdropped = r.partition_dropped,
        dups = r.duplicates_after_heal,
        lost_leases = r.leases_lost,
        rt = r.renewal_timeouts,
        qwt = r.quorum_write_timeouts,
        repairs = r.read_repairs,
        events = r.events,
        wall = r.wall_s,
    )
}

fn main() {
    let cli = bench_cli("BENCH_migration.json");
    let mode = cli.mode();
    let p = if cli.quick {
        Params {
            nodes: 24,
            spares: 4,
            guests: 3,
            rounds: 3,
            lease_ttl: Duration::from_secs(40),
            arp_cache_ttl: Duration::from_secs(15),
        }
    } else {
        Params {
            nodes: 48,
            spares: 6,
            guests: 6,
            rounds: 6,
            lease_ttl: Duration::from_secs(40),
            arp_cache_ttl: Duration::from_secs(15),
        }
    };

    eprintln!(
        "migration_churn ({mode} mode): {} nodes, {} guests x {} rounds, partition + heal",
        p.nodes, p.guests, p.rounds
    );
    let r = run(&p, 0x716_7a7e);
    eprintln!(
        "  allocation: {}/{} bound, {} joined mid-run, {} crashed",
        r.bound, r.dynamic_total, r.joined, r.crashed
    );
    eprintln!(
        "  migration: {} migrations, blackout mean {:.2} s / max {:.2} s (cache ttl {:.0} s), {} lost packets, {} unresolved",
        r.migrations,
        mean(&r.blackouts_s),
        fmax(&r.blackouts_s),
        p.arp_cache_ttl.as_secs_f64(),
        r.lost_packets,
        r.unresolved_migrations,
    );
    eprintln!(
        "  resolution latency: mean {:.3} s / max {:.3} s over {} probes",
        mean(&r.resolution_latencies_s),
        fmax(&r.resolution_latencies_s),
        r.resolution_latencies_s.len(),
    );
    eprintln!(
        "  partition: {} packets dropped, {} duplicates after heal, {} leases lost, {} renewal timeouts, {} read repairs",
        r.partition_dropped, r.duplicates_after_heal, r.leases_lost, r.renewal_timeouts, r.read_repairs,
    );
    if r.duplicates_after_heal > 0 {
        eprintln!("  WARNING: duplicate allocations survived the heal");
    }
    if r.unresolved_migrations > 0 {
        eprintln!("  WARNING: migrated guests never delivered at their new host");
    }
    if fmax(&r.blackouts_s) > blackout_bound_s(&p) {
        eprintln!(
            "  WARNING: blackout window exceeded the cache-TTL-plus-slack bound ({:.1} s)",
            blackout_bound_s(&p)
        );
    }

    let json = render_json(mode, &p, &r);
    cli.write_artifact(&json);
}
