//! Ablation for Section V.1: the effect of Kleinberg shortcut connections on
//! overlay path length and virtual-network latency.

fn main() {
    let (nodes, pings) = if ipop_bench::quick_mode() {
        (24, 30)
    } else {
        (64, 200)
    };
    let rows = ipop_bench::ablations::shortcuts(nodes, pings);
    ipop_bench::ablations::render_shortcuts(&rows, nodes).print();
}
