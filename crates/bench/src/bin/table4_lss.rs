//! Regenerates Table IV: LSS execution times, 1 vs 4 compute nodes over IPOP.
//!
//! Run with `--quick` for a scaled-down workload (smaller databases, shorter
//! per-record compute), which preserves the cold/warm and sequential/parallel
//! structure while finishing in seconds.

use ipop_apps::lss::LssParams;
use ipop_simcore::Duration;

fn main() {
    let params = if ipop_bench::quick_mode() {
        LssParams {
            images: 6,
            databases: 4,
            database_size: 2 * 1024 * 1024,
            compute_per_mb: Duration::from_secs(10),
        }
    } else {
        LssParams::default()
    };
    let rows = ipop_bench::table4::run(params.clone());
    ipop_bench::table4::render(&rows, &params).print();
}
