//! DHT durability benchmark: crash record owners and routing hops in the
//! middle of a write storm, then measure how many records survive and how
//! fast the DHT reconverges. This is the workload the durability layer
//! (fast dead-edge detection + anti-entropy sweeps) exists for: before it, a
//! put routed through a freshly-crashed hop was silently lost until the
//! 45 s connection timeout *and* the publisher's TTL/2 refresh (here 300 s).
//! Tracked across PRs in `BENCH_durability.json`.
//!
//! The scenario:
//!
//! 1. **Converge** — N static members form the overlay ring.
//! 2. **Write storm** — P publishers register G guest mappings each
//!    (`route_for` puts with a 600 s lease, so refreshes cannot mask a
//!    loss). Halfway through the storm, C ring owners of already-written
//!    keys and H uninvolved hop nodes crash unannounced: records stored on
//!    the owners are lost with them, and the storm's remaining puts are
//!    forwarded into dead edges.
//! 3. **Reconverge** — a prober issues cache-bypassing resolution reads for
//!    every mapping until each resolves. Reported per record: time to first
//!    successful resolution after the crash; in aggregate: survival rate
//!    and whether the worst reconvergence stayed inside the sweep-derived
//!    bound (detection + one sweep interval + resolution slack ≪ 45 s).
//!
//! Usage: `dht_durability [--quick] [--out PATH]`

use std::collections::BTreeSet;
use std::net::Ipv4Addr;
use std::time::Instant;

use ipop::prelude::*;
use ipop::IpopHostAgent;
use ipop_bench::harness::{bench_cli, fmax, mean, rate};
use ipop_netsim::planetlab;
use ipop_overlay::Address;
use ipop_simcore::SimTime;

struct Params {
    nodes: usize,
    publishers: usize,
    guests_per_publisher: usize,
    owners_crashed: usize,
    hops_crashed: usize,
    lease_ttl: Duration,
    sweep_interval: Duration,
    /// How long the prober keeps retrying before declaring a record lost.
    probe_window: Duration,
}

struct Results {
    records: usize,
    resolved: usize,
    reconverge_s: Vec<f64>,
    crashed: usize,
    probes_sent: u64,
    probe_timeouts: u64,
    dead_edges: u64,
    sync_digests: u64,
    sync_pulls: u64,
    sync_pushes: u64,
    read_repairs: u64,
    events: u64,
    wall_s: f64,
}

fn vip(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(172, 16, 7, (i + 1) as u8)
}

fn guest_ip(publisher: usize, g: usize) -> Ipv4Addr {
    Ipv4Addr::new(172, 16, 8, (publisher * 8 + g + 1) as u8)
}

/// The acceptance bound on reconvergence: dead-edge detection (probe idle
/// interval plus a few adaptive timeouts), one full anti-entropy sweep
/// interval (worst-case phase), and slack for the digest/pull/put/read round
/// trips. Far below both the 45 s connection timeout and the 300 s refresh.
fn reconverge_bound_s(p: &Params) -> f64 {
    10.0 + 2.0 * p.sweep_interval.as_secs_f64() + 5.0
}

fn run(p: &Params, seed: u64) -> Results {
    let started = Instant::now();
    let mut net = Network::new(seed);
    let plab = planetlab(&mut net, p.nodes, 1.0, seed);
    let members = plab
        .nodes
        .iter()
        .enumerate()
        .map(|(i, &h)| IpopMember::router(h, vip(i)))
        .collect();
    let options = DeployOptions {
        brunet_arp: true,
        ..DeployOptions::udp()
    }
    .with_lease_ttl(p.lease_ttl)
    .with_dht_sweep_interval(p.sweep_interval);
    let hosts = ipop::deploy_ipop(&mut net, members, options);
    let mut sim = NetworkSim::new(net);

    // Phase 1: converge.
    sim.run_for(Duration::from_secs(60));

    // Phase 2: write storm with mid-storm crashes. Publishers are member
    // indices 1..=P; victims are drawn from the rest, so every record keeps
    // a live publisher (survival should then come from replicas + sweep, not
    // luck). One batch = one guest per publisher, 500 ms apart.
    let publishers: Vec<usize> = (1..=p.publishers).collect();
    let mut crashed: BTreeSet<usize> = BTreeSet::new();
    let mut crash_time = SimTime::ZERO;
    let mut publish_time: Vec<(Ipv4Addr, SimTime)> = Vec::new();
    for batch in 0..p.guests_per_publisher {
        for &pb in &publishers {
            let now = sim.now();
            let ip = guest_ip(pb, batch);
            sim.net_mut()
                .agent_as_mut::<IpopHostAgent>(hosts[pb])
                .unwrap()
                .route_for(now, ip);
            publish_time.push((ip, now));
        }
        sim.run_for(Duration::from_millis(500));
        if batch == p.guests_per_publisher / 2 && crashed.is_empty() {
            // Crash C live ring owners of already-written keys...
            let mut victims: Vec<usize> = Vec::new();
            for &(ip, _) in &publish_time {
                if victims.len() >= p.owners_crashed {
                    break;
                }
                let key = Address::from_ip(ip);
                let owner = (0..p.nodes)
                    .filter(|i| !crashed.contains(i) && !victims.contains(i))
                    .filter(|i| !publishers.contains(i) && *i != 0)
                    .min_by_key(|&i| Address::from_ip(vip(i)).ring_distance(&key));
                if let Some(o) = owner {
                    victims.push(o);
                }
            }
            // ...plus H uninvolved hop nodes.
            let mut hops = 0usize;
            for i in (1..p.nodes).rev() {
                if hops >= p.hops_crashed {
                    break;
                }
                if !publishers.contains(&i) && !victims.contains(&i) {
                    victims.push(i);
                    hops += 1;
                }
            }
            crash_time = sim.now();
            for &v in &victims {
                crashed.insert(v);
                ipop::deploy_plain(sim.net_mut(), hosts[v], Box::new(ipop::NullApp));
            }
        }
    }

    // Phase 3: reconvergence. The bootstrap probes every mapping until it
    // resolves; per record the clock starts at the crash (or the put, for
    // records written after it).
    let records = publish_time.len();
    let mut unresolved: Vec<(Ipv4Addr, SimTime)> = publish_time
        .iter()
        .map(|&(ip, at)| (ip, at.max(crash_time)))
        .collect();
    let mut reconverge_s: Vec<f64> = Vec::new();
    let deadline = sim.now() + p.probe_window;
    while !unresolved.is_empty() && sim.now() < deadline {
        let now = sim.now();
        let mut tokens: Vec<(u64, usize)> = Vec::new();
        {
            let prober = sim
                .net_mut()
                .agent_as_mut::<IpopHostAgent>(hosts[0])
                .unwrap();
            let _ = prober.take_probe_results();
            for (idx, &(ip, _)) in unresolved.iter().enumerate() {
                tokens.push((prober.resolve_ip(now, ip), idx));
            }
        }
        sim.run_for(Duration::from_millis(500));
        let results = sim
            .net_mut()
            .agent_as_mut::<IpopHostAgent>(hosts[0])
            .unwrap()
            .take_probe_results();
        let resolved_now: Vec<usize> = results
            .iter()
            .filter(|(_, addr)| addr.is_some())
            .filter_map(|(token, _)| tokens.iter().find(|(t, _)| t == token).map(|&(_, idx)| idx))
            .collect();
        let at = sim.now();
        let mut remove: Vec<usize> = resolved_now;
        remove.sort_unstable();
        remove.dedup();
        for &idx in remove.iter().rev() {
            let (_, since) = unresolved.remove(idx);
            reconverge_s.push(at.saturating_since(since).as_secs_f64());
        }
    }

    // Census.
    let mut probes_sent = 0;
    let mut probe_timeouts = 0;
    let mut dead_edges = 0;
    let mut sync_digests = 0;
    let mut sync_pulls = 0;
    let mut sync_pushes = 0;
    let mut read_repairs = 0;
    for (i, &h) in hosts.iter().enumerate() {
        if crashed.contains(&i) {
            continue;
        }
        let Some(agent) = sim.agent_as::<IpopHostAgent>(h) else {
            continue;
        };
        let s = agent.overlay_stats();
        probes_sent += s.link_probes_sent;
        probe_timeouts += s.link_probe_timeouts;
        dead_edges += s.dead_edges_detected;
        sync_digests += s.dht_sync_digests;
        sync_pulls += s.dht_sync_pulls;
        sync_pushes += s.dht_sync_pushes;
        read_repairs += s.dht_read_repairs;
    }

    Results {
        records,
        resolved: reconverge_s.len(),
        reconverge_s,
        crashed: crashed.len(),
        probes_sent,
        probe_timeouts,
        dead_edges,
        sync_digests,
        sync_pulls,
        sync_pushes,
        read_repairs,
        events: sim.events_executed(),
        wall_s: started.elapsed().as_secs_f64(),
    }
}

fn render_json(mode: &str, p: &Params, r: &Results) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"dht_durability\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"nodes\": {nodes},\n",
            "  \"records\": {records},\n",
            "  \"owners_crashed\": {owners},\n",
            "  \"hops_crashed\": {hops},\n",
            "  \"crashed_total\": {crashed},\n",
            "  \"lease_ttl_s\": {lease:.1},\n",
            "  \"sweep_interval_s\": {sweep:.1},\n",
            "  \"survival\": {{\n",
            "    \"resolved\": {resolved},\n",
            "    \"rate\": {rate:.4}\n",
            "  }},\n",
            "  \"reconverge\": {{\n",
            "    \"mean_s\": {rmean:.3},\n",
            "    \"max_s\": {rmax:.3},\n",
            "    \"bound_s\": {bound:.1},\n",
            "    \"within_bound\": {bok},\n",
            "    \"pre_durability_window_s\": 45.0\n",
            "  }},\n",
            "  \"link_monitor\": {{\n",
            "    \"probes_sent\": {probes},\n",
            "    \"probe_timeouts\": {ptimeouts},\n",
            "    \"dead_edges_detected\": {dead}\n",
            "  }},\n",
            "  \"anti_entropy\": {{\n",
            "    \"digests\": {digests},\n",
            "    \"pulls\": {pulls},\n",
            "    \"pushes\": {pushes},\n",
            "    \"read_repairs\": {repairs}\n",
            "  }},\n",
            "  \"events\": {events},\n",
            "  \"wall_s\": {wall:.3}\n",
            "}}\n",
        ),
        mode = mode,
        nodes = p.nodes,
        records = r.records,
        owners = p.owners_crashed,
        hops = p.hops_crashed,
        crashed = r.crashed,
        lease = p.lease_ttl.as_secs_f64(),
        sweep = p.sweep_interval.as_secs_f64(),
        resolved = r.resolved,
        rate = rate(r.resolved, r.records),
        rmean = mean(&r.reconverge_s),
        rmax = fmax(&r.reconverge_s),
        bound = reconverge_bound_s(p),
        bok = r.resolved == r.records && fmax(&r.reconverge_s) <= reconverge_bound_s(p),
        probes = r.probes_sent,
        ptimeouts = r.probe_timeouts,
        dead = r.dead_edges,
        digests = r.sync_digests,
        pulls = r.sync_pulls,
        pushes = r.sync_pushes,
        repairs = r.read_repairs,
        events = r.events,
        wall = r.wall_s,
    )
}

fn main() {
    let cli = bench_cli("BENCH_durability.json");
    let mode = cli.mode();
    let p = if cli.quick {
        Params {
            nodes: 20,
            publishers: 8,
            guests_per_publisher: 2,
            owners_crashed: 2,
            hops_crashed: 1,
            lease_ttl: Duration::from_secs(600),
            sweep_interval: Duration::from_secs(10),
            probe_window: Duration::from_secs(60),
        }
    } else {
        Params {
            nodes: 40,
            publishers: 12,
            guests_per_publisher: 3,
            owners_crashed: 4,
            hops_crashed: 2,
            lease_ttl: Duration::from_secs(600),
            sweep_interval: Duration::from_secs(10),
            probe_window: Duration::from_secs(60),
        }
    };

    eprintln!(
        "dht_durability ({mode} mode): {} nodes, {} records, {}+{} crashes mid-storm",
        p.nodes,
        p.publishers * p.guests_per_publisher,
        p.owners_crashed,
        p.hops_crashed,
    );
    let r = run(&p, 0xD47A_B111);
    eprintln!(
        "  survival: {}/{} records resolved ({:.1}%)",
        r.resolved,
        r.records,
        rate(r.resolved, r.records) * 100.0
    );
    eprintln!(
        "  reconverge: mean {:.2} s / max {:.2} s (bound {:.1} s; pre-durability window 45 s)",
        mean(&r.reconverge_s),
        fmax(&r.reconverge_s),
        reconverge_bound_s(&p),
    );
    eprintln!(
        "  link monitor: {} probes, {} timeouts, {} dead edges; anti-entropy: {} digests, {} pulls, {} pushes",
        r.probes_sent, r.probe_timeouts, r.dead_edges, r.sync_digests, r.sync_pulls, r.sync_pushes,
    );
    if r.resolved < r.records {
        eprintln!(
            "  WARNING: {} records never resolved inside the probe window",
            r.records - r.resolved
        );
    }
    if fmax(&r.reconverge_s) > reconverge_bound_s(&p) {
        eprintln!(
            "  WARNING: reconvergence exceeded the sweep-derived bound ({:.1} s)",
            reconverge_bound_s(&p)
        );
    }

    let json = render_json(mode, &p, &r);
    cli.write_artifact(&json);
}
