//! Regenerates Table I: ping RTT on LAN and WAN, physical vs IPOP-TCP vs IPOP-UDP.
//!
//! Run with `--quick` for a reduced ping count.

fn main() {
    let count = if ipop_bench::quick_mode() { 50 } else { 1000 };
    println!(
        "Table I: {count} pings per scenario (Fig. 4 testbed; LAN = F2<->F4, WAN = F4<->V1)\n"
    );
    let rows = ipop_bench::table1::run(count);
    ipop_bench::table1::render(&rows).print();
}
