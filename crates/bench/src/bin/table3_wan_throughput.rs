//! Regenerates Table III: WAN ttcp throughput at two transfer sizes.
//!
//! Run with `--quick` for smaller transfers.

fn main() {
    let sizes = if ipop_bench::quick_mode() {
        [2_000_000u64, 6_000_000u64]
    } else {
        [ipop_apps::ttcp::sizes::SMALL, ipop_apps::ttcp::sizes::LARGE]
    };
    let rows = ipop_bench::table3::run(sizes);
    ipop_bench::table3::render(&rows).print();
}
