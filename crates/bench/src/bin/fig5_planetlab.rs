//! Regenerates Fig. 5: the distribution of ping RTTs across a 118-node Planet-Lab
//! overlay with heavily loaded nodes.
//!
//! Run with `--quick` for a 40-node overlay and fewer pings.

use ipop_bench::fig5::{self, Fig5Params};

fn main() {
    let params = if ipop_bench::quick_mode() {
        Fig5Params::quick()
    } else {
        Fig5Params::default()
    };
    println!(
        "Fig. 5: {} pings across a {}-node overlay at CPU load {}\n",
        params.pings, params.nodes, params.load
    );
    let out = fig5::run(&params);
    fig5::render_summary(&out, &params).print();
    println!("RTT distribution (ms):\n{}", out.histogram.ascii_chart(60));
}
