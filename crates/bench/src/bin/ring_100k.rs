//! 100 000-node overlay scale benchmark — the ROADMAP's "shortcut routing
//! measured where it matters" size. Same measurements as `ring_10k`,
//! written to `BENCH_scale.json`.
//!
//! Usage: `ring_100k [--quick] [--verify] [--out PATH]`

fn main() {
    ipop_bench::scale::scale_bin_main("ring_100k", 100_000);
}
