//! Virtual-stream benchmark: a ttcp-shaped WAN bulk transfer plus 1k
//! concurrent streams on the sharded simulator, written to
//! `BENCH_streams.json`.
//!
//! Usage: `streams_bench [--quick] [--out PATH]`

use ipop_bench::harness::bench_cli;
use ipop_bench::streams::{
    run_fairness, run_ttcp_stream, FairnessConfig, TtcpStreamConfig, REFERENCE_WAN_KBPS,
};

fn main() {
    let cli = bench_cli("BENCH_streams.json");
    let (tcfg, fcfg) = if cli.quick {
        (TtcpStreamConfig::quick(), FairnessConfig::quick())
    } else {
        (TtcpStreamConfig::full(), FairnessConfig::full())
    };

    eprintln!(
        "streams_bench ({} mode): ttcp {} KiB over {} ms one-way, then {} streams x {} KiB on {} nodes / {} shards",
        cli.mode(),
        tcfg.transfer_bytes / 1024,
        tcfg.one_way.as_nanos() / 1_000_000,
        fcfg.streams,
        fcfg.transfer_bytes / 1024,
        fcfg.scale.nodes,
        fcfg.scale.shards
    );

    let t = run_ttcp_stream(&tcfg);
    eprintln!(
        "  ttcp: {:.1} KB/s over {:.2}s virtual ({:.2}x of the {REFERENCE_WAN_KBPS} KB/s wan_ttcp reference), {} segments, {} retransmits",
        t.kbps,
        t.elapsed_s,
        t.vs_reference(),
        t.data_sent,
        t.retransmits
    );

    let started = std::time::Instant::now();
    let f = run_fairness(&fcfg);
    let wall_s = started.elapsed().as_secs_f64();
    let ev_s = f.events as f64 / wall_s;
    eprintln!(
        "  fairness: {}/{} streams completed, goodput KB/s min {:.1} mean {:.1} max {:.1} (ratio {:.2})",
        f.completed,
        f.streams,
        f.min_kbps(),
        f.mean_kbps(),
        f.max_kbps(),
        f.fairness_ratio()
    );
    eprintln!(
        "  {} events in {:.2}s wall / {:.1}s virtual -> {:.0} ev/s, {} retransmits, {} failed",
        f.events, wall_s, f.virtual_s, ev_s, f.retransmits, f.failed
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"streams\",\n");
    json.push_str(&format!("  \"mode\": \"{}\",\n", cli.mode()));
    json.push_str(&format!(
        "  \"ttcp\": {{ \"transfer_bytes\": {}, \"elapsed_s\": {:.3}, \"kbps\": {:.1}, \"reference_kbps\": {REFERENCE_WAN_KBPS}, \"vs_reference\": {:.3}, \"data_sent\": {}, \"retransmits\": {} }},\n",
        t.transfer_bytes,
        t.elapsed_s,
        t.kbps,
        t.vs_reference(),
        t.data_sent,
        t.retransmits
    ));
    json.push_str(&format!(
        "  \"fairness\": {{ \"nodes\": {}, \"shards\": {}, \"streams\": {}, \"completed\": {}, \"completion_rate\": {:.6}, \"transfer_bytes\": {}, \"goodput_kbps\": {{ \"min\": {:.1}, \"mean\": {:.1}, \"max\": {:.1}, \"ratio\": {:.3} }}, \"bytes_received\": {}, \"retransmits\": {}, \"failed\": {} }},\n",
        f.nodes,
        f.shards,
        f.streams,
        f.completed,
        f.completion_rate(),
        fcfg.transfer_bytes,
        f.min_kbps(),
        f.mean_kbps(),
        f.max_kbps(),
        f.fairness_ratio(),
        f.bytes_received,
        f.retransmits,
        f.failed
    ));
    json.push_str(&format!("  \"events\": {},\n", f.events));
    json.push_str(&format!("  \"wall_s\": {wall_s:.3},\n"));
    json.push_str(&format!("  \"virtual_s\": {:.1},\n", f.virtual_s));
    json.push_str(&format!("  \"events_per_sec\": {ev_s:.1},\n"));
    json.push_str(&format!(
        "  \"determinism\": {{ \"drained\": {}, \"trace_hash\": \"{:#018x}\" }}\n",
        f.drained, f.trace_hash
    ));
    json.push_str("}\n");
    cli.write_artifact(&json);

    assert_eq!(
        t.bytes_received, t.transfer_bytes as u64,
        "ttcp transfer must deliver every byte"
    );
    assert!(
        t.vs_reference() >= 0.5 && t.vs_reference() <= 2.0,
        "ttcp goodput {:.1} KB/s outside 2x of the wan_ttcp reference",
        t.kbps
    );
    assert!(f.drained, "fairness run failed to drain");
    assert_eq!(
        f.completed, f.streams,
        "every stream must complete on the lossless substrate"
    );
    assert_eq!(f.failed, 0, "no stream may exhaust its retransmit budget");
    assert!(
        f.fairness_ratio() <= 3.0,
        "max/min goodput ratio {:.2} exceeds the fairness gate",
        f.fairness_ratio()
    );
}
