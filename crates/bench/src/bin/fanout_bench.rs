//! Heavy-traffic pub/sub fan-out benchmark: 1k publishers × 10k subscribers
//! on one hot topic over a 12k-node ring, written to `BENCH_fanout.json`.
//!
//! Usage: `fanout_bench [--quick] [--out PATH]`

use ipop_bench::fanout::{run_fanout, FanoutConfig};
use ipop_bench::harness::{self, bench_cli};

fn main() {
    let cli = bench_cli("BENCH_fanout.json");
    let cfg = if cli.quick {
        FanoutConfig::quick()
    } else {
        FanoutConfig::full()
    };

    eprintln!(
        "fanout_bench ({} mode): {} nodes / {} shards, {} publishers x {} subscribers, fan-out {}",
        cli.mode(),
        cfg.scale.nodes,
        cfg.scale.shards,
        cfg.publishers,
        cfg.subscribers,
        cfg.scale.pubsub_fanout
    );
    let started = std::time::Instant::now();
    let r = run_fanout(&cfg);
    let wall_s = started.elapsed().as_secs_f64();
    let ev_s = r.events as f64 / wall_s;

    eprintln!(
        "  {} events in {:.2}s wall / {:.1}s virtual -> {:.0} ev/s",
        r.events, wall_s, r.virtual_s, ev_s
    );
    eprintln!(
        "  delivery: {}/{} ({:.4}%), latency ms p50 {:.1} p90 {:.1} p99 {:.1} max {:.1}",
        r.delivered,
        r.expected,
        100.0 * r.delivery_rate(),
        harness::quantile(&r.latencies_ms, 0.5),
        harness::quantile(&r.latencies_ms, 0.9),
        harness::quantile(&r.latencies_ms, 0.99),
        harness::fmax(&r.latencies_ms)
    );
    eprintln!(
        "  relay tree: {} direct sends, {} delegated re-fans, {} salvaged",
        r.fanout_sent, r.relayed, r.salvaged
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"fanout\",\n");
    json.push_str(&format!("  \"mode\": \"{}\",\n", cli.mode()));
    json.push_str(&format!("  \"nodes\": {},\n", r.nodes));
    json.push_str(&format!("  \"shards\": {},\n", r.shards));
    json.push_str(&format!("  \"publishers\": {},\n", r.publishers));
    json.push_str(&format!("  \"subscribers\": {},\n", r.subscribers));
    json.push_str(&format!("  \"fanout\": {},\n", r.fanout));
    json.push_str(&format!("  \"payload_bytes\": {},\n", cfg.payload_bytes));
    json.push_str(&format!("  \"events\": {},\n", r.events));
    json.push_str(&format!("  \"wall_s\": {wall_s:.3},\n"));
    json.push_str(&format!("  \"virtual_s\": {:.1},\n", r.virtual_s));
    json.push_str(&format!("  \"events_per_sec\": {ev_s:.1},\n"));
    json.push_str(&format!(
        "  \"delivery\": {{ \"publishes\": {}, \"expected\": {}, \"delivered\": {}, \"rate\": {:.6} }},\n",
        r.publishes,
        r.expected,
        r.delivered,
        r.delivery_rate()
    ));
    json.push_str(&format!(
        "  \"latency_ms\": {{ \"mean\": {:.2}, \"p50\": {:.2}, \"p90\": {:.2}, \"p99\": {:.2}, \"max\": {:.2} }},\n",
        harness::mean(&r.latencies_ms),
        harness::quantile(&r.latencies_ms, 0.5),
        harness::quantile(&r.latencies_ms, 0.9),
        harness::quantile(&r.latencies_ms, 0.99),
        harness::fmax(&r.latencies_ms)
    ));
    json.push_str(&format!(
        "  \"relay_tree\": {{ \"fanout_sent\": {}, \"relayed\": {}, \"salvaged\": {} }},\n",
        r.fanout_sent, r.relayed, r.salvaged
    ));
    json.push_str(&format!(
        "  \"determinism\": {{ \"drained\": {}, \"trace_hash\": \"{:#018x}\" }}\n",
        r.drained, r.trace_hash
    ));
    json.push_str("}\n");
    cli.write_artifact(&json);

    assert!(r.drained, "fan-out run failed to drain");
    assert!(
        r.delivery_rate() >= 0.999,
        "delivery rate {:.6} below the 99.9% floor",
        r.delivery_rate()
    );
}
