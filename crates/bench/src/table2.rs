//! Table II — ttcp throughput of a single overlay link on the LAN (F2 → F4)
//! compared with the physical network.

use rayon::prelude::*;

use crate::report::{f, pct, Table};
use crate::scenarios::{fig4_ttcp, Mode};

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct ThroughputRow {
    /// Scenario label.
    pub scenario: &'static str,
    /// Measured throughput in KB/s.
    pub kbps: f64,
    /// The matching physical baseline in KB/s (for the relative column).
    pub physical_kbps: f64,
    /// Paper-reported throughput in KB/s.
    pub paper_kbps: f64,
    /// Paper-reported relative bandwidth (IPOP / physical).
    pub paper_rel: &'static str,
}

/// Run Table II: a `bytes`-sized transfer over the LAN for each configuration.
pub fn run(bytes: u64) -> Vec<ThroughputRow> {
    let modes = [Mode::Physical, Mode::IpopTcp, Mode::IpopUdp];
    let results: Vec<(Mode, f64)> = modes
        .into_par_iter()
        .map(|mode| (mode, fig4_ttcp(mode, 1, 3, bytes, 0x7ab1e2).kbps))
        .collect();
    let physical = results
        .iter()
        .find(|(m, _)| *m == Mode::Physical)
        .map(|(_, k)| *k)
        .unwrap_or(0.0);
    results
        .into_iter()
        .map(|(mode, kbps)| {
            let (paper_kbps, paper_rel) = match mode {
                Mode::Physical => (8835.0, "100%"), // 8255 / 9416 across the two runs
                Mode::IpopTcp => (2389.0, "29%"),
                Mode::IpopUdp => (1905.0, "20%"),
            };
            ThroughputRow {
                scenario: mode.label(),
                kbps,
                physical_kbps: physical,
                paper_kbps,
                paper_rel,
            }
        })
        .collect()
}

/// Render rows as the printed table.
pub fn render(rows: &[ThroughputRow], bytes: u64) -> Table {
    let mut table = Table::new(
        &format!(
            "Table II - LAN ttcp throughput, transfer size {:.2} MB",
            bytes as f64 / 1e6
        ),
        &[
            "scenario",
            "throughput (KB/s)",
            "rel. to physical",
            "paper (KB/s)",
            "paper rel.",
        ],
    );
    for row in rows {
        table.row(&[
            row.scenario.to_string(),
            f(row.kbps, 0),
            pct(row.kbps, row.physical_kbps),
            f(row.paper_kbps, 0),
            row.paper_rel.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table2_shape_physical_beats_ipop_on_lan() {
        // 3 MB transfers keep the test quick; the ordering physical >> IPOP and the
        // rough factor (IPOP delivers 15-60% of physical on a LAN) must hold.
        let rows = run(3_000_000);
        let get = |s: &str| rows.iter().find(|r| r.scenario == s).unwrap().kbps;
        let phys = get("physical");
        let udp = get("IPOP-UDP");
        let tcp = get("IPOP-TCP");
        assert!(phys > 4_000.0, "physical LAN {phys} KB/s");
        assert!(
            udp > 200.0 && tcp > 200.0,
            "IPOP transfers completed: {udp} / {tcp}"
        );
        assert!(
            udp < 0.65 * phys,
            "IPOP-UDP well below physical: {udp} vs {phys}"
        );
        assert!(
            tcp < 0.65 * phys,
            "IPOP-TCP well below physical: {tcp} vs {phys}"
        );
    }
}
