//! Experiment harness regenerating every table and figure of the IPOP paper.
//!
//! Each experiment builds the relevant physical topology (`ipop-netsim`), deploys
//! either baseline agents or a full IPOP virtual network (`ipop`), runs the
//! corresponding workload (`ipop-apps`) inside the deterministic simulator and
//! reports the same quantities the paper's tables report. Independent scenarios of
//! one table run in parallel with rayon — each scenario is its own simulation, so
//! determinism per scenario is preserved.
//!
//! Binaries (one per table/figure) are thin wrappers around the functions here:
//!
//! | paper artefact | function | binary |
//! |---|---|---|
//! | Table I   | [`table1::run`] | `table1_latency` |
//! | Table II  | [`table2::run`] | `table2_lan_throughput` |
//! | Table III | [`table3::run`] | `table3_wan_throughput` |
//! | Table IV  | [`table4::run`] | `table4_lss` |
//! | Fig. 5    | [`fig5::run`]   | `fig5_planetlab` |
//! | §V.1 shortcut discussion | [`ablations::shortcuts`] | `ablation_shortcuts` |
//! | §III-E Brunet-ARP        | [`ablations::brunet_arp`] | `ablation_brunet_arp` |

pub mod ablations;
pub mod fanout;
pub mod fig5;
pub mod harness;
pub mod report;
pub mod scale;
pub mod scenarios;
pub mod streams;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

/// Parse a `--quick` flag from the command line: experiment binaries run a
/// scaled-down workload when it is present (useful in CI and while iterating).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick" || a == "-q")
}
