//! Table I — ping round-trip latency on LAN and WAN, physical vs IPOP-TCP vs
//! IPOP-UDP.

use rayon::prelude::*;

use crate::report::{f, Table};
use crate::scenarios::{fig4_ping, Mode};

/// One row of Table I.
#[derive(Clone, Debug)]
pub struct LatencyRow {
    /// `"LAN"` or `"WAN"`.
    pub scope: &'static str,
    /// Scenario label (`physical`, `IPOP-TCP`, `IPOP-UDP`).
    pub scenario: &'static str,
    /// Mean RTT in milliseconds.
    pub mean_ms: f64,
    /// Standard deviation in milliseconds.
    pub std_ms: f64,
    /// Replies received.
    pub replies: usize,
    /// The paper's reported mean, for side-by-side comparison.
    pub paper_mean_ms: f64,
}

/// Paper reference means (Table I).
const PAPER: [(&str, &str, f64); 6] = [
    ("LAN", "physical", 0.76), // 0.898 (TCP run) and 0.625 (UDP run) averaged
    ("LAN", "IPOP-TCP", 7.832),
    ("LAN", "IPOP-UDP", 6.859),
    ("WAN", "physical", 36.6), // 38.801 and 34.492 averaged
    ("WAN", "IPOP-TCP", 48.539),
    ("WAN", "IPOP-UDP", 45.896),
];

/// Run the Table I measurement with `count` pings per scenario.
///
/// LAN = F2 ⇄ F4, WAN = F4 ⇄ V1, exactly as in the paper's Section IV-B.
pub fn run(count: u32) -> Vec<LatencyRow> {
    let scenarios: Vec<(&'static str, Mode, usize, usize)> = vec![
        ("LAN", Mode::Physical, 1, 3),
        ("LAN", Mode::IpopTcp, 1, 3),
        ("LAN", Mode::IpopUdp, 1, 3),
        ("WAN", Mode::Physical, 3, 4),
        ("WAN", Mode::IpopTcp, 3, 4),
        ("WAN", Mode::IpopUdp, 3, 4),
    ];
    scenarios
        .into_par_iter()
        .map(|(scope, mode, src, dst)| {
            let report = fig4_ping(mode, src, dst, count, 0x7ab1e1);
            let summary = report.summary();
            let paper_mean_ms = PAPER
                .iter()
                .find(|(s, m, _)| *s == scope && *m == mode.label())
                .map(|(_, _, v)| *v)
                .unwrap_or(0.0);
            LatencyRow {
                scope,
                scenario: mode.label(),
                mean_ms: summary.mean,
                std_ms: summary.std_dev,
                replies: report.rtts_ms.len(),
                paper_mean_ms,
            }
        })
        .collect()
}

/// Render rows as the printed table.
pub fn render(rows: &[LatencyRow]) -> Table {
    let mut table = Table::new(
        "Table I - ping RTT (ms): physical vs IPOP-TCP vs IPOP-UDP",
        &[
            "scope",
            "scenario",
            "mean (ms)",
            "std dev (ms)",
            "replies",
            "paper mean (ms)",
        ],
    );
    for row in rows {
        table.row(&[
            row.scope.to_string(),
            row.scenario.to_string(),
            f(row.mean_ms, 3),
            f(row.std_ms, 3),
            row.replies.to_string(),
            f(row.paper_mean_ms, 3),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table1_preserves_the_paper_ordering() {
        // A reduced ping count keeps the test fast while still checking the shape:
        // IPOP adds milliseconds of overhead on the LAN and a ~25-35% penalty on the WAN.
        let rows = run(8);
        let get = |scope: &str, scen: &str| {
            rows.iter()
                .find(|r| r.scope == scope && r.scenario == scen)
                .unwrap()
                .mean_ms
        };
        let lan_phys = get("LAN", "physical");
        let lan_udp = get("LAN", "IPOP-UDP");
        let wan_phys = get("WAN", "physical");
        let wan_udp = get("WAN", "IPOP-UDP");
        assert!(lan_phys < 2.5, "lan physical {lan_phys}");
        assert!(
            lan_udp > lan_phys + 3.0,
            "IPOP overhead visible: {lan_udp} vs {lan_phys}"
        );
        assert!(lan_udp < 20.0, "IPOP LAN latency within range: {lan_udp}");
        assert!(
            wan_phys > 25.0 && wan_phys < 50.0,
            "wan physical {wan_phys}"
        );
        assert!(
            wan_udp > wan_phys,
            "wan IPOP {wan_udp} vs physical {wan_phys}"
        );
        assert!(wan_udp < wan_phys * 2.0, "wan overhead bounded: {wan_udp}");
    }
}
