//! Fig. 5 — distribution of ping round-trip times across a 118-node Planet-Lab
//! overlay whose nodes are heavily CPU-loaded.

use ipop_simcore::Histogram;

use crate::report::{f, Table};
use crate::scenarios::{planetlab_ping, PlanetLabResult};

/// Parameters of the Fig. 5 experiment.
#[derive(Clone, Debug)]
pub struct Fig5Params {
    /// Number of Planet-Lab nodes in the overlay (118 in the paper).
    pub nodes: usize,
    /// CPU load factor of the Planet-Lab nodes (the paper observed loads > 10).
    pub load: f64,
    /// Number of echo requests (10 000 in the paper).
    pub pings: u32,
}

impl Default for Fig5Params {
    fn default() -> Self {
        Fig5Params {
            nodes: 118,
            load: 10.0,
            pings: 10_000,
        }
    }
}

impl Fig5Params {
    /// A scaled-down variant for `--quick` runs and tests.
    pub fn quick() -> Self {
        Fig5Params {
            nodes: 40,
            load: 10.0,
            pings: 300,
        }
    }
}

/// The experiment output: raw result plus the latency histogram of Fig. 5.
pub struct Fig5Output {
    /// Raw RTTs and hop statistics.
    pub result: PlanetLabResult,
    /// Histogram over RTT (milliseconds).
    pub histogram: Histogram,
}

/// Run the Fig. 5 experiment.
pub fn run(params: &Fig5Params) -> Fig5Output {
    let result = planetlab_ping(params.nodes, params.load, params.pings, 0x7ab1e5);
    let max_ms = result
        .rtts_ms
        .iter()
        .copied()
        .fold(0.0f64, f64::max)
        .max(100.0);
    let mut histogram = Histogram::new(0.0, max_ms * 1.05, 30);
    for &rtt in &result.rtts_ms {
        histogram.add(rtt);
    }
    Fig5Output { result, histogram }
}

/// Render the summary statistics table (the figure itself is printed as an ASCII
/// histogram by the binary).
pub fn render_summary(out: &Fig5Output, params: &Fig5Params) -> Table {
    let mut table = Table::new(
        &format!(
            "Fig. 5 - ping RTT over a {}-node Planet-Lab overlay (CPU load {})",
            params.nodes, params.load
        ),
        &["metric", "measured", "paper"],
    );
    table.row(&[
        "mean RTT (ms)".into(),
        f(out.histogram.mean(), 1),
        "~1600 (reported \"in excess of 1.6 s\")".into(),
    ]);
    table.row(&[
        "median RTT (ms)".into(),
        f(out.histogram.percentile(0.5), 1),
        "-".into(),
    ]);
    table.row(&[
        "95th percentile (ms)".into(),
        f(out.histogram.percentile(0.95), 1),
        "-".into(),
    ]);
    table.row(&[
        "replies".into(),
        out.result.rtts_ms.len().to_string(),
        "10000".into(),
    ]);
    table.row(&["lost".into(), out.result.lost.to_string(), "-".into()]);
    table.row(&[
        "avg overlay forwards per delivery".into(),
        f(out.result.avg_forwards, 2),
        "2 hops between source and destination".into(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig5_shows_load_dominated_latency() {
        let params = Fig5Params {
            nodes: 24,
            load: 10.0,
            pings: 40,
        };
        let out = run(&params);
        assert!(
            out.result.rtts_ms.len() >= 20,
            "most pings answered: {}",
            out.result.rtts_ms.len()
        );
        let mean = out.histogram.mean();
        // Physical RTTs in this topology are well under 200 ms; the loaded
        // user-level routers must push the overlay RTT far beyond that.
        assert!(
            mean > 250.0,
            "loaded overlay mean RTT {mean} ms should be dominated by CPU load"
        );
        assert!(out.histogram.count() as usize == out.result.rtts_ms.len());
    }

    #[test]
    fn lightly_loaded_overlay_is_much_faster() {
        let loaded = run(&Fig5Params {
            nodes: 24,
            load: 10.0,
            pings: 30,
        });
        let idle = run(&Fig5Params {
            nodes: 24,
            load: 1.0,
            pings: 30,
        });
        assert!(
            idle.histogram.mean() * 2.0 < loaded.histogram.mean(),
            "CPU load is the dominant cost: idle {} ms vs loaded {} ms",
            idle.histogram.mean(),
            loaded.histogram.mean()
        );
    }
}
