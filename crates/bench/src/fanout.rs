//! Heavy-traffic pub/sub fan-out workload: many publishers, one hot topic,
//! thousands of subscribers.
//!
//! Runs on the same interned substrate and sharded simulator as the
//! [`crate::scale`] harness: the ring is warm-started, then a block of
//! subscriber nodes subscribes to one topic (staggered, soft-state records
//! converging at the topic root), and after a settle window a block of
//! publisher nodes publishes one message each (staggered). Every publish
//! routes to the topic root and fans out along the bounded-degree relay
//! tree; the workload measures the fan-out latency distribution
//! (publish instant → delivery instant per subscriber), the delivery rate
//! against the `publishers × subscribers` ideal, and simulator throughput.
//!
//! Because simulator events carry [`LinkMessage`] structs rather than
//! encoded datagrams, the published body is one shared `Bytes` region across
//! every copy at every relay depth — the zero-copy fan-out path the wire
//! codec's cached-image tests pin down, exercised at workload scale.

use ipop_overlay::address::Address;
use ipop_overlay::node::OverlayNode;
use ipop_overlay::packets::LinkMessage;
use ipop_overlay::pubsub::topic_key;
use ipop_packet::Bytes;
use ipop_simcore::{
    Duration, ShardCtl, ShardRunOutcome, ShardWorld, ShardedSim, SimTime, StreamRng,
};

use crate::scale::{build_warm_ring, ScaleConfig, WarmRing};

/// Parameters of one fan-out run.
#[derive(Clone, Debug)]
pub struct FanoutConfig {
    /// Ring substrate (size, shards, seeding, relay-tree out-degree).
    pub scale: ScaleConfig,
    /// Nodes `0..subscribers` subscribe to the topic.
    pub subscribers: u32,
    /// Nodes `subscribers..subscribers + publishers` publish one message
    /// each. The two blocks must fit the ring, disjoint.
    pub publishers: u32,
    /// Published body size.
    pub payload_bytes: usize,
    /// Gap between consecutive subscribes (staggered so the root merges a
    /// stream, not one burst).
    pub subscribe_spacing: Duration,
    /// Gap between consecutive publishes.
    pub publish_spacing: Duration,
    /// Quiet window between the last subscribe and the first publish, for
    /// the subscriber record (and its replicas) to settle.
    pub settle: Duration,
    /// Subscription TTL. Kept far above the run length so no renewals fire
    /// mid-measurement.
    pub sub_ttl: Duration,
}

impl FanoutConfig {
    /// The paper-scale workload: 1k publishers × 10k subscribers on a 12k
    /// ring, fan-out 4, 64-byte bodies.
    pub fn full() -> Self {
        FanoutConfig {
            scale: ScaleConfig {
                maintenance_ticks: 4,
                probes: 0,
                ..ScaleConfig::ring(12_000)
            },
            subscribers: 10_000,
            publishers: 1_000,
            payload_bytes: 64,
            subscribe_spacing: Duration::from_millis(1),
            publish_spacing: Duration::from_millis(1),
            settle: Duration::from_secs(5),
            sub_ttl: Duration::from_secs(3600),
        }
    }

    /// CI-sized: 32 publishers × 256 subscribers on a 512-node ring.
    pub fn quick() -> Self {
        FanoutConfig {
            scale: ScaleConfig {
                shards: 4,
                maintenance_ticks: 4,
                probes: 0,
                ..ScaleConfig::ring(512)
            },
            subscribers: 256,
            publishers: 32,
            ..Self::full()
        }
    }
}

/// Outcome of one fan-out run.
#[derive(Clone, Debug)]
pub struct FanoutReport {
    pub nodes: u32,
    pub shards: u32,
    pub subscribers: u32,
    pub publishers: u32,
    pub fanout: usize,
    /// Messages actually published (one per publisher).
    pub publishes: u64,
    /// `publishes × subscribers`: every subscriber must see every message.
    pub expected: u64,
    /// Deliveries harvested at subscribers.
    pub delivered: u64,
    /// Publish-to-delivery latency of every delivery, in virtual ms.
    pub latencies_ms: Vec<f64>,
    /// Direct relay-tree sends (root + delegated heads).
    pub fanout_sent: u64,
    /// Deliveries that also carried a delegated chunk to re-fan.
    pub relayed: u64,
    /// Salvage re-fans (should be 0 without churn).
    pub salvaged: u64,
    /// Simulator events executed.
    pub events: u64,
    /// Virtual seconds simulated.
    pub virtual_s: f64,
    /// FNV digest of the full execution history (determinism witness).
    pub trace_hash: u64,
    /// Whether the event queues drained before the time limit.
    pub drained: bool,
}

impl FanoutReport {
    pub fn delivery_rate(&self) -> f64 {
        if self.expected == 0 {
            return f64::NAN;
        }
        self.delivered as f64 / self.expected as f64
    }
}

/// Events driving the fan-out world.
enum FanEv {
    /// A link message from node `src` arriving at node `dst`.
    Deliver {
        src: u32,
        dst: u32,
        msg: LinkMessage,
    },
    /// Maintenance tick on `dst`; reschedules itself `remaining` more times.
    Tick { dst: u32, remaining: u32 },
    /// Node `dst` subscribes to the topic.
    Subscribe { dst: u32 },
    /// Node `src` publishes one message on the topic.
    Publish { src: u32 },
}

/// One shard: a contiguous block of nodes plus local measurement state.
struct FanoutShardWorld {
    net: ipop_netsim::ScaleNet,
    interval: Duration,
    topic: Address,
    /// The published body, one shared region for every publish and copy.
    payload: Bytes,
    sub_ttl: Duration,
    lo: u32,
    nodes: Vec<OverlayNode>,
    /// `(msg_id, publish instant)` of publishes originated in this shard.
    publishes: Vec<(u64, SimTime)>,
    /// `(msg_id, delivery instant)` of messages delivered in this shard.
    arrivals: Vec<(u64, SimTime)>,
}

impl FanoutShardWorld {
    /// Flush node `idx`'s outbox into the event fabric and harvest delivered
    /// topic messages. Identical latency handling to the scale harness: every
    /// link message crosses the slice barrier with its full link latency.
    fn pump(&mut self, idx: usize, now: SimTime, ctl: &mut ShardCtl<FanEv>) {
        let src = self.lo + idx as u32;
        let node = &mut self.nodes[idx];
        for (ep, msg) in node.take_outbox() {
            let Some(dst) = self.net.node_of(&ep) else {
                continue;
            };
            let at = now + self.net.latency(src, dst);
            ctl.send(
                self.net.shard_of(dst) as usize,
                at,
                FanEv::Deliver { src, dst, msg },
            );
        }
        for (_topic, msg_id, _payload) in node.take_pubsub_delivered() {
            self.arrivals.push((msg_id, now));
        }
    }
}

impl ShardWorld for FanoutShardWorld {
    type Ev = FanEv;

    fn handle(&mut self, now: SimTime, ev: FanEv, ctl: &mut ShardCtl<FanEv>) {
        match ev {
            FanEv::Deliver { src, dst, msg } => {
                let idx = (dst - self.lo) as usize;
                let from = self.net.endpoint(src);
                self.nodes[idx].on_message(now, from, msg);
                self.pump(idx, now, ctl);
            }
            FanEv::Tick { dst, remaining } => {
                let idx = (dst - self.lo) as usize;
                self.nodes[idx].on_tick(now);
                self.pump(idx, now, ctl);
                if remaining > 0 {
                    ctl.send_local(
                        now + self.interval,
                        FanEv::Tick {
                            dst,
                            remaining: remaining - 1,
                        },
                    );
                }
            }
            FanEv::Subscribe { dst } => {
                let idx = (dst - self.lo) as usize;
                let (topic, ttl) = (self.topic, self.sub_ttl);
                self.nodes[idx].pubsub_subscribe(now, topic, ttl);
                self.pump(idx, now, ctl);
            }
            FanEv::Publish { src } => {
                let idx = (src - self.lo) as usize;
                let (topic, body) = (self.topic, self.payload.clone());
                let msg_id = self.nodes[idx].pubsub_publish(now, topic, body);
                self.publishes.push((msg_id, now));
                self.pump(idx, now, ctl);
            }
        }
    }
}

/// Run one fan-out experiment.
pub fn run_fanout(cfg: &FanoutConfig) -> FanoutReport {
    let scfg = &cfg.scale;
    assert!(
        cfg.subscribers + cfg.publishers <= scfg.nodes,
        "subscriber and publisher blocks must fit the ring"
    );
    let WarmRing {
        net,
        addrs: _addrs,
        nodes,
        slice,
    } = build_warm_ring(scfg);
    let topic = topic_key("bench");
    let mut body_rng = StreamRng::new(scfg.seed, "fanout-body");
    let payload = Bytes::from(
        (0..cfg.payload_bytes)
            .map(|_| (body_rng.next_u64() & 0xFF) as u8)
            .collect::<Vec<u8>>(),
    );
    let t0 = SimTime::ZERO;

    // Partition into contiguous shards (ring neighbours share a shard).
    let mut worlds = Vec::with_capacity(net.shards() as usize);
    let mut nodes = nodes.into_iter();
    for s in 0..net.shards() {
        let count = (net.shard_end(s) - net.shard_start(s)) as usize;
        worlds.push(FanoutShardWorld {
            net,
            interval: scfg.maintenance_interval,
            topic,
            payload: payload.clone(),
            sub_ttl: cfg.sub_ttl,
            lo: net.shard_start(s),
            nodes: nodes.by_ref().take(count).collect(),
            publishes: Vec::new(),
            arrivals: Vec::new(),
        });
    }
    let mut sim = ShardedSim::new(worlds, slice, scfg.parallel);

    // Maintenance ticks, staggered across one interval.
    let interval_ns = scfg.maintenance_interval.as_nanos();
    for i in 0..scfg.nodes {
        let at = t0 + Duration::from_nanos(i as u64 * interval_ns / scfg.nodes as u64);
        sim.schedule(
            net.shard_of(i) as usize,
            at,
            FanEv::Tick {
                dst: i,
                remaining: scfg.maintenance_ticks,
            },
        );
    }

    // Subscribe phase after maintenance settles, staggered.
    let sub_start = t0 + Duration::from_nanos(interval_ns * (scfg.maintenance_ticks as u64 + 2));
    for s in 0..cfg.subscribers {
        sim.schedule(
            net.shard_of(s) as usize,
            sub_start + cfg.subscribe_spacing * s as u64,
            FanEv::Subscribe { dst: s },
        );
    }

    // Publish phase after the settle window, staggered.
    let pub_start = sub_start + cfg.subscribe_spacing * cfg.subscribers as u64 + cfg.settle;
    for p in 0..cfg.publishers {
        let src = cfg.subscribers + p;
        sim.schedule(
            net.shard_of(src) as usize,
            pub_start + cfg.publish_spacing * p as u64,
            FanEv::Publish { src },
        );
    }

    // Generous drain limit: the publish window plus a minute of relay time.
    let limit = pub_start + cfg.publish_spacing * cfg.publishers as u64 + Duration::from_secs(60);
    let outcome = sim.run_until(limit);

    // Harvest: publish instants by message id, then latency per arrival.
    let mut publish_at: std::collections::BTreeMap<u64, SimTime> =
        std::collections::BTreeMap::new();
    let mut publishes = 0u64;
    for w in sim.worlds() {
        for &(id, at) in &w.publishes {
            publish_at.insert(id, at);
            publishes += 1;
        }
    }
    let mut latencies_ms = Vec::new();
    let mut delivered = 0u64;
    let mut fanout_sent = 0u64;
    let mut relayed = 0u64;
    let mut salvaged = 0u64;
    for w in sim.worlds() {
        for &(id, at) in &w.arrivals {
            if let Some(&sent) = publish_at.get(&id) {
                delivered += 1;
                latencies_ms.push(at.saturating_since(sent).as_secs_f64() * 1e3);
            }
        }
        for node in &w.nodes {
            let s = node.stats();
            fanout_sent += s.pubsub_fanout_sent;
            relayed += s.pubsub_relayed;
            salvaged += s.pubsub_salvaged;
        }
    }

    FanoutReport {
        nodes: scfg.nodes,
        shards: net.shards(),
        subscribers: cfg.subscribers,
        publishers: cfg.publishers,
        fanout: scfg.pubsub_fanout,
        publishes,
        expected: publishes * cfg.subscribers as u64,
        delivered,
        latencies_ms,
        fanout_sent,
        relayed,
        salvaged,
        events: sim.executed(),
        virtual_s: sim.now().saturating_since(SimTime::ZERO).as_secs_f64(),
        trace_hash: sim.trace_hash(),
        drained: outcome == ShardRunOutcome::Drained,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FanoutConfig {
        FanoutConfig {
            scale: ScaleConfig {
                shards: 4,
                maintenance_ticks: 3,
                probes: 0,
                ..ScaleConfig::ring(96)
            },
            subscribers: 48,
            publishers: 8,
            settle: Duration::from_secs(2),
            ..FanoutConfig::full()
        }
    }

    #[test]
    fn every_subscriber_gets_every_message() {
        let r = run_fanout(&tiny());
        assert!(r.drained, "run must drain");
        assert_eq!(r.publishes, 8);
        assert_eq!(r.expected, 8 * 48);
        assert_eq!(
            r.delivered, r.expected,
            "lossless substrate: delivery must be exact"
        );
        assert_eq!(r.latencies_ms.len() as u64, r.delivered);
        assert!(r.relayed > 0, "bounded fan-out must delegate");
        assert_eq!(r.salvaged, 0, "no churn, no salvage");
    }

    #[test]
    fn fanout_runs_are_deterministic_and_mode_independent() {
        let mut seq = tiny();
        seq.scale.parallel = false;
        let a = run_fanout(&seq);
        let b = run_fanout(&tiny());
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.latencies_ms.len(), b.latencies_ms.len());
    }
}
