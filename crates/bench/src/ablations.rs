//! Ablation experiments for the design points the paper discusses but does not
//! quantify: shortcut connections (Section V.1) and the Brunet-ARP mapper
//! (Section III-E).

use std::any::Any;
use std::net::Ipv4Addr;

use ipop::app::{AppEnv, VirtualApp};
use ipop::prelude::*;
use ipop::IpopHostAgent;
use ipop_apps::ping::PingApp;
use ipop_netsim::{planetlab, Network, NetworkSim};
use ipop_simcore::{Duration, SimTime};

use crate::report::{f, Table};

// ------------------------------------------------------------------- shortcuts

/// Result of the shortcut ablation for one configuration.
#[derive(Clone, Debug)]
pub struct ShortcutResult {
    /// Whether far (shortcut) connections were enabled.
    pub shortcuts: bool,
    /// Mean ping RTT in milliseconds.
    pub mean_rtt_ms: f64,
    /// Average overlay forwards per delivered tunnel packet (≈ hops − 1).
    pub avg_forwards: f64,
    /// Total established connections in the overlay.
    pub total_connections: usize,
}

/// Compare routing with and without Kleinberg shortcut connections on an
/// `n`-node overlay (lightly loaded, so path length dominates the RTT).
pub fn shortcuts(n: usize, pings: u32) -> Vec<ShortcutResult> {
    [true, false]
        .into_iter()
        .map(|enabled| {
            let mut net = Network::new(0xab1a71);
            let plab = planetlab(&mut net, n, 1.0, 7);
            let mut members = Vec::new();
            let mut ping_target = Ipv4Addr::UNSPECIFIED;
            let mut src_host = plab.nodes[0];
            for (i, &h) in plab.nodes.iter().enumerate() {
                let vip = Ipv4Addr::new(172, 16, 3 + (i / 200) as u8, (i % 200 + 1) as u8);
                if i == n - 1 {
                    ping_target = vip;
                }
                if i == 1 {
                    src_host = h;
                    members.push(IpopMember::new(
                        h,
                        vip,
                        Box::new(PingApp::new(
                            Ipv4Addr::UNSPECIFIED,
                            0,
                            Duration::from_millis(50),
                        )),
                    ));
                } else {
                    members.push(IpopMember::router(h, vip));
                }
            }
            // Replace the placeholder ping app now that the target is known.
            members[1] = IpopMember::new(
                src_host,
                Ipv4Addr::new(172, 16, 3, 2),
                Box::new(
                    PingApp::new(ping_target, pings, Duration::from_millis(50))
                        .with_start_delay(Duration::from_secs(30))
                        .with_timeout(Duration::from_secs(10)),
                ),
            );
            let options = DeployOptions {
                shortcuts: enabled,
                ..DeployOptions::udp()
            };
            ipop::deploy_ipop(&mut net, members, options);
            let mut sim = NetworkSim::new(net);
            sim.run_for(Duration::from_secs(40) + Duration::from_millis(50) * u64::from(pings) * 4);
            let report = sim
                .net()
                .agent_as::<IpopHostAgent>(src_host)
                .and_then(|a| a.app_as::<PingApp>())
                .map(|p| p.report().clone())
                .unwrap_or_default();
            let mut forwards = 0u64;
            let mut tunneled = 0u64;
            let mut connections = 0usize;
            for &h in &plab.nodes {
                if let Some(agent) = sim.net().agent_as::<IpopHostAgent>(h) {
                    forwards += agent.overlay_stats().forwarded;
                    tunneled += agent.metrics().tunneled_rx;
                    connections += agent.connection_count();
                }
            }
            ShortcutResult {
                shortcuts: enabled,
                mean_rtt_ms: report.summary().mean,
                avg_forwards: if tunneled == 0 {
                    0.0
                } else {
                    forwards as f64 / tunneled as f64
                },
                total_connections: connections,
            }
        })
        .collect()
}

/// Render the shortcut ablation table.
pub fn render_shortcuts(rows: &[ShortcutResult], n: usize) -> Table {
    let mut table = Table::new(
        &format!("Ablation - shortcut (structured-far) connections, {n}-node overlay"),
        &[
            "shortcuts",
            "mean ping RTT (ms)",
            "avg forwards/delivery",
            "total connections",
        ],
    );
    for row in rows {
        table.row(&[
            if row.shortcuts { "enabled" } else { "disabled" }.to_string(),
            f(row.mean_rtt_ms, 1),
            f(row.avg_forwards, 2),
            row.total_connections.to_string(),
        ]);
    }
    table
}

// ------------------------------------------------------------------ Brunet-ARP

/// A little application that sends UDP datagrams to a (possibly migrating)
/// virtual IP at a fixed interval; used to exercise the Brunet-ARP resolver.
struct UdpBlaster {
    target: Ipv4Addr,
    count: u32,
    interval: Duration,
    start_delay: Duration,
    socket: Option<ipop_netstack::SocketHandle>,
    sent: u32,
    next_at: SimTime,
}

impl UdpBlaster {
    fn new(target: Ipv4Addr, count: u32, interval: Duration, start_delay: Duration) -> Self {
        UdpBlaster {
            target,
            count,
            interval,
            start_delay,
            socket: None,
            sent: 0,
            next_at: SimTime::ZERO,
        }
    }
}

impl VirtualApp for UdpBlaster {
    fn on_start(&mut self, env: &mut AppEnv<'_>) {
        self.socket = env.stack.udp_bind(7100).ok();
        self.next_at = env.now + self.start_delay;
    }

    fn poll(&mut self, env: &mut AppEnv<'_>) -> Option<SimTime> {
        let socket = self.socket?;
        while self.sent < self.count && env.now >= self.next_at {
            let _ = env
                .stack
                .udp_send(socket, self.target, 7200, vec![self.sent as u8; 64]);
            self.sent += 1;
            self.next_at += self.interval;
        }
        (self.sent < self.count).then_some(self.next_at)
    }

    fn finished(&self) -> bool {
        self.sent >= self.count
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Result of the Brunet-ARP ablation.
#[derive(Clone, Debug)]
pub struct BrunetArpResult {
    /// Packets that reached the node hosting the guest IP before migration.
    pub delivered_before: u64,
    /// Packets that reached the new host after the guest IP migrated.
    pub delivered_after: u64,
    /// DHT queries issued by the sender.
    pub queries: u64,
    /// Packets the sender tunnelled in total.
    pub tunneled: u64,
}

/// Exercise the Brunet-ARP mapper: a sender keeps transmitting to a guest virtual
/// IP that is hosted by node B and later "migrates" to node C (Section III-E's VM
/// migration scenario).
pub fn brunet_arp() -> BrunetArpResult {
    let mut net = Network::new(0xab1a72);
    let site = net.add_site(ipop_netsim::SiteSpec::open("LAN"));
    let a = net.add_host("sender", site, Ipv4Addr::new(10, 60, 0, 1));
    let b = net.add_host("host-b", site, Ipv4Addr::new(10, 60, 0, 2));
    let c = net.add_host("host-c", site, Ipv4Addr::new(10, 60, 0, 3));
    let guest_ip = Ipv4Addr::new(172, 16, 9, 9);
    let members = vec![
        IpopMember::new(
            a,
            Ipv4Addr::new(172, 16, 0, 1),
            Box::new(UdpBlaster::new(
                guest_ip,
                100,
                Duration::from_secs(4),
                Duration::from_secs(10),
            )),
        ),
        IpopMember::router(b, Ipv4Addr::new(172, 16, 0, 2)),
        IpopMember::router(c, Ipv4Addr::new(172, 16, 0, 3)),
    ];
    let options = DeployOptions {
        brunet_arp: true,
        ..DeployOptions::udp()
    };
    ipop::deploy_ipop(&mut net, members, options);
    let mut sim = NetworkSim::new(net);
    // Let the overlay form, then register the guest IP at node B.
    sim.run_for(Duration::from_secs(8));
    let now = sim.now();
    if let Some(agent) = sim.net_mut().agent_as_mut::<IpopHostAgent>(b) {
        agent.route_for(now, guest_ip);
    }
    // First half of the transmission: packets should land on B.
    sim.run_for(Duration::from_secs(22));
    let delivered_before = sim
        .net()
        .agent_as::<IpopHostAgent>(b)
        .map(|ag| ag.metrics().guest_rx)
        .unwrap_or(0);
    // Migrate: node C now routes for the guest IP and re-publishes the
    // mapping, while B stops renewing its lease (the guest left it — were B
    // to keep refreshing, the two hosts would fight over the record).
    let now = sim.now();
    if let Some(agent) = sim.net_mut().agent_as_mut::<IpopHostAgent>(b) {
        agent.unroute_for(now, guest_ip);
    }
    let now = sim.now();
    if let Some(agent) = sim.net_mut().agent_as_mut::<IpopHostAgent>(c) {
        agent.route_for(now, guest_ip);
    }
    // The sender's Brunet-ARP cache entry (TTL 300 s) expires while packets are
    // still being sent, so the re-resolution picks up the migrated mapping.
    sim.run_for(Duration::from_secs(500));
    let delivered_after = sim
        .net()
        .agent_as::<IpopHostAgent>(c)
        .map(|ag| ag.metrics().guest_rx)
        .unwrap_or(0);
    let sender = sim
        .net()
        .agent_as::<IpopHostAgent>(a)
        .expect("sender agent");
    BrunetArpResult {
        delivered_before,
        delivered_after,
        queries: sender.metrics().arp_queries,
        tunneled: sender.metrics().tunneled_tx,
    }
}

/// Render the Brunet-ARP ablation table.
pub fn render_brunet_arp(result: &BrunetArpResult) -> Table {
    let mut table = Table::new(
        "Ablation - Brunet-ARP DHT mapping with VM migration",
        &["metric", "value"],
    );
    table.row(&[
        "packets delivered to original host".into(),
        result.delivered_before.to_string(),
    ]);
    table.row(&[
        "packets delivered to migrated host".into(),
        result.delivered_after.to_string(),
    ]);
    table.row(&[
        "DHT queries issued by the sender".into(),
        result.queries.to_string(),
    ]);
    table.row(&[
        "packets tunnelled by the sender".into(),
        result.tunneled.to_string(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brunet_arp_resolves_and_follows_migration() {
        let result = brunet_arp();
        assert!(result.queries >= 1, "at least one DHT resolution");
        assert!(
            result.delivered_before > 0,
            "guest packets reached the original host"
        );
        assert!(
            result.delivered_after > 0,
            "after migration and cache expiry, packets reach the new host"
        );
    }
}
