//! Virtual-stream workloads: ttcp-shaped bulk transfer and 1k-stream fairness.
//!
//! Two experiments over `ipop_overlay::vstream`, reported together in
//! `BENCH_streams.json`:
//!
//! * **ttcp-over-stream** — one bulk transfer between two overlay nodes over
//!   a WAN-shaped link (25 ms each way, the paper's Table III setting). The
//!   reference point is the raw-tunnel `wan_ttcp` goodput the paper measures
//!   for IPOP-TCP (673 KB/s): the stream layer adds handshake, ACK clocking
//!   and window flow control on top of the same routed fabric, and the gate
//!   is staying within 2× of that reference in either direction.
//! * **stream fairness** — 1 000 concurrent streams between uniformly spaced
//!   node pairs on the sharded deterministic simulator, all opened within a
//!   few milliseconds. Every stream must complete, and per-stream goodput
//!   must stay flat (max/min ≤ 3): with a uniform substrate (zero link
//!   jitter) the only spread left is path length, so a skewed ratio means
//!   the engine itself starves streams. The run is bit-deterministic
//!   ([`FairnessReport::trace_hash`]), like every sharded workload.

use std::collections::BTreeMap;

use ipop_overlay::address::Address;
use ipop_overlay::node::{OverlayConfig, OverlayNode};
use ipop_overlay::packets::{Endpoint, LinkMessage};
use ipop_overlay::vstream::StreamEvent;
use ipop_packet::Bytes;
use ipop_simcore::{
    Duration, ShardCtl, ShardRunOutcome, ShardWorld, ShardedSim, SimTime, StreamRng,
};

use crate::scale::{build_warm_ring, ScaleConfig, WarmRing};

/// The paper's Table III IPOP-TCP WAN goodput (KB/s) — the raw-tunnel
/// `wan_ttcp` reference the stream transfer is gated against.
pub const REFERENCE_WAN_KBPS: f64 = 673.0;

// ---------------------------------------------------------------- ttcp shape

/// Parameters of the two-node bulk transfer.
#[derive(Clone, Debug)]
pub struct TtcpStreamConfig {
    /// Bytes pushed through the stream.
    pub transfer_bytes: usize,
    /// One-way link latency (25 ms ≈ the paper's WAN RTT of 50 ms).
    pub one_way: Duration,
}

impl TtcpStreamConfig {
    /// Full run: 4 MiB, like a ttcp bulk test.
    pub fn full() -> Self {
        TtcpStreamConfig {
            transfer_bytes: 4 * 1024 * 1024,
            one_way: Duration::from_millis(25),
        }
    }

    /// CI-sized: 256 KiB over the same link.
    pub fn quick() -> Self {
        TtcpStreamConfig {
            transfer_bytes: 256 * 1024,
            ..Self::full()
        }
    }
}

/// Outcome of the two-node transfer.
#[derive(Clone, Debug)]
pub struct TtcpStreamReport {
    pub transfer_bytes: usize,
    /// Virtual seconds from stream open to the receiver's `RemoteClosed`.
    pub elapsed_s: f64,
    /// Transfer goodput in KB/s (KB = 1000 bytes, matching the paper's
    /// tables).
    pub kbps: f64,
    /// DATA segments sent / retransmitted by the sender.
    pub data_sent: u64,
    pub retransmits: u64,
    /// Bytes delivered in order at the receiver (must equal the transfer).
    pub bytes_received: u64,
}

impl TtcpStreamReport {
    /// Goodput over the paper's raw-tunnel WAN reference.
    pub fn vs_reference(&self) -> f64 {
        self.kbps / REFERENCE_WAN_KBPS
    }
}

/// Run the ttcp-shaped transfer: two overlay nodes joined by one WAN link,
/// one stream, `transfer_bytes` pushed end to end. Messages cross the link
/// in FIFO order with the configured one-way latency; both nodes run their
/// 500 ms maintenance tick (which drives the stream RTO sweep).
pub fn run_ttcp_stream(cfg: &TtcpStreamConfig) -> TtcpStreamReport {
    let eps: [Endpoint; 2] = [([10, 9, 0, 1].into(), 4001), ([10, 9, 0, 2].into(), 4001)];
    let mut rng = StreamRng::new(0x77C9, "ttcp-stream");
    let mut nodes: Vec<OverlayNode> = (0..2)
        .map(|i| {
            let addr = Address::random(&mut rng);
            let bootstrap = if i == 0 { vec![] } else { vec![eps[0]] };
            let cfg = OverlayConfig::new(addr, eps[i]).with_bootstrap(bootstrap);
            OverlayNode::new(cfg, StreamRng::new(0x77C9, &format!("ttcp-node-{i}")))
        })
        .collect();

    // The WAN link: a latency-ordered in-flight queue, FIFO per instant.
    let mut queue: BTreeMap<(SimTime, u64), (usize, LinkMessage)> = BTreeMap::new();
    let mut fifo = 0u64;
    let mut now = SimTime::ZERO;
    let flush = |nodes: &mut Vec<OverlayNode>,
                 queue: &mut BTreeMap<(SimTime, u64), (usize, LinkMessage)>,
                 fifo: &mut u64,
                 now: SimTime,
                 one_way: Duration| {
        for (i, node) in nodes.iter_mut().enumerate() {
            for (_ep, msg) in node.take_outbox() {
                queue.insert((now + one_way, *fifo), (1 - i, msg));
                *fifo += 1;
            }
        }
    };

    for n in nodes.iter_mut() {
        n.start(now);
    }
    flush(&mut nodes, &mut queue, &mut fifo, now, cfg.one_way);

    let tick_interval = Duration::from_millis(500);
    let mut next_tick = now + tick_interval;
    let step = |nodes: &mut Vec<OverlayNode>,
                queue: &mut BTreeMap<(SimTime, u64), (usize, LinkMessage)>,
                fifo: &mut u64,
                now: &mut SimTime,
                next_tick: &mut SimTime| {
        let due = queue.keys().next().map(|&(at, _)| at);
        match due {
            Some(at) if at <= *next_tick => {
                *now = at;
                let (key, (dst, msg)) = queue.pop_first().expect("non-empty");
                debug_assert_eq!(key.0, at);
                let from = eps[1 - dst];
                nodes[dst].on_message(*now, from, msg);
            }
            _ => {
                *now = *next_tick;
                *next_tick = *now + tick_interval;
                for n in nodes.iter_mut() {
                    n.on_tick(*now);
                }
            }
        }
        flush(nodes, queue, fifo, *now, cfg.one_way);
    };

    // Let the two nodes link up.
    for _ in 0..64 {
        step(&mut nodes, &mut queue, &mut fifo, &mut now, &mut next_tick);
        if nodes[0].is_connected() && nodes[1].is_connected() && queue.is_empty() {
            break;
        }
    }
    assert!(nodes[1].is_connected(), "bootstrap failed");

    // Open, push the whole payload, close — the receiver's RemoteClosed
    // marks every byte delivered.
    let payload: Vec<u8> = {
        let mut body_rng = StreamRng::new(0x77C9, "ttcp-body");
        (0..cfg.transfer_bytes)
            .map(|_| (body_rng.next_u64() & 0xFF) as u8)
            .collect()
    };
    let dst_addr = nodes[0].address();
    let opened_at = now;
    let sid = nodes[1].stream_connect(now, dst_addr);
    assert!(nodes[1].stream_send(now, dst_addr, sid, payload));
    nodes[1].stream_close(now, dst_addr, sid);
    flush(&mut nodes, &mut queue, &mut fifo, now, cfg.one_way);

    let mut bytes_received = 0u64;
    let mut done_at = None;
    let limit = now + Duration::from_secs(600);
    while done_at.is_none() && now < limit {
        step(&mut nodes, &mut queue, &mut fifo, &mut now, &mut next_tick);
        for (_, _, chunk) in nodes[0].take_stream_data() {
            bytes_received += chunk.len() as u64;
        }
        for ev in nodes[0].take_stream_events() {
            if matches!(ev, StreamEvent::RemoteClosed { stream_id, .. } if stream_id == sid) {
                done_at = Some(now);
            }
        }
    }
    let done_at = done_at.expect("transfer did not complete");
    let elapsed_s = done_at.saturating_since(opened_at).as_secs_f64();
    let sender = nodes[1].stats();
    TtcpStreamReport {
        transfer_bytes: cfg.transfer_bytes,
        elapsed_s,
        kbps: cfg.transfer_bytes as f64 / 1000.0 / elapsed_s,
        data_sent: sender.stream_data_sent,
        retransmits: sender.stream_retransmits,
        bytes_received,
    }
}

// ------------------------------------------------------------- 1k fairness

/// Parameters of the many-streams fairness run.
#[derive(Clone, Debug)]
pub struct FairnessConfig {
    /// Ring substrate. Zero `link_jitter` so every link costs exactly the
    /// base slice — fairness then measures the engine, not the dice.
    pub scale: ScaleConfig,
    /// Concurrent streams; stream `i` runs node `i % nodes` → `+stride`.
    pub streams: u32,
    /// Ring distance between each pair. Kept within the warm ring's near
    /// set (`near_per_side`), so every pair has a direct edge and even a
    /// trimmed edge falls back to the ±1 ring invariant: paths are 1–2 hops
    /// by construction, and the fairness ratio measures the engine rather
    /// than topology luck.
    pub stride: u32,
    /// Bytes per stream (≤ the receive window, so one window covers it).
    pub transfer_bytes: usize,
    /// Gap between consecutive opens (near-simultaneous).
    pub open_spacing: Duration,
}

impl FairnessConfig {
    /// Full run: 1k streams on a 2 048-node ring, 64 KiB each.
    pub fn full() -> Self {
        FairnessConfig {
            scale: ScaleConfig {
                maintenance_ticks: 4,
                probes: 0,
                link_jitter: Duration::ZERO,
                ..ScaleConfig::ring(2_048)
            },
            streams: 1_000,
            stride: 2,
            transfer_bytes: 64 * 1024,
            open_spacing: Duration::from_micros(10),
        }
    }

    /// CI-sized: the same 1k streams on a 1 024-node ring, 8 KiB each.
    pub fn quick() -> Self {
        FairnessConfig {
            scale: ScaleConfig {
                shards: 4,
                maintenance_ticks: 4,
                probes: 0,
                link_jitter: Duration::ZERO,
                ..ScaleConfig::ring(1_024)
            },
            transfer_bytes: 8 * 1024,
            ..Self::full()
        }
    }
}

/// Outcome of the fairness run.
#[derive(Clone, Debug)]
pub struct FairnessReport {
    pub nodes: u32,
    pub shards: u32,
    pub streams: u32,
    /// Streams whose receiver saw `RemoteClosed` (all bytes delivered).
    pub completed: u32,
    /// Per-stream goodput in KB/s, one entry per completed stream.
    pub goodput_kbps: Vec<f64>,
    /// Bytes delivered in order across all streams.
    pub bytes_received: u64,
    /// DATA segments retransmitted anywhere (0 on the lossless substrate).
    pub retransmits: u64,
    /// Streams that failed (retransmit budget) — must be 0.
    pub failed: u64,
    /// Simulator events executed.
    pub events: u64,
    /// Virtual seconds simulated.
    pub virtual_s: f64,
    /// FNV digest of the full execution history (determinism witness).
    pub trace_hash: u64,
    /// Whether the event queues drained before the time limit.
    pub drained: bool,
}

impl FairnessReport {
    pub fn completion_rate(&self) -> f64 {
        if self.streams == 0 {
            return f64::NAN;
        }
        self.completed as f64 / self.streams as f64
    }

    pub fn min_kbps(&self) -> f64 {
        self.goodput_kbps
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
    }

    pub fn mean_kbps(&self) -> f64 {
        crate::harness::mean(&self.goodput_kbps)
    }

    pub fn max_kbps(&self) -> f64 {
        crate::harness::fmax(&self.goodput_kbps)
    }

    /// Max/min per-stream goodput — the fairness gate (≤ 3).
    pub fn fairness_ratio(&self) -> f64 {
        let min = self.min_kbps();
        if min <= 0.0 || min.is_nan() {
            return f64::NAN;
        }
        self.max_kbps() / min
    }
}

/// Events driving the fairness world.
enum StreamEv {
    /// A link message from node `src` arriving at node `dst`.
    Deliver {
        src: u32,
        dst: u32,
        msg: LinkMessage,
    },
    /// Maintenance tick on `dst`; reschedules itself `remaining` more times.
    Tick { dst: u32, remaining: u32 },
    /// Node `src` opens a stream to node `dst`, pushes the payload and
    /// closes.
    Open { src: u32, dst: u32 },
}

/// One shard: a contiguous block of nodes plus local measurement state.
struct StreamShardWorld {
    net: ipop_netsim::ScaleNet,
    interval: Duration,
    /// The transferred body, shared across every stream.
    payload: Bytes,
    /// Global node id → overlay address (for `Open` targets).
    addrs: std::sync::Arc<Vec<Address>>,
    lo: u32,
    nodes: Vec<OverlayNode>,
    /// `(sender address, stream id, open instant)` of opens in this shard.
    opens: Vec<(Address, u64, SimTime)>,
    /// `(sender address, stream id, completion instant)` of streams fully
    /// delivered (RemoteClosed) at receivers in this shard.
    completions: Vec<(Address, u64, SimTime)>,
    /// In-order bytes delivered in this shard.
    bytes_received: u64,
}

impl StreamShardWorld {
    /// Flush node `idx`'s outbox into the event fabric and harvest stream
    /// deliveries/completions.
    fn pump(&mut self, idx: usize, now: SimTime, ctl: &mut ShardCtl<StreamEv>) {
        let src = self.lo + idx as u32;
        let node = &mut self.nodes[idx];
        for (ep, msg) in node.take_outbox() {
            let Some(dst) = self.net.node_of(&ep) else {
                continue;
            };
            let at = now + self.net.latency(src, dst);
            ctl.send(
                self.net.shard_of(dst) as usize,
                at,
                StreamEv::Deliver { src, dst, msg },
            );
        }
        for (_, _, chunk) in node.take_stream_data() {
            self.bytes_received += chunk.len() as u64;
        }
        for ev in node.take_stream_events() {
            if let StreamEvent::RemoteClosed { remote, stream_id } = ev {
                self.completions.push((remote, stream_id, now));
            }
        }
        node.take_stream_accepted(); // acceptance is implicit in this workload
    }
}

impl ShardWorld for StreamShardWorld {
    type Ev = StreamEv;

    fn handle(&mut self, now: SimTime, ev: StreamEv, ctl: &mut ShardCtl<StreamEv>) {
        match ev {
            StreamEv::Deliver { src, dst, msg } => {
                let idx = (dst - self.lo) as usize;
                let from = self.net.endpoint(src);
                self.nodes[idx].on_message(now, from, msg);
                self.pump(idx, now, ctl);
            }
            StreamEv::Tick { dst, remaining } => {
                let idx = (dst - self.lo) as usize;
                self.nodes[idx].on_tick(now);
                self.pump(idx, now, ctl);
                if remaining > 0 {
                    ctl.send_local(
                        now + self.interval,
                        StreamEv::Tick {
                            dst,
                            remaining: remaining - 1,
                        },
                    );
                }
            }
            StreamEv::Open { src, dst } => {
                let idx = (src - self.lo) as usize;
                let remote = self.addrs[dst as usize];
                let body = self.payload.clone();
                let me = self.nodes[idx].address();
                let sid = self.nodes[idx].stream_connect(now, remote);
                assert!(self.nodes[idx].stream_send(now, remote, sid, body));
                self.nodes[idx].stream_close(now, remote, sid);
                self.opens.push((me, sid, now));
                self.pump(idx, now, ctl);
            }
        }
    }
}

/// Run the many-streams fairness experiment.
pub fn run_fairness(cfg: &FairnessConfig) -> FairnessReport {
    let scfg = &cfg.scale;
    assert!(
        cfg.transfer_bytes <= ipop_overlay::vstream::DEFAULT_WINDOW as usize,
        "one receive window must cover the transfer"
    );
    let WarmRing {
        net,
        addrs,
        nodes,
        slice,
    } = build_warm_ring(scfg);
    let mut body_rng = StreamRng::new(scfg.seed, "stream-body");
    let payload = Bytes::from(
        (0..cfg.transfer_bytes)
            .map(|_| (body_rng.next_u64() & 0xFF) as u8)
            .collect::<Vec<u8>>(),
    );
    let t0 = SimTime::ZERO;

    let mut worlds = Vec::with_capacity(net.shards() as usize);
    let mut nodes = nodes.into_iter();
    for s in 0..net.shards() {
        let count = (net.shard_end(s) - net.shard_start(s)) as usize;
        worlds.push(StreamShardWorld {
            net,
            interval: scfg.maintenance_interval,
            payload: payload.clone(),
            addrs: addrs.clone(),
            lo: net.shard_start(s),
            nodes: nodes.by_ref().take(count).collect(),
            opens: Vec::new(),
            completions: Vec::new(),
            bytes_received: 0,
        });
    }
    let mut sim = ShardedSim::new(worlds, slice, scfg.parallel);

    // Maintenance ticks, staggered across one interval (drives RTO sweeps).
    let interval_ns = scfg.maintenance_interval.as_nanos();
    for i in 0..scfg.nodes {
        let at = t0 + Duration::from_nanos(i as u64 * interval_ns / scfg.nodes as u64);
        sim.schedule(
            net.shard_of(i) as usize,
            at,
            StreamEv::Tick {
                dst: i,
                remaining: scfg.maintenance_ticks,
            },
        );
    }

    // Open every stream near-simultaneously after maintenance settles.
    let open_start = t0 + Duration::from_nanos(interval_ns * (scfg.maintenance_ticks as u64 + 2));
    for i in 0..cfg.streams {
        let src = i % scfg.nodes;
        // Streams beyond one lap shift their target so repeat sources still
        // spread over distinct pairs.
        let dst = (src + cfg.stride + i / scfg.nodes) % scfg.nodes;
        sim.schedule(
            net.shard_of(src) as usize,
            open_start + cfg.open_spacing * i as u64,
            StreamEv::Open { src, dst },
        );
    }

    let limit = open_start + cfg.open_spacing * cfg.streams as u64 + Duration::from_secs(60);
    let outcome = sim.run_until(limit);

    // Harvest: match completions (at receivers) back to opens (at senders)
    // by (sender address, stream id).
    let mut opened_at: BTreeMap<(Address, u64), SimTime> = BTreeMap::new();
    for w in sim.worlds() {
        for &(src, sid, at) in &w.opens {
            opened_at.insert((src, sid), at);
        }
    }
    let mut goodput_kbps = Vec::new();
    let mut completed = 0u32;
    let mut bytes_received = 0u64;
    let mut retransmits = 0u64;
    let mut failed = 0u64;
    for w in sim.worlds() {
        for &(src, sid, at) in &w.completions {
            if let Some(&open) = opened_at.get(&(src, sid)) {
                completed += 1;
                let secs = at.saturating_since(open).as_secs_f64();
                if secs > 0.0 {
                    goodput_kbps.push(cfg.transfer_bytes as f64 / 1000.0 / secs);
                }
            }
        }
        bytes_received += w.bytes_received;
        for node in &w.nodes {
            let s = node.stats();
            retransmits += s.stream_retransmits;
            failed += s.stream_failed;
        }
    }

    FairnessReport {
        nodes: scfg.nodes,
        shards: net.shards(),
        streams: cfg.streams,
        completed,
        goodput_kbps,
        bytes_received,
        retransmits,
        failed,
        events: sim.executed(),
        virtual_s: sim.now().saturating_since(SimTime::ZERO).as_secs_f64(),
        trace_hash: sim.trace_hash(),
        drained: outcome == ShardRunOutcome::Drained,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ttcp_stream_goodput_is_within_2x_of_the_wan_reference() {
        let r = run_ttcp_stream(&TtcpStreamConfig::quick());
        assert_eq!(r.bytes_received, r.transfer_bytes as u64);
        assert_eq!(r.retransmits, 0, "lossless link: no RTO should fire");
        assert!(
            r.vs_reference() >= 0.5 && r.vs_reference() <= 2.0,
            "goodput {:.1} KB/s outside 2x of the {REFERENCE_WAN_KBPS} KB/s reference",
            r.kbps
        );
    }

    fn tiny() -> FairnessConfig {
        FairnessConfig {
            scale: ScaleConfig {
                shards: 4,
                maintenance_ticks: 3,
                probes: 0,
                link_jitter: Duration::ZERO,
                ..ScaleConfig::ring(96)
            },
            streams: 64,
            transfer_bytes: 4 * 1024,
            ..FairnessConfig::full()
        }
    }

    #[test]
    fn every_stream_completes_with_flat_goodput() {
        let r = run_fairness(&tiny());
        assert!(r.drained, "run must drain");
        assert_eq!(r.completed, r.streams, "every stream must complete");
        assert_eq!(r.bytes_received, 64 * 4 * 1024);
        assert_eq!(r.failed, 0);
        assert!(
            r.fairness_ratio() <= 3.0,
            "max/min goodput ratio {:.2} exceeds the fairness gate",
            r.fairness_ratio()
        );
    }

    #[test]
    fn fairness_runs_are_deterministic_and_mode_independent() {
        let mut seq = tiny();
        seq.scale.parallel = false;
        let a = run_fairness(&seq);
        let b = run_fairness(&tiny());
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a.completed, b.completed);
    }
}
