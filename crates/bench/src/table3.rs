//! Table III — ttcp throughput of a single overlay link across the WAN (F4 → V1)
//! for two transfer sizes, compared with the physical network.

use rayon::prelude::*;

use crate::report::{f, pct, Table};
use crate::scenarios::{fig4_ttcp, Mode};

/// One measured configuration at one transfer size.
#[derive(Clone, Debug)]
pub struct WanThroughputRow {
    /// Scenario label.
    pub scenario: &'static str,
    /// Transfer size in bytes.
    pub bytes: u64,
    /// Measured throughput in KB/s.
    pub kbps: f64,
    /// The matching physical baseline at the same size.
    pub physical_kbps: f64,
    /// Paper-reported throughput in KB/s.
    pub paper_kbps: f64,
}

/// Paper values (Table III): (mode label, size index 0=small,1=large, KBps).
const PAPER: [(&str, usize, f64); 6] = [
    ("physical", 0, 1478.0), // 1419 / 1538 across runs
    ("physical", 1, 1475.0),
    ("IPOP-TCP", 0, 673.0),
    ("IPOP-TCP", 1, 688.0),
    ("IPOP-UDP", 0, 1239.0),
    ("IPOP-UDP", 1, 1150.0),
];

/// Run Table III with the two given transfer sizes (paper: 13.09 MB and 92.97 MB).
pub fn run(sizes: [u64; 2]) -> Vec<WanThroughputRow> {
    let mut scenarios = Vec::new();
    for (si, &bytes) in sizes.iter().enumerate() {
        for mode in [Mode::Physical, Mode::IpopTcp, Mode::IpopUdp] {
            scenarios.push((si, bytes, mode));
        }
    }
    let results: Vec<(usize, u64, Mode, f64)> = scenarios
        .into_par_iter()
        .map(|(si, bytes, mode)| (si, bytes, mode, fig4_ttcp(mode, 3, 4, bytes, 0x7ab1e3).kbps))
        .collect();
    results
        .iter()
        .map(|&(si, bytes, mode, kbps)| {
            let physical_kbps = results
                .iter()
                .find(|&&(s, _, m, _)| s == si && m == Mode::Physical)
                .map(|&(_, _, _, k)| k)
                .unwrap_or(0.0);
            let paper_kbps = PAPER
                .iter()
                .find(|(m, s, _)| *m == mode.label() && *s == si)
                .map(|(_, _, v)| *v)
                .unwrap_or(0.0);
            WanThroughputRow {
                scenario: mode.label(),
                bytes,
                kbps,
                physical_kbps,
                paper_kbps,
            }
        })
        .collect()
}

/// Render rows as the printed table.
pub fn render(rows: &[WanThroughputRow]) -> Table {
    let mut table = Table::new(
        "Table III - WAN ttcp throughput (F4 -> V1)",
        &[
            "scenario",
            "size (MB)",
            "throughput (KB/s)",
            "rel. to physical",
            "paper (KB/s)",
        ],
    );
    for row in rows {
        table.row(&[
            row.scenario.to_string(),
            f(row.bytes as f64 / 1e6, 2),
            f(row.kbps, 0),
            pct(row.kbps, row.physical_kbps),
            f(row.paper_kbps, 0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table3_shape_udp_beats_tcp_over_wan() {
        // Scaled-down sizes; the crossover that matters: on the WAN, IPOP-UDP
        // recovers a much larger fraction of the physical bandwidth than IPOP-TCP.
        let rows = run([1_500_000, 3_000_000]);
        let get = |s: &str, size: u64| {
            rows.iter()
                .find(|r| r.scenario == s && r.bytes == size)
                .unwrap()
                .kbps
        };
        let phys = get("physical", 3_000_000);
        let udp = get("IPOP-UDP", 3_000_000);
        let tcp = get("IPOP-TCP", 3_000_000);
        assert!(phys > 700.0 && phys < 1_800.0, "physical WAN {phys} KB/s");
        assert!(
            udp > tcp,
            "IPOP-UDP ({udp}) should beat IPOP-TCP ({tcp}) over the WAN"
        );
        assert!(
            udp > 0.45 * phys,
            "IPOP-UDP recovers much of the WAN bandwidth: {udp} vs {phys}"
        );
    }
}
