//! Shared scenario builders: each function stands up a physical topology, deploys
//! the workload (baseline or IPOP) and runs the simulation to completion.

use std::net::Ipv4Addr;

use ipop::prelude::*;
use ipop::{IpopHostAgent, PlainHostAgent};
use ipop_apps::lss::{LssFileServer, LssMaster, LssParams, LssReport, LssWorker};
use ipop_apps::ping::{PingApp, PingReport};
use ipop_apps::ttcp::{TtcpApp, TtcpReport};
use ipop_netsim::{fig4_testbed, planetlab, HostId, Network, NetworkSim};
use ipop_simcore::{Duration, SimTime};

/// How the workload reaches the other endpoint.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Directly on the physical network (the paper's "physical" rows).
    Physical,
    /// Over IPOP with Brunet in UDP mode.
    IpopUdp,
    /// Over IPOP with Brunet in TCP mode.
    IpopTcp,
}

impl Mode {
    /// Human-readable label matching the paper's row names.
    pub fn label(self) -> &'static str {
        match self {
            Mode::Physical => "physical",
            Mode::IpopUdp => "IPOP-UDP",
            Mode::IpopTcp => "IPOP-TCP",
        }
    }

    fn deploy_options(self) -> DeployOptions {
        match self {
            Mode::IpopUdp => DeployOptions::udp(),
            Mode::IpopTcp => DeployOptions::tcp(),
            Mode::Physical => DeployOptions::udp(),
        }
    }
}

/// The virtual IPs assigned to the Fig. 4 machines (following the figure's labels).
pub fn fig4_virtual_ips() -> [(usize, Ipv4Addr); 6] {
    [
        (0, Ipv4Addr::new(172, 16, 0, 3)),  // F1
        (1, Ipv4Addr::new(172, 16, 0, 4)),  // F2
        (2, Ipv4Addr::new(172, 16, 0, 51)), // F3
        (3, Ipv4Addr::new(172, 16, 0, 2)),  // F4
        (4, Ipv4Addr::new(172, 16, 0, 18)), // V1
        (5, Ipv4Addr::new(172, 16, 0, 20)), // L1
    ]
}

/// Time given to the overlay to self-configure before measurements start.
pub const WARMUP: Duration = Duration::from_secs(20);

fn run_until<F>(sim: &mut NetworkSim, limit: Duration, mut done: F)
where
    F: FnMut(&Network) -> bool,
{
    let deadline = SimTime::ZERO + limit;
    loop {
        if done(sim.net()) || sim.now() >= deadline {
            return;
        }
        let step = Duration::from_secs(1).min(deadline - sim.now());
        let before_events = sim.events_executed();
        let before_now = sim.now();
        sim.run_for(step);
        if sim.events_executed() == before_events && sim.now() == before_now {
            // The event queue drained without reaching the predicate: nothing more
            // will ever happen, so stop instead of spinning.
            return;
        }
    }
}

// --------------------------------------------------------------------------- ping

/// Run a ping measurement between two Fig. 4 hosts.
///
/// `src`/`dst` index the testbed hosts in the order F1, F2, F3, F4, V1, L1.
pub fn fig4_ping(mode: Mode, src: usize, dst: usize, count: u32, seed: u64) -> PingReport {
    let mut net = Network::new(seed);
    let tb = fig4_testbed(&mut net);
    let hosts = tb.all();
    let interval = Duration::from_millis(20);
    match mode {
        Mode::Physical => {
            let target = tb.addrs[dst];
            let app = PingApp::new(target, count, interval);
            ipop::deploy_plain(&mut net, hosts[src], Box::new(app));
            ipop::deploy_plain(&mut net, hosts[dst], Box::new(ipop::NullApp));
        }
        Mode::IpopUdp | Mode::IpopTcp => {
            let vips = fig4_virtual_ips();
            let target = vips[dst].1;
            let members = vips
                .iter()
                .map(|&(i, vip)| {
                    if i == src {
                        IpopMember::new(
                            hosts[i],
                            vip,
                            Box::new(
                                PingApp::new(target, count, interval).with_start_delay(WARMUP),
                            ),
                        )
                    } else {
                        IpopMember::router(hosts[i], vip)
                    }
                })
                .collect();
            ipop::deploy_ipop(&mut net, members, mode.deploy_options());
        }
    }
    let src_host = hosts[src];
    let mut sim = NetworkSim::new(net);
    let limit = Duration::from_secs(120) + interval * u64::from(count);
    run_until(&mut sim, limit, |net| ping_finished(net, src_host, mode));
    extract_ping(sim.net(), src_host, mode)
}

fn ping_finished(net: &Network, host: HostId, mode: Mode) -> bool {
    match mode {
        Mode::Physical => net
            .agent_as::<PlainHostAgent>(host)
            .and_then(|a| a.app_as::<PingApp>())
            .is_some_and(|p| p.finished()),
        _ => net
            .agent_as::<IpopHostAgent>(host)
            .and_then(|a| a.app_as::<PingApp>())
            .is_some_and(|p| p.finished()),
    }
}

fn extract_ping(net: &Network, host: HostId, mode: Mode) -> PingReport {
    match mode {
        Mode::Physical => net
            .agent_as::<PlainHostAgent>(host)
            .and_then(|a| a.app_as::<PingApp>())
            .map(|p| p.report().clone())
            .unwrap_or_default(),
        _ => net
            .agent_as::<IpopHostAgent>(host)
            .and_then(|a| a.app_as::<PingApp>())
            .map(|p| p.report().clone())
            .unwrap_or_default(),
    }
}

// --------------------------------------------------------------------------- ttcp

/// Run a ttcp bulk transfer between two Fig. 4 hosts and return the sender report.
pub fn fig4_ttcp(mode: Mode, src: usize, dst: usize, bytes: u64, seed: u64) -> TtcpReport {
    let mut net = Network::new(seed);
    let tb = fig4_testbed(&mut net);
    let hosts = tb.all();
    const PORT: u16 = 5201;
    match mode {
        Mode::Physical => {
            let target = tb.addrs[dst];
            ipop::deploy_plain(
                &mut net,
                hosts[src],
                Box::new(TtcpApp::sender(target, PORT, bytes)),
            );
            ipop::deploy_plain(&mut net, hosts[dst], Box::new(TtcpApp::receiver(PORT)));
        }
        Mode::IpopUdp | Mode::IpopTcp => {
            let vips = fig4_virtual_ips();
            let target = vips[dst].1;
            let members = vips
                .iter()
                .map(|&(i, vip)| {
                    if i == src {
                        IpopMember::new(
                            hosts[i],
                            vip,
                            Box::new(TtcpApp::sender(target, PORT, bytes).with_start_delay(WARMUP)),
                        )
                    } else if i == dst {
                        IpopMember::new(hosts[i], vip, Box::new(TtcpApp::receiver(PORT)))
                    } else {
                        IpopMember::router(hosts[i], vip)
                    }
                })
                .collect();
            ipop::deploy_ipop(&mut net, members, mode.deploy_options());
        }
    }
    let src_host = hosts[src];
    let mut sim = NetworkSim::new(net);
    // Generous limit: the slowest configuration (IPOP-TCP over the WAN, 93 MB at a
    // few hundred KB/s) needs several hundred virtual seconds.
    let limit = Duration::from_secs(1200);
    run_until(&mut sim, limit, |net| ttcp_finished(net, src_host, mode));
    extract_ttcp(sim.net(), src_host, mode)
}

fn ttcp_finished(net: &Network, host: HostId, mode: Mode) -> bool {
    match mode {
        Mode::Physical => net
            .agent_as::<PlainHostAgent>(host)
            .and_then(|a| a.app_as::<TtcpApp>())
            .is_some_and(|p| p.finished()),
        _ => net
            .agent_as::<IpopHostAgent>(host)
            .and_then(|a| a.app_as::<TtcpApp>())
            .is_some_and(|p| p.finished()),
    }
}

fn extract_ttcp(net: &Network, host: HostId, mode: Mode) -> TtcpReport {
    match mode {
        Mode::Physical => net
            .agent_as::<PlainHostAgent>(host)
            .and_then(|a| a.app_as::<TtcpApp>())
            .map(|p| p.report())
            .unwrap_or_default(),
        _ => net
            .agent_as::<IpopHostAgent>(host)
            .and_then(|a| a.app_as::<TtcpApp>())
            .map(|p| p.report())
            .unwrap_or_default(),
    }
}

// ---------------------------------------------------------------------------- LSS

/// Run the LSS case study over an IPOP-UDP virtual network on the Fig. 4 testbed.
///
/// The NFS file server runs on F4, the master on F3 and `workers` compute nodes on
/// F1, F2, V1, L1 (in that order), matching the paper's "compute nodes across three
/// firewalled domains with a central file server" setup.
pub fn fig4_lss(workers: usize, params: LssParams, seed: u64) -> LssReport {
    assert!(
        (1..=4).contains(&workers),
        "the testbed provides up to 4 compute nodes"
    );
    let mut net = Network::new(seed);
    let tb = fig4_testbed(&mut net);
    let vips = fig4_virtual_ips();
    let nfs_vip = vips[3].1; // F4
    let master_vip = vips[2].1; // F3
    let worker_order = [0usize, 1, 4, 5]; // F1, F2, V1, L1
    let mut members = vec![
        IpopMember::new(tb.f4, nfs_vip, Box::new(LssFileServer::new(params.clone()))),
        IpopMember::new(
            tb.f3,
            master_vip,
            Box::new(LssMaster::new(params.clone(), workers)),
        ),
    ];
    for &w in worker_order.iter().take(workers) {
        members.push(IpopMember::new(
            tb.all()[w],
            vips[w].1,
            Box::new(LssWorker::new(params.clone(), master_vip, nfs_vip)),
        ));
    }
    // Remaining testbed machines still join the overlay as routers.
    for &w in worker_order.iter().skip(workers) {
        members.push(IpopMember::router(tb.all()[w], vips[w].1));
    }
    ipop::deploy_ipop(&mut net, members, DeployOptions::udp());
    let master_host = tb.f3;
    let mut sim = NetworkSim::new(net);
    run_until(&mut sim, Duration::from_secs(6_000), |net| {
        net.agent_as::<IpopHostAgent>(master_host)
            .and_then(|a| a.app_as::<LssMaster>())
            .is_some_and(|m| m.finished())
    });
    sim.net()
        .agent_as::<IpopHostAgent>(master_host)
        .and_then(|a| a.app_as::<LssMaster>())
        .map(|m| m.report().clone())
        .unwrap_or_default()
}

// ---------------------------------------------------------------- Planet-Lab ping

/// Result of the Planet-Lab experiment (Fig. 5).
#[derive(Clone, Debug, Default)]
pub struct PlanetLabResult {
    /// RTTs in milliseconds.
    pub rtts_ms: Vec<f64>,
    /// Requests lost.
    pub lost: u32,
    /// Average number of overlay forwards per delivered tunnel packet (≈ hops − 1).
    pub avg_forwards: f64,
}

/// Ping across an overlay deployed on `nodes` Planet-Lab-like machines with CPU
/// load `load`. Source and destination are two of the (loaded) Planet-Lab nodes
/// themselves, so every measured packet pays the contended user-level processing
/// the paper identifies as the dominant cost — regardless of whether the overlay
/// happens to have formed a direct shortcut between the endpoints.
pub fn planetlab_ping(nodes: usize, load: f64, count: u32, seed: u64) -> PlanetLabResult {
    assert!(nodes >= 4, "the Planet-Lab scenario needs at least 4 nodes");
    let mut net = Network::new(seed);
    let plab = planetlab(&mut net, nodes, load, seed);

    let vip_of = |i: usize| Ipv4Addr::new(172, 16, 2 + (i / 200) as u8, (i % 200 + 1) as u8);
    // Measurement endpoints: two overlay members well apart in the join order
    // (the first node is everyone's bootstrap and stays a plain router).
    let src_idx = 1;
    let dst_idx = nodes / 2;
    let src_host = plab.nodes[src_idx];

    let mut members = Vec::new();
    for (i, &h) in plab.nodes.iter().enumerate() {
        if i == src_idx {
            members.push(IpopMember::new(
                h,
                vip_of(i),
                Box::new(
                    PingApp::new(vip_of(dst_idx), count, Duration::from_millis(100))
                        .with_start_delay(Duration::from_secs(40))
                        .with_timeout(Duration::from_secs(20)),
                ),
            ));
        } else {
            members.push(IpopMember::router(h, vip_of(i)));
        }
    }
    // The paper's Planet-Lab overlay ran Brunet over TCP.
    ipop::deploy_ipop(&mut net, members, DeployOptions::tcp());

    let mut sim = NetworkSim::new(net);
    let limit = Duration::from_secs(120) + Duration::from_millis(100) * u64::from(count) * 4;
    run_until(&mut sim, limit, |net| {
        net.agent_as::<IpopHostAgent>(src_host)
            .and_then(|a| a.app_as::<PingApp>())
            .is_some_and(|p| p.finished())
    });
    let report = extract_ping(sim.net(), src_host, Mode::IpopTcp);
    // Hop statistics: total forwards vs tunnel deliveries across the whole overlay.
    let mut forwards = 0u64;
    let mut tunneled = 0u64;
    for host in plab.nodes.iter().copied() {
        if let Some(agent) = sim.net().agent_as::<IpopHostAgent>(host) {
            forwards += agent.overlay_stats().forwarded;
            tunneled += agent.metrics().tunneled_rx;
        }
    }
    PlanetLabResult {
        rtts_ms: report.rtts_ms,
        lost: report.lost,
        avg_forwards: if tunneled == 0 {
            0.0
        } else {
            forwards as f64 / tunneled as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_physical_lan_ping_is_fast() {
        let report = fig4_ping(Mode::Physical, 1, 3, 10, 1);
        assert_eq!(report.rtts_ms.len(), 10);
        assert!(
            report.summary().mean < 2.5,
            "mean {}",
            report.summary().mean
        );
    }

    #[test]
    fn fig4_ipop_udp_lan_ping_has_user_level_overhead() {
        let report = fig4_ping(Mode::IpopUdp, 1, 3, 10, 2);
        assert!(
            report.rtts_ms.len() >= 8,
            "most pings answered, got {}",
            report.rtts_ms.len()
        );
        let mean = report.summary().mean;
        assert!(mean > 3.0 && mean < 25.0, "IPOP LAN mean {mean} ms");
    }

    #[test]
    fn fig4_virtual_ips_are_unique() {
        let vips = fig4_virtual_ips();
        let set: std::collections::BTreeSet<_> = vips.iter().map(|(_, ip)| ip).collect();
        assert_eq!(set.len(), 6);
    }
}
