//! Property-based tests: every wire format must round-trip byte-exactly for
//! arbitrary field values, and SHA-1 must be split-invariant.

use std::net::Ipv4Addr;

use proptest::prelude::*;

use ipop_packet::arp::ArpPacket;
use ipop_packet::checksum::{internet_checksum, verify};
use ipop_packet::ether::{EthernetFrame, MacAddr};
use ipop_packet::icmp::IcmpPacket;
use ipop_packet::ipv4::{Ipv4Packet, Ipv4Payload};
use ipop_packet::sha1::Sha1;
use ipop_packet::tcp::{TcpFlags, TcpSegment};
use ipop_packet::udp::UdpDatagram;
use ipop_packet::Bytes;

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(|o| Ipv4Addr::new(o[0], o[1], o[2], o[3]))
}

proptest! {
    #[test]
    fn udp_round_trips(src in arb_ip(), dst in arb_ip(), sp: u16, dp: u16,
                       payload in proptest::collection::vec(any::<u8>(), 0..2000)) {
        let dg = UdpDatagram::new(sp, dp, payload);
        let parsed = UdpDatagram::from_bytes(&dg.to_bytes(src, dst), src, dst).unwrap();
        prop_assert_eq!(parsed, dg);
    }

    #[test]
    fn tcp_round_trips(src in arb_ip(), dst in arb_ip(), sp: u16, dp: u16, seq: u32, ack: u32,
                       window: u16, mss in proptest::option::of(536u16..9000),
                       syn: bool, ackf: bool, fin: bool, psh: bool,
                       payload in proptest::collection::vec(any::<u8>(), 0..1600)) {
        let seg = TcpSegment {
            src_port: sp, dst_port: dp, seq, ack,
            flags: TcpFlags { syn, ack: ackf, fin, rst: false, psh },
            window, mss, payload,
        };
        let parsed = TcpSegment::from_bytes(&seg.to_bytes(src, dst), src, dst).unwrap();
        prop_assert_eq!(parsed, seg);
    }

    #[test]
    fn icmp_and_full_ipv4_round_trip(src in arb_ip(), dst in arb_ip(), ident: u16, seqno: u16,
                                     ttl in 1u8..=255,
                                     payload in proptest::collection::vec(any::<u8>(), 0..1400)) {
        let mut pkt = Ipv4Packet::new(src, dst,
            Ipv4Payload::Icmp(IcmpPacket::echo_request(ident, seqno, payload)));
        pkt.header.ttl = ttl;
        let parsed = Ipv4Packet::from_bytes(&pkt.to_bytes()).unwrap();
        prop_assert_eq!(parsed, pkt);
    }

    #[test]
    fn bytes_views_encode_identically_to_owned_vectors(
        src in arb_ip(), dst in arb_ip(), sp: u16, dp: u16,
        prefix in proptest::collection::vec(any::<u8>(), 0..64),
        payload in proptest::collection::vec(any::<u8>(), 0..1400),
        suffix in proptest::collection::vec(any::<u8>(), 0..64),
        proto in 100u8..250,
    ) {
        // A `Bytes` that is a *view into a larger shared buffer* must encode
        // byte-identically to an owned `Vec` with the same contents, for every
        // payload position that carries it.
        let mut big = prefix.clone();
        big.extend_from_slice(&payload);
        big.extend_from_slice(&suffix);
        let shared = Bytes::from(big).slice(prefix.len()..prefix.len() + payload.len());
        prop_assert_eq!(&shared, &payload);

        let udp_owned = Ipv4Packet::new(src, dst,
            Ipv4Payload::Udp(UdpDatagram::new(sp, dp, payload.clone())));
        let udp_shared = Ipv4Packet::new(src, dst,
            Ipv4Payload::Udp(UdpDatagram::new(sp, dp, shared.clone())));
        prop_assert_eq!(udp_owned.to_bytes(), udp_shared.to_bytes());
        let parsed = Ipv4Packet::from_bytes(&udp_shared.to_bytes()).unwrap();
        prop_assert_eq!(parsed, udp_owned);

        let raw_owned = Ipv4Packet::new(src, dst,
            Ipv4Payload::Raw(proto, payload.clone().into()));
        let raw_shared = Ipv4Packet::new(src, dst, Ipv4Payload::Raw(proto, shared));
        prop_assert_eq!(raw_owned.to_bytes(), raw_shared.to_bytes());
        let parsed = Ipv4Packet::from_bytes(&raw_shared.to_bytes()).unwrap();
        prop_assert_eq!(parsed, raw_owned);
    }

    #[test]
    fn ethernet_frame_round_trips(src: [u8; 6], dst: [u8; 6], sender in arb_ip(), target in arb_ip()) {
        let frame = EthernetFrame::arp(MacAddr(src), MacAddr(dst),
            ArpPacket::request(MacAddr(src), sender, target));
        let parsed = EthernetFrame::from_bytes(&frame.to_bytes()).unwrap();
        prop_assert_eq!(parsed, frame);
    }

    #[test]
    fn serialized_ipv4_always_verifies_and_reports_its_length(
        src in arb_ip(), dst in arb_ip(),
        payload in proptest::collection::vec(any::<u8>(), 0..1400), proto in 0u8..=255) {
        let pkt = Ipv4Packet::new(src, dst, Ipv4Payload::Raw(proto, payload.into()));
        let bytes = pkt.to_bytes();
        prop_assert_eq!(bytes.len(), pkt.wire_len());
        // Header checksum verifies over the first 20 bytes.
        prop_assert!(verify(&bytes[..20]));
    }

    #[test]
    fn checksum_detects_single_byte_corruption(data in proptest::collection::vec(any::<u8>(), 2..256),
                                               flip in 0usize..255, bit in 0u8..8) {
        // The checksum field always sits on a 16-bit word boundary in real
        // headers; pad odd-length data as RFC 1071 prescribes before appending.
        let mut data = data;
        if data.len() % 2 == 1 {
            data.push(0);
        }
        let mut with_sum = data.clone();
        let sum = internet_checksum(&data);
        with_sum.extend_from_slice(&sum.to_be_bytes());
        prop_assert!(verify(&with_sum));
        let idx = flip % data.len();
        with_sum[idx] ^= 1 << bit;
        prop_assert!(!verify(&with_sum));
    }

    #[test]
    fn sha1_is_split_invariant(data in proptest::collection::vec(any::<u8>(), 0..4096),
                               split in 0usize..4096) {
        let split = split.min(data.len());
        let mut h = Sha1::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha1::digest(&data));
    }
}
