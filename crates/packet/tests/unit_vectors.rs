//! Deterministic round-trip and known-answer tests for every wire format.
//!
//! The property tests in `proptest_roundtrip.rs` cover arbitrary field values;
//! these fixed vectors pin down concrete encodings (including RFC 1071 checksum
//! examples and the FIPS 180-1 SHA-1 vectors) so a codec regression fails with
//! a readable diff rather than a shrunk random case.

use std::net::Ipv4Addr;

use ipop_packet::arp::{ArpOperation, ArpPacket};
use ipop_packet::checksum::{internet_checksum, pseudo_header_sum, sum_words, verify};
use ipop_packet::ether::{EtherType, EthernetFrame, MacAddr};
use ipop_packet::icmp::{IcmpPacket, IcmpType};
use ipop_packet::ipv4::{Ipv4Packet, Ipv4Payload, Protocol};
use ipop_packet::sha1::Sha1;
use ipop_packet::tcp::{TcpFlags, TcpSegment};
use ipop_packet::udp::UdpDatagram;

const SRC: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 2);
const DST: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 18);

#[test]
fn ether_ipv4_round_trips() {
    let icmp = IcmpPacket::echo_request(0x1234, 7, b"ping payload".to_vec());
    let pkt = Ipv4Packet::new(SRC, DST, Ipv4Payload::Icmp(icmp));
    let frame = EthernetFrame::ipv4(MacAddr::local(1), MacAddr::local(2), pkt);
    assert_eq!(frame.ether_type(), EtherType::Ipv4);
    let bytes = frame.to_bytes();
    assert_eq!(bytes.len(), frame.wire_len());
    assert_eq!(EthernetFrame::from_bytes(&bytes).unwrap(), frame);
}

#[test]
fn ether_arp_round_trips() {
    let request = ArpPacket::request(MacAddr::local(9), SRC, DST);
    assert_eq!(request.operation, ArpOperation::Request);
    let frame = EthernetFrame::arp(MacAddr::local(9), MacAddr([0xFF; 6]), request.clone());
    assert_eq!(frame.ether_type(), EtherType::Arp);
    assert_eq!(EthernetFrame::from_bytes(&frame.to_bytes()).unwrap(), frame);

    let reply = ArpPacket::reply_to(&request, MacAddr::local(7), DST);
    assert_eq!(reply.operation, ArpOperation::Reply);
    assert_eq!(ArpPacket::from_bytes(&reply.to_bytes()).unwrap(), reply);
}

#[test]
fn ipv4_header_fields_survive_the_wire() {
    let mut pkt = Ipv4Packet::new(SRC, DST, Ipv4Payload::Raw(250, vec![1, 2, 3, 4, 5].into()));
    pkt.header.ttl = 3;
    let parsed = Ipv4Packet::from_bytes(&pkt.to_bytes()).unwrap();
    assert_eq!(parsed, pkt);
    assert_eq!(parsed.header.ttl, 3);
    assert_eq!(parsed.src(), SRC);
    assert_eq!(parsed.dst(), DST);
    // The serialized header checksum must verify as a unit.
    assert!(verify(&pkt.to_bytes()[..20]));
}

#[test]
fn icmp_round_trips_and_reply_mirrors_request() {
    let request = IcmpPacket::echo_request(77, 3, vec![0xAB; 56]);
    assert!(request.is_echo_request());
    assert_eq!(
        IcmpPacket::from_bytes(&request.to_bytes()).unwrap(),
        request
    );
    let reply = IcmpPacket::echo_reply(&request);
    assert!(reply.is_echo_reply());
    assert_eq!(reply.icmp_type, IcmpType::EchoReply);
    assert_eq!(reply.identifier, 77);
    assert_eq!(reply.sequence, 3);
    assert_eq!(IcmpPacket::from_bytes(&reply.to_bytes()).unwrap(), reply);
}

#[test]
fn udp_round_trips_inside_ipv4() {
    let dg = UdpDatagram::new(4001, 4001, b"overlay message bytes".to_vec());
    assert_eq!(
        UdpDatagram::from_bytes(&dg.to_bytes(SRC, DST), SRC, DST).unwrap(),
        dg
    );
    let pkt = Ipv4Packet::new(SRC, DST, Ipv4Payload::Udp(dg));
    assert_eq!(pkt.protocol(), Protocol::Udp);
    assert_eq!(Ipv4Packet::from_bytes(&pkt.to_bytes()).unwrap(), pkt);
}

#[test]
fn tcp_round_trips_inside_ipv4() {
    let seg = TcpSegment {
        src_port: 5001,
        dst_port: 5201,
        seq: 0xDEAD_BEEF,
        ack: 0x0BAD_F00D,
        flags: TcpFlags {
            syn: true,
            ack: true,
            fin: false,
            rst: false,
            psh: false,
        },
        window: 65_535,
        mss: Some(1400),
        payload: vec![],
    };
    assert_eq!(
        TcpSegment::from_bytes(&seg.to_bytes(SRC, DST), SRC, DST).unwrap(),
        seg
    );
    let data = TcpSegment::data(5001, 5201, 1000, 2000, vec![0x55; 1400]);
    let pkt = Ipv4Packet::new(SRC, DST, Ipv4Payload::Tcp(data));
    assert_eq!(pkt.protocol(), Protocol::Tcp);
    assert_eq!(Ipv4Packet::from_bytes(&pkt.to_bytes()).unwrap(), pkt);
}

// --------------------------------------------------------------- RFC 1071

#[test]
fn rfc1071_worked_example() {
    // RFC 1071 section 3, the canonical worked example: summing the words
    // 0x0001 0xf203 0xf4f5 0xf6f7 gives 0x2ddf0 → folded 0xddf2 → complement.
    let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
    assert_eq!(sum_words(0, &data), 0x2ddf0);
    assert_eq!(internet_checksum(&data), !0xddf2u16);
    let mut with_sum = data.to_vec();
    with_sum.extend_from_slice(&internet_checksum(&data).to_be_bytes());
    assert!(verify(&with_sum));
}

#[test]
fn rfc1071_byte_order_independence() {
    // RFC 1071 section 2(B): the sum of 16-bit words is independent of which
    // byte within the word is "first" — swapping every byte pair swaps the
    // bytes of the checksum but nothing else.
    let data = [0x12u8, 0x34, 0x56, 0x78, 0x9a, 0xbc];
    let swapped = [0x34u8, 0x12, 0x78, 0x56, 0xbc, 0x9a];
    assert_eq!(
        internet_checksum(&data).swap_bytes(),
        internet_checksum(&swapped)
    );
}

#[test]
fn known_ipv4_header_checksum_b861() {
    // The classic Wikipedia/RFC-tutorial IPv4 header: checksum 0xB861.
    let header = [
        0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00,
        0x01, 0xc0, 0xa8, 0x00, 0xc7,
    ];
    assert_eq!(internet_checksum(&header), 0xb861);
}

#[test]
fn pseudo_header_sum_matches_manual_total() {
    let acc = pseudo_header_sum([192, 168, 0, 1], [192, 168, 0, 199], 6, 40);
    let expected = 0xc0a8u32 + 0x0001 + 0xc0a8 + 0x00c7 + 6 + 40;
    assert_eq!(acc, expected);
}

// ------------------------------------------------------------- SHA-1 (FIPS 180-1)

fn hex(digest: [u8; 20]) -> String {
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn sha1_fips_vector_abc() {
    assert_eq!(
        hex(Sha1::digest(b"abc")),
        "a9993e364706816aba3e25717850c26c9cd0d89d"
    );
}

#[test]
fn sha1_fips_vector_two_block_message() {
    assert_eq!(
        hex(Sha1::digest(
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        )),
        "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    );
}

#[test]
fn sha1_empty_message() {
    assert_eq!(
        hex(Sha1::digest(b"")),
        "da39a3ee5e6b4b0d3255bfef95601890afd80709"
    );
}

#[test]
fn sha1_streaming_matches_one_shot() {
    let mut h = Sha1::new();
    h.update(b"abc");
    h.update(b"dbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
    assert_eq!(
        hex(h.finalize()),
        "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    );
}
