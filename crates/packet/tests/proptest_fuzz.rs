//! Deterministic in-tree fuzzing of the packet-format decoders. Two corpora
//! per wire format: pure byte soup, and valid wire images put through the
//! mutations a hostile or corrupting link actually performs (byte flips and
//! truncation). Every input must decode to a value or a typed
//! [`ipop_packet::ParseError`] — never panic — and whatever decodes must
//! re-encode without panicking.

use std::net::Ipv4Addr;

use proptest::prelude::*;

use ipop_packet::arp::ArpPacket;
use ipop_packet::ether::{EthernetFrame, MacAddr};
use ipop_packet::icmp::IcmpPacket;
use ipop_packet::ipv4::{Ipv4Packet, Ipv4Payload};
use ipop_packet::tcp::{TcpFlags, TcpSegment};
use ipop_packet::udp::UdpDatagram;

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(|o| Ipv4Addr::new(o[0], o[1], o[2], o[3]))
}

/// Decode `data` through every parser in the crate; none may panic, and
/// every successful parse must re-encode without panicking.
fn decode_everything(data: &[u8], src: Ipv4Addr, dst: Ipv4Addr) {
    if let Ok(frame) = EthernetFrame::from_bytes(data) {
        let _ = frame.to_bytes();
    }
    if let Ok(arp) = ArpPacket::from_bytes(data) {
        let _ = arp.to_bytes();
    }
    if let Ok(pkt) = Ipv4Packet::from_bytes(data) {
        let _ = pkt.to_bytes();
    }
    if let Ok(icmp) = IcmpPacket::from_bytes(data) {
        let _ = icmp.to_bytes();
    }
    if let Ok(udp) = UdpDatagram::from_bytes(data, src, dst) {
        let _ = udp.to_bytes(src, dst);
    }
    if let Ok(tcp) = TcpSegment::from_bytes(data, src, dst) {
        let _ = tcp.to_bytes(src, dst);
    }
}

/// One valid wire image from every format family, with arbitrary field
/// values: the seed corpus the mutations start from. Returned alongside a
/// closure-friendly tag so failures name the family.
fn corpus(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    mac: [u8; 6],
    ident: u16,
    payload: &[u8],
) -> Vec<(&'static str, Vec<u8>)> {
    let tcp = TcpSegment {
        src_port: ident,
        dst_port: ident.wrapping_add(1),
        seq: u32::from(ident) * 7,
        ack: u32::from(ident) * 11,
        flags: TcpFlags {
            syn: ident % 2 == 0,
            ack: true,
            fin: false,
            rst: false,
            psh: ident % 3 == 0,
        },
        window: ident,
        mss: Some(1460),
        payload: payload.to_vec(),
    };
    vec![
        (
            "ether+arp",
            EthernetFrame::arp(
                MacAddr(mac),
                MacAddr([0xff; 6]),
                ArpPacket::request(MacAddr(mac), src, dst),
            )
            .to_bytes(),
        ),
        (
            "ipv4+icmp",
            Ipv4Packet::new(
                src,
                dst,
                Ipv4Payload::Icmp(IcmpPacket::echo_request(ident, ident, payload.to_vec())),
            )
            .to_bytes(),
        ),
        (
            "ipv4+udp",
            Ipv4Packet::new(
                src,
                dst,
                Ipv4Payload::Udp(UdpDatagram::new(ident, ident, payload.to_vec())),
            )
            .to_bytes(),
        ),
        ("tcp", tcp.to_bytes(src, dst)),
    ]
}

proptest! {
    #[test]
    fn byte_soup_never_panics_any_packet_decoder(
        src in arb_ip(), dst in arb_ip(),
        data in proptest::collection::vec(any::<u8>(), 0..1600),
    ) {
        decode_everything(&data, src, dst);
    }

    #[test]
    fn mutated_wire_images_never_panic_the_packet_decoders(
        src in arb_ip(), dst in arb_ip(), mac: [u8; 6], ident: u16,
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        flip_at: [usize; 3],
        flip_mask in proptest::collection::vec(1u8..=255, 3..4),
        cut: usize,
    ) {
        for (family, image) in corpus(src, dst, mac, ident, &payload) {
            // Byte flips anywhere in the image (what a corrupting link does).
            let mut flipped = image.clone();
            for (idx, x) in flip_at.iter().zip(&flip_mask) {
                let i = idx % flipped.len().max(1);
                if let Some(byte) = flipped.get_mut(i) {
                    *byte ^= *x;
                }
            }
            decode_everything(&flipped, src, dst);

            // Truncation at an arbitrary point (what loss mid-frame does).
            let cut_at = cut % (image.len() + 1);
            decode_everything(&image[..cut_at], src, dst);

            // The untouched image must still parse through its own family's
            // decoder (flip/cut coverage means nothing on a stale corpus).
            let ok = match family {
                "ether+arp" => EthernetFrame::from_bytes(&image).is_ok(),
                "tcp" => TcpSegment::from_bytes(&image, src, dst).is_ok(),
                _ => Ipv4Packet::from_bytes(&image).is_ok(),
            };
            prop_assert!(ok, "pristine {family} image failed to decode");
        }
    }
}
