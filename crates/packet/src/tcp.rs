//! TCP segment format (RFC 793) with the MSS option.
//!
//! Only the wire format lives here; the connection state machine, retransmission
//! and congestion control are implemented in `ipop-netstack::tcp`. Both the
//! physical network (Brunet's TCP transport mode) and the virtual network
//! (applications such as ttcp, MPI and NFS) exchange these segments, which is what
//! produces the TCP-over-TCP throughput penalty the paper observes in Tables II
//! and III.

use std::net::Ipv4Addr;

use crate::checksum::{finish, pseudo_header_sum, sum_words};
use crate::ParseError;

/// TCP header flags.
#[derive(Copy, Clone, PartialEq, Eq, Default, Hash)]
pub struct TcpFlags {
    /// Synchronize sequence numbers.
    pub syn: bool,
    /// Acknowledgement field significant.
    pub ack: bool,
    /// No more data from sender.
    pub fin: bool,
    /// Reset the connection.
    pub rst: bool,
    /// Push function.
    pub psh: bool,
}

impl TcpFlags {
    /// Only SYN.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
        psh: false,
    };
    /// SYN+ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    /// Only ACK.
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    /// FIN+ACK.
    pub const FIN_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: true,
        rst: false,
        psh: false,
    };
    /// Only RST.
    pub const RST: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
        psh: false,
    };

    fn to_byte(self) -> u8 {
        (u8::from(self.fin))
            | (u8::from(self.syn) << 1)
            | (u8::from(self.rst) << 2)
            | (u8::from(self.psh) << 3)
            | (u8::from(self.ack) << 4)
    }

    fn from_byte(b: u8) -> Self {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

impl std::fmt::Debug for TcpFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts = Vec::new();
        if self.syn {
            parts.push("SYN");
        }
        if self.ack {
            parts.push("ACK");
        }
        if self.fin {
            parts.push("FIN");
        }
        if self.rst {
            parts.push("RST");
        }
        if self.psh {
            parts.push("PSH");
        }
        if parts.is_empty() {
            parts.push("-");
        }
        write!(f, "{}", parts.join("|"))
    }
}

/// Length of the fixed TCP header (no options).
pub const TCP_HEADER_LEN: usize = 20;

/// A TCP segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (or of the SYN/FIN).
    pub seq: u32,
    /// Acknowledgement number (valid when `flags.ack`).
    pub ack: u32,
    /// Header flags.
    pub flags: TcpFlags,
    /// Advertised receive window, in bytes.
    pub window: u16,
    /// Maximum segment size option (only meaningful on SYN segments).
    pub mss: Option<u16>,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl TcpSegment {
    /// A SYN segment advertising `mss` and `window`.
    pub fn syn(src_port: u16, dst_port: u16, seq: u32, window: u16, mss: u16) -> Self {
        TcpSegment {
            src_port,
            dst_port,
            seq,
            ack: 0,
            flags: TcpFlags::SYN,
            window,
            mss: Some(mss),
            payload: Vec::new(),
        }
    }

    /// A data segment with ACK set.
    pub fn data(src_port: u16, dst_port: u16, seq: u32, ack: u32, payload: Vec<u8>) -> Self {
        TcpSegment {
            src_port,
            dst_port,
            seq,
            ack,
            flags: TcpFlags::ACK,
            window: u16::MAX,
            mss: None,
            payload,
        }
    }

    /// A pure ACK segment.
    pub fn ack(src_port: u16, dst_port: u16, seq: u32, ack: u32, window: u16) -> Self {
        TcpSegment {
            src_port,
            dst_port,
            seq,
            ack,
            flags: TcpFlags::ACK,
            window,
            mss: None,
            payload: Vec::new(),
        }
    }

    /// Sequence space consumed by this segment (payload plus SYN/FIN flags).
    pub fn seq_len(&self) -> u32 {
        self.payload.len() as u32 + u32::from(self.flags.syn) + u32::from(self.flags.fin)
    }

    /// Header length including options, in bytes.
    pub fn header_len(&self) -> usize {
        TCP_HEADER_LEN + if self.mss.is_some() { 4 } else { 0 }
    }

    /// Total on-wire length.
    pub fn wire_len(&self) -> usize {
        self.header_len() + self.payload.len()
    }

    /// Serialize, computing the checksum over the IPv4 pseudo-header.
    pub fn to_bytes(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let header_len = self.header_len();
        let data_offset_words = (header_len / 4) as u8;
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(data_offset_words << 4);
        out.push(self.flags.to_byte());
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&[0, 0]); // urgent pointer
        if let Some(mss) = self.mss {
            out.push(2); // kind: MSS
            out.push(4); // length
            out.extend_from_slice(&mss.to_be_bytes());
        }
        out.extend_from_slice(&self.payload);
        let mut acc = pseudo_header_sum(src.octets(), dst.octets(), 6, out.len() as u16);
        acc = sum_words(acc, &out);
        let csum = finish(acc);
        out[16..18].copy_from_slice(&csum.to_be_bytes());
        out
    }

    /// Parse, verifying the checksum against the IPv4 pseudo-header.
    // lint:allow(d3, fn): fixed-offset header reads below the up-front length
    // check; the option walk re-validates every length byte before stepping.
    pub fn from_bytes(data: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<Self, ParseError> {
        if data.len() < TCP_HEADER_LEN {
            return Err(ParseError::Truncated("tcp header"));
        }
        let mut acc = pseudo_header_sum(src.octets(), dst.octets(), 6, data.len() as u16);
        acc = sum_words(acc, data);
        if finish(acc) != 0 {
            return Err(ParseError::BadChecksum("tcp"));
        }
        let data_offset = ((data[12] >> 4) as usize) * 4;
        if data_offset < TCP_HEADER_LEN || data_offset > data.len() {
            return Err(ParseError::BadLength("tcp data offset"));
        }
        let mut mss = None;
        let mut opt = &data[TCP_HEADER_LEN..data_offset];
        while !opt.is_empty() {
            match opt[0] {
                0 => break,           // end of options
                1 => opt = &opt[1..], // NOP
                2 => {
                    // The MSS option is exactly 4 bytes; a mutated length
                    // byte would silently desynchronize the rest of the
                    // option list if it were not validated here.
                    if opt.len() < 4 || opt[1] != 4 {
                        return Err(ParseError::BadLength("tcp mss option"));
                    }
                    mss = Some(u16::from_be_bytes([opt[2], opt[3]]));
                    opt = &opt[4..];
                }
                _ => {
                    // Skip any other option by its length byte.
                    if opt.len() < 2 || (opt[1] as usize) < 2 || (opt[1] as usize) > opt.len() {
                        return Err(ParseError::BadLength("tcp option"));
                    }
                    opt = &opt[opt[1] as usize..];
                }
            }
        }
        Ok(TcpSegment {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            flags: TcpFlags::from_byte(data[13]),
            window: u16::from_be_bytes([data[14], data[15]]),
            mss,
            payload: data[data_offset..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(172, 16, 0, 2), Ipv4Addr::new(172, 16, 0, 18))
    }

    #[test]
    fn flags_round_trip() {
        for flags in [
            TcpFlags::SYN,
            TcpFlags::SYN_ACK,
            TcpFlags::ACK,
            TcpFlags::FIN_ACK,
            TcpFlags::RST,
        ] {
            assert_eq!(TcpFlags::from_byte(flags.to_byte()), flags);
        }
        assert_eq!(format!("{:?}", TcpFlags::SYN_ACK), "SYN|ACK");
        assert_eq!(format!("{:?}", TcpFlags::default()), "-");
    }

    #[test]
    fn syn_with_mss_round_trip() {
        let (s, d) = addrs();
        let seg = TcpSegment::syn(5001, 5201, 1000, 65535, 1460);
        let bytes = seg.to_bytes(s, d);
        assert_eq!(bytes.len(), seg.wire_len());
        assert_eq!(bytes.len(), 24);
        let parsed = TcpSegment::from_bytes(&bytes, s, d).unwrap();
        assert_eq!(parsed, seg);
        assert_eq!(parsed.mss, Some(1460));
        assert_eq!(parsed.seq_len(), 1);
    }

    #[test]
    fn data_segment_round_trip() {
        let (s, d) = addrs();
        let seg = TcpSegment::data(5001, 5201, 77, 99, vec![0x42; 1460]);
        let parsed = TcpSegment::from_bytes(&seg.to_bytes(s, d), s, d).unwrap();
        assert_eq!(parsed, seg);
        assert_eq!(parsed.seq_len(), 1460);
    }

    #[test]
    fn ack_segment_has_no_payload() {
        let (s, d) = addrs();
        let seg = TcpSegment::ack(1, 2, 10, 20, 4096);
        let parsed = TcpSegment::from_bytes(&seg.to_bytes(s, d), s, d).unwrap();
        assert!(parsed.payload.is_empty());
        assert_eq!(parsed.seq_len(), 0);
        assert_eq!(parsed.window, 4096);
    }

    #[test]
    fn checksum_binds_pseudo_header() {
        let (s, d) = addrs();
        let seg = TcpSegment::data(1, 2, 3, 4, vec![1, 2, 3]);
        let bytes = seg.to_bytes(s, d);
        assert!(matches!(
            TcpSegment::from_bytes(&bytes, Ipv4Addr::new(9, 9, 9, 9), d),
            Err(ParseError::BadChecksum(_))
        ));
    }

    #[test]
    fn corruption_and_truncation_detected() {
        let (s, d) = addrs();
        let seg = TcpSegment::data(1, 2, 3, 4, vec![7; 32]);
        let mut bytes = seg.to_bytes(s, d);
        bytes[25] ^= 0x80;
        assert!(matches!(
            TcpSegment::from_bytes(&bytes, s, d),
            Err(ParseError::BadChecksum(_))
        ));
        assert!(matches!(
            TcpSegment::from_bytes(&[0u8; 8], s, d),
            Err(ParseError::Truncated(_))
        ));
    }

    #[test]
    fn mss_option_length_byte_is_validated() {
        let (s, d) = addrs();
        let seg = TcpSegment::syn(5001, 5201, 1000, 65535, 1460);
        let mut bytes = seg.to_bytes(s, d);
        // Corrupt the MSS option's length byte (kind at 20, length at 21) and
        // re-seal the checksum so the mutation reaches the option parser —
        // modelling corruption that slipped past the transport checksum.
        bytes[21] = 8;
        bytes[16..18].copy_from_slice(&[0, 0]);
        let mut acc = pseudo_header_sum(s.octets(), d.octets(), 6, bytes.len() as u16);
        acc = sum_words(acc, &bytes);
        let csum = finish(acc);
        bytes[16..18].copy_from_slice(&csum.to_be_bytes());
        assert!(matches!(
            TcpSegment::from_bytes(&bytes, s, d),
            Err(ParseError::BadLength("tcp mss option"))
        ));
    }

    #[test]
    fn fin_consumes_sequence_space() {
        let seg = TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::FIN_ACK,
            window: 100,
            mss: None,
            payload: vec![1, 2, 3],
        };
        assert_eq!(seg.seq_len(), 4);
    }
}
