//! Wire formats used throughout the IPOP workspace.
//!
//! Every protocol data unit that crosses a boundary in the system — Ethernet frames
//! between the kernel and the tap device, ARP requests contained inside a host,
//! IPv4/ICMP/UDP/TCP packets on both the physical and the virtual network, and the
//! SHA-1 digests that map virtual IP addresses onto 160-bit overlay addresses — has
//! a structured representation here plus a byte-exact serialization. The simulator
//! carries the structured form for speed but the encapsulation path in `ipop`
//! serializes/parses the virtual IP packet exactly as the real prototype does when
//! it tunnels packets through the overlay (paper Fig. 3).

// Wire decoders must stay total (PR 7): no unwrap/expect anywhere in this
// crate's production code. Tests are exempt (the attribute is cfg'd out).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod arp;
pub mod bytes;
pub mod checksum;
pub mod ether;
pub mod icmp;
pub mod ipv4;
pub mod sha1;
pub mod tcp;
pub mod udp;

pub use arp::{ArpOperation, ArpPacket};
pub use bytes::Bytes;
pub use checksum::internet_checksum;
pub use ether::{EtherType, EthernetFrame, MacAddr};
pub use icmp::{IcmpPacket, IcmpType};
pub use ipv4::{Ipv4Header, Ipv4Packet, Ipv4Payload, Protocol};
pub use sha1::Sha1;
pub use tcp::{TcpFlags, TcpSegment};
pub use udp::UdpDatagram;

/// Errors produced when parsing wire bytes back into structured packets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer is shorter than the fixed header of the protocol named.
    Truncated(&'static str),
    /// A length field disagrees with the amount of data present.
    BadLength(&'static str),
    /// A checksum did not verify.
    BadChecksum(&'static str),
    /// An unsupported version / protocol / operation value.
    Unsupported(&'static str),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Truncated(what) => write!(f, "truncated {what}"),
            ParseError::BadLength(what) => write!(f, "bad length in {what}"),
            ParseError::BadChecksum(what) => write!(f, "bad checksum in {what}"),
            ParseError::Unsupported(what) => write!(f, "unsupported {what}"),
        }
    }
}

impl std::error::Error for ParseError {}
