//! Ethernet framing and MAC addresses.
//!
//! IPOP reads and writes layer-2 frames on the tap device (paper Section III-A):
//! the kernel hands it Ethernet frames, IPOP extracts the IPv4 payload and discards
//! or locally answers everything else (notably ARP). The virtual interface's MAC
//! and the fabricated "gateway" MAC are the two addresses that ever appear on a
//! virtual link.

use crate::{arp::ArpPacket, ipv4::Ipv4Packet, ParseError};

/// A 48-bit IEEE MAC address.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);
    /// The all-zero address (used as "unspecified").
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// A locally-administered unicast address derived from an index; used when the
    /// simulator fabricates tap-device and gateway MACs.
    pub fn local(index: u64) -> MacAddr {
        let b = index.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, b[3], b[4], b[5], b[6], b[7]])
    }

    /// True for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == MacAddr::BROADCAST
    }

    /// True for any multicast (group) address.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl std::fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self)
    }
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// The EtherType of a frame payload.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806).
    Arp,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl EtherType {
    /// Numeric EtherType value.
    pub fn value(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }

    /// From the numeric value.
    pub fn from_value(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

/// The payload of an Ethernet frame.
#[derive(Clone, Debug, PartialEq)]
pub enum FramePayload {
    /// An IPv4 packet.
    Ipv4(Ipv4Packet),
    /// An ARP packet (always contained within the host by IPOP).
    Arp(ArpPacket),
    /// Unparsed bytes of some other EtherType.
    Other(u16, Vec<u8>),
}

/// An Ethernet II frame.
#[derive(Clone, Debug, PartialEq)]
pub struct EthernetFrame {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Payload.
    pub payload: FramePayload,
}

/// Length of the Ethernet II header (no 802.1Q tag, no FCS).
pub const ETHERNET_HEADER_LEN: usize = 14;

impl EthernetFrame {
    /// Build an IPv4 frame.
    pub fn ipv4(src: MacAddr, dst: MacAddr, packet: Ipv4Packet) -> Self {
        EthernetFrame {
            dst,
            src,
            payload: FramePayload::Ipv4(packet),
        }
    }

    /// Build an ARP frame.
    pub fn arp(src: MacAddr, dst: MacAddr, packet: ArpPacket) -> Self {
        EthernetFrame {
            dst,
            src,
            payload: FramePayload::Arp(packet),
        }
    }

    /// The frame's EtherType.
    pub fn ether_type(&self) -> EtherType {
        match &self.payload {
            FramePayload::Ipv4(_) => EtherType::Ipv4,
            FramePayload::Arp(_) => EtherType::Arp,
            FramePayload::Other(v, _) => EtherType::Other(*v),
        }
    }

    /// Total on-wire length in bytes (header + payload, without FCS or padding).
    pub fn wire_len(&self) -> usize {
        ETHERNET_HEADER_LEN
            + match &self.payload {
                FramePayload::Ipv4(p) => p.wire_len(),
                FramePayload::Arp(_) => crate::arp::ARP_PACKET_LEN,
                FramePayload::Other(_, data) => data.len(),
            }
    }

    /// Serialize to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&self.ether_type().value().to_be_bytes());
        match &self.payload {
            FramePayload::Ipv4(p) => out.extend_from_slice(&p.to_bytes()),
            FramePayload::Arp(p) => out.extend_from_slice(&p.to_bytes()),
            FramePayload::Other(_, data) => out.extend_from_slice(data),
        }
        out
    }

    /// Parse from wire bytes.
    // lint:allow(d3, fn): fixed-offset header reads, all below the up-front
    // length check on the first line of the body — no read can go out of
    // bounds, and the checksum verification walks the same span first.
    pub fn from_bytes(data: &[u8]) -> Result<Self, ParseError> {
        if data.len() < ETHERNET_HEADER_LEN {
            return Err(ParseError::Truncated("ethernet header"));
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&data[0..6]);
        src.copy_from_slice(&data[6..12]);
        let ety = EtherType::from_value(u16::from_be_bytes([data[12], data[13]]));
        let body = &data[ETHERNET_HEADER_LEN..];
        let payload = match ety {
            EtherType::Ipv4 => FramePayload::Ipv4(Ipv4Packet::from_bytes(body)?),
            EtherType::Arp => FramePayload::Arp(ArpPacket::from_bytes(body)?),
            EtherType::Other(v) => FramePayload::Other(v, body.to_vec()),
        };
        Ok(EthernetFrame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::{Ipv4Packet, Ipv4Payload};
    use std::net::Ipv4Addr;

    #[test]
    fn mac_display_and_flags() {
        let m = MacAddr([0x02, 0x00, 0x00, 0x00, 0x00, 0x2a]);
        assert_eq!(m.to_string(), "02:00:00:00:00:2a");
        assert!(!m.is_broadcast());
        assert!(!m.is_multicast());
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(MacAddr([0x01, 0, 0x5e, 0, 0, 1]).is_multicast());
    }

    #[test]
    fn local_macs_are_unique_and_local() {
        let a = MacAddr::local(1);
        let b = MacAddr::local(2);
        assert_ne!(a, b);
        assert_eq!(a.0[0], 0x02);
    }

    #[test]
    fn ether_type_round_trip() {
        for v in [0x0800u16, 0x0806, 0x86DD, 0x1234] {
            assert_eq!(EtherType::from_value(v).value(), v);
        }
    }

    #[test]
    fn ipv4_frame_round_trip() {
        let pkt = Ipv4Packet::new(
            Ipv4Addr::new(172, 16, 0, 2),
            Ipv4Addr::new(172, 16, 0, 18),
            Ipv4Payload::Raw(200, vec![1, 2, 3, 4].into()),
        );
        let frame = EthernetFrame::ipv4(MacAddr::local(1), MacAddr::local(2), pkt);
        let bytes = frame.to_bytes();
        assert_eq!(bytes.len(), frame.wire_len());
        let parsed = EthernetFrame::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, frame);
    }

    #[test]
    fn other_payload_round_trip() {
        let frame = EthernetFrame {
            dst: MacAddr::BROADCAST,
            src: MacAddr::local(9),
            payload: FramePayload::Other(0x88B5, vec![0xde, 0xad, 0xbe, 0xef]),
        };
        let parsed = EthernetFrame::from_bytes(&frame.to_bytes()).unwrap();
        assert_eq!(parsed, frame);
        assert_eq!(parsed.ether_type(), EtherType::Other(0x88B5));
    }

    #[test]
    fn truncated_frame_rejected() {
        assert_eq!(
            EthernetFrame::from_bytes(&[0u8; 5]),
            Err(ParseError::Truncated("ethernet header"))
        );
    }
}
