//! ICMP (RFC 792) — echo request/reply plus the error messages the virtual router
//! can generate (destination unreachable, time exceeded).
//!
//! The paper's Table I and Fig. 5 are built from ICMP echo round-trip times, so the
//! echo path is the most exercised format in the workspace.

use crate::checksum::{internet_checksum, verify};
use crate::ParseError;

/// ICMP message type.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum IcmpType {
    /// Echo reply (0).
    EchoReply,
    /// Destination unreachable (3), with code.
    DestinationUnreachable(u8),
    /// Echo request (8).
    EchoRequest,
    /// Time exceeded (11), with code.
    TimeExceeded(u8),
}

impl IcmpType {
    fn type_code(self) -> (u8, u8) {
        match self {
            IcmpType::EchoReply => (0, 0),
            IcmpType::DestinationUnreachable(c) => (3, c),
            IcmpType::EchoRequest => (8, 0),
            IcmpType::TimeExceeded(c) => (11, c),
        }
    }
}

/// An ICMP message.
#[derive(Clone, Debug, PartialEq)]
pub struct IcmpPacket {
    /// Message type (and code).
    pub icmp_type: IcmpType,
    /// Identifier (echo messages) — ping uses this to tell sessions apart.
    pub identifier: u16,
    /// Sequence number (echo messages).
    pub sequence: u16,
    /// Data carried by the message. For echoes this is the ping payload; for error
    /// messages it is the leading bytes of the offending packet.
    pub payload: Vec<u8>,
}

/// Length of the fixed ICMP header.
pub const ICMP_HEADER_LEN: usize = 8;

impl IcmpPacket {
    /// An echo request with the standard `ping` semantics.
    pub fn echo_request(identifier: u16, sequence: u16, payload: Vec<u8>) -> Self {
        IcmpPacket {
            icmp_type: IcmpType::EchoRequest,
            identifier,
            sequence,
            payload,
        }
    }

    /// The echo reply answering `request` (same identifier, sequence and payload).
    pub fn echo_reply(request: &IcmpPacket) -> Self {
        IcmpPacket {
            icmp_type: IcmpType::EchoReply,
            identifier: request.identifier,
            sequence: request.sequence,
            payload: request.payload.clone(),
        }
    }

    /// A time-exceeded error (TTL expired in transit).
    pub fn time_exceeded(original: Vec<u8>) -> Self {
        IcmpPacket {
            icmp_type: IcmpType::TimeExceeded(0),
            identifier: 0,
            sequence: 0,
            payload: original,
        }
    }

    /// A destination-unreachable error with the given code (0 = net, 1 = host, 3 = port).
    pub fn unreachable(code: u8, original: Vec<u8>) -> Self {
        IcmpPacket {
            icmp_type: IcmpType::DestinationUnreachable(code),
            identifier: 0,
            sequence: 0,
            payload: original,
        }
    }

    /// True for echo requests.
    pub fn is_echo_request(&self) -> bool {
        self.icmp_type == IcmpType::EchoRequest
    }

    /// True for echo replies.
    pub fn is_echo_reply(&self) -> bool {
        self.icmp_type == IcmpType::EchoReply
    }

    /// On-wire length.
    pub fn wire_len(&self) -> usize {
        ICMP_HEADER_LEN + self.payload.len()
    }

    /// Serialize, computing the ICMP checksum.
    pub fn to_bytes(&self) -> Vec<u8> {
        let (ty, code) = self.icmp_type.type_code();
        let mut out = Vec::with_capacity(self.wire_len());
        out.push(ty);
        out.push(code);
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.identifier.to_be_bytes());
        out.extend_from_slice(&self.sequence.to_be_bytes());
        out.extend_from_slice(&self.payload);
        let csum = internet_checksum(&out);
        out[2..4].copy_from_slice(&csum.to_be_bytes());
        out
    }

    /// Parse, verifying the checksum.
    // lint:allow(d3, fn): fixed-offset header reads, all below the up-front
    // length check on the first line of the body — no read can go out of
    // bounds, and the checksum verification walks the same span first.
    pub fn from_bytes(data: &[u8]) -> Result<Self, ParseError> {
        if data.len() < ICMP_HEADER_LEN {
            return Err(ParseError::Truncated("icmp header"));
        }
        if !verify(data) {
            return Err(ParseError::BadChecksum("icmp"));
        }
        let icmp_type = match (data[0], data[1]) {
            (0, _) => IcmpType::EchoReply,
            (3, c) => IcmpType::DestinationUnreachable(c),
            (8, _) => IcmpType::EchoRequest,
            (11, c) => IcmpType::TimeExceeded(c),
            _ => return Err(ParseError::Unsupported("icmp type")),
        };
        let identifier = u16::from_be_bytes([data[4], data[5]]);
        let sequence = u16::from_be_bytes([data[6], data[7]]);
        Ok(IcmpPacket {
            icmp_type,
            identifier,
            sequence,
            payload: data[ICMP_HEADER_LEN..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_round_trip() {
        let req = IcmpPacket::echo_request(0x1234, 7, vec![0x61; 56]);
        let bytes = req.to_bytes();
        assert_eq!(bytes.len(), req.wire_len());
        assert_eq!(IcmpPacket::from_bytes(&bytes).unwrap(), req);
        assert!(req.is_echo_request());
        assert!(!req.is_echo_reply());
    }

    #[test]
    fn reply_copies_request_fields() {
        let req = IcmpPacket::echo_request(9, 42, vec![1, 2, 3]);
        let rep = IcmpPacket::echo_reply(&req);
        assert!(rep.is_echo_reply());
        assert_eq!(rep.identifier, 9);
        assert_eq!(rep.sequence, 42);
        assert_eq!(rep.payload, req.payload);
        assert_eq!(IcmpPacket::from_bytes(&rep.to_bytes()).unwrap(), rep);
    }

    #[test]
    fn error_messages_round_trip() {
        let te = IcmpPacket::time_exceeded(vec![0x45, 0, 0, 20]);
        assert_eq!(IcmpPacket::from_bytes(&te.to_bytes()).unwrap(), te);
        let un = IcmpPacket::unreachable(3, vec![0x45, 0, 0, 20]);
        let parsed = IcmpPacket::from_bytes(&un.to_bytes()).unwrap();
        assert_eq!(parsed.icmp_type, IcmpType::DestinationUnreachable(3));
    }

    #[test]
    fn corruption_detected() {
        let req = IcmpPacket::echo_request(1, 1, vec![5; 16]);
        let mut bytes = req.to_bytes();
        bytes[10] ^= 0x01;
        assert!(matches!(
            IcmpPacket::from_bytes(&bytes),
            Err(ParseError::BadChecksum(_))
        ));
        assert!(matches!(
            IcmpPacket::from_bytes(&[0u8; 4]),
            Err(ParseError::Truncated(_))
        ));
    }

    #[test]
    fn unknown_type_rejected() {
        // Type 13 (timestamp) is not supported; build bytes manually with a valid checksum.
        let mut raw = vec![13u8, 0, 0, 0, 0, 1, 0, 2];
        let csum = internet_checksum(&raw);
        raw[2..4].copy_from_slice(&csum.to_be_bytes());
        assert!(matches!(
            IcmpPacket::from_bytes(&raw),
            Err(ParseError::Unsupported(_))
        ));
    }
}
