//! Cheaply cloneable, sliceable byte buffers.
//!
//! Packet payloads travel through many layers of the simulator — application →
//! virtual stack → tap → overlay tunnel → physical stack → links — and used to
//! be deep-copied (`Vec<u8>`) at several of those boundaries. [`Bytes`] is a
//! reference-counted view into an immutable buffer: cloning is a refcount
//! bump, and [`Bytes::slice`] produces sub-views (e.g. the tunnelled payload
//! inside a decoded overlay message) without copying.
//!
//! The type intentionally mirrors the subset of the `bytes` crate the
//! workspace needs; the container builds fully offline, so it is implemented
//! here on top of `Arc<[u8]>`.

use std::fmt;
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer view.
///
/// Backed by `Arc<Vec<u8>>` rather than `Arc<[u8]>` so that wrapping an
/// existing `Vec` (the common case: a freshly serialized packet) moves the
/// allocation instead of copying it.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (one shared allocation header, no data).
    pub fn new() -> Self {
        Bytes {
            data: Arc::new(Vec::new()),
            start: 0,
            end: 0,
        }
    }

    /// Copy a slice into a fresh shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The bytes of the view.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-view sharing the same underlying buffer (no copy).
    ///
    /// The range is relative to this view. Panics if out of bounds, like slice
    /// indexing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice {lo}..{hi} out of range {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the view out into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// True when `other` is a view of the *same region of the same allocation*
    /// (not merely equal contents). Used to validate cached wire images before
    /// patching them instead of re-encoding.
    pub fn same_region(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.data, &other.data) && self.start == other.start && self.end == other.end
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())?;
        let head: Vec<u8> = self.iter().take(8).copied().collect();
        if !head.is_empty() {
            write!(f, " {head:02x?}")?;
            if self.len() > 8 {
                write!(f, "…")?;
            }
        }
        Ok(())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Bytes::copy_from_slice(&v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

// Content comparisons against plain byte containers, so call sites and tests
// can keep writing `payload == b"ping"`.
impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        assert_eq!(b, [1, 2, 3, 4]);
        assert_eq!(b, vec![1, 2, 3, 4]);
        assert_eq!(b, b"\x01\x02\x03\x04");
        assert_eq!(&b[1..3], &[2, 3]);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default(), Bytes::new());
    }

    #[test]
    fn clone_shares_slice_shares() {
        let b = Bytes::from(vec![0u8; 1024]);
        let c = b.clone();
        assert!(b.same_region(&c));
        let s = b.slice(100..200);
        assert_eq!(s.len(), 100);
        assert!(!s.same_region(&b));
        assert!(s.same_region(&b.slice(100..200)));
        // Sub-slicing composes relative to the view.
        let ss = s.slice(10..20);
        assert!(ss.same_region(&b.slice(110..120)));
    }

    #[test]
    fn slice_bounds_forms() {
        let b = Bytes::from(vec![9u8; 10]);
        assert_eq!(b.slice(..).len(), 10);
        assert_eq!(b.slice(3..).len(), 7);
        assert_eq!(b.slice(..4).len(), 4);
        assert_eq!(b.slice(2..=4).len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        Bytes::from(vec![1, 2, 3]).slice(2..5);
    }

    #[test]
    fn same_region_is_identity_not_equality() {
        let a = Bytes::from(vec![7u8; 16]);
        let b = Bytes::from(vec![7u8; 16]);
        assert_eq!(a, b);
        assert!(!a.same_region(&b));
    }

    #[test]
    fn debug_is_compact() {
        let b = Bytes::from(vec![0xAB; 100]);
        let s = format!("{b:?}");
        assert!(s.contains("100 bytes"), "{s}");
    }
}
