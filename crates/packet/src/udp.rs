//! UDP (RFC 768).
//!
//! On the physical network UDP carries the Brunet overlay traffic when IPOP runs in
//! UDP mode (the configuration that achieves 75–81 % of physical throughput in the
//! paper's Table III); on the virtual network it is available to applications just
//! like any other transport.

use std::net::Ipv4Addr;

use crate::bytes::Bytes;
use crate::checksum::{finish, pseudo_header_sum, sum_words};
use crate::ParseError;

/// Length of the UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// A UDP datagram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Application payload (cheaply cloneable shared buffer).
    pub payload: Bytes,
}

impl UdpDatagram {
    /// Build a datagram.
    pub fn new(src_port: u16, dst_port: u16, payload: impl Into<Bytes>) -> Self {
        UdpDatagram {
            src_port,
            dst_port,
            payload: payload.into(),
        }
    }

    /// On-wire length (header + payload).
    pub fn wire_len(&self) -> usize {
        UDP_HEADER_LEN + self.payload.len()
    }

    /// Serialize, computing the checksum over the IPv4 pseudo-header.
    pub fn to_bytes(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let len = self.wire_len() as u16;
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&len.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.payload);
        let mut acc = pseudo_header_sum(src.octets(), dst.octets(), 17, len);
        acc = sum_words(acc, &out);
        let mut csum = finish(acc);
        if csum == 0 {
            csum = 0xFFFF; // RFC 768: transmitted as all ones when computed as zero
        }
        out[6..8].copy_from_slice(&csum.to_be_bytes());
        out
    }

    /// Parse, verifying length and checksum against the IPv4 pseudo-header.
    // lint:allow(d3, fn): fixed-offset header reads below the up-front length
    // check and the validated UDP length field.
    pub fn from_bytes(data: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<Self, ParseError> {
        if data.len() < UDP_HEADER_LEN {
            return Err(ParseError::Truncated("udp header"));
        }
        let length = u16::from_be_bytes([data[4], data[5]]) as usize;
        if length < UDP_HEADER_LEN || length > data.len() {
            return Err(ParseError::BadLength("udp length"));
        }
        let checksum = u16::from_be_bytes([data[6], data[7]]);
        if checksum != 0 {
            let mut acc = pseudo_header_sum(src.octets(), dst.octets(), 17, length as u16);
            acc = sum_words(acc, &data[..length]);
            if finish(acc) != 0 {
                return Err(ParseError::BadChecksum("udp"));
            }
        }
        Ok(UdpDatagram {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            payload: Bytes::from(&data[UDP_HEADER_LEN..length]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (
            Ipv4Addr::new(192, 168, 0, 1),
            Ipv4Addr::new(192, 168, 0, 199),
        )
    }

    #[test]
    fn round_trip() {
        let (s, d) = addrs();
        let dg = UdpDatagram::new(40000, 4001, b"brunet ping".to_vec());
        let bytes = dg.to_bytes(s, d);
        assert_eq!(bytes.len(), dg.wire_len());
        assert_eq!(UdpDatagram::from_bytes(&bytes, s, d).unwrap(), dg);
    }

    #[test]
    fn empty_payload_round_trip() {
        let (s, d) = addrs();
        let dg = UdpDatagram::new(1, 2, vec![]);
        assert_eq!(
            UdpDatagram::from_bytes(&dg.to_bytes(s, d), s, d).unwrap(),
            dg
        );
    }

    #[test]
    fn checksum_binds_addresses() {
        let (s, d) = addrs();
        let dg = UdpDatagram::new(40000, 4001, vec![1, 2, 3]);
        let bytes = dg.to_bytes(s, d);
        // Parsing with a different pseudo-header must fail (this is what makes NAT
        // rewriting without checksum adjustment detectable).
        let other = Ipv4Addr::new(10, 0, 0, 9);
        assert!(matches!(
            UdpDatagram::from_bytes(&bytes, other, d),
            Err(ParseError::BadChecksum(_))
        ));
    }

    #[test]
    fn corruption_detected() {
        let (s, d) = addrs();
        let dg = UdpDatagram::new(7, 9, vec![4; 100]);
        let mut bytes = dg.to_bytes(s, d);
        bytes[20] ^= 0xFF;
        assert!(matches!(
            UdpDatagram::from_bytes(&bytes, s, d),
            Err(ParseError::BadChecksum(_))
        ));
    }

    #[test]
    fn zero_checksum_is_accepted() {
        let (s, d) = addrs();
        // A sender that did not compute a checksum sets the field to zero.
        let mut bytes = UdpDatagram::new(5, 6, vec![1, 2]).to_bytes(s, d);
        bytes[6] = 0;
        bytes[7] = 0;
        let parsed = UdpDatagram::from_bytes(&bytes, s, d).unwrap();
        assert_eq!(parsed.payload, vec![1, 2]);
    }

    #[test]
    fn bad_lengths_rejected() {
        let (s, d) = addrs();
        assert!(matches!(
            UdpDatagram::from_bytes(&[0u8; 4], s, d),
            Err(ParseError::Truncated(_))
        ));
        let mut bytes = UdpDatagram::new(5, 6, vec![1, 2]).to_bytes(s, d);
        bytes[4..6].copy_from_slice(&3u16.to_be_bytes()); // shorter than the header
        assert!(matches!(
            UdpDatagram::from_bytes(&bytes, s, d),
            Err(ParseError::BadLength(_))
        ));
    }
}
