//! SHA-1 (FIPS 180-1), implemented from scratch.
//!
//! IPOP maps a virtual IPv4 address onto the 160-bit P2P address space by taking
//! the SHA-1 hash of the address (paper Section III-B); the same digest is used by
//! the Brunet-ARP mapper to locate the node responsible for a given virtual IP
//! (Section III-E). SHA-1 is *not* used for any security purpose here, only as the
//! deterministic, uniformly-spreading mapping function the paper specifies.

/// Incremental SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffer_len: usize,
    length_bits: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buffer: [0u8; 64],
            buffer_len: 0,
            length_bits: 0,
        }
    }

    /// Hash a complete message in one call.
    pub fn digest(data: &[u8]) -> [u8; 20] {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize()
    }

    /// Feed more message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length_bits = self.length_bits.wrapping_add((data.len() as u64) * 8);
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.process_block(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Consume the hasher and produce the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let length_bits = self.length_bits;
        // Append the 0x80 terminator.
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        // Pad so that (length % 64) == 56, then append the 64-bit bit length.
        let current = self.buffer_len;
        let pad_len = if current < 56 {
            56 - current
        } else {
            120 - current
        };
        self.update_padding(&pad[..pad_len]);
        self.update_padding(&length_bits.to_be_bytes());
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Like `update`, but does not count the bytes toward the message length
    /// (used internally for padding).
    fn update_padding(&mut self, data: &[u8]) {
        let saved = self.length_bits;
        self.update(data);
        self.length_bits = saved;
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// Render a digest as lowercase hex (used in diagnostics and examples).
pub fn hex(digest: &[u8; 20]) -> String {
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_string() {
        assert_eq!(
            hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn nist_two_block_vector() {
        let msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
        assert_eq!(
            hex(&Sha1::digest(msg)),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&Sha1::digest(&msg)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn quick_brown_fox() {
        assert_eq!(
            hex(&Sha1::digest(
                b"The quick brown fox jumps over the lazy dog"
            )),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0u8..=255).cycle().take(10_000).collect();
        // Split at awkward boundaries.
        for split_sizes in [[1usize, 63, 64, 65], [7, 129, 500, 3]] {
            let mut h = Sha1::new();
            let mut rest = &data[..];
            for s in split_sizes {
                let take = s.min(rest.len());
                h.update(&rest[..take]);
                rest = &rest[take..];
            }
            h.update(rest);
            assert_eq!(h.finalize(), Sha1::digest(&data));
        }
    }

    #[test]
    fn fifty_six_byte_boundary() {
        // Message lengths around the padding boundary exercise the two pad branches.
        for len in 54..=66usize {
            let msg = vec![0x5Au8; len];
            let d1 = Sha1::digest(&msg);
            let mut h = Sha1::new();
            for b in &msg {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), d1, "length {len}");
        }
    }
}
