//! The 16-bit one's-complement Internet checksum (RFC 1071) used by IPv4, ICMP,
//! UDP and TCP.

/// Compute the Internet checksum over `data`.
///
/// The returned value is already complemented, i.e. it is the value to place into
/// the checksum field of a header whose checksum field was zero while summing.
pub fn internet_checksum(data: &[u8]) -> u16 {
    finish(sum_words(0, data))
}

/// Accumulate 16-bit big-endian words of `data` into a running 32-bit sum.
/// Odd trailing bytes are padded with zero, as the RFC specifies.
pub fn sum_words(mut acc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        acc += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Fold the 32-bit accumulator and complement it.
pub fn finish(mut acc: u32) -> u16 {
    while acc > 0xFFFF {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    !(acc as u16)
}

/// Verify a buffer that *includes* its checksum field: the folded sum must be zero.
pub fn verify(data: &[u8]) -> bool {
    finish(sum_words(0, data)) == 0
}

/// The TCP/UDP pseudo-header contribution: source and destination IPv4 addresses,
/// the protocol number and the transport-segment length.
pub fn pseudo_header_sum(src: [u8; 4], dst: [u8; 4], protocol: u8, length: u16) -> u32 {
    let mut acc = 0u32;
    acc = sum_words(acc, &src);
    acc = sum_words(acc, &dst);
    acc += u32::from(protocol);
    acc += u32::from(length);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_reference_example() {
        // Classic example from RFC 1071 section 3: bytes 00 01 f2 03 f4 f5 f6 f7
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let sum = sum_words(0, &data);
        assert_eq!(sum, 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7);
        assert_eq!(finish(sum), !0xddf2u16);
    }

    #[test]
    fn known_ipv4_header_checksum() {
        // Example IPv4 header widely used in checksum tutorials; checksum = 0xB861.
        let header = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(internet_checksum(&header), 0xb861);
    }

    #[test]
    fn verify_detects_corruption() {
        let mut header = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0xb8, 0x61, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert!(verify(&header));
        header[3] ^= 0xFF;
        assert!(!verify(&header));
    }

    #[test]
    fn odd_length_padding() {
        // Checksum over odd-length data treats the missing byte as zero.
        assert_eq!(internet_checksum(&[0xAB]), !0xAB00u16);
        assert_eq!(
            internet_checksum(&[0x00, 0x01, 0x02]),
            !(0x0001u16.wrapping_add(0x0200))
        );
    }

    #[test]
    fn empty_buffer() {
        assert_eq!(internet_checksum(&[]), 0xFFFF);
        assert!(!verify(&[0x00, 0x01]));
    }

    #[test]
    fn pseudo_header_matches_manual_sum() {
        let acc = pseudo_header_sum([10, 0, 0, 1], [10, 0, 0, 2], 17, 12);
        let expected = 0x0a00u32 + 0x0001 + 0x0a00 + 0x0002 + 17 + 12;
        assert_eq!(acc, expected);
    }
}
