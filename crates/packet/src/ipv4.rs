//! IPv4 packets (RFC 791).
//!
//! The same type is used on the physical network (where the simulator's links,
//! NATs and firewalls inspect and rewrite it) and on the virtual network (where it
//! is the payload that IPOP extracts from tap frames and tunnels through the
//! overlay). Options and fragmentation are not modelled: IPOP's prototype tunnels
//! whole IP packets and relies on the overlay transport for segmentation.

use std::net::Ipv4Addr;

use crate::bytes::Bytes;
use crate::checksum::{internet_checksum, verify};
use crate::icmp::IcmpPacket;
use crate::tcp::TcpSegment;
use crate::udp::UdpDatagram;
use crate::ParseError;

/// IPv4 protocol numbers the stack understands.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Protocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Any other protocol number, preserved verbatim.
    Other(u8),
}

impl Protocol {
    /// The numeric protocol field value.
    pub fn value(self) -> u8 {
        match self {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(v) => v,
        }
    }

    /// From the numeric value.
    pub fn from_value(v: u8) -> Self {
        match v {
            1 => Protocol::Icmp,
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

/// Parsed fixed IPv4 header fields (no options).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Ipv4Header {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Time to live.
    pub ttl: u8,
    /// Identification field (used by the ping driver to correlate echoes).
    pub identification: u16,
    /// Differentiated services code point (kept for completeness, defaults to 0).
    pub dscp: u8,
}

impl Ipv4Header {
    /// A header with the default TTL of 64.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr) -> Self {
        Ipv4Header {
            src,
            dst,
            ttl: 64,
            identification: 0,
            dscp: 0,
        }
    }
}

/// The transport payload of an IPv4 packet.
#[derive(Clone, Debug, PartialEq)]
pub enum Ipv4Payload {
    /// ICMP message.
    Icmp(IcmpPacket),
    /// UDP datagram.
    Udp(UdpDatagram),
    /// TCP segment.
    Tcp(TcpSegment),
    /// Unparsed payload of some other protocol number.
    Raw(u8, Bytes),
}

impl Ipv4Payload {
    /// The protocol number of this payload.
    pub fn protocol(&self) -> Protocol {
        match self {
            Ipv4Payload::Icmp(_) => Protocol::Icmp,
            Ipv4Payload::Udp(_) => Protocol::Udp,
            Ipv4Payload::Tcp(_) => Protocol::Tcp,
            Ipv4Payload::Raw(v, _) => Protocol::Other(*v),
        }
    }

    /// On-wire length of the payload in bytes.
    pub fn wire_len(&self) -> usize {
        match self {
            Ipv4Payload::Icmp(p) => p.wire_len(),
            Ipv4Payload::Udp(p) => p.wire_len(),
            Ipv4Payload::Tcp(p) => p.wire_len(),
            Ipv4Payload::Raw(_, data) => data.len(),
        }
    }
}

/// Length of the fixed IPv4 header (IHL = 5).
pub const IPV4_HEADER_LEN: usize = 20;

/// A complete IPv4 packet.
#[derive(Clone, Debug, PartialEq)]
pub struct Ipv4Packet {
    /// Header fields.
    pub header: Ipv4Header,
    /// Transport payload.
    pub payload: Ipv4Payload,
}

impl Ipv4Packet {
    /// Build a packet with default header fields (TTL 64).
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, payload: Ipv4Payload) -> Self {
        Ipv4Packet {
            header: Ipv4Header::new(src, dst),
            payload,
        }
    }

    /// Source address.
    pub fn src(&self) -> Ipv4Addr {
        self.header.src
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Addr {
        self.header.dst
    }

    /// The payload's protocol number.
    pub fn protocol(&self) -> Protocol {
        self.payload.protocol()
    }

    /// Total on-wire length (header + payload).
    pub fn wire_len(&self) -> usize {
        IPV4_HEADER_LEN + self.payload.wire_len()
    }

    /// Decrement TTL; returns `false` (and leaves TTL at zero) when it expires.
    pub fn decrement_ttl(&mut self) -> bool {
        if self.header.ttl <= 1 {
            self.header.ttl = 0;
            false
        } else {
            self.header.ttl -= 1;
            true
        }
    }

    /// The source/destination transport ports, if the payload is UDP or TCP.
    pub fn ports(&self) -> Option<(u16, u16)> {
        match &self.payload {
            Ipv4Payload::Udp(u) => Some((u.src_port, u.dst_port)),
            Ipv4Payload::Tcp(t) => Some((t.src_port, t.dst_port)),
            _ => None,
        }
    }

    /// Serialize to wire bytes, computing the header checksum and the transport
    /// checksum (with pseudo-header) as a real stack would.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload_bytes = match &self.payload {
            Ipv4Payload::Icmp(p) => p.to_bytes(),
            Ipv4Payload::Udp(p) => p.to_bytes(self.header.src, self.header.dst),
            Ipv4Payload::Tcp(p) => p.to_bytes(self.header.src, self.header.dst),
            Ipv4Payload::Raw(_, data) => data.to_vec(),
        };
        let total_len = (IPV4_HEADER_LEN + payload_bytes.len()) as u16;
        let mut header = [0u8; IPV4_HEADER_LEN];
        header[0] = 0x45; // version 4, IHL 5
        header[1] = self.header.dscp << 2;
        header[2..4].copy_from_slice(&total_len.to_be_bytes());
        header[4..6].copy_from_slice(&self.header.identification.to_be_bytes());
        header[6..8].copy_from_slice(&0x4000u16.to_be_bytes()); // DF set, no fragments
        header[8] = self.header.ttl;
        header[9] = self.payload.protocol().value();
        // checksum at [10..12] computed below
        header[12..16].copy_from_slice(&self.header.src.octets());
        header[16..20].copy_from_slice(&self.header.dst.octets());
        let csum = internet_checksum(&header);
        header[10..12].copy_from_slice(&csum.to_be_bytes());

        let mut out = Vec::with_capacity(IPV4_HEADER_LEN + payload_bytes.len());
        out.extend_from_slice(&header);
        out.extend_from_slice(&payload_bytes);
        out
    }

    /// Parse from wire bytes, verifying the header checksum.
    // lint:allow(d3, fn): fixed-offset header reads below the up-front length
    // check, IHL/total-length validation, and header checksum verification —
    // every slice is bounded by a validated length.
    pub fn from_bytes(data: &[u8]) -> Result<Self, ParseError> {
        if data.len() < IPV4_HEADER_LEN {
            return Err(ParseError::Truncated("ipv4 header"));
        }
        let version = data[0] >> 4;
        let ihl = (data[0] & 0x0F) as usize * 4;
        if version != 4 {
            return Err(ParseError::Unsupported("ip version"));
        }
        if ihl < IPV4_HEADER_LEN || data.len() < ihl {
            return Err(ParseError::BadLength("ipv4 ihl"));
        }
        if !verify(&data[..ihl]) {
            return Err(ParseError::BadChecksum("ipv4 header"));
        }
        let total_len = u16::from_be_bytes([data[2], data[3]]) as usize;
        if total_len < ihl || total_len > data.len() {
            return Err(ParseError::BadLength("ipv4 total length"));
        }
        let dscp = data[1] >> 2;
        let identification = u16::from_be_bytes([data[4], data[5]]);
        let ttl = data[8];
        let protocol = Protocol::from_value(data[9]);
        let src = Ipv4Addr::new(data[12], data[13], data[14], data[15]);
        let dst = Ipv4Addr::new(data[16], data[17], data[18], data[19]);
        let body = &data[ihl..total_len];
        let payload = match protocol {
            Protocol::Icmp => Ipv4Payload::Icmp(IcmpPacket::from_bytes(body)?),
            Protocol::Udp => Ipv4Payload::Udp(UdpDatagram::from_bytes(body, src, dst)?),
            Protocol::Tcp => Ipv4Payload::Tcp(TcpSegment::from_bytes(body, src, dst)?),
            Protocol::Other(v) => Ipv4Payload::Raw(v, Bytes::from(body)),
        };
        Ok(Ipv4Packet {
            header: Ipv4Header {
                src,
                dst,
                ttl,
                identification,
                dscp,
            },
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icmp::IcmpPacket;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    #[test]
    fn protocol_numbers() {
        assert_eq!(Protocol::Icmp.value(), 1);
        assert_eq!(Protocol::Tcp.value(), 6);
        assert_eq!(Protocol::Udp.value(), 17);
        assert_eq!(Protocol::from_value(89), Protocol::Other(89));
        assert_eq!(Protocol::from_value(6), Protocol::Tcp);
    }

    #[test]
    fn raw_round_trip() {
        let pkt = Ipv4Packet::new(
            ip(10, 0, 0, 1),
            ip(10, 0, 0, 2),
            Ipv4Payload::Raw(200, vec![9; 32].into()),
        );
        let bytes = pkt.to_bytes();
        assert_eq!(bytes.len(), pkt.wire_len());
        let parsed = Ipv4Packet::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, pkt);
        assert_eq!(parsed.protocol(), Protocol::Other(200));
        assert_eq!(parsed.ports(), None);
    }

    #[test]
    fn icmp_round_trip() {
        let pkt = Ipv4Packet::new(
            ip(172, 16, 0, 2),
            ip(172, 16, 0, 18),
            Ipv4Payload::Icmp(IcmpPacket::echo_request(7, 3, vec![0xAA; 56])),
        );
        let parsed = Ipv4Packet::from_bytes(&pkt.to_bytes()).unwrap();
        assert_eq!(parsed, pkt);
    }

    #[test]
    fn ttl_decrement() {
        let mut pkt = Ipv4Packet::new(
            ip(1, 1, 1, 1),
            ip(2, 2, 2, 2),
            Ipv4Payload::Raw(0, vec![].into()),
        );
        pkt.header.ttl = 2;
        assert!(pkt.decrement_ttl());
        assert_eq!(pkt.header.ttl, 1);
        assert!(!pkt.decrement_ttl());
        assert_eq!(pkt.header.ttl, 0);
        assert!(!pkt.decrement_ttl());
    }

    #[test]
    fn corrupted_checksum_rejected() {
        let pkt = Ipv4Packet::new(
            ip(1, 1, 1, 1),
            ip(2, 2, 2, 2),
            Ipv4Payload::Raw(0, vec![1].into()),
        );
        let mut bytes = pkt.to_bytes();
        bytes[8] ^= 0xFF; // flip TTL, invalidating the header checksum
        assert!(matches!(
            Ipv4Packet::from_bytes(&bytes),
            Err(ParseError::BadChecksum(_))
        ));
    }

    #[test]
    fn truncation_and_bad_version_rejected() {
        assert!(matches!(
            Ipv4Packet::from_bytes(&[0u8; 10]),
            Err(ParseError::Truncated(_))
        ));
        let pkt = Ipv4Packet::new(
            ip(1, 1, 1, 1),
            ip(2, 2, 2, 2),
            Ipv4Payload::Raw(0, vec![].into()),
        );
        let mut bytes = pkt.to_bytes();
        bytes[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4Packet::from_bytes(&bytes),
            Err(ParseError::Unsupported(_))
        ));
    }

    #[test]
    fn wire_len_matches_serialization_for_payload_types() {
        let udp = Ipv4Packet::new(
            ip(10, 0, 0, 1),
            ip(10, 0, 0, 2),
            Ipv4Payload::Udp(UdpDatagram {
                src_port: 5000,
                dst_port: 53,
                payload: vec![1; 100].into(),
            }),
        );
        assert_eq!(udp.to_bytes().len(), udp.wire_len());
        let tcp = Ipv4Packet::new(
            ip(10, 0, 0, 1),
            ip(10, 0, 0, 2),
            Ipv4Payload::Tcp(TcpSegment::data(80, 1234, 5, 10, vec![7; 64])),
        );
        assert_eq!(tcp.to_bytes().len(), tcp.wire_len());
    }
}
