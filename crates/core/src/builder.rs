//! Deployment helpers: turn a physical topology plus a list of virtual addresses
//! into a running IPOP virtual network.
//!
//! Adding a resource to an IPOP network is deliberately trivial in the paper — set
//! up a tap device, pick a free virtual IP and start the node — and this builder
//! mirrors that: give it the hosts and their virtual IPs, and it installs one
//! [`IpopHostAgent`] per host, all bootstrapping off the first one listed.

use std::net::Ipv4Addr;

use ipop_netsim::{HostId, Network};
use ipop_overlay::transport::TransportMode;
use ipop_simcore::Duration;

use crate::app::{NullApp, VirtualApp};
use crate::config::IpopConfig;
use crate::node::IpopHostAgent;
use crate::plain::PlainHostAgent;

/// A host to be joined to the virtual network.
pub struct IpopMember {
    /// The physical host.
    pub host: HostId,
    /// The virtual IP to assign to its tap interface, or `None` to allocate
    /// one dynamically from [`DeployOptions::dynamic_subnet`] through the
    /// DHCP-over-DHT allocator.
    pub virtual_ip: Option<Ipv4Addr>,
    /// Hostname to register in the overlay name service, if any.
    pub hostname: Option<String>,
    /// The application to run on the virtual network.
    pub app: Box<dyn VirtualApp>,
}

impl IpopMember {
    /// A member running the given application.
    pub fn new(host: HostId, virtual_ip: Ipv4Addr, app: Box<dyn VirtualApp>) -> Self {
        IpopMember {
            host,
            virtual_ip: Some(virtual_ip),
            hostname: None,
            app,
        }
    }

    /// A member that only routes (no application).
    pub fn router(host: HostId, virtual_ip: Ipv4Addr) -> Self {
        Self::new(host, virtual_ip, Box::new(NullApp))
    }

    /// A member that joins with no address and allocates one dynamically.
    pub fn dynamic(host: HostId, app: Box<dyn VirtualApp>) -> Self {
        IpopMember {
            host,
            virtual_ip: None,
            hostname: None,
            app,
        }
    }

    /// A dynamically addressed member that only routes.
    pub fn dynamic_router(host: HostId) -> Self {
        Self::dynamic(host, Box::new(NullApp))
    }

    /// Builder: register `hostname` in the overlay name service.
    pub fn with_hostname(mut self, hostname: &str) -> Self {
        self.hostname = Some(hostname.to_string());
        self
    }
}

/// Options shared by every member of a deployment.
#[derive(Clone, Debug)]
pub struct DeployOptions {
    /// Overlay transport mode (the IPOP-TCP vs IPOP-UDP axis of Tables I–III).
    pub transport: TransportMode,
    /// Enable the Brunet-ARP DHT mapper on every node (dynamic members enable
    /// it regardless — they cannot work without it).
    pub brunet_arp: bool,
    /// Enable shortcut connections.
    pub shortcuts: bool,
    /// Subnet dynamic members allocate their addresses from.
    pub dynamic_subnet: (Ipv4Addr, u8),
    /// Lease TTL for DHT registrations (address leases, mappings, names).
    pub lease_ttl: Duration,
    /// Sender-side Brunet-ARP cache TTL; `None` keeps the per-node default.
    /// Migration workloads shorten it — it bounds the blackout window of a
    /// migrating guest IP.
    pub arp_cache_ttl: Option<Duration>,
    /// Virtual addresses dynamic members must never claim (guest-VM IPs a
    /// workload assigns by hand), besides the gateway.
    pub reserved_ips: Vec<Ipv4Addr>,
    /// Idle interval before the overlay link monitor probes an edge; `None`
    /// keeps the per-node default. Bounds how long packets keep being
    /// forwarded into a crashed hop.
    pub link_probe_interval: Option<Duration>,
    /// Interval between DHT anti-entropy sweeps; `None` keeps the per-node
    /// default. Bounds the post-crash window in which a lost put stays
    /// unresolvable.
    pub dht_sweep_interval: Option<Duration>,
    /// Phi-accrual edge suspicion (loss-rate-weighted probe misses); false
    /// restores the fixed consecutive-miss verdict (ablation switch).
    pub phi_accrual: bool,
    /// Phi threshold at which an edge is declared dead; `None` keeps the
    /// per-node default.
    pub phi_threshold: Option<f64>,
    /// Maximum out-degree of the pub/sub relay tree; `None` keeps the
    /// per-node default.
    pub pubsub_fanout: Option<usize>,
    /// Topic subscription TTL; `None` keeps the per-node default.
    pub pubsub_ttl: Option<Duration>,
    /// Require the FNV-64 link integrity tag on every member (all-or-nothing:
    /// tagged and untagged nodes cannot interoperate).
    pub link_integrity_tag: bool,
}

impl Default for DeployOptions {
    fn default() -> Self {
        DeployOptions {
            transport: TransportMode::Udp,
            brunet_arp: false,
            shortcuts: true,
            dynamic_subnet: (Ipv4Addr::new(172, 16, 0, 0), 16),
            lease_ttl: Duration::from_secs(120),
            arp_cache_ttl: None,
            reserved_ips: Vec::new(),
            link_probe_interval: None,
            dht_sweep_interval: None,
            phi_accrual: true,
            phi_threshold: None,
            pubsub_fanout: None,
            pubsub_ttl: None,
            link_integrity_tag: false,
        }
    }
}

impl DeployOptions {
    /// UDP-mode deployment (the paper's best-performing configuration).
    pub fn udp() -> Self {
        Self::default()
    }

    /// TCP-mode deployment.
    pub fn tcp() -> Self {
        DeployOptions {
            transport: TransportMode::Tcp,
            ..Self::default()
        }
    }

    /// Builder: set the subnet dynamic members allocate from.
    pub fn with_dynamic_subnet(mut self, net: Ipv4Addr, prefix: u8) -> Self {
        self.dynamic_subnet = (net, prefix);
        self
    }

    /// Builder: set the lease TTL for DHT registrations.
    pub fn with_lease_ttl(mut self, ttl: Duration) -> Self {
        self.lease_ttl = ttl;
        self
    }

    /// Builder: set every member's Brunet-ARP cache TTL.
    pub fn with_arp_cache_ttl(mut self, ttl: Duration) -> Self {
        self.arp_cache_ttl = Some(ttl);
        self
    }

    /// Builder: reserve virtual addresses dynamic members must never claim.
    pub fn with_reserved_ips(mut self, ips: Vec<Ipv4Addr>) -> Self {
        self.reserved_ips = ips;
        self
    }

    /// Builder: set every member's link-monitor probe interval.
    pub fn with_link_probe_interval(mut self, interval: Duration) -> Self {
        self.link_probe_interval = Some(interval);
        self
    }

    /// Builder: set every member's DHT anti-entropy sweep interval.
    pub fn with_dht_sweep_interval(mut self, interval: Duration) -> Self {
        self.dht_sweep_interval = Some(interval);
        self
    }

    /// Builder: restore the fixed consecutive-miss edge verdict on every
    /// member (phi-accrual ablation).
    pub fn without_phi_accrual(mut self) -> Self {
        self.phi_accrual = false;
        self
    }

    /// Builder: set every member's phi-accrual suspicion threshold.
    pub fn with_phi_threshold(mut self, threshold: f64) -> Self {
        self.phi_threshold = Some(threshold);
        self
    }

    /// Builder: set every member's pub/sub relay-tree fan-out.
    pub fn with_pubsub_fanout(mut self, fanout: usize) -> Self {
        self.pubsub_fanout = Some(fanout);
        self
    }

    /// Builder: set every member's topic subscription TTL.
    pub fn with_pubsub_ttl(mut self, ttl: Duration) -> Self {
        self.pubsub_ttl = Some(ttl);
        self
    }

    /// Builder: enable the FNV-64 link integrity tag on every member.
    pub fn with_link_integrity_tag(mut self) -> Self {
        self.link_integrity_tag = true;
        self
    }
}

/// Install an [`IpopHostAgent`] on every member host. The first *publicly
/// reachable* member acts as the bootstrap node for all the others (any node
/// already in the overlay would do, but one behind a NAT or a
/// deny-inbound firewall cannot accept the initial unsolicited Hello — the
/// paper's deployments likewise bootstrap off public Brunet nodes). Falls back
/// to the first member when nobody is publicly reachable. Returns the member
/// hosts in the same order.
pub fn deploy_ipop(
    net: &mut Network,
    members: Vec<IpopMember>,
    options: DeployOptions,
) -> Vec<HostId> {
    assert!(
        !members.is_empty(),
        "a deployment needs at least one member"
    );
    let bootstrap_host = members
        .iter()
        .map(|m| m.host)
        .find(|&h| net.publicly_reachable(h))
        .unwrap_or(members[0].host);
    let bootstrap_addr = net.host(bootstrap_host).addr;
    let overlay_port = 4001;
    let mut hosts = Vec::with_capacity(members.len());
    for member in members {
        let phys_addr = net.host(member.host).addr;
        let mut cfg = match member.virtual_ip {
            Some(ip) => IpopConfig::new(ip),
            None => IpopConfig::dynamic(options.dynamic_subnet),
        }
        .with_transport(options.transport)
        .with_lease_ttl(options.lease_ttl);
        if let Some(ttl) = options.arp_cache_ttl {
            cfg = cfg.with_brunet_arp_cache_ttl(ttl);
        }
        if let Some(interval) = options.link_probe_interval {
            cfg = cfg.with_link_probe_interval(interval);
        }
        if let Some(interval) = options.dht_sweep_interval {
            cfg = cfg.with_dht_sweep_interval(interval);
        }
        if !options.phi_accrual {
            cfg = cfg.without_phi_accrual();
        }
        if let Some(threshold) = options.phi_threshold {
            cfg = cfg.with_phi_threshold(threshold);
        }
        if let Some(fanout) = options.pubsub_fanout {
            cfg = cfg.with_pubsub_fanout(fanout);
        }
        if let Some(ttl) = options.pubsub_ttl {
            cfg = cfg.with_pubsub_ttl(ttl);
        }
        if options.link_integrity_tag {
            cfg = cfg.with_link_integrity_tag(true);
        }
        if !options.reserved_ips.is_empty() {
            cfg = cfg.with_reserved_ips(options.reserved_ips.clone());
        }
        if let Some(name) = &member.hostname {
            cfg = cfg.with_hostname(name);
        }
        if options.brunet_arp {
            cfg = cfg.with_brunet_arp();
        }
        if !options.shortcuts {
            cfg = cfg.without_shortcuts();
        }
        if member.host != bootstrap_host {
            cfg = cfg.with_bootstrap(vec![(bootstrap_addr, overlay_port)]);
        }
        let agent = IpopHostAgent::new(cfg, phys_addr, member.app);
        net.set_agent(member.host, Box::new(agent));
        hosts.push(member.host);
    }
    hosts
}

/// Install a baseline [`PlainHostAgent`] (no IPOP) running `app` on `host`.
pub fn deploy_plain(net: &mut Network, host: HostId, app: Box<dyn VirtualApp>) -> HostId {
    let addr = net.host(host).addr;
    net.set_agent(host, Box::new(PlainHostAgent::new(addr, app)));
    host
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipop_netsim::lan_pair;

    #[test]
    fn deploy_installs_agents_with_bootstrap_chain() {
        let mut net = Network::new(1);
        let (a, b, _, _) = lan_pair(&mut net);
        let hosts = deploy_ipop(
            &mut net,
            vec![
                IpopMember::router(a, Ipv4Addr::new(172, 16, 0, 1)),
                IpopMember::router(b, Ipv4Addr::new(172, 16, 0, 2)),
            ],
            DeployOptions::udp(),
        );
        assert_eq!(hosts, vec![a, b]);
        assert!(net.agent_as::<IpopHostAgent>(a).is_some());
        assert!(net.agent_as::<IpopHostAgent>(b).is_some());
        assert_eq!(
            net.agent_as::<IpopHostAgent>(b).unwrap().virtual_ip(),
            Ipv4Addr::new(172, 16, 0, 2)
        );
    }

    #[test]
    fn deploy_plain_installs_baseline_agent() {
        let mut net = Network::new(2);
        let (a, _, _, _) = lan_pair(&mut net);
        deploy_plain(&mut net, a, Box::new(NullApp));
        assert!(net.agent_as::<PlainHostAgent>(a).is_some());
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_deployment_is_rejected() {
        let mut net = Network::new(3);
        deploy_ipop(&mut net, vec![], DeployOptions::udp());
    }
}
