//! The application interface.
//!
//! The whole point of IPOP is that *unmodified* applications written against the
//! ordinary sockets API run across wide-area, NATed, firewalled resources as if
//! they were on a LAN. In the simulation, "unmodified" translates to: applications
//! are written purely against [`ipop_netstack::NetStack`] sockets and have no idea
//! whether the stack they talk to is attached to a physical interface (the
//! baseline runs of Tables I–III) or to the IPOP virtual interface (the IPOP runs).
//! The same application object is handed to either a [`crate::node::IpopHostAgent`]
//! or a [`crate::plain::PlainHostAgent`] without modification.

use std::any::Any;

use ipop_netstack::NetStack;
use ipop_simcore::{SimTime, StreamRng};

/// Everything an application may touch while being polled.
pub struct AppEnv<'a> {
    /// The network stack the application's sockets live on (virtual under IPOP,
    /// physical in baseline runs).
    pub stack: &'a mut NetStack,
    /// Current virtual time.
    pub now: SimTime,
    /// Host-local random stream.
    pub rng: &'a mut StreamRng,
    /// The host's name (for labelling results).
    pub host_name: &'a str,
}

/// A socket application driven by polling.
pub trait VirtualApp: Any {
    /// Called once before the first poll.
    fn on_start(&mut self, env: &mut AppEnv<'_>);

    /// Called whenever the host processes an event (packet arrival or timer).
    /// Returns the absolute time at which the application next wants to be woken
    /// even if no traffic arrives, or `None` if it only reacts to traffic.
    fn poll(&mut self, env: &mut AppEnv<'_>) -> Option<SimTime>;

    /// True once the application has finished its work (used by experiment drivers
    /// to decide when to stop the simulation).
    fn finished(&self) -> bool {
        false
    }

    /// Downcasting support for result extraction.
    fn as_any(&self) -> &dyn Any;
    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// An application that does nothing (for hosts that only route).
#[derive(Default)]
pub struct NullApp;

impl VirtualApp for NullApp {
    fn on_start(&mut self, _env: &mut AppEnv<'_>) {}

    fn poll(&mut self, _env: &mut AppEnv<'_>) -> Option<SimTime> {
        None
    }

    fn finished(&self) -> bool {
        true
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipop_netstack::StackConfig;
    use std::net::Ipv4Addr;

    #[test]
    fn null_app_is_always_finished() {
        let mut app = NullApp;
        let mut stack = NetStack::new(StackConfig::new(Ipv4Addr::new(1, 2, 3, 4)));
        let mut rng = StreamRng::new(1, "app");
        let mut env = AppEnv {
            stack: &mut stack,
            now: SimTime::ZERO,
            rng: &mut rng,
            host_name: "h",
        };
        app.on_start(&mut env);
        assert_eq!(app.poll(&mut env), None);
        assert!(app.finished());
        assert!(app.as_any().downcast_ref::<NullApp>().is_some());
    }
}
