//! The IPOP node: the paper's core contribution, assembled as a host agent.
//!
//! One [`IpopHostAgent`] owns everything that runs on a machine participating in an
//! IPOP virtual network (paper Fig. 2):
//!
//! * the **physical network stack** carrying Brunet traffic (UDP or TCP mode),
//! * the **Brunet overlay node** that self-configures connections, traverses NATs
//!   and routes packets on the 160-bit ring,
//! * the **tap device** plus the kernel-side Ethernet adapter configured with the
//!   static-ARP "non-existent gateway" trick,
//! * the **virtual network stack** the unmodified application talks to, and
//! * the **application** itself ([`crate::app::VirtualApp`]).
//!
//! The data path is exactly the paper's: the application writes to a socket on the
//! virtual stack; the kernel emits an Ethernet frame on the tap; IPOP reads the
//! frame, extracts the IPv4 packet, maps the destination IP to an overlay address
//! (SHA-1 directly, or through Brunet-ARP), wraps it in a P2P packet and routes it;
//! the destination node unwraps it, rebuilds a frame and injects it into its own
//! tap, where the kernel delivers it to the receiving application. User-level
//! processing and tap crossings are charged to the host CPU according to
//! [`ipop_netsim::Calibration`], which is what reproduces the 6–10 ms overhead of
//! Table I and the load-dependent behaviour of Fig. 5.

use std::any::Any;
use std::net::Ipv4Addr;

use ipop_netsim::{HostAgent, HostCtx};
use ipop_netstack::eth::EthAdapter;
use ipop_netstack::tap::TapDevice;
use ipop_netstack::{NetStack, StackConfig};
use ipop_overlay::packets::RoutedPayload;
use ipop_overlay::transport::{OverlayTransport, TcpTransport, TransportMode, UdpTransport};
use ipop_overlay::{Address, ConnectionKind, OverlayConfig, OverlayNode, OverlayStats};
use ipop_packet::ether::{EthernetFrame, FramePayload, MacAddr};
use ipop_packet::ipv4::Ipv4Packet;
use ipop_services::dhcp::{DhcpAllocator, DhcpConfig, DhcpState};
use ipop_services::name::NameService;
use ipop_services::pubsub::{PubSub, TopicMessage};
use ipop_services::vstream::{StreamFate, VirtualStream, VirtualStreams};
use ipop_services::Subnet;
use ipop_simcore::{Duration, SimTime, StreamRng, TimerToken};

use crate::app::{AppEnv, VirtualApp};
use crate::brunet_arp::{BrunetArp, Resolution};
use crate::config::IpopConfig;

/// Timer token used for the agent's self-scheduled wakeups.
const WAKEUP: TimerToken = TimerToken(1);

/// Counters describing one IPOP node's activity.
#[derive(Clone, Copy, Debug, Default)]
pub struct IpopMetrics {
    /// Virtual IP packets read from the tap and tunnelled into the overlay.
    pub tunneled_tx: u64,
    /// Virtual IP packets received from the overlay and injected into the tap.
    pub tunneled_rx: u64,
    /// ARP frames read from the tap and contained within the host.
    pub arp_contained: u64,
    /// Non-IP, non-ARP frames dropped at the tap.
    pub non_ip_dropped: u64,
    /// Tunnelled packets whose destination was outside the virtual address space.
    pub not_virtual_dropped: u64,
    /// Tunnelled payloads that failed to parse as IPv4.
    pub decode_errors: u64,
    /// Packets received for a virtual IP this node routes for but that is not the
    /// tap address (guest VMs / multiple-IP support).
    pub guest_rx: u64,
    /// Brunet-ARP queries issued.
    pub arp_queries: u64,
}

/// A host agent running a full IPOP node plus one application.
pub struct IpopHostAgent {
    cfg: IpopConfig,
    label: String,

    phys: NetStack,
    transport: Box<dyn OverlayTransport>,
    overlay: OverlayNode,

    tap: TapDevice,
    veth: EthAdapter,
    gateway_mac: MacAddr,
    vstack: NetStack,

    app: Box<dyn VirtualApp>,
    app_rng: StreamRng,
    app_next: Option<SimTime>,

    brunet_arp: Option<BrunetArp>,
    extra_ips: Vec<Ipv4Addr>,
    guest_delivered: Vec<(SimTime, Ipv4Packet)>,

    /// DHCP-over-DHT allocation state (dynamic-address nodes only).
    allocator: Option<DhcpAllocator>,
    alloc_rng: StreamRng,
    /// True once the deferred virtual side (tap, stacks, app) is live — from
    /// the start on static nodes, from lease binding on dynamic nodes.
    app_started: bool,
    /// Overlay name service (hostname → virtual IP, and reverse) resolver
    /// state.
    name_service: NameService,
    /// Topic pub/sub client state (name bookkeeping and counters).
    pubsub: PubSub,
    /// Messages delivered on subscribed topics, drained by the application
    /// via [`IpopHostAgent::take_topic_messages`].
    topic_messages: Vec<TopicMessage>,
    /// Virtual-stream client state (per-stream inboxes and handles).
    vstreams: VirtualStreams,
    /// Streams that reached a terminal state, drained by the application
    /// via [`IpopHostAgent::take_stream_fates`].
    stream_fates: Vec<(VirtualStream, StreamFate)>,
    name_results: Vec<(String, Option<Ipv4Addr>)>,
    reverse_results: Vec<(Ipv4Addr, Option<String>)>,
    /// Outstanding Brunet-ARP probe tokens issued via
    /// [`IpopHostAgent::resolve_ip`] (diagnostics and churn experiments).
    probe_tokens: std::collections::BTreeSet<u64>,
    probe_results: Vec<(u64, Option<Address>)>,
    host_name: String,
    /// When the overlay started (readiness fallback for tiny deployments).
    overlay_started_at: SimTime,

    /// Cache of virtual IP → overlay address (SHA-1 of the IP). The mapping is
    /// a pure function, and hashing on every tunnelled packet is measurable on
    /// the data path.
    addr_cache: std::collections::BTreeMap<Ipv4Addr, Address>,

    /// Tunnel packets whose receive-side user-level processing completes at the
    /// given instant (so latency measurements include that cost).
    rx_pending: Vec<(SimTime, Ipv4Packet)>,
    /// Earliest completion instant in `rx_pending` (kept in sync so the wakeup
    /// scheduler does not rescan the queue on every event).
    rx_pending_min: Option<SimTime>,
    /// Outbound virtual packets whose user-level processing completes at the
    /// given instant; the overlay send happens then. The completion instant
    /// reflects the router's per-packet latency, while only the (smaller)
    /// pipeline occupancy blocks the CPU — consecutive packets overlap.
    tx_pending: Vec<(SimTime, Ipv4Packet)>,
    /// Earliest completion instant in `tx_pending`.
    tx_pending_min: Option<SimTime>,

    next_overlay_tick: SimTime,
    scheduled_wakeup: Option<SimTime>,
    /// Memo of the last completed event-handling pass: the virtual instant it
    /// ran at and the (unclamped) wakeup deadline it computed — valid only if
    /// the pump reached a fixpoint and no external input arrived since. Used
    /// to service redundant same-instant wakeups without re-running the pump.
    last_pass: Option<(SimTime, SimTime)>,
    last_forwarded: u64,
    /// Transport parse-error count at the last pump pass; the delta per poll
    /// is charged to the overlay's malformed-drop counter.
    last_parse_errors: u64,
    metrics: IpopMetrics,
}

impl IpopHostAgent {
    /// Build an IPOP node for a host whose physical interface address is
    /// `phys_addr`, running `app` on the virtual network.
    pub fn new(cfg: IpopConfig, phys_addr: Ipv4Addr, app: Box<dyn VirtualApp>) -> Self {
        // Static nodes derive everything from the virtual IP; dynamic nodes
        // have none yet, so they seed from the (unique) physical address.
        let seed = if cfg.dynamic_subnet.is_some() {
            u64::from(u32::from(phys_addr)) ^ 0xd1c9_5eed
        } else {
            u64::from(u32::from(cfg.virtual_ip)) ^ 0x1b0b_5eed
        };
        let mut phys = NetStack::new(StackConfig::new(phys_addr));
        let transport: Box<dyn OverlayTransport> = match cfg.transport {
            TransportMode::Udp => Box::new(
                UdpTransport::bind(&mut phys, cfg.overlay_port)
                    .with_integrity_tag(cfg.link_integrity_tag),
            ),
            TransportMode::Tcp => Box::new(
                TcpTransport::bind(&mut phys, cfg.overlay_port)
                    .with_integrity_tag(cfg.link_integrity_tag),
            ),
        };
        // A dynamic node cannot hash an IP it does not have: its overlay
        // address is random (deterministic per host), and Brunet-ARP carries
        // the IP → overlay-address mapping once an address is claimed.
        let overlay_addr = if cfg.dynamic_subnet.is_some() {
            Address::random(&mut StreamRng::new(seed, "ipop.dhcp.addr"))
        } else {
            Address::from_ip(cfg.virtual_ip)
        };
        let mut overlay_cfg = OverlayConfig::new(overlay_addr, (phys_addr, cfg.overlay_port))
            .with_bootstrap(cfg.bootstrap.clone())
            .with_probe_interval(cfg.link_probe_interval)
            .with_sweep_interval(cfg.dht_sweep_interval)
            .with_pubsub_fanout(cfg.pubsub_fanout);
        overlay_cfg.maintenance_interval = cfg.overlay_tick;
        overlay_cfg = overlay_cfg.with_phi_threshold(cfg.phi_threshold);
        if !cfg.phi_accrual {
            overlay_cfg = overlay_cfg.without_phi_accrual();
        }
        if !cfg.shortcuts {
            overlay_cfg = overlay_cfg.without_shortcuts();
        }
        let overlay = OverlayNode::new(overlay_cfg, StreamRng::new(seed, "ipop.overlay"));

        let tap_mac = MacAddr::local(u64::from(u32::from(cfg.virtual_ip)));
        let gateway_mac =
            MacAddr::local(0xFFFF_FFFF_0000 | u64::from(u32::from(cfg.gateway_ip)) & 0xFFFF);
        let tap = TapDevice::new(tap_mac);
        let veth =
            EthAdapter::with_static_gateway(tap_mac, cfg.virtual_ip, cfg.gateway_ip, gateway_mac);
        let vstack = NetStack::new(StackConfig::new(cfg.virtual_ip).with_mtu(cfg.virtual_mtu));

        let brunet_arp = cfg
            .brunet_arp
            .then(|| BrunetArp::new(cfg.brunet_arp_cache_ttl));
        let allocator = cfg.dynamic_subnet.map(|(net, len)| {
            let mut reserved = vec![cfg.gateway_ip];
            reserved.extend(cfg.reserved_ips.iter().copied());
            DhcpAllocator::new(
                Subnet::new(net, len),
                overlay_addr,
                DhcpConfig {
                    lease_ttl: cfg.lease_ttl,
                    ..DhcpConfig::default()
                },
            )
            .with_reserved(reserved)
        });
        let label = format!("ipop-{}", cfg.virtual_ip);
        let name_service = NameService::new(cfg.brunet_arp_cache_ttl);
        let pubsub = PubSub::new(cfg.pubsub_ttl);

        IpopHostAgent {
            cfg,
            label,
            phys,
            transport,
            overlay,
            tap,
            veth,
            gateway_mac,
            vstack,
            app,
            app_rng: StreamRng::new(seed, "ipop.app"),
            app_next: None,
            brunet_arp,
            extra_ips: Vec::new(),
            guest_delivered: Vec::new(),
            allocator,
            alloc_rng: StreamRng::new(seed, "ipop.dhcp"),
            app_started: false,
            name_service,
            pubsub,
            topic_messages: Vec::new(),
            vstreams: VirtualStreams::new(),
            stream_fates: Vec::new(),
            name_results: Vec::new(),
            reverse_results: Vec::new(),
            probe_tokens: std::collections::BTreeSet::new(),
            probe_results: Vec::new(),
            host_name: String::new(),
            overlay_started_at: SimTime::ZERO,
            addr_cache: std::collections::BTreeMap::new(),
            rx_pending: Vec::new(),
            rx_pending_min: None,
            tx_pending: Vec::new(),
            tx_pending_min: None,
            next_overlay_tick: SimTime::ZERO,
            scheduled_wakeup: None,
            last_pass: None,
            last_forwarded: 0,
            last_parse_errors: 0,
            metrics: IpopMetrics::default(),
        }
    }

    /// The virtual IP of this node's tap interface.
    pub fn virtual_ip(&self) -> Ipv4Addr {
        self.cfg.virtual_ip
    }

    /// The node's overlay address.
    pub fn overlay_address(&self) -> Address {
        self.overlay.address()
    }

    /// IPOP activity counters.
    pub fn metrics(&self) -> IpopMetrics {
        self.metrics
    }

    /// Overlay routing statistics.
    pub fn overlay_stats(&self) -> OverlayStats {
        self.overlay.stats()
    }

    /// Link messages the transport dropped for a bad FNV-64 integrity tag
    /// (always 0 with [`IpopConfig::link_integrity_tag`] off).
    pub fn transport_tag_rejects(&self) -> u64 {
        self.transport.tag_rejects()
    }

    /// True once the node has at least one established overlay connection.
    pub fn is_connected(&self) -> bool {
        self.overlay.is_connected()
    }

    /// Number of established overlay connections.
    pub fn connection_count(&self) -> usize {
        self.overlay.connections().established().count()
    }

    /// Overlay addresses of the established connections.
    pub fn connection_peers(&self) -> Vec<Address> {
        self.overlay.connections().peers()
    }

    /// Downcast the embedded application.
    pub fn app_as<T: 'static>(&self) -> Option<&T> {
        self.app.as_any().downcast_ref::<T>()
    }

    /// Mutable downcast of the embedded application.
    pub fn app_as_mut<T: 'static>(&mut self) -> Option<&mut T> {
        self.last_pass = None;
        self.app.as_any_mut().downcast_mut::<T>()
    }

    /// Register an additional virtual IP this node routes for (a guest VM hosted by
    /// this machine — paper Section III-E). With Brunet-ARP enabled the mapping is
    /// registered in the DHT as a lease renewed at half [`IpopConfig::lease_ttl`];
    /// packets for that IP are collected in a guest queue.
    pub fn route_for(&mut self, now: SimTime, ip: Ipv4Addr) {
        self.last_pass = None;
        if !self.extra_ips.contains(&ip) {
            self.extra_ips.push(ip);
        }
        if self.brunet_arp.is_some() {
            let key = BrunetArp::key_for(ip);
            let value = BrunetArp::encode_mapping(&self.overlay.address());
            self.overlay
                .dht_put_ttl(now, key, value, self.cfg.lease_ttl);
        }
    }

    /// Forget a guest IP this node routed for (the VM migrated away). The
    /// node stops renewing the mapping lease — it does not delete the record,
    /// because the migration target has already re-registered it (deleting
    /// would race the new owner's mapping).
    pub fn unroute_for(&mut self, _now: SimTime, ip: Ipv4Addr) {
        self.last_pass = None;
        self.extra_ips.retain(|&x| x != ip);
        if self.brunet_arp.is_some() {
            self.overlay.dht_unpublish(&BrunetArp::key_for(ip));
        }
    }

    /// Packets delivered for registered guest IPs.
    pub fn take_guest_packets(&mut self) -> Vec<Ipv4Packet> {
        self.take_guest_packets_timed()
            .into_iter()
            .map(|(_, pkt)| pkt)
            .collect()
    }

    /// Packets delivered for registered guest IPs with their delivery
    /// instants — migration workloads use the timestamps to measure the
    /// blackout window between `unroute_for` and first post-migration
    /// delivery at the new host.
    pub fn take_guest_packets_timed(&mut self) -> Vec<(SimTime, Ipv4Packet)> {
        std::mem::take(&mut self.guest_delivered)
    }

    /// Publish this node's own tap IP in the Brunet-ARP DHT as a renewed lease
    /// (done automatically at start when Brunet-ARP is enabled; callable again
    /// after "migration"). No-op while a dynamic node has no address — there
    /// the allocator's claim doubles as the mapping.
    pub fn publish_own_mapping(&mut self, now: SimTime) {
        self.last_pass = None;
        if self.brunet_arp.is_some() && !self.cfg.virtual_ip.is_unspecified() {
            let key = BrunetArp::key_for(self.cfg.virtual_ip);
            let value = BrunetArp::encode_mapping(&self.overlay.address());
            self.overlay
                .dht_put_ttl(now, key, value, self.cfg.lease_ttl);
        }
    }

    /// True once the node has a virtual address (always true for static
    /// nodes; true after the DHCP-over-DHT claim is confirmed on dynamic ones).
    pub fn has_address(&self) -> bool {
        !self.cfg.virtual_ip.is_unspecified()
    }

    /// Time from joining to the confirmed dynamic allocation, if this node
    /// allocated dynamically and has bound.
    pub fn allocation_latency(&self) -> Option<Duration> {
        self.allocator.as_ref().and_then(|a| a.allocation_latency())
    }

    /// Collisions the dynamic allocator hit before binding.
    pub fn allocation_collisions(&self) -> Option<u64> {
        self.allocator.as_ref().map(|a| a.collisions)
    }

    /// Issue a Brunet-ARP resolution probe for `ip` (bypassing the resolver
    /// cache); the result arrives via [`IpopHostAgent::take_probe_results`].
    /// Used by churn experiments to measure resolution success.
    pub fn resolve_ip(&mut self, now: SimTime, ip: Ipv4Addr) -> u64 {
        self.last_pass = None;
        let token = self.overlay.dht_get(now, BrunetArp::key_for(ip));
        self.probe_tokens.insert(token);
        token
    }

    /// Completed resolution probes: `(token, mapped overlay address)`.
    pub fn take_probe_results(&mut self) -> Vec<(u64, Option<Address>)> {
        std::mem::take(&mut self.probe_results)
    }

    /// Resolve a hostname through the overlay name service. Returns the
    /// cached IP when fresh; otherwise issues a DHT lookup whose outcome
    /// arrives via [`IpopHostAgent::take_name_results`].
    pub fn lookup_name(&mut self, now: SimTime, name: &str) -> Option<Ipv4Addr> {
        self.last_pass = None;
        match self.name_service.resolve(&mut self.overlay, now, name) {
            ipop_services::Resolution::Cached(ip) => Some(ip),
            ipop_services::Resolution::Pending(_) => None,
        }
    }

    /// Completed name lookups: `(hostname, IP if registered)`.
    pub fn take_name_results(&mut self) -> Vec<(String, Option<Ipv4Addr>)> {
        std::mem::take(&mut self.name_results)
    }

    /// Reverse-resolve a virtual IP to the hostname registered for it.
    /// Returns the cached name when fresh; otherwise issues a DHT lookup
    /// whose outcome arrives via [`IpopHostAgent::take_reverse_results`].
    pub fn lookup_ip(&mut self, now: SimTime, ip: Ipv4Addr) -> Option<String> {
        self.last_pass = None;
        match self.name_service.lookup_ip(&mut self.overlay, now, ip) {
            ipop_services::ReverseResolution::Cached(name) => Some(name),
            ipop_services::ReverseResolution::Pending(_) => None,
        }
    }

    /// Completed reverse lookups: `(IP, hostname if registered)`.
    pub fn take_reverse_results(&mut self) -> Vec<(Ipv4Addr, Option<String>)> {
        std::mem::take(&mut self.reverse_results)
    }

    /// Subscribe to a pub/sub topic by name. The subscription is soft state,
    /// renewed at half [`IpopConfig::pubsub_ttl`] until unsubscribed;
    /// messages arrive via [`IpopHostAgent::take_topic_messages`].
    pub fn subscribe(&mut self, now: SimTime, topic: &str) {
        self.last_pass = None;
        self.pubsub.subscribe(&mut self.overlay, now, topic);
    }

    /// Withdraw a topic subscription.
    pub fn unsubscribe(&mut self, now: SimTime, topic: &str) {
        self.last_pass = None;
        self.pubsub.unsubscribe(&mut self.overlay, now, topic);
    }

    /// Publish `payload` on a topic (no subscription needed); returns the
    /// assigned message id. The publish routes to the topic root, which fans
    /// it out to every subscriber along a bounded-degree relay tree.
    pub fn publish(&mut self, now: SimTime, topic: &str, payload: ipop_packet::Bytes) -> u64 {
        self.last_pass = None;
        self.pubsub.publish(&mut self.overlay, now, topic, payload)
    }

    /// Messages delivered on subscribed topics since the last call — the
    /// all-topics drain, in delivery order. For one topic's share use
    /// [`IpopHostAgent::take_topic_messages_for`].
    pub fn take_topic_messages(&mut self) -> Vec<TopicMessage> {
        std::mem::take(&mut self.topic_messages)
    }

    /// Messages delivered on one named topic since the last call, in
    /// delivery order; other topics' messages stay queued for their own
    /// drain (clients no longer need to re-bucket the all-topics Vec).
    pub fn take_topic_messages_for(&mut self, topic: &str) -> Vec<TopicMessage> {
        let mut taken = Vec::new();
        let mut kept = Vec::new();
        for msg in std::mem::take(&mut self.topic_messages) {
            if msg.topic == topic {
                taken.push(msg);
            } else {
                kept.push(msg);
            }
        }
        self.topic_messages = kept;
        taken
    }

    /// Pub/sub client counters: `(published, received, unknown-topic drops)`.
    pub fn pubsub_counters(&self) -> (u64, u64, u64) {
        (
            self.pubsub.published,
            self.pubsub.received,
            self.pubsub.unknown_topic,
        )
    }

    /// Open a virtual stream — ordered, reliable bytes over routed overlay
    /// frames — to the node whose overlay address is `remote`. The handle
    /// arrives immediately; data queued on it flows once the handshake
    /// completes. Remote opens surface via [`IpopHostAgent::stream_accept`],
    /// data via [`IpopHostAgent::take_stream_data`], and lifecycle changes
    /// via [`IpopHostAgent::take_stream_fates`].
    pub fn stream_connect(&mut self, now: SimTime, remote: Address) -> VirtualStream {
        self.last_pass = None;
        self.vstreams.connect(&mut self.overlay, now, remote)
    }

    /// Claim the next stream a remote node opened to this one, if any.
    pub fn stream_accept(&mut self) -> Option<VirtualStream> {
        self.vstreams.accept()
    }

    /// Queue bytes on an open stream. Returns false when the stream is
    /// unknown, closing or already gone.
    pub fn stream_send(
        &mut self,
        now: SimTime,
        stream: VirtualStream,
        data: impl Into<ipop_packet::Bytes>,
    ) -> bool {
        self.last_pass = None;
        self.vstreams.send(&mut self.overlay, now, stream, data)
    }

    /// Drain everything received on `stream` as one contiguous buffer.
    pub fn take_stream_data(&mut self, stream: VirtualStream) -> Vec<u8> {
        self.vstreams.recv_all(stream)
    }

    /// Close a stream; buffered data still delivers, then the FIN tears it
    /// down in both directions.
    pub fn stream_close(&mut self, now: SimTime, stream: VirtualStream) {
        self.last_pass = None;
        self.vstreams.close(&mut self.overlay, now, stream);
    }

    /// Streams that reached a terminal state since the last call.
    pub fn take_stream_fates(&mut self) -> Vec<(VirtualStream, StreamFate)> {
        std::mem::take(&mut self.stream_fates)
    }

    /// True once `stream`'s handshake has completed.
    pub fn stream_established(&self, stream: VirtualStream) -> bool {
        self.vstreams.is_established(stream)
    }

    /// Gracefully leave the virtual network: release the dynamic lease and
    /// name/mapping registrations, hand stored DHT records off to ring
    /// neighbours and close every overlay edge. The queued goodbye traffic
    /// flushes on the agent's next wakeup.
    pub fn leave(&mut self, now: SimTime) {
        self.last_pass = None;
        if let Some(alloc) = self.allocator.as_mut() {
            alloc.release(now, &mut self.overlay);
        }
        if self.has_address() {
            if let Some(name) = self.cfg.hostname.clone() {
                NameService::unregister(&mut self.overlay, now, &name, self.cfg.virtual_ip);
            }
            // A dynamic node's own mapping is the lease the allocator just
            // released; a static node's must be deleted here.
            if self.brunet_arp.is_some() && self.allocator.is_none() {
                self.overlay
                    .dht_remove(now, BrunetArp::key_for(self.cfg.virtual_ip));
            }
        }
        // Guest mappings are separate leases regardless of how this node got
        // its own address: delete them so guest traffic does not black-hole
        // into a departed host for a full TTL.
        if self.brunet_arp.is_some() {
            for ip in self.extra_ips.clone() {
                self.overlay.dht_remove(now, BrunetArp::key_for(ip));
            }
        }
        self.overlay.leave(now);
    }

    // ------------------------------------------------------------------ internals

    /// Overlay address of a virtual IP (SHA-1, memoized).
    fn overlay_addr_of(&mut self, ip: Ipv4Addr) -> Address {
        *self
            .addr_cache
            .entry(ip)
            .or_insert_with(|| Address::from_ip(ip))
    }

    /// Charge the user-level router for one tunnelled packet: the CPU is
    /// occupied for the pipeline cost, while the packet itself is ready only
    /// after the full processing latency (whichever completes later).
    fn router_ready_at(ctx: &mut HostCtx<'_, '_>) -> SimTime {
        let now = ctx.now();
        let cal = ctx.calibration();
        let load = ctx.load();
        let occupied_until =
            ctx.consume_cpu(cal.pipeline_cost_at_load(load) + cal.tap_crossing_cost);
        occupied_until.max(now + cal.ipop_cost_at_load(load) + cal.tap_crossing_cost)
    }

    fn tunnel_out(&mut self, ctx: &mut HostCtx<'_, '_>, vpkt: Ipv4Packet) {
        let ready = Self::router_ready_at(ctx);
        self.tx_pending.push((ready, vpkt));
        self.tx_pending_min = Some(self.tx_pending_min.map_or(ready, |m| m.min(ready)));
    }

    /// Hand one processed outbound packet to the overlay (runs at its ready
    /// instant, after the user-level processing latency has elapsed).
    fn dispatch_tunnel_out(&mut self, now: SimTime, vpkt: Ipv4Packet) {
        let dst = vpkt.dst();
        self.metrics.tunneled_tx += 1;
        match &mut self.brunet_arp {
            None => {
                let addr = self.overlay_addr_of(dst);
                self.overlay.send_ip(now, addr, vpkt.to_bytes());
            }
            Some(arp) => match arp.resolve(now, dst) {
                Resolution::Resolved(addr) => {
                    self.overlay.send_ip(now, addr, vpkt.to_bytes());
                }
                Resolution::NeedsQuery(key) => {
                    let token = self.overlay.dht_get(now, key);
                    arp.query_issued(now, token, dst);
                    arp.park(dst, vpkt);
                    self.metrics.arp_queries += 1;
                }
                Resolution::Pending => {
                    arp.park(dst, vpkt);
                }
            },
        }
    }

    fn deliver_virtual(&mut self, now: SimTime, vpkt: Ipv4Packet) {
        let dst = vpkt.dst();
        if dst == self.cfg.virtual_ip {
            // Rebuild the Ethernet frame and inject it through the tap, exactly as
            // the prototype writes to /dev/net/tun: source MAC is the fabricated
            // gateway, destination is the tap device.
            let frame = EthernetFrame::ipv4(self.gateway_mac, self.tap.mac(), vpkt);
            self.tap.user_write(frame);
            self.metrics.tunneled_rx += 1;
        } else if self.extra_ips.contains(&dst) {
            self.metrics.guest_rx += 1;
            self.guest_delivered.push((now, vpkt));
        } else {
            // Delivered here by the overlay but we do not route for this IP.
            self.metrics.decode_errors += 1;
        }
    }

    /// The main processing loop, run after every packet or timer event.
    fn pump(&mut self, ctx: &mut HostCtx<'_, '_>) {
        let now = ctx.now();
        let cal = ctx.calibration();
        let load = ctx.load();
        let mut fixpoint = false;
        for _ in 0..64 {
            let mut progress = false;

            // Overlay periodic maintenance.
            if now >= self.next_overlay_tick {
                self.overlay.on_tick(now);
                self.next_overlay_tick = now + self.cfg.overlay_tick;
                progress = true;
            }

            // Physical stack → transport → overlay.
            self.phys.poll(now);
            for (ep, msg) in self.transport.poll(&mut self.phys, now) {
                self.overlay.on_message(now, ep, msg);
                progress = true;
            }
            // Malformed datagrams the transport dropped while decoding:
            // surface the delta in the overlay's stats.
            let parse_errors = self.transport.parse_errors();
            if parse_errors > self.last_parse_errors {
                self.overlay
                    .note_malformed(parse_errors - self.last_parse_errors);
                self.last_parse_errors = parse_errors;
                progress = true;
            }

            // Overlay deliveries → receive-side processing delay queue.
            for routed in self.overlay.take_delivered() {
                if let RoutedPayload::IpTunnel(bytes) = routed.payload {
                    match Ipv4Packet::from_bytes(&bytes) {
                        Ok(vpkt) => {
                            let ready = Self::router_ready_at(ctx);
                            self.rx_pending.push((ready, vpkt));
                            self.rx_pending_min =
                                Some(self.rx_pending_min.map_or(ready, |m| m.min(ready)));
                        }
                        Err(_) => self.metrics.decode_errors += 1,
                    }
                    progress = true;
                }
            }

            // Pub/sub deliveries → the application-facing topic queue.
            let topic_msgs = self.pubsub.poll(&mut self.overlay);
            if !topic_msgs.is_empty() {
                self.topic_messages.extend(topic_msgs);
                progress = true;
            }

            // Virtual-stream accepts/data/events → per-stream inboxes and
            // the terminal-fate queue.
            let finished = self.vstreams.poll(&mut self.overlay);
            if !finished.is_empty() {
                self.stream_fates.extend(finished);
                progress = true;
            }

            // Dynamic address allocation: drive the DHCP-over-DHT state
            // machine until the lease is confirmed, then bring the virtual
            // side up. Claiming waits for ring neighbours on both sides so a
            // half-converged ring cannot split-brain the atomic create. The
            // machine keeps running after the first bind too: a lease lost to
            // a healed partition re-claims, and the node re-binds to the
            // replacement address when it confirms.
            if self.allocator.is_some() {
                // Ring neighbours on both sides mean the ring has locally
                // converged; the time fallback keeps deployments too small to
                // ever reach two Near edges (e.g. bootstrap + one member)
                // from hanging unallocated forever.
                let ready = self.overlay.connections().count_kind(ConnectionKind::Near) >= 2
                    || (self.overlay.is_connected()
                        && now.saturating_since(self.overlay_started_at)
                            >= Duration::from_secs(10));
                let before = self.allocator.as_ref().map(|a| a.state());
                if let Some(alloc) = self.allocator.as_mut() {
                    alloc.poll(now, ready, &mut self.alloc_rng, &mut self.overlay);
                }
                let after = self.allocator.as_ref().map(|a| a.state());
                if after != before {
                    progress = true;
                }
                if let Some(DhcpState::Bound { ip }) = after {
                    if !self.app_started || ip != self.cfg.virtual_ip {
                        self.bind_lease(now);
                        progress = true;
                    }
                }
                // Re-allocation after a lost lease can end terminally (budget
                // spent, subnet exhausted). The old address belongs to the
                // partition winner now — relinquish it rather than keep
                // running as a zombie duplicate.
                if self.app_started
                    && matches!(
                        after,
                        Some(DhcpState::Failed | DhcpState::AddressSpaceExhausted)
                    )
                {
                    self.relinquish_address(now);
                    progress = true;
                }
            }

            // Lost leases: a TTL/2 renewal discovered a conflicting record
            // owning our address key (healed partition). The winner owns the
            // address *now* — tear the virtual side down immediately and
            // re-allocate; the node re-binds when a replacement confirms.
            for key in self.overlay.take_lost_leases() {
                progress = true;
                let bound_key = self
                    .allocator
                    .as_ref()
                    .and_then(|a| a.ip())
                    .map(ipop_services::dhcp::lease_key);
                if bound_key == Some(key) {
                    if let Some(alloc) = self.allocator.as_mut() {
                        alloc.on_lease_lost(now, &mut self.alloc_rng, &mut self.overlay);
                    }
                    if self.app_started {
                        self.relinquish_address(now);
                    }
                }
            }

            // DHT create replies: allocation claims. `existing` distinguishes
            // a real collision (draw a fresh candidate) from a quorum-write
            // failure (retry the same, unclaimed address).
            for (token, created, existing) in self.overlay.take_dht_create_replies() {
                progress = true;
                if let Some(alloc) = self.allocator.as_mut() {
                    alloc.on_create_reply(
                        now,
                        token,
                        created,
                        existing.is_some(),
                        &mut self.alloc_rng,
                        &mut self.overlay,
                    );
                }
            }

            // DHT get replies: allocator confirms, name lookups, resolution
            // probes, and Brunet-ARP resolutions releasing parked packets.
            let replies = self.overlay.take_dht_replies();
            if !replies.is_empty() {
                progress = true;
                for (token, value) in replies {
                    if let Some(alloc) = self.allocator.as_mut() {
                        if alloc.on_get_reply(
                            now,
                            token,
                            value.as_deref(),
                            &mut self.alloc_rng,
                            &mut self.overlay,
                        ) {
                            continue;
                        }
                    }
                    if let Some(res) = self.name_service.on_reply(now, token, value.as_deref()) {
                        self.name_results.push(res);
                        continue;
                    }
                    if let Some(res) =
                        self.name_service
                            .on_reverse_reply(now, token, value.as_deref())
                    {
                        self.reverse_results.push(res);
                        continue;
                    }
                    if self.probe_tokens.remove(&token) {
                        self.probe_results
                            .push((token, value.as_deref().and_then(BrunetArp::decode_mapping)));
                        continue;
                    }
                    let released = self
                        .brunet_arp
                        .as_mut()
                        .and_then(|arp| arp.on_reply(now, token, value));
                    if let Some((_, addr, packets)) = released {
                        for vpkt in packets {
                            match addr {
                                Some(a) => {
                                    self.metrics.tunneled_tx += 1;
                                    self.overlay.send_ip(now, a, vpkt.to_bytes());
                                }
                                None => self.metrics.not_virtual_dropped += 1,
                            }
                        }
                    }
                }
            }

            // Tap: frames the kernel transmitted (application traffic going out).
            while let Some(frame) = self.tap.user_read() {
                progress = true;
                match frame.payload {
                    FramePayload::Ipv4(vpkt) => {
                        let dst = vpkt.dst();
                        if dst == self.cfg.virtual_ip {
                            // Local loopback on the virtual interface.
                            self.deliver_virtual(now, vpkt);
                        } else if !self.cfg.in_virtual_space(dst) || dst == self.cfg.gateway_ip {
                            self.metrics.not_virtual_dropped += 1;
                        } else {
                            self.tunnel_out(ctx, vpkt);
                        }
                    }
                    FramePayload::Arp(_) => {
                        // ARP is contained within the host (paper Section III-A).
                        self.metrics.arp_contained += 1;
                    }
                    FramePayload::Other(..) => self.metrics.non_ip_dropped += 1,
                }
            }

            // Tap: frames IPOP injected (tunnelled traffic going up to the kernel).
            while let Some(frame) = self.tap.kernel_read() {
                progress = true;
                let (up, responses) = self.veth.process_frame(frame);
                for pkt in up {
                    self.vstack.handle_packet(now, pkt);
                }
                for f in responses {
                    self.tap.kernel_write(f);
                }
            }

            // Application (not before its deferred start on dynamic nodes).
            if self.app_started {
                let mut env = AppEnv {
                    stack: &mut self.vstack,
                    now,
                    rng: &mut self.app_rng,
                    host_name: &self.label,
                };
                self.app_next = self.app.poll(&mut env);
            }

            // Virtual stack output → Ethernet frames on the tap (kernel side).
            self.vstack.poll(now);
            for pkt in self.vstack.take_packets() {
                for frame in self.veth.encapsulate(pkt) {
                    self.tap.kernel_write(frame);
                }
                progress = true;
            }

            // Charge CPU for routed packets we forwarded on behalf of other nodes.
            let forwarded = self.overlay.stats().forwarded;
            if forwarded > self.last_forwarded {
                let delta = forwarded - self.last_forwarded;
                ctx.consume_cpu(cal.forward_cost_at_load(load) * delta);
                self.last_forwarded = forwarded;
                progress = true;
            }

            // Overlay output → physical transport → physical network.
            for (ep, msg) in self.overlay.take_outbox() {
                self.transport.send(&mut self.phys, now, ep, &msg);
                progress = true;
            }
            self.phys.poll(now);
            for pkt in self.phys.take_packets() {
                ctx.send(pkt);
                progress = true;
            }

            if !progress {
                fixpoint = true;
                break;
            }
        }
        self.arm_wakeup(ctx, fixpoint);
    }

    /// Deliver any queued packets whose user-level processing delay has elapsed,
    /// in both directions. Kept separate from `pump` so the borrows of the
    /// pending queues do not overlap the main loop's borrows.
    fn flush_pending(&mut self, now: SimTime) {
        if self.rx_pending_min.is_some_and(|m| m <= now) {
            let mut i = 0;
            while i < self.rx_pending.len() {
                if self.rx_pending[i].0 <= now {
                    let (_, vpkt) = self.rx_pending.remove(i);
                    self.deliver_virtual(now, vpkt);
                } else {
                    i += 1;
                }
            }
            self.rx_pending_min = self.rx_pending.iter().map(|(t, _)| *t).min();
        }
        if self.tx_pending_min.is_some_and(|m| m <= now) {
            let mut i = 0;
            while i < self.tx_pending.len() {
                if self.tx_pending[i].0 <= now {
                    let (_, vpkt) = self.tx_pending.remove(i);
                    self.dispatch_tunnel_out(now, vpkt);
                } else {
                    i += 1;
                }
            }
            self.tx_pending_min = self.tx_pending.iter().map(|(t, _)| *t).min();
        }
    }

    /// Bring the virtual side up on a confirmed dynamic lease: adopt the
    /// allocated address, rebuild the tap/adapter/virtual stack around it,
    /// register the hostname, and start the deferred application. The claim
    /// record already carries the Brunet-ARP mapping, so no extra publish is
    /// needed.
    fn bind_lease(&mut self, now: SimTime) {
        let Some(ip) = self.allocator.as_ref().and_then(|a| a.ip()) else {
            return;
        };
        self.cfg.virtual_ip = ip;
        self.label = format!("{}({})", self.host_name, ip);
        self.rebuild_virtual_side(ip);
        if let Some(name) = self.cfg.hostname.clone() {
            NameService::register(&mut self.overlay, now, &name, ip, self.cfg.lease_ttl);
        }
        let mut env = AppEnv {
            stack: &mut self.vstack,
            now,
            rng: &mut self.app_rng,
            host_name: &self.label,
        };
        self.app.on_start(&mut env);
        self.app_started = true;
    }

    /// Give up the virtual address: the lease is gone and no replacement
    /// could be allocated. The node degrades to its pre-bind state (overlay
    /// router with no virtual side) instead of keeping a conflicted address
    /// another node now legitimately owns — including tearing down the tap,
    /// adapter and virtual stack, whose in-flight timers (TCP retransmits)
    /// would otherwise keep emitting segments sourced from the old address.
    fn relinquish_address(&mut self, now: SimTime) {
        if let Some(name) = self.cfg.hostname.clone() {
            NameService::unregister(&mut self.overlay, now, &name, self.cfg.virtual_ip);
        }
        self.cfg.virtual_ip = Ipv4Addr::UNSPECIFIED;
        self.label = format!("{}(unbound)", self.host_name);
        self.app_started = false;
        self.rebuild_virtual_side(Ipv4Addr::UNSPECIFIED);
    }

    /// Replace the tap, adapter and virtual stack with fresh instances bound
    /// to `ip` (the pre-bind placeholder when unspecified), and drop every
    /// packet queued against the previous address. Shared by (re-)bind and
    /// relinquish so the two rebuild sequences cannot drift apart.
    fn rebuild_virtual_side(&mut self, ip: Ipv4Addr) {
        let tap_mac = MacAddr::local(u64::from(u32::from(ip)));
        self.gateway_mac =
            MacAddr::local(0xFFFF_FFFF_0000 | u64::from(u32::from(self.cfg.gateway_ip)) & 0xFFFF);
        self.tap = TapDevice::new(tap_mac);
        self.veth =
            EthAdapter::with_static_gateway(tap_mac, ip, self.cfg.gateway_ip, self.gateway_mac);
        self.vstack = NetStack::new(StackConfig::new(ip).with_mtu(self.cfg.virtual_mtu));
        self.clear_pending_virtual_state();
    }

    /// Drop every queued packet tied to the current virtual address: the
    /// rx/tx processing queues and the Brunet-ARP parked packets (released by
    /// a late reply, they would emit from an address this node no longer
    /// holds). Shared by re-bind and relinquish so the two stay in lockstep.
    fn clear_pending_virtual_state(&mut self) {
        self.rx_pending.clear();
        self.rx_pending_min = None;
        self.tx_pending.clear();
        self.tx_pending_min = None;
        if let Some(arp) = self.brunet_arp.as_mut() {
            arp.reset_pending();
        }
    }

    fn arm_wakeup(&mut self, ctx: &mut HostCtx<'_, '_>, fixpoint: bool) {
        let now = ctx.now();
        let mut next = self.next_overlay_tick;
        if let Some(t) = self.phys.next_timeout() {
            next = next.min(t);
        }
        if let Some(t) = self.vstack.next_timeout() {
            next = next.min(t);
        }
        if let Some(t) = self.app_next {
            next = next.min(t);
        }
        if let Some(t) = self.rx_pending_min {
            next = next.min(t);
        }
        if let Some(t) = self.tx_pending_min {
            next = next.min(t);
        }
        // Remember this pass so redundant wakeups at the same instant can
        // replay the re-arm without re-running the (fixpoint) pump.
        self.last_pass = fixpoint.then_some((now, next));
        let next = next.max(now + Duration::from_micros(10));
        let need_new = match self.scheduled_wakeup {
            Some(t) => next < t || t <= now,
            None => true,
        };
        if need_new {
            ctx.set_timer(next - now, WAKEUP);
            self.scheduled_wakeup = Some(next);
        }
    }
}

impl HostAgent for IpopHostAgent {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, '_>) {
        let now = ctx.now();
        self.host_name = ctx.name().to_string();
        self.label = format!("{}({})", self.host_name, self.cfg.virtual_ip);
        self.overlay_started_at = now;
        self.overlay.start(now);
        if self.allocator.is_none() {
            // Static node: the virtual side is live immediately.
            self.publish_own_mapping(now);
            if let Some(name) = self.cfg.hostname.clone() {
                NameService::register(
                    &mut self.overlay,
                    now,
                    &name,
                    self.cfg.virtual_ip,
                    self.cfg.lease_ttl,
                );
            }
            let mut env = AppEnv {
                stack: &mut self.vstack,
                now,
                rng: &mut self.app_rng,
                host_name: &self.label,
            };
            self.app.on_start(&mut env);
            self.app_started = true;
        }
        // Dynamic node: the tap, virtual stack and application wait in
        // `bind_lease` until the allocator confirms an address.
        self.pump(ctx);
    }

    fn on_packet(&mut self, ctx: &mut HostCtx<'_, '_>, pkt: Ipv4Packet) {
        self.last_pass = None;
        self.phys.handle_packet(ctx.now(), pkt);
        self.flush_pending(ctx.now());
        self.pump(ctx);
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_, '_>, token: TimerToken) {
        if token == WAKEUP {
            // Redundant wakeup at an instant the agent already pumped to a
            // fixpoint, with no packet in between: flushing and pumping again
            // would make no progress (every queued delivery is strictly in the
            // future, every stack is drained for this instant), so replay the
            // re-arm the full pass performed and skip the rest. This is what
            // keeps duplicate wakeups — scheduled whenever an earlier deadline
            // superseded a queued timer — from costing a full pump each.
            if let Some((at, raw_next)) = self.last_pass {
                if at == ctx.now() {
                    let now = ctx.now();
                    let next = raw_next.max(now + Duration::from_micros(10));
                    ctx.set_timer(next - now, WAKEUP);
                    self.scheduled_wakeup = Some(next);
                    return;
                }
            }
            self.scheduled_wakeup = None;
        }
        self.flush_pending(ctx.now());
        self.pump(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
