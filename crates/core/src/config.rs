//! IPOP node configuration.

use std::net::Ipv4Addr;

use ipop_overlay::packets::Endpoint;
use ipop_overlay::transport::TransportMode;
use ipop_simcore::Duration;

/// Configuration of one IPOP node (paper Section III).
#[derive(Clone, Debug)]
pub struct IpopConfig {
    /// The virtual IP address assigned to this host's tap interface. Must be unique
    /// within the virtual address space; the node's overlay address is its SHA-1
    /// hash. `0.0.0.0` (unspecified) when the node allocates its address
    /// dynamically — see [`IpopConfig::dynamic`].
    pub virtual_ip: Ipv4Addr,
    /// When set, the node joins with no address and allocates one from this
    /// subnet through the DHCP-over-DHT allocator (`ipop-services`). Implies
    /// Brunet-ARP: with a dynamic address the overlay address cannot be the
    /// hash of the virtual IP, so mappings must live in the DHT.
    pub dynamic_subnet: Option<(Ipv4Addr, u8)>,
    /// Hostname registered in (and resolvable through) the overlay name
    /// service once the node has an address.
    pub hostname: Option<String>,
    /// Lifetime of this node's DHT registrations (address lease, Brunet-ARP
    /// mappings, name records). Renewed at half this interval; after a crash
    /// the records age out one TTL later.
    pub lease_ttl: Duration,
    /// The virtual address space (used only to sanity-check destinations).
    pub virtual_prefix: (Ipv4Addr, u8),
    /// The fabricated gateway IP for the static-ARP trick (must not collide with a
    /// real virtual IP).
    pub gateway_ip: Ipv4Addr,
    /// MTU of the virtual interface. Kept below the physical MTU so an encapsulated
    /// virtual packet still fits in a single physical datagram.
    pub virtual_mtu: usize,
    /// UDP/TCP port the overlay transport uses on the physical network.
    pub overlay_port: u16,
    /// Whether Brunet runs over UDP or TCP (the two modes compared in Tables I-III).
    pub transport: TransportMode,
    /// Physical endpoints of nodes already in the overlay.
    pub bootstrap: Vec<Endpoint>,
    /// Virtual addresses the dynamic allocator must never draw, *besides* the
    /// fabricated gateway (e.g. guest-VM IPs a workload assigns by hand).
    pub reserved_ips: Vec<Ipv4Addr>,
    /// Enable the Brunet-ARP mapper (paper Section III-E): IP→overlay-address
    /// mappings are registered in and resolved from the DHT instead of being
    /// derived directly from the destination IP. Required for hosts that route for
    /// multiple virtual IPs or for migrating VMs.
    pub brunet_arp: bool,
    /// Lifetime of Brunet-ARP cache entries at senders.
    pub brunet_arp_cache_ttl: Duration,
    /// Interval of the overlay maintenance tick.
    pub overlay_tick: Duration,
    /// Disable shortcut connections (ablation switch, Section V.1 discussion).
    pub shortcuts: bool,
    /// Idle interval before the overlay link monitor probes an edge (fast
    /// dead-edge detection; see `ipop_overlay::OverlayConfig`).
    pub link_probe_interval: Duration,
    /// Phi-accrual edge suspicion: weigh probe misses by the edge's observed
    /// loss rate instead of a fixed consecutive-miss limit (see
    /// `ipop_overlay::OverlayConfig::phi_accrual`).
    pub phi_accrual: bool,
    /// Suspicion threshold at which an edge is declared dead (φ units).
    pub phi_threshold: f64,
    /// Interval between DHT anti-entropy sweeps (replica-set digest
    /// exchanges that converge diverged copies without waiting for a read).
    pub dht_sweep_interval: Duration,
    /// Maximum out-degree of the pub/sub relay tree at every node (see
    /// `ipop_overlay::pubsub`).
    pub pubsub_fanout: usize,
    /// Lifetime of this node's topic subscriptions; renewed at half this
    /// interval while subscribed, aged out one TTL after a crash.
    pub pubsub_ttl: Duration,
    /// Append (and require) an FNV-64 integrity tag on every overlay link
    /// message, so corrupted-but-parseable datagrams are dropped at the
    /// transport instead of minting phantom peers. Every node in a deployment
    /// must agree on this switch.
    pub link_integrity_tag: bool,
}

impl IpopConfig {
    /// A node with virtual address `virtual_ip` and defaults matching the paper's
    /// prototype (UDP transport, 172.16.0.0/16 virtual space, port 4001).
    pub fn new(virtual_ip: Ipv4Addr) -> Self {
        IpopConfig {
            virtual_ip,
            dynamic_subnet: None,
            hostname: None,
            lease_ttl: Duration::from_secs(120),
            virtual_prefix: (Ipv4Addr::new(172, 16, 0, 0), 16),
            gateway_ip: Ipv4Addr::new(172, 16, 255, 254),
            virtual_mtu: 1400,
            overlay_port: 4001,
            transport: TransportMode::Udp,
            bootstrap: Vec::new(),
            reserved_ips: Vec::new(),
            brunet_arp: false,
            brunet_arp_cache_ttl: Duration::from_secs(300),
            overlay_tick: Duration::from_millis(500),
            shortcuts: true,
            link_probe_interval: Duration::from_secs(1),
            phi_accrual: true,
            phi_threshold: 6.0,
            dht_sweep_interval: Duration::from_secs(10),
            pubsub_fanout: 4,
            pubsub_ttl: Duration::from_secs(120),
            link_integrity_tag: false,
        }
    }

    /// A node that joins knowing only the virtual subnet: its address is drawn
    /// and claimed through the DHCP-over-DHT allocator, its overlay address is
    /// random, and Brunet-ARP resolves IPs to overlay addresses. The
    /// fabricated gateway is the subnet's second-highest host address (the
    /// allocator never draws it).
    pub fn dynamic(subnet: (Ipv4Addr, u8)) -> Self {
        let (net, len) = subnet;
        assert!(len <= 30, "subnet too small for dynamic allocation");
        let mask = u32::MAX << (32 - len);
        let net = u32::from(net) & mask;
        let gateway = Ipv4Addr::from(net | (!mask - 1));
        let mut cfg = Self::new(Ipv4Addr::UNSPECIFIED);
        cfg.dynamic_subnet = Some((Ipv4Addr::from(net), len));
        cfg.virtual_prefix = (Ipv4Addr::from(net), len);
        cfg.gateway_ip = gateway;
        cfg.brunet_arp = true;
        cfg
    }

    /// Builder: register `hostname` in the overlay name service.
    pub fn with_hostname(mut self, hostname: &str) -> Self {
        self.hostname = Some(hostname.to_string());
        self
    }

    /// Builder: set the lease TTL for this node's DHT registrations.
    pub fn with_lease_ttl(mut self, ttl: Duration) -> Self {
        self.lease_ttl = ttl;
        self
    }

    /// Builder: set bootstrap endpoints.
    pub fn with_bootstrap(mut self, bootstrap: Vec<Endpoint>) -> Self {
        self.bootstrap = bootstrap;
        self
    }

    /// Builder: select the overlay transport mode.
    pub fn with_transport(mut self, mode: TransportMode) -> Self {
        self.transport = mode;
        self
    }

    /// Builder: enable the Brunet-ARP DHT mapper.
    pub fn with_brunet_arp(mut self) -> Self {
        self.brunet_arp = true;
        self
    }

    /// Builder: set the sender-side Brunet-ARP cache TTL. This bounds how
    /// long a migrated VM's packets chase the old host: a sender re-resolves
    /// (and picks up the new mapping) at most one cache TTL after migration.
    pub fn with_brunet_arp_cache_ttl(mut self, ttl: Duration) -> Self {
        self.brunet_arp_cache_ttl = ttl;
        self
    }

    /// Builder: virtual addresses the dynamic allocator must never draw
    /// (besides the gateway).
    pub fn with_reserved_ips(mut self, ips: Vec<Ipv4Addr>) -> Self {
        self.reserved_ips = ips;
        self
    }

    /// Builder: disable shortcut connections.
    pub fn without_shortcuts(mut self) -> Self {
        self.shortcuts = false;
        self
    }

    /// Builder: set the idle interval before the link monitor probes an
    /// overlay edge.
    pub fn with_link_probe_interval(mut self, interval: Duration) -> Self {
        self.link_probe_interval = interval;
        self
    }

    /// Builder: fall back to the fixed consecutive-miss edge verdict
    /// (pre-phi behaviour; ablation switch).
    pub fn without_phi_accrual(mut self) -> Self {
        self.phi_accrual = false;
        self
    }

    /// Builder: set the phi-accrual suspicion threshold.
    pub fn with_phi_threshold(mut self, threshold: f64) -> Self {
        self.phi_threshold = threshold;
        self
    }

    /// Builder: set the interval between DHT anti-entropy sweeps.
    pub fn with_dht_sweep_interval(mut self, interval: Duration) -> Self {
        self.dht_sweep_interval = interval;
        self
    }

    /// Builder: set the maximum out-degree of the pub/sub relay tree.
    pub fn with_pubsub_fanout(mut self, fanout: usize) -> Self {
        self.pubsub_fanout = fanout.max(1);
        self
    }

    /// Builder: set the topic subscription TTL.
    pub fn with_pubsub_ttl(mut self, ttl: Duration) -> Self {
        self.pubsub_ttl = ttl;
        self
    }

    /// Builder: enable the FNV-64 link integrity tag. Both ends of every
    /// link must enable it — tagged and untagged nodes cannot interoperate.
    pub fn with_link_integrity_tag(mut self, on: bool) -> Self {
        self.link_integrity_tag = on;
        self
    }

    /// Is `ip` inside the virtual address space?
    pub fn in_virtual_space(&self, ip: Ipv4Addr) -> bool {
        let (net, len) = self.virtual_prefix;
        if len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - len);
        (u32::from(ip) & mask) == (u32::from(net) & mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = IpopConfig::new(Ipv4Addr::new(172, 16, 0, 2));
        assert!(cfg.in_virtual_space(cfg.virtual_ip));
        assert!(cfg.in_virtual_space(cfg.gateway_ip));
        assert!(!cfg.in_virtual_space(Ipv4Addr::new(10, 0, 0, 1)));
        assert!(cfg.virtual_mtu < 1500);
        assert!(!cfg.brunet_arp);
        assert!(cfg.shortcuts);
    }

    #[test]
    fn dynamic_config_derives_subnet_fields() {
        let cfg = IpopConfig::dynamic((Ipv4Addr::new(172, 16, 9, 77), 24)).with_hostname("w1");
        assert!(cfg.virtual_ip.is_unspecified());
        assert_eq!(
            cfg.dynamic_subnet,
            Some((Ipv4Addr::new(172, 16, 9, 0), 24)),
            "host bits are masked off"
        );
        assert_eq!(cfg.gateway_ip, Ipv4Addr::new(172, 16, 9, 254));
        assert!(cfg.brunet_arp, "dynamic addressing requires Brunet-ARP");
        assert!(cfg.in_virtual_space(Ipv4Addr::new(172, 16, 9, 3)));
        assert!(!cfg.in_virtual_space(Ipv4Addr::new(172, 16, 10, 3)));
        assert_eq!(cfg.hostname.as_deref(), Some("w1"));
    }

    #[test]
    fn builders_compose() {
        let cfg = IpopConfig::new(Ipv4Addr::new(172, 16, 0, 3))
            .with_transport(TransportMode::Tcp)
            .with_bootstrap(vec![(Ipv4Addr::new(128, 227, 56, 83), 4001)])
            .with_brunet_arp()
            .without_shortcuts()
            .with_pubsub_fanout(0)
            .with_pubsub_ttl(Duration::from_secs(30))
            .with_link_integrity_tag(true);
        assert_eq!(cfg.transport, TransportMode::Tcp);
        assert_eq!(cfg.bootstrap.len(), 1);
        assert!(cfg.brunet_arp);
        assert!(!cfg.shortcuts);
        assert_eq!(cfg.pubsub_fanout, 1, "fan-out is clamped to at least 1");
        assert_eq!(cfg.pubsub_ttl, Duration::from_secs(30));
        assert!(cfg.link_integrity_tag);
    }
}
