//! IPOP node configuration.

use std::net::Ipv4Addr;

use ipop_overlay::packets::Endpoint;
use ipop_overlay::transport::TransportMode;
use ipop_simcore::Duration;

/// Configuration of one IPOP node (paper Section III).
#[derive(Clone, Debug)]
pub struct IpopConfig {
    /// The virtual IP address assigned to this host's tap interface. Must be unique
    /// within the virtual address space; the node's overlay address is its SHA-1
    /// hash.
    pub virtual_ip: Ipv4Addr,
    /// The virtual address space (used only to sanity-check destinations).
    pub virtual_prefix: (Ipv4Addr, u8),
    /// The fabricated gateway IP for the static-ARP trick (must not collide with a
    /// real virtual IP).
    pub gateway_ip: Ipv4Addr,
    /// MTU of the virtual interface. Kept below the physical MTU so an encapsulated
    /// virtual packet still fits in a single physical datagram.
    pub virtual_mtu: usize,
    /// UDP/TCP port the overlay transport uses on the physical network.
    pub overlay_port: u16,
    /// Whether Brunet runs over UDP or TCP (the two modes compared in Tables I-III).
    pub transport: TransportMode,
    /// Physical endpoints of nodes already in the overlay.
    pub bootstrap: Vec<Endpoint>,
    /// Enable the Brunet-ARP mapper (paper Section III-E): IP→overlay-address
    /// mappings are registered in and resolved from the DHT instead of being
    /// derived directly from the destination IP. Required for hosts that route for
    /// multiple virtual IPs or for migrating VMs.
    pub brunet_arp: bool,
    /// Lifetime of Brunet-ARP cache entries at senders.
    pub brunet_arp_cache_ttl: Duration,
    /// Interval of the overlay maintenance tick.
    pub overlay_tick: Duration,
    /// Disable shortcut connections (ablation switch, Section V.1 discussion).
    pub shortcuts: bool,
}

impl IpopConfig {
    /// A node with virtual address `virtual_ip` and defaults matching the paper's
    /// prototype (UDP transport, 172.16.0.0/16 virtual space, port 4001).
    pub fn new(virtual_ip: Ipv4Addr) -> Self {
        IpopConfig {
            virtual_ip,
            virtual_prefix: (Ipv4Addr::new(172, 16, 0, 0), 16),
            gateway_ip: Ipv4Addr::new(172, 16, 255, 254),
            virtual_mtu: 1400,
            overlay_port: 4001,
            transport: TransportMode::Udp,
            bootstrap: Vec::new(),
            brunet_arp: false,
            brunet_arp_cache_ttl: Duration::from_secs(300),
            overlay_tick: Duration::from_millis(500),
            shortcuts: true,
        }
    }

    /// Builder: set bootstrap endpoints.
    pub fn with_bootstrap(mut self, bootstrap: Vec<Endpoint>) -> Self {
        self.bootstrap = bootstrap;
        self
    }

    /// Builder: select the overlay transport mode.
    pub fn with_transport(mut self, mode: TransportMode) -> Self {
        self.transport = mode;
        self
    }

    /// Builder: enable the Brunet-ARP DHT mapper.
    pub fn with_brunet_arp(mut self) -> Self {
        self.brunet_arp = true;
        self
    }

    /// Builder: disable shortcut connections.
    pub fn without_shortcuts(mut self) -> Self {
        self.shortcuts = false;
        self
    }

    /// Is `ip` inside the virtual address space?
    pub fn in_virtual_space(&self, ip: Ipv4Addr) -> bool {
        let (net, len) = self.virtual_prefix;
        if len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - len);
        (u32::from(ip) & mask) == (u32::from(net) & mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = IpopConfig::new(Ipv4Addr::new(172, 16, 0, 2));
        assert!(cfg.in_virtual_space(cfg.virtual_ip));
        assert!(cfg.in_virtual_space(cfg.gateway_ip));
        assert!(!cfg.in_virtual_space(Ipv4Addr::new(10, 0, 0, 1)));
        assert!(cfg.virtual_mtu < 1500);
        assert!(!cfg.brunet_arp);
        assert!(cfg.shortcuts);
    }

    #[test]
    fn builders_compose() {
        let cfg = IpopConfig::new(Ipv4Addr::new(172, 16, 0, 3))
            .with_transport(TransportMode::Tcp)
            .with_bootstrap(vec![(Ipv4Addr::new(128, 227, 56, 83), 4001)])
            .with_brunet_arp()
            .without_shortcuts();
        assert_eq!(cfg.transport, TransportMode::Tcp);
        assert_eq!(cfg.bootstrap.len(), 1);
        assert!(cfg.brunet_arp);
        assert!(!cfg.shortcuts);
    }
}
