//! # IPOP — IP over P2P
//!
//! A from-scratch Rust reproduction of *"IP over P2P: Enabling Self-configuring
//! Virtual IP Networks for Grid Computing"* (Ganguly, Agrawal, Boykin, Figueiredo —
//! IPDPS 2006).
//!
//! IPOP aggregates machines spread across multiple administrative domains — behind
//! NATs and firewalls — into one flat virtual IP network. Each host exposes a
//! virtual ("tap") interface; the user-level IPOP node captures the Ethernet frames
//! the kernel writes to it, extracts the IPv4 packets, and tunnels them through a
//! self-configuring structured P2P overlay (Brunet) to the node that owns the
//! destination virtual IP, where they are re-injected. Unmodified applications
//! (ping, ttcp, SSH, MPI, NFS) then work across wide-area, NATed, firewalled
//! resources exactly as they would on a LAN.
//!
//! ## Crate layout
//!
//! * [`config`] — per-node configuration (virtual IP, transport mode, Brunet-ARP).
//! * [`node`] — [`IpopHostAgent`]: the full IPOP node (physical stack + overlay +
//!   tap + virtual stack + application) as a simulation host agent.
//! * [`plain`] — [`PlainHostAgent`]: the same application run directly on the
//!   physical network (the "physical" baseline rows of the paper's tables).
//! * [`app`] — the [`VirtualApp`] trait the workloads in `ipop-apps` implement.
//! * [`brunet_arp`] — the DHT-based IP→overlay-address mapper of Section III-E.
//! * [`builder`] — one-call deployment of an IPOP virtual network over a simulated
//!   physical topology.
//!
//! ## Quick start
//!
//! ```
//! use ipop::prelude::*;
//! use std::net::Ipv4Addr;
//!
//! // A physical network: two hosts on one LAN.
//! let mut net = Network::new(42);
//! let (a, b, _, _) = ipop_netsim::lan_pair(&mut net);
//!
//! // Join both hosts to a virtual 172.16.0.0/16 network.
//! deploy_ipop(
//!     &mut net,
//!     vec![
//!         IpopMember::router(a, Ipv4Addr::new(172, 16, 0, 1)),
//!         IpopMember::router(b, Ipv4Addr::new(172, 16, 0, 2)),
//!     ],
//!     DeployOptions::udp(),
//! );
//!
//! // Run the simulation until the overlay has self-configured.
//! let mut sim = NetworkSim::new(net);
//! sim.run_for(ipop_simcore::Duration::from_secs(10));
//! let node = sim.agent_as::<IpopHostAgent>(b).unwrap();
//! assert!(node.is_connected());
//! ```

pub mod app;
pub mod brunet_arp;
pub mod builder;
pub mod config;
pub mod node;
pub mod plain;

pub use app::{AppEnv, NullApp, VirtualApp};
pub use brunet_arp::{BrunetArp, Resolution};
pub use builder::{deploy_ipop, deploy_plain, DeployOptions, IpopMember};
pub use config::IpopConfig;
pub use ipop_services::vstream::{StreamFate, VirtualStream};
pub use node::{IpopHostAgent, IpopMetrics};
pub use plain::PlainHostAgent;

/// Convenient re-exports for examples and experiment harnesses.
pub mod prelude {
    pub use crate::app::{AppEnv, NullApp, VirtualApp};
    pub use crate::builder::{deploy_ipop, deploy_plain, DeployOptions, IpopMember};
    pub use crate::config::IpopConfig;
    pub use crate::node::IpopHostAgent;
    pub use crate::plain::PlainHostAgent;
    pub use ipop_netsim::{fig4_testbed, lan_pair, planetlab, wan_pair, Network, NetworkSim};
    pub use ipop_overlay::transport::TransportMode;
    pub use ipop_simcore::{Duration, SimTime};
}
