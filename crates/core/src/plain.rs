//! The baseline host agent: the same application run directly on the physical
//! network, with no IPOP in the path.
//!
//! Every experiment in the paper compares IPOP against the physical network
//! ("physical" rows of Tables I–III). [`PlainHostAgent`] provides that baseline:
//! it owns a single network stack attached to the physical interface and polls the
//! identical [`VirtualApp`] object against it, so the only difference between the
//! two runs is the presence of the virtualization layer.

use std::any::Any;
use std::net::Ipv4Addr;

use ipop_netsim::{HostAgent, HostCtx};
use ipop_netstack::{NetStack, StackConfig};
use ipop_packet::ipv4::Ipv4Packet;
use ipop_simcore::{Duration, SimTime, StreamRng, TimerToken};

use crate::app::{AppEnv, VirtualApp};

const WAKEUP: TimerToken = TimerToken(2);

/// A host agent running an application directly on the physical network.
pub struct PlainHostAgent {
    stack: NetStack,
    app: Box<dyn VirtualApp>,
    app_rng: StreamRng,
    app_next: Option<SimTime>,
    scheduled_wakeup: Option<SimTime>,
    /// Memo of the last completed pump pass `(instant, unclamped deadline)`,
    /// valid only while no packet has arrived since; lets redundant
    /// same-instant wakeups replay the re-arm without re-running the pump.
    last_pass: Option<(SimTime, Option<SimTime>)>,
    label: String,
}

impl PlainHostAgent {
    /// Build a baseline agent for a host with physical address `addr`.
    pub fn new(addr: Ipv4Addr, app: Box<dyn VirtualApp>) -> Self {
        let seed = u64::from(u32::from(addr)) ^ 0x00ba_5e11;
        PlainHostAgent {
            stack: NetStack::new(StackConfig::new(addr)),
            app,
            app_rng: StreamRng::new(seed, "plain.app"),
            app_next: None,
            scheduled_wakeup: None,
            last_pass: None,
            label: format!("plain-{addr}"),
        }
    }

    /// Downcast the embedded application.
    pub fn app_as<T: 'static>(&self) -> Option<&T> {
        self.app.as_any().downcast_ref::<T>()
    }

    /// Mutable downcast of the embedded application.
    pub fn app_as_mut<T: 'static>(&mut self) -> Option<&mut T> {
        self.last_pass = None;
        self.app.as_any_mut().downcast_mut::<T>()
    }

    fn pump(&mut self, ctx: &mut HostCtx<'_, '_>) {
        let now = ctx.now();
        let mut fixpoint = false;
        for _ in 0..32 {
            let mut env = AppEnv {
                stack: &mut self.stack,
                now,
                rng: &mut self.app_rng,
                host_name: &self.label,
            };
            self.app_next = self.app.poll(&mut env);
            self.stack.poll(now);
            let out = self.stack.take_packets();
            if out.is_empty() {
                fixpoint = true;
                break;
            }
            for pkt in out {
                ctx.send(pkt);
            }
        }
        self.arm_wakeup(ctx, fixpoint);
    }

    fn arm_wakeup(&mut self, ctx: &mut HostCtx<'_, '_>, fixpoint: bool) {
        let now = ctx.now();
        let mut next: Option<SimTime> = self.stack.next_timeout();
        if let Some(t) = self.app_next {
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        self.last_pass = fixpoint.then_some((now, next));
        let Some(next) = next else { return };
        let next = next.max(now + Duration::from_micros(10));
        let need_new = match self.scheduled_wakeup {
            Some(t) => next < t || t <= now,
            None => true,
        };
        if need_new {
            ctx.set_timer(next - now, WAKEUP);
            self.scheduled_wakeup = Some(next);
        }
    }
}

impl HostAgent for PlainHostAgent {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, '_>) {
        let now = ctx.now();
        self.label = format!("{}({})", ctx.name(), ctx.addr());
        let mut env = AppEnv {
            stack: &mut self.stack,
            now,
            rng: &mut self.app_rng,
            host_name: &self.label,
        };
        self.app.on_start(&mut env);
        self.pump(ctx);
    }

    fn on_packet(&mut self, ctx: &mut HostCtx<'_, '_>, pkt: Ipv4Packet) {
        self.last_pass = None;
        self.stack.handle_packet(ctx.now(), pkt);
        self.pump(ctx);
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_, '_>, token: TimerToken) {
        if token == WAKEUP {
            // Redundant same-instant wakeup after a fixpoint pass: replay the
            // re-arm the full pass would perform (see IpopHostAgent::on_timer).
            if let Some((at, raw_next)) = self.last_pass {
                if at == ctx.now() {
                    let now = ctx.now();
                    if let Some(raw) = raw_next {
                        let next = raw.max(now + Duration::from_micros(10));
                        ctx.set_timer(next - now, WAKEUP);
                        self.scheduled_wakeup = Some(next);
                    }
                    return;
                }
            }
            self.scheduled_wakeup = None;
        }
        self.pump(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
