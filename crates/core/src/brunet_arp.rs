//! Brunet-ARP: DHT-based mapping from virtual IP addresses to overlay addresses.
//!
//! The base IPOP design maps an IP packet's destination straight to the overlay
//! address `SHA-1(dst_ip)`, which requires one overlay node per virtual IP. The
//! paper's Section III-E proposes Brunet-ARP to lift that restriction: a node that
//! "routes for" a virtual IP registers the mapping `SHA-1(ip) → its own overlay
//! address` at the node owning that key (the *Brunet-ARP-Mapper*); a sender
//! resolves the destination IP by querying the mapper, caches the answer, and
//! re-resolves when the cache entry expires (which is also how VM migration is
//! picked up).
//!
//! This module holds the sender-side resolver state (cache, pending packets and
//! outstanding queries); the DHT itself is the overlay's.

use std::collections::{BTreeMap, VecDeque};
use std::net::Ipv4Addr;

use ipop_overlay::Address;
use ipop_packet::ipv4::Ipv4Packet;
use ipop_packet::Bytes;
use ipop_simcore::{Duration, SimTime};

/// Default bound on packets parked per unresolved destination. Traffic to an
/// unresolvable IP must not grow memory without limit; beyond this the oldest
/// parked packet is dropped (counted in [`BrunetArp::dropped`]).
pub const DEFAULT_PARK_LIMIT: usize = 32;

/// How long an unanswered resolution query blocks re-querying. A `DhtGet`
/// whose reply is lost (dead coordinator, routed into a crashed node) must
/// not pin the destination in `Pending` forever — after this long the next
/// packet issues a fresh query.
pub const QUERY_TIMEOUT: Duration = Duration::from_secs(5);

/// Outcome of a resolution attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Resolution {
    /// The destination's overlay address is known (cache hit or direct mapping).
    Resolved(Address),
    /// A DHT query is required; the caller should issue `dht_get(key)` and park the
    /// packet until the reply arrives.
    NeedsQuery(Address),
    /// A query for this destination is already outstanding; just park the packet.
    Pending,
}

/// Sender-side Brunet-ARP resolver.
pub struct BrunetArp {
    cache_ttl: Duration,
    cache: BTreeMap<Ipv4Addr, (Address, SimTime)>,
    /// Packets waiting for a resolution, per destination IP. Bounded to
    /// `park_limit` per destination, drop-oldest.
    parked: BTreeMap<Ipv4Addr, VecDeque<Ipv4Packet>>,
    park_limit: usize,
    /// Outstanding DHT query tokens → the IP they resolve and when the query
    /// was issued (queries older than [`QUERY_TIMEOUT`] no longer block a
    /// fresh query; their late replies are still accepted).
    outstanding: BTreeMap<u64, (Ipv4Addr, SimTime)>,
    /// Statistics.
    pub cache_hits: u64,
    /// Statistics.
    pub cache_misses: u64,
    /// Statistics: resolutions that found no mapping in the DHT.
    pub failed: u64,
    /// Statistics: parked packets dropped because a destination's queue was full.
    pub dropped: u64,
}

impl BrunetArp {
    /// A resolver whose cache entries live for `cache_ttl`.
    pub fn new(cache_ttl: Duration) -> Self {
        BrunetArp {
            cache_ttl,
            cache: BTreeMap::new(),
            parked: BTreeMap::new(),
            park_limit: DEFAULT_PARK_LIMIT,
            outstanding: BTreeMap::new(),
            cache_hits: 0,
            cache_misses: 0,
            failed: 0,
            dropped: 0,
        }
    }

    /// Builder: override the per-destination parked-packet bound.
    pub fn with_park_limit(mut self, limit: usize) -> Self {
        self.park_limit = limit.max(1);
        self
    }

    /// The DHT key under which the mapping for `ip` is stored: SHA-1 of the
    /// address, i.e. the same point on the ring the base design would send to
    /// (and the same key the DHCP-over-DHT allocator claims).
    pub fn key_for(ip: Ipv4Addr) -> Address {
        ipop_services::dhcp::lease_key(ip)
    }

    /// Encode an overlay address as a DHT value (shared buffer; storing and
    /// replicating it never copy). Delegates to the allocator's lease codec:
    /// a DHCP-over-DHT claim *is* a Brunet-ARP mapping, so the two must stay
    /// byte-compatible by construction, not by convention.
    pub fn encode_mapping(addr: &Address) -> Bytes {
        ipop_services::dhcp::encode_owner(addr)
    }

    /// Decode a DHT value back into an overlay address.
    pub fn decode_mapping(value: &[u8]) -> Option<Address> {
        ipop_services::dhcp::decode_owner(value)
    }

    /// Number of live cache entries.
    pub fn cached(&self) -> usize {
        self.cache.len()
    }

    /// Number of parked packets across all destinations.
    pub fn parked_packets(&self) -> usize {
        self.parked.values().map(VecDeque::len).sum()
    }

    /// Look up the overlay address for `dst`, indicating whether a DHT query is
    /// needed. The caller parks `pkt` with [`BrunetArp::park`] when a query is
    /// required or pending.
    pub fn resolve(&mut self, now: SimTime, dst: Ipv4Addr) -> Resolution {
        if let Some((addr, stored_at)) = self.cache.get(&dst) {
            if now.saturating_since(*stored_at) < self.cache_ttl {
                self.cache_hits += 1;
                return Resolution::Resolved(*addr);
            }
            self.cache.remove(&dst);
        }
        self.cache_misses += 1;
        if self
            .outstanding
            .values()
            .any(|(ip, issued)| *ip == dst && now.saturating_since(*issued) < QUERY_TIMEOUT)
        {
            return Resolution::Pending;
        }
        Resolution::NeedsQuery(Self::key_for(dst))
    }

    /// Record that DHT query `token` is resolving `dst`. Every timed-out
    /// entry is pruned (not just this destination's) — without this, a lost
    /// reply for a destination never queried again would leak its map entry
    /// for the life of the node. Pruned tokens' late replies are dropped; a
    /// fresh query answers instead.
    pub fn query_issued(&mut self, now: SimTime, token: u64, dst: Ipv4Addr) {
        self.outstanding
            .retain(|_, (_, issued)| now.saturating_since(*issued) < QUERY_TIMEOUT);
        self.outstanding.insert(token, (dst, now));
    }

    /// Park a packet until `dst` resolves. When the destination's queue is
    /// full the oldest parked packet is dropped (and counted), so traffic to
    /// an unresolvable IP occupies bounded memory.
    pub fn park(&mut self, dst: Ipv4Addr, pkt: Ipv4Packet) {
        let queue = self.parked.entry(dst).or_default();
        if queue.len() >= self.park_limit {
            queue.pop_front();
            self.dropped += 1;
        }
        queue.push_back(pkt);
    }

    /// Process a DHT reply. Returns the resolved destination, its overlay address
    /// (if the mapping existed) and any packets that were waiting for it.
    pub fn on_reply(
        &mut self,
        now: SimTime,
        token: u64,
        value: Option<Bytes>,
    ) -> Option<(Ipv4Addr, Option<Address>, Vec<Ipv4Packet>)> {
        let (dst, _) = self.outstanding.remove(&token)?;
        let addr = value.as_deref().and_then(Self::decode_mapping);
        let waiting: Vec<Ipv4Packet> = self.parked.remove(&dst).map(Vec::from).unwrap_or_default();
        match addr {
            Some(a) => {
                self.cache.insert(dst, (a, now));
            }
            None => {
                self.failed += 1;
            }
        }
        Some((dst, addr, waiting))
    }

    /// Drop the cached mapping for `dst` (e.g. after repeated delivery failures, or
    /// when a migration is announced).
    pub fn invalidate(&mut self, dst: Ipv4Addr) {
        self.cache.remove(&dst);
    }

    /// Drop every parked packet and outstanding query. Called when the node's
    /// own virtual address changes (re-bind) or is relinquished: the parked
    /// packets were sourced from the old address, and a late reply releasing
    /// them would emit traffic from an address this node no longer holds.
    /// The resolution cache survives — it maps *other* hosts' addresses.
    pub fn reset_pending(&mut self) -> usize {
        let dropped = self.parked_packets();
        self.parked.clear();
        self.outstanding.clear();
        self.dropped += dropped as u64;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipop_packet::ipv4::Ipv4Payload;

    fn pkt(dst: Ipv4Addr) -> Ipv4Packet {
        Ipv4Packet::new(
            Ipv4Addr::new(172, 16, 0, 2),
            dst,
            Ipv4Payload::Raw(99, vec![1].into()),
        )
    }

    const DST: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 18);

    #[test]
    fn mapping_encoding_round_trips() {
        let addr = Address::from_key(b"some node");
        let encoded = BrunetArp::encode_mapping(&addr);
        assert_eq!(BrunetArp::decode_mapping(&encoded), Some(addr));
        assert_eq!(BrunetArp::decode_mapping(&[1, 2, 3]), None);
    }

    #[test]
    fn miss_query_reply_hit_cycle() {
        let mut arp = BrunetArp::new(Duration::from_secs(60));
        let now = SimTime::ZERO;
        // First packet: miss, needs a query.
        let r = arp.resolve(now, DST);
        let Resolution::NeedsQuery(key) = r else {
            panic!("expected NeedsQuery, got {r:?}")
        };
        assert_eq!(key, Address::from_ip(DST));
        arp.query_issued(SimTime::ZERO, 7, DST);
        arp.park(DST, pkt(DST));
        // Second packet while the query is outstanding: pending.
        assert_eq!(arp.resolve(now, DST), Resolution::Pending);
        arp.park(DST, pkt(DST));
        assert_eq!(arp.parked_packets(), 2);
        // Reply arrives: both packets released, mapping cached.
        let target = Address::from_key(b"host routing for DST");
        let (ip, addr, released) = arp
            .on_reply(now, 7, Some(BrunetArp::encode_mapping(&target)))
            .unwrap();
        assert_eq!(ip, DST);
        assert_eq!(addr, Some(target));
        assert_eq!(released.len(), 2);
        assert_eq!(arp.cached(), 1);
        // Third packet: cache hit.
        assert_eq!(arp.resolve(now, DST), Resolution::Resolved(target));
        assert_eq!(arp.cache_hits, 1);
        assert_eq!(arp.cache_misses, 2);
    }

    #[test]
    fn cache_entries_expire() {
        let mut arp = BrunetArp::new(Duration::from_secs(10));
        let target = Address::from_key(b"n");
        arp.query_issued(SimTime::ZERO, 1, DST);
        arp.on_reply(SimTime::ZERO, 1, Some(BrunetArp::encode_mapping(&target)));
        assert!(matches!(
            arp.resolve(SimTime::ZERO + Duration::from_secs(5), DST),
            Resolution::Resolved(_)
        ));
        // After the TTL the entry must be re-resolved (this is what picks up VM migration).
        assert!(matches!(
            arp.resolve(SimTime::ZERO + Duration::from_secs(11), DST),
            Resolution::NeedsQuery(_)
        ));
    }

    #[test]
    fn failed_lookup_counts_and_releases_packets() {
        let mut arp = BrunetArp::new(Duration::from_secs(10));
        arp.query_issued(SimTime::ZERO, 3, DST);
        arp.park(DST, pkt(DST));
        let (_, addr, released) = arp.on_reply(SimTime::ZERO, 3, None).unwrap();
        assert_eq!(addr, None);
        assert_eq!(released.len(), 1);
        assert_eq!(arp.failed, 1);
        assert_eq!(arp.cached(), 0);
    }

    #[test]
    fn unknown_token_is_ignored() {
        let mut arp = BrunetArp::new(Duration::from_secs(10));
        assert!(arp
            .on_reply(SimTime::ZERO, 99, Some(Bytes::from(vec![0u8; 20])))
            .is_none());
    }

    #[test]
    fn parked_queue_is_bounded_per_destination_drop_oldest() {
        let mut arp = BrunetArp::new(Duration::from_secs(10)).with_park_limit(3);
        arp.query_issued(SimTime::ZERO, 1, DST);
        let other = Ipv4Addr::new(172, 16, 0, 99);
        arp.query_issued(SimTime::ZERO, 2, other);
        // Five packets to one destination: only the newest three survive.
        for i in 0..5u8 {
            arp.park(
                DST,
                Ipv4Packet::new(
                    Ipv4Addr::new(172, 16, 0, 2),
                    DST,
                    Ipv4Payload::Raw(99, vec![i].into()),
                ),
            );
        }
        // The bound is per destination: another IP's queue is unaffected.
        arp.park(other, pkt(other));
        assert_eq!(arp.parked_packets(), 4);
        assert_eq!(arp.dropped, 2);
        let target = Address::from_key(b"n");
        let (_, _, released) = arp
            .on_reply(SimTime::ZERO, 1, Some(BrunetArp::encode_mapping(&target)))
            .unwrap();
        assert_eq!(released.len(), 3);
        // Drop-oldest: the survivors are the three newest packets, in order.
        let tails: Vec<u8> = released
            .iter()
            .map(|p| match &p.payload {
                Ipv4Payload::Raw(_, data) => data[0],
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tails, vec![2, 3, 4]);
    }

    #[test]
    fn lost_query_reply_unblocks_after_timeout() {
        // A query whose reply never arrives (routed into a crashed node) must
        // not pin the destination in Pending forever.
        let mut arp = BrunetArp::new(Duration::from_secs(60));
        arp.query_issued(SimTime::ZERO, 1, DST);
        assert_eq!(
            arp.resolve(SimTime::ZERO + Duration::from_secs(2), DST),
            Resolution::Pending,
            "fresh query still blocks"
        );
        let late = SimTime::ZERO + QUERY_TIMEOUT;
        assert!(
            matches!(arp.resolve(late, DST), Resolution::NeedsQuery(_)),
            "timed-out query no longer blocks a fresh one"
        );
        // Issuing the fresh query prunes the timed-out one — lost replies
        // must not leak an outstanding entry forever.
        arp.query_issued(late, 2, DST);
        let target = Address::from_key(b"n");
        assert!(
            arp.on_reply(late, 1, Some(BrunetArp::encode_mapping(&target)))
                .is_none(),
            "the pruned token's late reply is dropped"
        );
        // The fresh token answers and releases parked packets.
        arp.park(DST, pkt(DST));
        let (ip, addr, released) = arp
            .on_reply(late, 2, Some(BrunetArp::encode_mapping(&target)))
            .unwrap();
        assert_eq!(ip, DST);
        assert_eq!(addr, Some(target));
        assert_eq!(released.len(), 1);
    }

    #[test]
    fn reset_pending_drops_parked_and_outstanding_but_keeps_cache() {
        let mut arp = BrunetArp::new(Duration::from_secs(60));
        let target = Address::from_key(b"n");
        arp.query_issued(SimTime::ZERO, 1, DST);
        arp.on_reply(SimTime::ZERO, 1, Some(BrunetArp::encode_mapping(&target)));
        let other = Ipv4Addr::new(172, 16, 0, 99);
        arp.query_issued(SimTime::ZERO, 2, other);
        arp.park(other, pkt(other));
        assert_eq!(arp.reset_pending(), 1);
        assert_eq!(arp.parked_packets(), 0);
        assert_eq!(arp.dropped, 1);
        // A late reply for the cleared query releases nothing.
        assert!(arp
            .on_reply(SimTime::ZERO, 2, Some(BrunetArp::encode_mapping(&target)))
            .is_none());
        // The destination cache survives: it maps other hosts' addresses.
        assert_eq!(
            arp.resolve(SimTime::ZERO, DST),
            Resolution::Resolved(target)
        );
    }

    #[test]
    fn invalidate_forces_requery() {
        let mut arp = BrunetArp::new(Duration::from_secs(1000));
        let target = Address::from_key(b"n");
        arp.query_issued(SimTime::ZERO, 1, DST);
        arp.on_reply(SimTime::ZERO, 1, Some(BrunetArp::encode_mapping(&target)));
        arp.invalidate(DST);
        assert!(matches!(
            arp.resolve(SimTime::ZERO, DST),
            Resolution::NeedsQuery(_)
        ));
    }
}
