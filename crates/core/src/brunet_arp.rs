//! Brunet-ARP: DHT-based mapping from virtual IP addresses to overlay addresses.
//!
//! The base IPOP design maps an IP packet's destination straight to the overlay
//! address `SHA-1(dst_ip)`, which requires one overlay node per virtual IP. The
//! paper's Section III-E proposes Brunet-ARP to lift that restriction: a node that
//! "routes for" a virtual IP registers the mapping `SHA-1(ip) → its own overlay
//! address` at the node owning that key (the *Brunet-ARP-Mapper*); a sender
//! resolves the destination IP by querying the mapper, caches the answer, and
//! re-resolves when the cache entry expires (which is also how VM migration is
//! picked up).
//!
//! This module holds the sender-side resolver state (cache, pending packets and
//! outstanding queries); the DHT itself is the overlay's.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use ipop_overlay::Address;
use ipop_packet::ipv4::Ipv4Packet;
use ipop_simcore::{Duration, SimTime};

/// Outcome of a resolution attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Resolution {
    /// The destination's overlay address is known (cache hit or direct mapping).
    Resolved(Address),
    /// A DHT query is required; the caller should issue `dht_get(key)` and park the
    /// packet until the reply arrives.
    NeedsQuery(Address),
    /// A query for this destination is already outstanding; just park the packet.
    Pending,
}

/// Sender-side Brunet-ARP resolver.
pub struct BrunetArp {
    cache_ttl: Duration,
    cache: HashMap<Ipv4Addr, (Address, SimTime)>,
    /// Packets waiting for a resolution, per destination IP.
    parked: HashMap<Ipv4Addr, Vec<Ipv4Packet>>,
    /// Outstanding DHT query tokens → the IP they resolve.
    outstanding: HashMap<u64, Ipv4Addr>,
    /// Statistics.
    pub cache_hits: u64,
    /// Statistics.
    pub cache_misses: u64,
    /// Statistics: resolutions that found no mapping in the DHT.
    pub failed: u64,
}

impl BrunetArp {
    /// A resolver whose cache entries live for `cache_ttl`.
    pub fn new(cache_ttl: Duration) -> Self {
        BrunetArp {
            cache_ttl,
            cache: HashMap::new(),
            parked: HashMap::new(),
            outstanding: HashMap::new(),
            cache_hits: 0,
            cache_misses: 0,
            failed: 0,
        }
    }

    /// The DHT key under which the mapping for `ip` is stored: SHA-1 of the
    /// address, i.e. the same point on the ring the base design would send to.
    pub fn key_for(ip: Ipv4Addr) -> Address {
        Address::from_ip(ip)
    }

    /// Encode an overlay address as a DHT value.
    pub fn encode_mapping(addr: &Address) -> Vec<u8> {
        addr.0.to_vec()
    }

    /// Decode a DHT value back into an overlay address.
    pub fn decode_mapping(value: &[u8]) -> Option<Address> {
        if value.len() != 20 {
            return None;
        }
        let mut b = [0u8; 20];
        b.copy_from_slice(value);
        Some(Address(b))
    }

    /// Number of live cache entries.
    pub fn cached(&self) -> usize {
        self.cache.len()
    }

    /// Number of parked packets across all destinations.
    pub fn parked_packets(&self) -> usize {
        self.parked.values().map(Vec::len).sum()
    }

    /// Look up the overlay address for `dst`, indicating whether a DHT query is
    /// needed. The caller parks `pkt` with [`BrunetArp::park`] when a query is
    /// required or pending.
    pub fn resolve(&mut self, now: SimTime, dst: Ipv4Addr) -> Resolution {
        if let Some((addr, stored_at)) = self.cache.get(&dst) {
            if now.saturating_since(*stored_at) < self.cache_ttl {
                self.cache_hits += 1;
                return Resolution::Resolved(*addr);
            }
            self.cache.remove(&dst);
        }
        self.cache_misses += 1;
        if self.outstanding.values().any(|ip| *ip == dst) {
            return Resolution::Pending;
        }
        Resolution::NeedsQuery(Self::key_for(dst))
    }

    /// Record that DHT query `token` is resolving `dst`.
    pub fn query_issued(&mut self, token: u64, dst: Ipv4Addr) {
        self.outstanding.insert(token, dst);
    }

    /// Park a packet until `dst` resolves.
    pub fn park(&mut self, dst: Ipv4Addr, pkt: Ipv4Packet) {
        self.parked.entry(dst).or_default().push(pkt);
    }

    /// Process a DHT reply. Returns the resolved destination, its overlay address
    /// (if the mapping existed) and any packets that were waiting for it.
    pub fn on_reply(
        &mut self,
        now: SimTime,
        token: u64,
        value: Option<Vec<u8>>,
    ) -> Option<(Ipv4Addr, Option<Address>, Vec<Ipv4Packet>)> {
        let dst = self.outstanding.remove(&token)?;
        let addr = value.as_deref().and_then(Self::decode_mapping);
        let waiting = self.parked.remove(&dst).unwrap_or_default();
        match addr {
            Some(a) => {
                self.cache.insert(dst, (a, now));
            }
            None => {
                self.failed += 1;
            }
        }
        Some((dst, addr, waiting))
    }

    /// Drop the cached mapping for `dst` (e.g. after repeated delivery failures, or
    /// when a migration is announced).
    pub fn invalidate(&mut self, dst: Ipv4Addr) {
        self.cache.remove(&dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipop_packet::ipv4::Ipv4Payload;

    fn pkt(dst: Ipv4Addr) -> Ipv4Packet {
        Ipv4Packet::new(
            Ipv4Addr::new(172, 16, 0, 2),
            dst,
            Ipv4Payload::Raw(99, vec![1].into()),
        )
    }

    const DST: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 18);

    #[test]
    fn mapping_encoding_round_trips() {
        let addr = Address::from_key(b"some node");
        let encoded = BrunetArp::encode_mapping(&addr);
        assert_eq!(BrunetArp::decode_mapping(&encoded), Some(addr));
        assert_eq!(BrunetArp::decode_mapping(&[1, 2, 3]), None);
    }

    #[test]
    fn miss_query_reply_hit_cycle() {
        let mut arp = BrunetArp::new(Duration::from_secs(60));
        let now = SimTime::ZERO;
        // First packet: miss, needs a query.
        let r = arp.resolve(now, DST);
        let Resolution::NeedsQuery(key) = r else {
            panic!("expected NeedsQuery, got {r:?}")
        };
        assert_eq!(key, Address::from_ip(DST));
        arp.query_issued(7, DST);
        arp.park(DST, pkt(DST));
        // Second packet while the query is outstanding: pending.
        assert_eq!(arp.resolve(now, DST), Resolution::Pending);
        arp.park(DST, pkt(DST));
        assert_eq!(arp.parked_packets(), 2);
        // Reply arrives: both packets released, mapping cached.
        let target = Address::from_key(b"host routing for DST");
        let (ip, addr, released) = arp
            .on_reply(now, 7, Some(BrunetArp::encode_mapping(&target)))
            .unwrap();
        assert_eq!(ip, DST);
        assert_eq!(addr, Some(target));
        assert_eq!(released.len(), 2);
        assert_eq!(arp.cached(), 1);
        // Third packet: cache hit.
        assert_eq!(arp.resolve(now, DST), Resolution::Resolved(target));
        assert_eq!(arp.cache_hits, 1);
        assert_eq!(arp.cache_misses, 2);
    }

    #[test]
    fn cache_entries_expire() {
        let mut arp = BrunetArp::new(Duration::from_secs(10));
        let target = Address::from_key(b"n");
        arp.query_issued(1, DST);
        arp.on_reply(SimTime::ZERO, 1, Some(BrunetArp::encode_mapping(&target)));
        assert!(matches!(
            arp.resolve(SimTime::ZERO + Duration::from_secs(5), DST),
            Resolution::Resolved(_)
        ));
        // After the TTL the entry must be re-resolved (this is what picks up VM migration).
        assert!(matches!(
            arp.resolve(SimTime::ZERO + Duration::from_secs(11), DST),
            Resolution::NeedsQuery(_)
        ));
    }

    #[test]
    fn failed_lookup_counts_and_releases_packets() {
        let mut arp = BrunetArp::new(Duration::from_secs(10));
        arp.query_issued(3, DST);
        arp.park(DST, pkt(DST));
        let (_, addr, released) = arp.on_reply(SimTime::ZERO, 3, None).unwrap();
        assert_eq!(addr, None);
        assert_eq!(released.len(), 1);
        assert_eq!(arp.failed, 1);
        assert_eq!(arp.cached(), 0);
    }

    #[test]
    fn unknown_token_is_ignored() {
        let mut arp = BrunetArp::new(Duration::from_secs(10));
        assert!(arp.on_reply(SimTime::ZERO, 99, Some(vec![0; 20])).is_none());
    }

    #[test]
    fn invalidate_forces_requery() {
        let mut arp = BrunetArp::new(Duration::from_secs(1000));
        let target = Address::from_key(b"n");
        arp.query_issued(1, DST);
        arp.on_reply(SimTime::ZERO, 1, Some(BrunetArp::encode_mapping(&target)));
        arp.invalidate(DST);
        assert!(matches!(
            arp.resolve(SimTime::ZERO, DST),
            Resolution::NeedsQuery(_)
        ));
    }
}
