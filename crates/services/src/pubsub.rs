//! Topic pub/sub client: names in, messages out.
//!
//! The overlay's pub/sub engine (see `ipop_overlay::pubsub`) speaks 160-bit
//! topic keys and delivers `(key, msg_id, payload)` triples. Applications
//! speak topic *names*. This module is the thin host-side layer between the
//! two: it derives keys from names, remembers which name each subscription
//! was made under, and translates deliveries back — counting the ones that
//! arrive for a topic this node never subscribed to (stale relay state from
//! an unsubscribe that is still propagating).
//!
//! Like the other services, it drives the overlay through a narrow trait
//! ([`PubSubClient`]) so it can be unit-tested against a scripted fake.

use std::collections::BTreeMap;

use ipop_overlay::pubsub::topic_key;
use ipop_overlay::{Address, OverlayNode};
use ipop_packet::Bytes;
use ipop_simcore::{Duration, SimTime};

/// A message delivered on a subscribed topic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopicMessage {
    /// The topic name the subscription was made under.
    pub topic: String,
    /// Publisher-assigned message id (unique per publisher, used by
    /// workloads to match publishes to deliveries).
    pub msg_id: u64,
    /// The published body. Shared, not copied: every subscriber of a fan-out
    /// holds a slice of the same wire image.
    pub payload: Bytes,
}

/// The pub/sub operations the service needs from the overlay — the
/// [`crate::DhtClient`] pattern, one protocol over.
pub trait PubSubClient {
    /// Register interest in `topic`; renewed as soft state until unsubscribed.
    fn subscribe(&mut self, now: SimTime, topic: Address, ttl: Duration);
    /// Withdraw interest in `topic`.
    fn unsubscribe(&mut self, now: SimTime, topic: Address);
    /// Publish `payload` on `topic`; returns the assigned message id.
    fn publish(&mut self, now: SimTime, topic: Address, payload: Bytes) -> u64;
    /// Drain messages delivered to this node: `(topic key, msg_id, payload)`.
    fn take_delivered(&mut self) -> Vec<(Address, u64, Bytes)>;
}

impl PubSubClient for OverlayNode {
    fn subscribe(&mut self, now: SimTime, topic: Address, ttl: Duration) {
        self.pubsub_subscribe(now, topic, ttl);
    }

    fn unsubscribe(&mut self, now: SimTime, topic: Address) {
        self.pubsub_unsubscribe(now, topic);
    }

    fn publish(&mut self, now: SimTime, topic: Address, payload: Bytes) -> u64 {
        self.pubsub_publish(now, topic, payload)
    }

    fn take_delivered(&mut self) -> Vec<(Address, u64, Bytes)> {
        self.take_pubsub_delivered()
    }
}

/// Host-side pub/sub state for one node: topic-name bookkeeping and counters.
pub struct PubSub {
    ttl: Duration,
    /// Subscribed topics: key → the name the application used. `BTreeMap`
    /// for deterministic iteration in diagnostics.
    topics: BTreeMap<Address, String>,
    /// Messages published through this service.
    pub published: u64,
    /// Messages delivered on subscribed topics.
    pub received: u64,
    /// Deliveries for topics this node is not subscribed to (dropped).
    pub unknown_topic: u64,
}

impl PubSub {
    /// A pub/sub service whose subscriptions live for `ttl` (renewed at half
    /// that by the overlay while subscribed).
    pub fn new(ttl: Duration) -> Self {
        PubSub {
            ttl,
            topics: BTreeMap::new(),
            published: 0,
            received: 0,
            unknown_topic: 0,
        }
    }

    /// Subscribe to the named topic. Idempotent: re-subscribing just renews.
    pub fn subscribe(&mut self, client: &mut dyn PubSubClient, now: SimTime, name: &str) {
        let key = topic_key(name);
        self.topics.insert(key, name.to_string());
        client.subscribe(now, key, self.ttl);
    }

    /// Unsubscribe from the named topic. No-op when not subscribed.
    pub fn unsubscribe(&mut self, client: &mut dyn PubSubClient, now: SimTime, name: &str) {
        let key = topic_key(name);
        if self.topics.remove(&key).is_some() {
            client.unsubscribe(now, key);
        }
    }

    /// Publish `payload` on the named topic (no subscription needed) and
    /// return the assigned message id.
    pub fn publish(
        &mut self,
        client: &mut dyn PubSubClient,
        now: SimTime,
        name: &str,
        payload: Bytes,
    ) -> u64 {
        self.published += 1;
        client.publish(now, topic_key(name), payload)
    }

    /// Drain delivered messages, translating topic keys back to the names
    /// they were subscribed under. Deliveries for unknown topics are counted
    /// and dropped.
    pub fn poll(&mut self, client: &mut dyn PubSubClient) -> Vec<TopicMessage> {
        let mut out = Vec::new();
        for (key, msg_id, payload) in client.take_delivered() {
            match self.topics.get(&key) {
                Some(name) => {
                    self.received += 1;
                    out.push(TopicMessage {
                        topic: name.clone(),
                        msg_id,
                        payload,
                    });
                }
                None => self.unknown_topic += 1,
            }
        }
        out
    }

    /// Names of the currently subscribed topics, in key order.
    pub fn subscriptions(&self) -> Vec<&str> {
        self.topics.values().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One recorded pub/sub operation.
    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        Subscribe(Address, Duration),
        Unsubscribe(Address),
        Publish(Address, Bytes),
    }

    /// A scripted [`PubSubClient`] that records operations and queues
    /// deliveries for the next poll.
    #[derive(Default)]
    struct FakePubSub {
        ops: Vec<Op>,
        inbox: Vec<(Address, u64, Bytes)>,
        next_id: u64,
    }

    impl PubSubClient for FakePubSub {
        fn subscribe(&mut self, _now: SimTime, topic: Address, ttl: Duration) {
            self.ops.push(Op::Subscribe(topic, ttl));
        }

        fn unsubscribe(&mut self, _now: SimTime, topic: Address) {
            self.ops.push(Op::Unsubscribe(topic));
        }

        fn publish(&mut self, _now: SimTime, topic: Address, payload: Bytes) -> u64 {
            self.ops.push(Op::Publish(topic, payload));
            self.next_id += 1;
            self.next_id
        }

        fn take_delivered(&mut self) -> Vec<(Address, u64, Bytes)> {
            std::mem::take(&mut self.inbox)
        }
    }

    const TTL: Duration = Duration::from_secs(120);

    #[test]
    fn subscribe_publish_poll_cycle() {
        let mut ps = PubSub::new(TTL);
        let mut client = FakePubSub::default();
        let t0 = SimTime::ZERO;

        ps.subscribe(&mut client, t0, "events");
        assert_eq!(client.ops, vec![Op::Subscribe(topic_key("events"), TTL)]);
        assert_eq!(ps.subscriptions(), vec!["events"]);

        let id = ps.publish(&mut client, t0, "events", Bytes::from(&b"hi"[..]));
        assert_eq!(id, 1);
        assert_eq!(ps.published, 1);
        assert_eq!(
            client.ops[1],
            Op::Publish(topic_key("events"), Bytes::from(&b"hi"[..]))
        );

        client
            .inbox
            .push((topic_key("events"), 1, Bytes::from(&b"hi"[..])));
        let got = ps.poll(&mut client);
        assert_eq!(
            got,
            vec![TopicMessage {
                topic: "events".to_string(),
                msg_id: 1,
                payload: Bytes::from(&b"hi"[..]),
            }]
        );
        assert_eq!(ps.received, 1);
    }

    #[test]
    fn unknown_topic_deliveries_are_counted_and_dropped() {
        let mut ps = PubSub::new(TTL);
        let mut client = FakePubSub::default();
        client
            .inbox
            .push((topic_key("ghost"), 9, Bytes::from(&b"x"[..])));
        assert!(ps.poll(&mut client).is_empty());
        assert_eq!(ps.unknown_topic, 1);
        assert_eq!(ps.received, 0);
    }

    #[test]
    fn unsubscribe_is_tracked_and_idempotent() {
        let mut ps = PubSub::new(TTL);
        let mut client = FakePubSub::default();
        let t0 = SimTime::ZERO;
        ps.subscribe(&mut client, t0, "a");
        ps.subscribe(&mut client, t0, "b");
        ps.unsubscribe(&mut client, t0, "a");
        // Unsubscribing a topic we never held sends nothing.
        ps.unsubscribe(&mut client, t0, "a");
        ps.unsubscribe(&mut client, t0, "never");
        assert_eq!(
            client.ops,
            vec![
                Op::Subscribe(topic_key("a"), TTL),
                Op::Subscribe(topic_key("b"), TTL),
                Op::Unsubscribe(topic_key("a")),
            ]
        );
        assert_eq!(ps.subscriptions(), vec!["b"]);
        // A straggler delivery for the dropped topic is now unknown.
        client
            .inbox
            .push((topic_key("a"), 3, Bytes::from(&b"x"[..])));
        assert!(ps.poll(&mut client).is_empty());
        assert_eq!(ps.unknown_topic, 1);
    }
}
