//! Self-configuration services built on the overlay's replicated DHT.
//!
//! The paper's headline claim is a *self-configuring* virtual IP network: a
//! machine joins a grid knowing only the virtual subnet and a bootstrap
//! endpoint, and everything else — its virtual address, the IP→overlay-address
//! mapping other nodes need to reach it, its name — is configured through the
//! overlay itself. This crate provides those services as host-side state
//! machines over the DHT:
//!
//! * [`dhcp`] — a DHCP-style address allocator: draw a candidate address from
//!   the subnet, claim it with the DHT's atomic create-if-absent primitive,
//!   retry on collision, confirm, then renew the claim as a lease. The claim
//!   record *is* the Brunet-ARP mapping (`SHA-1(ip) → overlay address`), so
//!   winning an address simultaneously makes it resolvable.
//! * [`name`] — an overlay name service mapping hostnames to virtual IPs, so
//!   applications can address peers symbolically before any IP is known.
//! * [`pubsub`] — a topic pub/sub client translating topic names to overlay
//!   keys and deliveries back to names.
//! * [`vstream`] — a virtual-stream client handing out per-connection
//!   [`vstream::VirtualStream`] handles over the overlay's reliable stream
//!   engine.
//!
//! The services drive the overlay through narrow traits ([`DhtClient`],
//! [`pubsub::PubSubClient`]) which [`ipop_overlay::OverlayNode`] implements;
//! tests substitute scripted fakes.

use ipop_overlay::{Address, OverlayNode};
use ipop_packet::Bytes;
use ipop_simcore::{Duration, SimTime};

pub mod dhcp;
pub mod name;
pub mod pubsub;
pub mod vstream;

pub use dhcp::{DhcpAllocator, DhcpConfig, DhcpState, Subnet};
pub use name::{NameService, Resolution, ReverseResolution};
pub use pubsub::{PubSub, PubSubClient, TopicMessage};
pub use vstream::{StreamClient, StreamFate, VirtualStream, VirtualStreams};

/// The DHT operations the self-configuration services need — a narrow façade
/// over the overlay node so services can be unit-tested against a fake.
pub trait DhtClient {
    /// Atomic create-if-absent; the outcome arrives as a create reply carrying
    /// the returned token.
    fn create(&mut self, now: SimTime, key: Address, value: Bytes, ttl: Duration) -> u64;
    /// Abandon an outstanding create: a reply arriving after this must not
    /// turn the claim into a refreshed publication.
    fn cancel_create(&mut self, token: u64);
    /// Lookup; the value arrives as a get reply carrying the returned token.
    fn get(&mut self, now: SimTime, key: Address) -> u64;
    /// Store (overwrite) and keep refreshed as a lease.
    fn put(&mut self, now: SimTime, key: Address, value: Bytes, ttl: Duration);
    /// Delete the record and stop refreshing it.
    fn remove(&mut self, now: SimTime, key: Address);
    /// Stop refreshing the record without deleting it (it ages out).
    fn unpublish(&mut self, key: &Address);
}

impl DhtClient for OverlayNode {
    fn create(&mut self, now: SimTime, key: Address, value: Bytes, ttl: Duration) -> u64 {
        self.dht_create(now, key, value, ttl)
    }

    fn cancel_create(&mut self, token: u64) {
        self.dht_cancel_create(token);
    }

    fn get(&mut self, now: SimTime, key: Address) -> u64 {
        self.dht_get(now, key)
    }

    fn put(&mut self, now: SimTime, key: Address, value: Bytes, ttl: Duration) {
        self.dht_put_ttl(now, key, value, ttl);
    }

    fn remove(&mut self, now: SimTime, key: Address) {
        self.dht_remove(now, key);
    }

    fn unpublish(&mut self, key: &Address) {
        self.dht_unpublish(key);
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// One recorded DHT operation.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Op {
        Create(Address, Bytes, Duration),
        CancelCreate(u64),
        Get(Address),
        Put(Address, Bytes, Duration),
        Remove(Address),
        Unpublish(Address),
    }

    /// A scripted [`DhtClient`] that records operations and hands out tokens.
    #[derive(Default)]
    pub struct FakeDht {
        pub ops: Vec<Op>,
        pub next_token: u64,
    }

    impl FakeDht {
        pub fn last_token(&self) -> u64 {
            self.next_token
        }
    }

    impl DhtClient for FakeDht {
        fn create(&mut self, _now: SimTime, key: Address, value: Bytes, ttl: Duration) -> u64 {
            self.ops.push(Op::Create(key, value, ttl));
            self.next_token += 1;
            self.next_token
        }

        fn cancel_create(&mut self, token: u64) {
            self.ops.push(Op::CancelCreate(token));
        }

        fn get(&mut self, _now: SimTime, key: Address) -> u64 {
            self.ops.push(Op::Get(key));
            self.next_token += 1;
            self.next_token
        }

        fn put(&mut self, _now: SimTime, key: Address, value: Bytes, ttl: Duration) {
            self.ops.push(Op::Put(key, value, ttl));
        }

        fn remove(&mut self, _now: SimTime, key: Address) {
            self.ops.push(Op::Remove(key));
        }

        fn unpublish(&mut self, key: &Address) {
            self.ops.push(Op::Unpublish(*key));
        }
    }
}
