//! DHCP-over-DHT: decentralized virtual-address allocation.
//!
//! A node joins the virtual network knowing only the subnet. It draws a
//! candidate address from its own deterministic random stream, claims the
//! address with the DHT's atomic create-if-absent primitive, and retries with
//! a fresh candidate on collision. The claimed record maps `SHA-1(ip)` to the
//! claimant's overlay address — exactly the Brunet-ARP mapping of paper
//! Section III-E — so winning the claim simultaneously makes the address
//! resolvable by every sender.
//!
//! Claims are soft-state leases: the overlay renews the record at TTL/2 for as
//! long as the node lives, and a crashed owner's address returns to the pool
//! one TTL later. A confirmation read a short settle delay after the claim
//! guards against split-brain claims while the ring is still converging: if
//! the confirm does not read back our own overlay address, the claim is
//! abandoned (and unpublished) and a new candidate is drawn.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use ipop_overlay::Address;
use ipop_packet::Bytes;
use ipop_simcore::{Duration, SimTime, StreamRng};

use crate::DhtClient;

/// An IPv4 subnet (network address + prefix length).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Subnet {
    /// Network address (host bits zeroed).
    pub net: Ipv4Addr,
    /// Prefix length in bits (max 30: at least two usable host addresses).
    pub prefix: u8,
}

impl Subnet {
    /// A subnet from any address inside it plus a prefix length.
    pub fn new(addr: Ipv4Addr, prefix: u8) -> Self {
        assert!(prefix <= 30, "prefix too long for host allocation");
        let mask = Self::mask_of(prefix);
        Subnet {
            net: Ipv4Addr::from(u32::from(addr) & mask),
            prefix,
        }
    }

    fn mask_of(prefix: u8) -> u32 {
        if prefix == 0 {
            0
        } else {
            u32::MAX << (32 - prefix)
        }
    }

    /// The subnet mask.
    pub fn mask(&self) -> u32 {
        Self::mask_of(self.prefix)
    }

    /// Is `ip` inside the subnet?
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        (u32::from(ip) & self.mask()) == u32::from(self.net)
    }

    /// The broadcast address (all host bits set).
    pub fn broadcast(&self) -> Ipv4Addr {
        Ipv4Addr::from(u32::from(self.net) | !self.mask())
    }

    /// Number of assignable host addresses (network and broadcast excluded).
    pub fn usable_hosts(&self) -> u64 {
        (1u64 << (32 - self.prefix)) - 2
    }

    /// Draw a uniformly random usable host address that is not in `reserved`.
    ///
    /// Panics when the whole usable range is reserved; callers that can hit
    /// that case use [`Subnet::draw_avoiding`] and handle exhaustion.
    pub fn draw(&self, rng: &mut StreamRng, reserved: &[Ipv4Addr]) -> Ipv4Addr {
        self.draw_avoiding(rng, reserved, &BTreeSet::new())
            .expect("subnet exhausted: every usable address is reserved")
    }

    /// Draw a usable host address that is neither in `reserved` nor in
    /// `avoid`, or `None` when the two sets cover the whole usable range
    /// (address-space exhaustion — a /30 has just two usable addresses).
    ///
    /// Bounded work: a short burst of rejection sampling for the common
    /// sparse case, then one deterministic scan from a random start — never
    /// the unbounded retry loop that would hang a joiner on a full subnet.
    pub fn draw_avoiding(
        &self,
        rng: &mut StreamRng,
        reserved: &[Ipv4Addr],
        avoid: &BTreeSet<Ipv4Addr>,
    ) -> Option<Ipv4Addr> {
        let usable = self.usable_hosts();
        let blocked_set: BTreeSet<Ipv4Addr> = reserved
            .iter()
            .chain(avoid.iter())
            .copied()
            .filter(|ip| self.contains(*ip) && *ip != self.net && *ip != self.broadcast())
            .collect();
        if blocked_set.len() as u64 >= usable {
            return None;
        }
        let blocked = |ip: Ipv4Addr| blocked_set.contains(&ip);
        let span = (1u64 << (32 - self.prefix)) - 1; // offsets 1..span are usable
        for _ in 0..64 {
            let offset = rng.range_u64(1, span) as u32;
            let ip = Ipv4Addr::from(u32::from(self.net) | offset);
            if !blocked(ip) {
                return Some(ip);
            }
        }
        // Dense subnet: scan every usable offset once, starting at a random
        // point so allocations stay spread out.
        let start = rng.range_u64(1, span);
        for k in 0..usable {
            let offset = (1 + (start - 1 + k) % usable) as u32;
            let ip = Ipv4Addr::from(u32::from(self.net) | offset);
            if !blocked(ip) {
                return Some(ip);
            }
        }
        None
    }
}

/// The DHT key under which the lease (= Brunet-ARP mapping) for `ip` lives:
/// `SHA-1(ip)`, the same point on the ring the base IPOP design routes to.
pub fn lease_key(ip: Ipv4Addr) -> Address {
    Address::from_ip(ip)
}

/// Encode the claimant's overlay address as the lease value.
pub fn encode_owner(addr: &Address) -> Bytes {
    Bytes::copy_from_slice(&addr.0)
}

/// Decode a lease value back into the owner's overlay address.
pub fn decode_owner(value: &[u8]) -> Option<Address> {
    if value.len() != 20 {
        return None;
    }
    let mut b = [0u8; 20];
    b.copy_from_slice(value);
    Some(Address(b))
}

/// Allocator tuning knobs.
#[derive(Clone, Debug)]
pub struct DhcpConfig {
    /// Lease lifetime; the overlay renews the claim at half this.
    pub lease_ttl: Duration,
    /// Settle delay between a successful claim and the confirmation read.
    pub confirm_delay: Duration,
    /// Re-issue a claim or confirm whose reply never arrived after this long.
    pub claim_timeout: Duration,
    /// Wait between a write-quorum failure and re-claiming the same address
    /// (the coordinator rejects for up to its quorum timeout; an immediate
    /// retry would ping-pong one claim per round trip).
    pub retry_delay: Duration,
    /// Give up after this many claim attempts.
    pub max_attempts: u32,
}

impl Default for DhcpConfig {
    fn default() -> Self {
        DhcpConfig {
            lease_ttl: Duration::from_secs(120),
            confirm_delay: Duration::from_secs(2),
            claim_timeout: Duration::from_secs(10),
            retry_delay: Duration::from_secs(3),
            max_attempts: 128,
        }
    }
}

/// Allocation progress.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DhcpState {
    /// Waiting for the overlay to be ready.
    Idle,
    /// A claim (`DhtCreate`) is outstanding for the candidate address.
    Claiming {
        /// Token of the outstanding create.
        token: u64,
        /// The candidate address being claimed.
        ip: Ipv4Addr,
        /// When the claim was issued.
        since: SimTime,
    },
    /// The claim succeeded; waiting to read it back after the settle delay.
    Confirming {
        /// The claimed address.
        ip: Ipv4Addr,
        /// When the confirmation read may be issued.
        confirm_at: SimTime,
        /// Token of the outstanding confirmation get, once issued.
        token: Option<u64>,
        /// When the confirmation get was issued.
        since: SimTime,
    },
    /// A claim failed its write quorum (partition minority); the same —
    /// still unclaimed — address is re-claimed after a short wait.
    RetryWait {
        /// The candidate address to re-claim.
        ip: Ipv4Addr,
        /// When the re-claim goes out.
        retry_at: SimTime,
    },
    /// The address is allocated and confirmed; the lease renews itself.
    Bound {
        /// The allocated address.
        ip: Ipv4Addr,
    },
    /// The lease was released (graceful leave).
    Released,
    /// Allocation gave up after `max_attempts` claims.
    Failed,
    /// Terminal: every usable address in the subnet is reserved or was seen
    /// taken — there is nothing left to draw (e.g. the third joiner on a /30
    /// with two usable addresses). Surfaced instead of retrying forever.
    AddressSpaceExhausted,
}

/// The DHCP-style allocator state machine for one node.
pub struct DhcpAllocator {
    subnet: Subnet,
    cfg: DhcpConfig,
    /// This node's overlay address — the value stored in its claims.
    owner: Address,
    /// Addresses never drawn (gateway and friends).
    reserved: Vec<Ipv4Addr>,
    state: DhcpState,
    started_at: Option<SimTime>,
    bound_at: Option<SimTime>,
    /// Addresses this allocator saw taken (claim collisions, failed confirms,
    /// lost leases) during the current allocation cycle. Not drawn again
    /// until the next successful bind clears the set; when `reserved` and
    /// `tried` together cover the whole usable range the subnet is exhausted.
    tried: BTreeSet<Ipv4Addr>,
    /// Claims lost to an existing live lease.
    pub collisions: u64,
    /// Claims issued.
    pub attempts: u32,
    /// Bound leases lost to a conflicting winner (healed partitions).
    pub leases_lost: u64,
}

impl DhcpAllocator {
    /// An allocator drawing from `subnet`, claiming on behalf of `owner`.
    pub fn new(subnet: Subnet, owner: Address, cfg: DhcpConfig) -> Self {
        DhcpAllocator {
            subnet,
            cfg,
            owner,
            reserved: Vec::new(),
            state: DhcpState::Idle,
            started_at: None,
            bound_at: None,
            tried: BTreeSet::new(),
            collisions: 0,
            attempts: 0,
            leases_lost: 0,
        }
    }

    /// Builder: addresses that must never be drawn (e.g. the fabricated
    /// gateway of the static-ARP trick).
    pub fn with_reserved(mut self, reserved: Vec<Ipv4Addr>) -> Self {
        self.reserved = reserved;
        self
    }

    /// Current state.
    pub fn state(&self) -> DhcpState {
        self.state
    }

    /// The allocated address, once bound.
    pub fn ip(&self) -> Option<Ipv4Addr> {
        match self.state {
            DhcpState::Bound { ip } => Some(ip),
            _ => None,
        }
    }

    /// True once an address is allocated and confirmed.
    pub fn bound(&self) -> bool {
        matches!(self.state, DhcpState::Bound { .. })
    }

    /// Time from the first poll to the confirmed allocation.
    pub fn allocation_latency(&self) -> Option<Duration> {
        Some(self.bound_at?.saturating_since(self.started_at?))
    }

    /// Release the lease (graceful leave): delete the mapping from the DHT.
    pub fn release(&mut self, now: SimTime, dht: &mut dyn DhtClient) {
        match self.state {
            DhcpState::Bound { ip } => {
                dht.remove(now, lease_key(ip));
            }
            DhcpState::Claiming { token, .. } => {
                // Nothing published yet; make sure a late success reply
                // cannot publish either.
                dht.cancel_create(token);
            }
            DhcpState::Confirming { ip, .. } => {
                dht.unpublish(&lease_key(ip));
            }
            _ => {}
        }
        self.state = DhcpState::Released;
    }

    /// Drive the state machine. `ready` signals that the overlay is converged
    /// enough to claim (the caller typically requires established ring
    /// neighbours on both sides). Safe to call every tick.
    pub fn poll(
        &mut self,
        now: SimTime,
        ready: bool,
        rng: &mut StreamRng,
        dht: &mut dyn DhtClient,
    ) {
        if self.started_at.is_none() {
            self.started_at = Some(now);
        }
        match self.state {
            DhcpState::Idle => {
                if ready {
                    self.claim(now, rng, dht);
                }
            }
            DhcpState::Claiming { token, since, .. } => {
                if now.saturating_since(since) >= self.cfg.claim_timeout {
                    // The create or its reply was lost; abandon the claim so
                    // a late success cannot become a phantom publication, and
                    // draw a fresh candidate.
                    dht.cancel_create(token);
                    self.claim(now, rng, dht);
                }
            }
            DhcpState::Confirming {
                ip,
                confirm_at,
                token,
                since,
            } => match token {
                None if now >= confirm_at => {
                    let token = dht.get(now, lease_key(ip));
                    self.state = DhcpState::Confirming {
                        ip,
                        confirm_at,
                        token: Some(token),
                        since: now,
                    };
                }
                Some(_) if now.saturating_since(since) >= self.cfg.claim_timeout => {
                    // Confirmation reply lost; read again.
                    let token = dht.get(now, lease_key(ip));
                    self.state = DhcpState::Confirming {
                        ip,
                        confirm_at,
                        token: Some(token),
                        since: now,
                    };
                }
                _ => {}
            },
            DhcpState::RetryWait { ip, retry_at } => {
                if now >= retry_at {
                    self.reissue_claim(now, ip, dht);
                }
            }
            DhcpState::Bound { .. }
            | DhcpState::Released
            | DhcpState::Failed
            | DhcpState::AddressSpaceExhausted => {}
        }
    }

    /// Feed a DHT create reply. Returns true when the token belonged to this
    /// allocator (the caller routes replies between services by token).
    ///
    /// `conflict` distinguishes the two rejection cases: true when a live
    /// record owns the key (a real collision — the address is blacklisted and
    /// a fresh candidate drawn), false when the claim merely failed its write
    /// quorum (partition minority — the same address is retried; it is not
    /// taken, and blacklisting free addresses would walk the allocator into a
    /// false `AddressSpaceExhausted` on a mostly-empty subnet).
    pub fn on_create_reply(
        &mut self,
        now: SimTime,
        token: u64,
        created: bool,
        conflict: bool,
        rng: &mut StreamRng,
        dht: &mut dyn DhtClient,
    ) -> bool {
        let DhcpState::Claiming {
            token: want, ip, ..
        } = self.state
        else {
            return false;
        };
        if token != want {
            return false;
        }
        if created {
            self.state = DhcpState::Confirming {
                ip,
                confirm_at: now + self.cfg.confirm_delay,
                token: None,
                since: now,
            };
        } else if conflict {
            // A live lease already exists under this address: collision.
            self.collisions += 1;
            self.tried.insert(ip);
            self.claim(now, rng, dht);
        } else {
            // Quorum failure: re-claim the same address after a short wait,
            // without consuming the attempts budget — a partition can reject
            // claims for as long as it lasts (burning the budget would leave
            // the node terminally `Failed` after the heal), and an immediate
            // retry would ping-pong against the coordinator's rejection once
            // per round trip.
            self.state = DhcpState::RetryWait {
                ip,
                retry_at: now + self.cfg.retry_delay,
            };
        }
        true
    }

    /// Feed a DHT get reply (the confirmation read). Returns true when the
    /// token belonged to this allocator.
    pub fn on_get_reply(
        &mut self,
        now: SimTime,
        token: u64,
        value: Option<&[u8]>,
        rng: &mut StreamRng,
        dht: &mut dyn DhtClient,
    ) -> bool {
        let DhcpState::Confirming {
            ip,
            token: Some(want),
            ..
        } = self.state
        else {
            return false;
        };
        if token != want {
            return false;
        }
        if value.and_then(decode_owner) == Some(self.owner) {
            self.state = DhcpState::Bound { ip };
            self.bound_at = Some(now);
            // The attempts budget and the tried blacklist guard one
            // allocation cycle, not the node's whole life: a successful bind
            // resets both, so a later lost lease re-allocates with a full
            // budget and without treating long-freed addresses as taken.
            self.attempts = 0;
            self.tried.clear();
        } else {
            // Someone else's claim won (split-brain during convergence) or
            // the record vanished: stop refreshing it and start over.
            self.collisions += 1;
            self.tried.insert(ip);
            dht.unpublish(&lease_key(ip));
            self.claim(now, rng, dht);
        }
        true
    }

    /// The overlay reported this node's address lease lost: a TTL/2 renewal
    /// found a conflicting record owning the key (the other side of a healed
    /// partition won). The publication is already gone — re-allocate a fresh
    /// address; the caller re-binds when the new lease confirms.
    pub fn on_lease_lost(&mut self, now: SimTime, rng: &mut StreamRng, dht: &mut dyn DhtClient) {
        let DhcpState::Bound { ip } = self.state else {
            return;
        };
        self.leases_lost += 1;
        self.tried.insert(ip);
        self.claim(now, rng, dht);
    }

    fn claim(&mut self, now: SimTime, rng: &mut StreamRng, dht: &mut dyn DhtClient) {
        let Some(ip) = self.subnet.draw_avoiding(rng, &self.reserved, &self.tried) else {
            // Every usable address is reserved or known taken: terminal,
            // instead of redrawing (and re-colliding) forever.
            self.state = DhcpState::AddressSpaceExhausted;
            return;
        };
        self.issue_claim(now, ip, dht);
    }

    /// Issue a claim for a fresh candidate `ip` (consumes one attempt).
    fn issue_claim(&mut self, now: SimTime, ip: Ipv4Addr, dht: &mut dyn DhtClient) {
        if self.attempts >= self.cfg.max_attempts {
            self.state = DhcpState::Failed;
            return;
        }
        self.attempts += 1;
        self.reissue_claim(now, ip, dht);
    }

    /// Send the claim create for `ip` without touching the attempts budget.
    fn reissue_claim(&mut self, now: SimTime, ip: Ipv4Addr, dht: &mut dyn DhtClient) {
        let token = dht.create(
            now,
            lease_key(ip),
            encode_owner(&self.owner),
            self.cfg.lease_ttl,
        );
        self.state = DhcpState::Claiming {
            token,
            ip,
            since: now,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{FakeDht, Op};

    fn subnet() -> Subnet {
        Subnet::new(Ipv4Addr::new(172, 16, 9, 0), 24)
    }

    fn owner() -> Address {
        Address::from_key(b"claimant")
    }

    fn alloc() -> DhcpAllocator {
        DhcpAllocator::new(subnet(), owner(), DhcpConfig::default())
            .with_reserved(vec![Ipv4Addr::new(172, 16, 9, 254)])
    }

    #[test]
    fn subnet_arithmetic() {
        let s = Subnet::new(Ipv4Addr::new(172, 16, 9, 77), 24);
        assert_eq!(s.net, Ipv4Addr::new(172, 16, 9, 0));
        assert_eq!(s.broadcast(), Ipv4Addr::new(172, 16, 9, 255));
        assert_eq!(s.usable_hosts(), 254);
        assert!(s.contains(Ipv4Addr::new(172, 16, 9, 1)));
        assert!(!s.contains(Ipv4Addr::new(172, 16, 10, 1)));
    }

    #[test]
    fn draw_respects_bounds_and_reservations() {
        let s = subnet();
        let mut rng = StreamRng::new(7, "draw");
        let reserved = [Ipv4Addr::new(172, 16, 9, 254)];
        for _ in 0..500 {
            let ip = s.draw(&mut rng, &reserved);
            assert!(s.contains(ip));
            assert_ne!(ip, s.net, "network address never drawn");
            assert_ne!(ip, s.broadcast(), "broadcast never drawn");
            assert_ne!(ip, reserved[0], "reserved address never drawn");
        }
    }

    #[test]
    fn owner_encoding_round_trips() {
        let a = owner();
        assert_eq!(decode_owner(&encode_owner(&a)), Some(a));
        assert_eq!(decode_owner(&[1, 2, 3]), None);
    }

    #[test]
    fn happy_path_claim_confirm_bind() {
        let mut a = alloc();
        let mut rng = StreamRng::new(1, "dhcp");
        let mut dht = FakeDht::default();
        let t0 = SimTime::ZERO;
        // Not ready: nothing happens.
        a.poll(t0, false, &mut rng, &mut dht);
        assert!(dht.ops.is_empty());
        // Ready: a claim goes out.
        a.poll(t0, true, &mut rng, &mut dht);
        let Some(Op::Create(key, value, ttl)) = dht.ops.first().cloned() else {
            panic!("expected a create, got {:?}", dht.ops)
        };
        assert_eq!(value, encode_owner(&owner()));
        assert_eq!(ttl, Duration::from_secs(120));
        let DhcpState::Claiming { token, ip, .. } = a.state() else {
            panic!()
        };
        assert_eq!(key, lease_key(ip));
        // Claim succeeds → confirming after the settle delay.
        assert!(a.on_create_reply(t0, token, true, false, &mut rng, &mut dht));
        assert!(!a.bound());
        let t1 = t0 + Duration::from_secs(1);
        a.poll(t1, true, &mut rng, &mut dht);
        assert_eq!(dht.ops.len(), 1, "confirm read waits for the settle delay");
        let t2 = t0 + Duration::from_secs(3);
        a.poll(t2, true, &mut rng, &mut dht);
        assert!(matches!(dht.ops.last(), Some(Op::Get(k)) if *k == lease_key(ip)));
        let get_token = dht.last_token();
        // Confirmation reads back our own claim → bound.
        let v = encode_owner(&owner());
        assert!(a.on_get_reply(t2, get_token, Some(v.as_slice()), &mut rng, &mut dht));
        assert_eq!(a.ip(), Some(ip));
        assert_eq!(a.allocation_latency(), Some(Duration::from_secs(3)));
        assert_eq!(a.collisions, 0);
    }

    #[test]
    fn collision_draws_a_fresh_candidate() {
        let mut a = alloc();
        let mut rng = StreamRng::new(2, "dhcp");
        let mut dht = FakeDht::default();
        let t0 = SimTime::ZERO;
        a.poll(t0, true, &mut rng, &mut dht);
        let DhcpState::Claiming { token, ip, .. } = a.state() else {
            panic!()
        };
        // Claim lost: a different candidate is claimed next.
        assert!(a.on_create_reply(t0, token, false, true, &mut rng, &mut dht));
        assert_eq!(a.collisions, 1);
        let DhcpState::Claiming { ip: ip2, .. } = a.state() else {
            panic!("retry expected, got {:?}", a.state())
        };
        assert_ne!(ip, ip2, "fresh candidate after collision (seeded draw)");
        assert_eq!(a.attempts, 2);
    }

    #[test]
    fn failed_confirmation_unpublishes_and_retries() {
        let mut a = alloc();
        let mut rng = StreamRng::new(3, "dhcp");
        let mut dht = FakeDht::default();
        let t0 = SimTime::ZERO;
        a.poll(t0, true, &mut rng, &mut dht);
        let DhcpState::Claiming { token, ip, .. } = a.state() else {
            panic!()
        };
        a.on_create_reply(t0, token, true, false, &mut rng, &mut dht);
        let t1 = t0 + Duration::from_secs(3);
        a.poll(t1, true, &mut rng, &mut dht);
        let get_token = dht.last_token();
        // The read returns a different owner: split-brain loser backs off.
        let other = encode_owner(&Address::from_key(b"someone else"));
        assert!(a.on_get_reply(t1, get_token, Some(other.as_slice()), &mut rng, &mut dht));
        assert!(!a.bound());
        assert!(
            dht.ops.contains(&Op::Unpublish(lease_key(ip))),
            "the losing claim must stop refreshing"
        );
        assert!(matches!(a.state(), DhcpState::Claiming { .. }));
    }

    #[test]
    fn claim_timeout_reissues() {
        let mut a = alloc();
        let mut rng = StreamRng::new(4, "dhcp");
        let mut dht = FakeDht::default();
        a.poll(SimTime::ZERO, true, &mut rng, &mut dht);
        assert_eq!(a.attempts, 1);
        let DhcpState::Claiming { token, .. } = a.state() else {
            panic!()
        };
        a.poll(
            SimTime::ZERO + Duration::from_secs(11),
            true,
            &mut rng,
            &mut dht,
        );
        assert_eq!(a.attempts, 2, "lost claim re-issued after the timeout");
        assert!(
            dht.ops.contains(&Op::CancelCreate(token)),
            "the timed-out claim is cancelled so a late reply cannot publish"
        );
    }

    #[test]
    fn release_removes_the_lease() {
        let mut a = alloc();
        let mut rng = StreamRng::new(5, "dhcp");
        let mut dht = FakeDht::default();
        a.poll(SimTime::ZERO, true, &mut rng, &mut dht);
        let DhcpState::Claiming { token, ip, .. } = a.state() else {
            panic!()
        };
        a.on_create_reply(SimTime::ZERO, token, true, false, &mut rng, &mut dht);
        a.poll(
            SimTime::ZERO + Duration::from_secs(3),
            true,
            &mut rng,
            &mut dht,
        );
        let v = encode_owner(&owner());
        a.on_get_reply(
            SimTime::ZERO + Duration::from_secs(3),
            dht.last_token(),
            Some(v.as_slice()),
            &mut rng,
            &mut dht,
        );
        assert!(a.bound());
        a.release(SimTime::ZERO + Duration::from_secs(10), &mut dht);
        assert_eq!(a.state(), DhcpState::Released);
        assert!(matches!(dht.ops.last(), Some(Op::Remove(k)) if *k == lease_key(ip)));
    }

    #[test]
    fn exhausted_subnet_is_terminal_not_a_hang() {
        // A /30 has exactly two usable addresses. A third joiner that sees
        // both taken must land in AddressSpaceExhausted after scanning the
        // range once — not redraw (and re-collide) forever.
        let s = Subnet::new(Ipv4Addr::new(172, 16, 9, 0), 30);
        assert_eq!(s.usable_hosts(), 2);
        let mut a = DhcpAllocator::new(s, owner(), DhcpConfig::default());
        let mut rng = StreamRng::new(9, "dhcp");
        let mut dht = FakeDht::default();
        let mut now = SimTime::ZERO;
        a.poll(now, true, &mut rng, &mut dht);
        for _ in 0..2 {
            let DhcpState::Claiming { token, .. } = a.state() else {
                panic!("expected a claim, got {:?}", a.state())
            };
            a.on_create_reply(now, token, false, true, &mut rng, &mut dht);
            now += Duration::from_secs(1);
        }
        assert_eq!(a.state(), DhcpState::AddressSpaceExhausted);
        assert_eq!(a.attempts, 2, "each usable address was tried exactly once");
        // Terminal: further polls issue nothing.
        let ops = dht.ops.len();
        a.poll(now, true, &mut rng, &mut dht);
        assert_eq!(dht.ops.len(), ops);
    }

    #[test]
    fn fully_reserved_subnet_is_exhausted_without_any_claim() {
        let s = Subnet::new(Ipv4Addr::new(172, 16, 9, 0), 30);
        let mut a = DhcpAllocator::new(s, owner(), DhcpConfig::default()).with_reserved(vec![
            Ipv4Addr::new(172, 16, 9, 1),
            Ipv4Addr::new(172, 16, 9, 2),
        ]);
        let mut rng = StreamRng::new(10, "dhcp");
        let mut dht = FakeDht::default();
        a.poll(SimTime::ZERO, true, &mut rng, &mut dht);
        assert_eq!(a.state(), DhcpState::AddressSpaceExhausted);
        assert!(
            dht.ops.is_empty(),
            "no claim for a subnet with nothing free"
        );
    }

    #[test]
    fn draw_avoiding_covers_a_dense_subnet_deterministically() {
        let s = Subnet::new(Ipv4Addr::new(172, 16, 9, 0), 29); // 6 usable
        let mut rng = StreamRng::new(11, "draw");
        let mut seen = BTreeSet::new();
        // Drawing while avoiding everything seen so far enumerates the whole
        // usable range, then reports exhaustion.
        for _ in 0..6 {
            let ip = s.draw_avoiding(&mut rng, &[], &seen).expect("free address");
            assert!(s.contains(ip));
            assert!(seen.insert(ip), "no duplicates");
        }
        assert_eq!(s.draw_avoiding(&mut rng, &[], &seen), None);
    }

    #[test]
    fn quorum_failure_retries_the_same_address() {
        // created == false without a conflicting value is a write-quorum
        // failure (partition minority): the address is NOT taken, so the
        // allocator re-claims it instead of blacklisting a free address
        // (which would walk it into a false AddressSpaceExhausted).
        let mut a = alloc();
        let mut rng = StreamRng::new(13, "dhcp");
        let mut dht = FakeDht::default();
        let t0 = SimTime::ZERO;
        a.poll(t0, true, &mut rng, &mut dht);
        let DhcpState::Claiming { token, ip, .. } = a.state() else {
            panic!()
        };
        assert!(a.on_create_reply(t0, token, false, false, &mut rng, &mut dht));
        let DhcpState::RetryWait { ip: ip2, retry_at } = a.state() else {
            panic!("retry wait expected, got {:?}", a.state())
        };
        assert_eq!(ip2, ip, "same candidate retried after a quorum failure");
        assert_eq!(retry_at, t0 + Duration::from_secs(3));
        // No immediate re-claim (that would ping-pong against the rejecting
        // coordinator once per round trip)...
        let ops = dht.ops.len();
        a.poll(t0 + Duration::from_secs(1), true, &mut rng, &mut dht);
        assert_eq!(dht.ops.len(), ops, "no claim before the retry delay");
        // ...but after the delay the same address is claimed again.
        a.poll(t0 + Duration::from_secs(3), true, &mut rng, &mut dht);
        let DhcpState::Claiming { ip: ip3, .. } = a.state() else {
            panic!("re-claim expected, got {:?}", a.state())
        };
        assert_eq!(ip3, ip);
        assert_eq!(a.collisions, 0, "a quorum failure is not a collision");
        assert_eq!(
            a.attempts, 1,
            "quorum-failure retries do not consume the attempts budget"
        );
    }

    #[test]
    fn lost_lease_reallocates_a_fresh_address() {
        let mut a = alloc();
        let mut rng = StreamRng::new(12, "dhcp");
        let mut dht = FakeDht::default();
        let t0 = SimTime::ZERO;
        a.poll(t0, true, &mut rng, &mut dht);
        let DhcpState::Claiming { token, ip, .. } = a.state() else {
            panic!()
        };
        a.on_create_reply(t0, token, true, false, &mut rng, &mut dht);
        a.poll(t0 + Duration::from_secs(3), true, &mut rng, &mut dht);
        let v = encode_owner(&owner());
        a.on_get_reply(
            t0 + Duration::from_secs(3),
            dht.last_token(),
            Some(v.as_slice()),
            &mut rng,
            &mut dht,
        );
        assert!(a.bound());
        // The overlay reports the lease lost (healed-partition conflict).
        a.on_lease_lost(t0 + Duration::from_secs(60), &mut rng, &mut dht);
        assert_eq!(a.leases_lost, 1);
        let DhcpState::Claiming { ip: ip2, .. } = a.state() else {
            panic!("re-claim expected, got {:?}", a.state())
        };
        assert_ne!(ip2, ip, "the conflicted address is never drawn again");
        assert!(!a.bound());
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let mut a = DhcpAllocator::new(
            subnet(),
            owner(),
            DhcpConfig {
                max_attempts: 3,
                ..DhcpConfig::default()
            },
        );
        let mut rng = StreamRng::new(6, "dhcp");
        let mut dht = FakeDht::default();
        let mut now = SimTime::ZERO;
        a.poll(now, true, &mut rng, &mut dht);
        for _ in 0..3 {
            if let DhcpState::Claiming { token, .. } = a.state() {
                a.on_create_reply(now, token, false, true, &mut rng, &mut dht);
            }
            now += Duration::from_secs(1);
        }
        assert_eq!(a.state(), DhcpState::Failed);
    }
}
