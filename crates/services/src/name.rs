//! The overlay name service: hostnames → virtual IPs, and back.
//!
//! With dynamically allocated addresses (see [`crate::dhcp`]) no node knows
//! another's virtual IP a priori, so the apps layer needs a symbolic handle.
//! A node registers `SHA-1("name:" + hostname) → its virtual IP` as a
//! refreshed lease in the DHT; resolvers read the record, cache it, and
//! re-resolve when the cache entry expires — the same soft-state pattern as
//! Brunet-ARP, one level up.
//!
//! Registration also writes the reverse record
//! `SHA-1("rname:" + ip octets) → hostname`, so diagnostics and
//! accounting can turn an observed virtual IP back into a name
//! ([`NameService::lookup_ip`]).

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use ipop_overlay::Address;
use ipop_packet::Bytes;
use ipop_simcore::{Duration, SimTime};

use crate::DhtClient;

/// The DHT key of a hostname record.
pub fn name_key(name: &str) -> Address {
    let mut keyed = Vec::with_capacity(5 + name.len());
    keyed.extend_from_slice(b"name:");
    keyed.extend_from_slice(name.as_bytes());
    Address::from_key(&keyed)
}

/// The DHT key of a reverse (IP → hostname) record.
pub fn reverse_key(ip: Ipv4Addr) -> Address {
    let mut keyed = Vec::with_capacity(6 + 4);
    keyed.extend_from_slice(b"rname:");
    keyed.extend_from_slice(&ip.octets());
    Address::from_key(&keyed)
}

/// Encode a virtual IP as a name-record value.
pub fn encode_ip(ip: Ipv4Addr) -> Bytes {
    Bytes::copy_from_slice(&ip.octets())
}

/// Decode a name-record value back into a virtual IP.
pub fn decode_ip(value: &[u8]) -> Option<Ipv4Addr> {
    let octets: [u8; 4] = value.try_into().ok()?;
    Some(Ipv4Addr::from(octets))
}

/// Encode a hostname as a reverse-record value.
pub fn encode_name(name: &str) -> Bytes {
    Bytes::copy_from_slice(name.as_bytes())
}

/// Decode a reverse-record value back into a hostname.
pub fn decode_name(value: &[u8]) -> Option<String> {
    String::from_utf8(value.to_vec()).ok()
}

/// Outcome of a resolution attempt.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// Answered from the local cache.
    Cached(Ipv4Addr),
    /// A DHT read was issued under the given token; the answer arrives via
    /// [`NameService::on_reply`].
    Pending(u64),
}

/// Outcome of a reverse (IP → hostname) resolution attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReverseResolution {
    /// Answered from the local cache.
    Cached(String),
    /// A DHT read was issued under the given token; the answer arrives via
    /// [`NameService::on_reverse_reply`].
    Pending(u64),
}

/// Resolver-side (and registrar-side) name service state for one node.
pub struct NameService {
    cache_ttl: Duration,
    cache: BTreeMap<String, (Ipv4Addr, SimTime)>,
    /// Reverse cache: IP → (hostname, stored-at). `BTreeMap` for
    /// deterministic iteration (Ipv4Addr orders by octets).
    reverse_cache: BTreeMap<Ipv4Addr, (String, SimTime)>,
    /// Outstanding lookups: token → hostname. Never iterated, only keyed.
    pending: BTreeMap<u64, String>,
    /// Outstanding reverse lookups: token → IP. Never iterated, only keyed.
    pending_reverse: BTreeMap<u64, Ipv4Addr>,
    /// Lookups answered from the DHT with a mapping.
    pub resolved: u64,
    /// Lookups that found no record.
    pub failed: u64,
}

impl NameService {
    /// A name service whose cache entries live for `cache_ttl`.
    pub fn new(cache_ttl: Duration) -> Self {
        NameService {
            cache_ttl,
            cache: BTreeMap::new(),
            reverse_cache: BTreeMap::new(),
            pending: BTreeMap::new(),
            pending_reverse: BTreeMap::new(),
            resolved: 0,
            failed: 0,
        }
    }

    /// Register (or re-register, e.g. after migration) `name → ip` as a
    /// refreshed lease with the given TTL — plus the reverse `ip → name`
    /// record under [`reverse_key`].
    pub fn register(
        dht: &mut dyn DhtClient,
        now: SimTime,
        name: &str,
        ip: Ipv4Addr,
        ttl: Duration,
    ) {
        dht.put(now, name_key(name), encode_ip(ip), ttl);
        dht.put(now, reverse_key(ip), encode_name(name), ttl);
    }

    /// Remove the registration for `name` and its reverse record for `ip`.
    pub fn unregister(dht: &mut dyn DhtClient, now: SimTime, name: &str, ip: Ipv4Addr) {
        dht.remove(now, name_key(name));
        dht.remove(now, reverse_key(ip));
    }

    /// Resolve `name`, from cache when fresh, otherwise via a DHT read.
    pub fn resolve(&mut self, dht: &mut dyn DhtClient, now: SimTime, name: &str) -> Resolution {
        if let Some((ip, stored_at)) = self.cache.get(name) {
            if now.saturating_since(*stored_at) < self.cache_ttl {
                return Resolution::Cached(*ip);
            }
            self.cache.remove(name);
        }
        let token = dht.get(now, name_key(name));
        self.pending.insert(token, name.to_string());
        Resolution::Pending(token)
    }

    /// Feed a DHT get reply. Returns `Some((name, ip))` when the token
    /// belonged to an outstanding name lookup (ip is `None` when no record
    /// exists), `None` when the token is not ours.
    pub fn on_reply(
        &mut self,
        now: SimTime,
        token: u64,
        value: Option<&[u8]>,
    ) -> Option<(String, Option<Ipv4Addr>)> {
        let name = self.pending.remove(&token)?;
        let ip = value.and_then(decode_ip);
        match ip {
            Some(ip) => {
                self.resolved += 1;
                self.cache.insert(name.clone(), (ip, now));
            }
            None => self.failed += 1,
        }
        Some((name, ip))
    }

    /// Reverse-resolve `ip` to the hostname registered for it, from cache
    /// when fresh, otherwise via a DHT read of the [`reverse_key`] record.
    pub fn lookup_ip(
        &mut self,
        dht: &mut dyn DhtClient,
        now: SimTime,
        ip: Ipv4Addr,
    ) -> ReverseResolution {
        if let Some((name, stored_at)) = self.reverse_cache.get(&ip) {
            if now.saturating_since(*stored_at) < self.cache_ttl {
                return ReverseResolution::Cached(name.clone());
            }
            self.reverse_cache.remove(&ip);
        }
        let token = dht.get(now, reverse_key(ip));
        self.pending_reverse.insert(token, ip);
        ReverseResolution::Pending(token)
    }

    /// Feed a DHT get reply that may answer a reverse lookup. Returns
    /// `Some((ip, hostname))` when the token belonged to an outstanding
    /// reverse lookup (hostname is `None` when no record exists), `None`
    /// when the token is not ours.
    pub fn on_reverse_reply(
        &mut self,
        now: SimTime,
        token: u64,
        value: Option<&[u8]>,
    ) -> Option<(Ipv4Addr, Option<String>)> {
        let ip = self.pending_reverse.remove(&token)?;
        let name = value.and_then(decode_name);
        match &name {
            Some(name) => {
                self.resolved += 1;
                self.reverse_cache.insert(ip, (name.clone(), now));
            }
            None => self.failed += 1,
        }
        Some((ip, name))
    }

    /// Number of live cache entries.
    pub fn cached(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{FakeDht, Op};

    const IP: Ipv4Addr = Ipv4Addr::new(172, 16, 9, 42);

    #[test]
    fn ip_encoding_round_trips() {
        assert_eq!(decode_ip(&encode_ip(IP)), Some(IP));
        assert_eq!(decode_ip(&[1, 2, 3]), None);
        assert_ne!(name_key("worker-1"), name_key("worker-2"));
        assert_eq!(
            decode_name(&encode_name("worker-1")).as_deref(),
            Some("worker-1")
        );
        assert_ne!(reverse_key(IP), name_key("worker-1"));
        assert_ne!(reverse_key(IP), reverse_key(Ipv4Addr::new(172, 16, 9, 43)));
    }

    #[test]
    fn register_resolve_cache_cycle() {
        let mut ns = NameService::new(Duration::from_secs(60));
        let mut dht = FakeDht::default();
        let t0 = SimTime::ZERO;
        NameService::register(&mut dht, t0, "worker-1", IP, Duration::from_secs(120));
        assert_eq!(
            dht.ops[0],
            Op::Put(
                name_key("worker-1"),
                encode_ip(IP),
                Duration::from_secs(120)
            )
        );
        assert_eq!(
            dht.ops[1],
            Op::Put(
                reverse_key(IP),
                encode_name("worker-1"),
                Duration::from_secs(120)
            ),
            "registration also writes the reverse record"
        );
        // First lookup goes to the DHT.
        let Resolution::Pending(token) = ns.resolve(&mut dht, t0, "worker-1") else {
            panic!("expected a pending lookup")
        };
        let v = encode_ip(IP);
        assert_eq!(
            ns.on_reply(t0, token, Some(v.as_slice())),
            Some(("worker-1".to_string(), Some(IP)))
        );
        assert_eq!(ns.resolved, 1);
        // Second lookup is served from cache.
        assert_eq!(
            ns.resolve(&mut dht, t0 + Duration::from_secs(10), "worker-1"),
            Resolution::Cached(IP)
        );
        // After the cache TTL the name is re-resolved (migration pickup).
        assert!(matches!(
            ns.resolve(&mut dht, t0 + Duration::from_secs(61), "worker-1"),
            Resolution::Pending(_)
        ));
    }

    #[test]
    fn missing_names_count_as_failures() {
        let mut ns = NameService::new(Duration::from_secs(60));
        let mut dht = FakeDht::default();
        let Resolution::Pending(token) = ns.resolve(&mut dht, SimTime::ZERO, "ghost") else {
            panic!()
        };
        assert_eq!(
            ns.on_reply(SimTime::ZERO, token, None),
            Some(("ghost".to_string(), None))
        );
        assert_eq!(ns.failed, 1);
        assert_eq!(ns.cached(), 0);
        // Unknown tokens are not ours.
        assert_eq!(ns.on_reply(SimTime::ZERO, 999, None), None);
    }

    #[test]
    fn unregister_removes_both_records() {
        let mut dht = FakeDht::default();
        NameService::unregister(&mut dht, SimTime::ZERO, "worker-1", IP);
        assert_eq!(
            dht.ops,
            vec![
                Op::Remove(name_key("worker-1")),
                Op::Remove(reverse_key(IP)),
            ]
        );
    }

    #[test]
    fn reverse_lookup_cycle() {
        let mut ns = NameService::new(Duration::from_secs(60));
        let mut dht = FakeDht::default();
        let t0 = SimTime::ZERO;
        // First reverse lookup goes to the DHT under the reverse key.
        let ReverseResolution::Pending(token) = ns.lookup_ip(&mut dht, t0, IP) else {
            panic!("expected a pending reverse lookup")
        };
        assert_eq!(dht.ops, vec![Op::Get(reverse_key(IP))]);
        let v = encode_name("worker-1");
        assert_eq!(
            ns.on_reverse_reply(t0, token, Some(v.as_slice())),
            Some((IP, Some("worker-1".to_string())))
        );
        assert_eq!(ns.resolved, 1);
        // Second lookup is served from the reverse cache.
        assert_eq!(
            ns.lookup_ip(&mut dht, t0 + Duration::from_secs(10), IP),
            ReverseResolution::Cached("worker-1".to_string())
        );
        // After the cache TTL the IP is re-resolved (re-registration pickup).
        assert!(matches!(
            ns.lookup_ip(&mut dht, t0 + Duration::from_secs(61), IP),
            ReverseResolution::Pending(_)
        ));
        // An unregistered IP reverse-resolves to nothing.
        let other = Ipv4Addr::new(172, 16, 9, 77);
        let ReverseResolution::Pending(t2) = ns.lookup_ip(&mut dht, t0, other) else {
            panic!()
        };
        assert_eq!(ns.on_reverse_reply(t0, t2, None), Some((other, None)));
        assert_eq!(ns.failed, 1);
        // A forward-lookup token is not a reverse one and vice versa.
        assert_eq!(ns.on_reverse_reply(t0, 999, None), None);
    }
}
