//! The overlay name service: hostnames → virtual IPs.
//!
//! With dynamically allocated addresses (see [`crate::dhcp`]) no node knows
//! another's virtual IP a priori, so the apps layer needs a symbolic handle.
//! A node registers `SHA-1("name:" + hostname) → its virtual IP` as a
//! refreshed lease in the DHT; resolvers read the record, cache it, and
//! re-resolve when the cache entry expires — the same soft-state pattern as
//! Brunet-ARP, one level up.

use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

use ipop_overlay::Address;
use ipop_packet::Bytes;
use ipop_simcore::{Duration, SimTime};

use crate::DhtClient;

/// The DHT key of a hostname record.
pub fn name_key(name: &str) -> Address {
    let mut keyed = Vec::with_capacity(5 + name.len());
    keyed.extend_from_slice(b"name:");
    keyed.extend_from_slice(name.as_bytes());
    Address::from_key(&keyed)
}

/// Encode a virtual IP as a name-record value.
pub fn encode_ip(ip: Ipv4Addr) -> Bytes {
    Bytes::copy_from_slice(&ip.octets())
}

/// Decode a name-record value back into a virtual IP.
pub fn decode_ip(value: &[u8]) -> Option<Ipv4Addr> {
    let octets: [u8; 4] = value.try_into().ok()?;
    Some(Ipv4Addr::from(octets))
}

/// Outcome of a resolution attempt.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// Answered from the local cache.
    Cached(Ipv4Addr),
    /// A DHT read was issued under the given token; the answer arrives via
    /// [`NameService::on_reply`].
    Pending(u64),
}

/// Resolver-side (and registrar-side) name service state for one node.
pub struct NameService {
    cache_ttl: Duration,
    cache: BTreeMap<String, (Ipv4Addr, SimTime)>,
    /// Outstanding lookups: token → hostname. Never iterated, only keyed.
    pending: HashMap<u64, String>,
    /// Lookups answered from the DHT with a mapping.
    pub resolved: u64,
    /// Lookups that found no record.
    pub failed: u64,
}

impl NameService {
    /// A name service whose cache entries live for `cache_ttl`.
    pub fn new(cache_ttl: Duration) -> Self {
        NameService {
            cache_ttl,
            cache: BTreeMap::new(),
            pending: HashMap::new(),
            resolved: 0,
            failed: 0,
        }
    }

    /// Register (or re-register, e.g. after migration) `name → ip` as a
    /// refreshed lease with the given TTL.
    pub fn register(
        dht: &mut dyn DhtClient,
        now: SimTime,
        name: &str,
        ip: Ipv4Addr,
        ttl: Duration,
    ) {
        dht.put(now, name_key(name), encode_ip(ip), ttl);
    }

    /// Remove the registration for `name`.
    pub fn unregister(dht: &mut dyn DhtClient, now: SimTime, name: &str) {
        dht.remove(now, name_key(name));
    }

    /// Resolve `name`, from cache when fresh, otherwise via a DHT read.
    pub fn resolve(&mut self, dht: &mut dyn DhtClient, now: SimTime, name: &str) -> Resolution {
        if let Some((ip, stored_at)) = self.cache.get(name) {
            if now.saturating_since(*stored_at) < self.cache_ttl {
                return Resolution::Cached(*ip);
            }
            self.cache.remove(name);
        }
        let token = dht.get(now, name_key(name));
        self.pending.insert(token, name.to_string());
        Resolution::Pending(token)
    }

    /// Feed a DHT get reply. Returns `Some((name, ip))` when the token
    /// belonged to an outstanding name lookup (ip is `None` when no record
    /// exists), `None` when the token is not ours.
    pub fn on_reply(
        &mut self,
        now: SimTime,
        token: u64,
        value: Option<&[u8]>,
    ) -> Option<(String, Option<Ipv4Addr>)> {
        let name = self.pending.remove(&token)?;
        let ip = value.and_then(decode_ip);
        match ip {
            Some(ip) => {
                self.resolved += 1;
                self.cache.insert(name.clone(), (ip, now));
            }
            None => self.failed += 1,
        }
        Some((name, ip))
    }

    /// Number of live cache entries.
    pub fn cached(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{FakeDht, Op};

    const IP: Ipv4Addr = Ipv4Addr::new(172, 16, 9, 42);

    #[test]
    fn ip_encoding_round_trips() {
        assert_eq!(decode_ip(&encode_ip(IP)), Some(IP));
        assert_eq!(decode_ip(&[1, 2, 3]), None);
        assert_ne!(name_key("worker-1"), name_key("worker-2"));
    }

    #[test]
    fn register_resolve_cache_cycle() {
        let mut ns = NameService::new(Duration::from_secs(60));
        let mut dht = FakeDht::default();
        let t0 = SimTime::ZERO;
        NameService::register(&mut dht, t0, "worker-1", IP, Duration::from_secs(120));
        assert_eq!(
            dht.ops[0],
            Op::Put(
                name_key("worker-1"),
                encode_ip(IP),
                Duration::from_secs(120)
            )
        );
        // First lookup goes to the DHT.
        let Resolution::Pending(token) = ns.resolve(&mut dht, t0, "worker-1") else {
            panic!("expected a pending lookup")
        };
        let v = encode_ip(IP);
        assert_eq!(
            ns.on_reply(t0, token, Some(v.as_slice())),
            Some(("worker-1".to_string(), Some(IP)))
        );
        assert_eq!(ns.resolved, 1);
        // Second lookup is served from cache.
        assert_eq!(
            ns.resolve(&mut dht, t0 + Duration::from_secs(10), "worker-1"),
            Resolution::Cached(IP)
        );
        // After the cache TTL the name is re-resolved (migration pickup).
        assert!(matches!(
            ns.resolve(&mut dht, t0 + Duration::from_secs(61), "worker-1"),
            Resolution::Pending(_)
        ));
    }

    #[test]
    fn missing_names_count_as_failures() {
        let mut ns = NameService::new(Duration::from_secs(60));
        let mut dht = FakeDht::default();
        let Resolution::Pending(token) = ns.resolve(&mut dht, SimTime::ZERO, "ghost") else {
            panic!()
        };
        assert_eq!(
            ns.on_reply(SimTime::ZERO, token, None),
            Some(("ghost".to_string(), None))
        );
        assert_eq!(ns.failed, 1);
        assert_eq!(ns.cached(), 0);
        // Unknown tokens are not ours.
        assert_eq!(ns.on_reply(SimTime::ZERO, 999, None), None);
    }

    #[test]
    fn unregister_removes_the_record() {
        let mut dht = FakeDht::default();
        NameService::unregister(&mut dht, SimTime::ZERO, "worker-1");
        assert_eq!(dht.ops, vec![Op::Remove(name_key("worker-1"))]);
    }
}
