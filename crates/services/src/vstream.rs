//! Virtual-stream client: per-stream handles over the overlay's stream engine.
//!
//! The overlay's stream engine (see `ipop_overlay::vstream`) multiplexes every
//! stream of a node through one table and hands the host flat drains:
//! accepted `(remote, id)` pairs, `(remote, id, chunk)` data triples, and
//! lifecycle events. Applications want per-connection objects. This module is
//! the thin host-side layer between the two: a [`VirtualStreams`] registry
//! that buckets the flat drains into per-stream inboxes, and a
//! [`VirtualStream`] handle naming one connection.
//!
//! Like the other services, it drives the overlay through a narrow trait
//! ([`StreamClient`]) so it can be unit-tested against a scripted fake.

use std::collections::{BTreeMap, VecDeque};

use ipop_overlay::vstream::StreamEvent;
use ipop_overlay::{Address, OverlayNode};
use ipop_packet::Bytes;
use ipop_simcore::SimTime;

/// The stream operations the service needs from the overlay — the
/// [`crate::DhtClient`] pattern, one protocol over.
pub trait StreamClient {
    /// Open a stream to `remote`; returns the stream id.
    fn connect(&mut self, now: SimTime, remote: Address) -> u64;
    /// Queue bytes on an open stream (false: unknown or closing stream).
    fn send(&mut self, now: SimTime, remote: Address, stream_id: u64, data: Bytes) -> bool;
    /// Close a stream (buffered data still delivers first).
    fn close(&mut self, now: SimTime, remote: Address, stream_id: u64);
    /// Drain streams accepted from remote opens.
    fn take_accepted(&mut self) -> Vec<(Address, u64)>;
    /// Drain in-order received data across all streams.
    fn take_data(&mut self) -> Vec<(Address, u64, Bytes)>;
    /// Drain stream lifecycle events.
    fn take_events(&mut self) -> Vec<StreamEvent>;
}

impl StreamClient for OverlayNode {
    fn connect(&mut self, now: SimTime, remote: Address) -> u64 {
        self.stream_connect(now, remote)
    }

    fn send(&mut self, now: SimTime, remote: Address, stream_id: u64, data: Bytes) -> bool {
        self.stream_send(now, remote, stream_id, data)
    }

    fn close(&mut self, now: SimTime, remote: Address, stream_id: u64) {
        self.stream_close(now, remote, stream_id);
    }

    fn take_accepted(&mut self) -> Vec<(Address, u64)> {
        self.take_stream_accepted()
    }

    fn take_data(&mut self) -> Vec<(Address, u64, Bytes)> {
        self.take_stream_data()
    }

    fn take_events(&mut self) -> Vec<StreamEvent> {
        self.take_stream_events()
    }
}

/// One end of a virtual stream: the `(remote, id)` pair that names the
/// connection in both stream tables. Handed out by [`VirtualStreams::connect`]
/// and [`VirtualStreams::accept`]; all I/O goes through the registry so a
/// handle stays a plain copyable name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct VirtualStream {
    /// The peer's overlay address.
    pub remote: Address,
    /// The stream id assigned by the opening side.
    pub stream_id: u64,
}

/// Terminal state of a stream, surfaced by [`VirtualStreams::poll`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamFate {
    /// Closed cleanly (our FIN acked, or the peer's FIN fully delivered).
    Closed,
    /// The retransmit budget ran out; undelivered data was dropped.
    Failed,
}

/// Host-side stream state for one node: per-stream inboxes and counters.
#[derive(Default)]
pub struct VirtualStreams {
    /// Received data per stream, bucketed from the engine's flat drain.
    inboxes: BTreeMap<(Address, u64), VecDeque<Bytes>>,
    /// Remotely opened streams not yet claimed via [`VirtualStreams::accept`].
    pending_accept: VecDeque<VirtualStream>,
    /// Streams whose `Established` event has arrived.
    established: Vec<VirtualStream>,
    /// Streams that reached a terminal state, with their fate.
    finished: Vec<(VirtualStream, StreamFate)>,
    /// Streams opened from this node.
    pub opened: u64,
    /// Streams accepted from remote opens.
    pub accepted: u64,
    /// Bytes received across all streams.
    pub bytes_received: u64,
}

impl VirtualStreams {
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a stream to `remote` and return its handle. Data can be sent
    /// immediately; it flows once the handshake completes.
    pub fn connect(
        &mut self,
        client: &mut dyn StreamClient,
        now: SimTime,
        remote: Address,
    ) -> VirtualStream {
        let stream_id = client.connect(now, remote);
        self.opened += 1;
        let vs = VirtualStream { remote, stream_id };
        self.inboxes.entry((remote, stream_id)).or_default();
        vs
    }

    /// Claim the next remotely opened stream, if any. Call [`Self::poll`]
    /// first to pull fresh accepts out of the overlay.
    pub fn accept(&mut self) -> Option<VirtualStream> {
        self.pending_accept.pop_front()
    }

    /// Queue bytes on a stream. Returns false when the overlay no longer
    /// tracks it (closed, failed, or never existed).
    pub fn send(
        &mut self,
        client: &mut dyn StreamClient,
        now: SimTime,
        stream: VirtualStream,
        data: impl Into<Bytes>,
    ) -> bool {
        client.send(now, stream.remote, stream.stream_id, data.into())
    }

    /// Close a stream; buffered data still delivers, then the FIN tears it
    /// down in both directions.
    pub fn close(&mut self, client: &mut dyn StreamClient, now: SimTime, stream: VirtualStream) {
        client.close(now, stream.remote, stream.stream_id);
    }

    /// Drain the overlay's flat queues into per-stream state. Returns the
    /// streams that reached a terminal state in this poll (their inboxes
    /// remain readable until drained).
    pub fn poll(&mut self, client: &mut dyn StreamClient) -> Vec<(VirtualStream, StreamFate)> {
        for (remote, stream_id) in client.take_accepted() {
            self.accepted += 1;
            let vs = VirtualStream { remote, stream_id };
            self.inboxes.entry((remote, stream_id)).or_default();
            self.pending_accept.push_back(vs);
        }
        for (remote, stream_id, chunk) in client.take_data() {
            self.bytes_received += chunk.len() as u64;
            self.inboxes
                .entry((remote, stream_id))
                .or_default()
                .push_back(chunk);
        }
        let mut newly_finished = Vec::new();
        for ev in client.take_events() {
            match ev {
                StreamEvent::Established { remote, stream_id } => {
                    self.established.push(VirtualStream { remote, stream_id });
                }
                StreamEvent::Closed { remote, stream_id }
                | StreamEvent::RemoteClosed { remote, stream_id } => {
                    let vs = VirtualStream { remote, stream_id };
                    newly_finished.push((vs, StreamFate::Closed));
                }
                StreamEvent::Failed { remote, stream_id } => {
                    let vs = VirtualStream { remote, stream_id };
                    newly_finished.push((vs, StreamFate::Failed));
                }
            }
        }
        self.finished.extend(newly_finished.iter().copied());
        newly_finished
    }

    /// True once the stream's handshake completed (its `Established` event
    /// has been polled).
    pub fn is_established(&self, stream: VirtualStream) -> bool {
        self.established.contains(&stream)
    }

    /// The stream's terminal fate, once it has one.
    pub fn fate(&self, stream: VirtualStream) -> Option<StreamFate> {
        self.finished
            .iter()
            .find(|(vs, _)| *vs == stream)
            .map(|(_, f)| *f)
    }

    /// Pop the next in-order chunk received on `stream` (zero-copy view of
    /// the wire frame).
    pub fn recv(&mut self, stream: VirtualStream) -> Option<Bytes> {
        self.inboxes
            .get_mut(&(stream.remote, stream.stream_id))?
            .pop_front()
    }

    /// Drain everything received on `stream` as one contiguous buffer.
    pub fn recv_all(&mut self, stream: VirtualStream) -> Vec<u8> {
        let Some(q) = self.inboxes.get_mut(&(stream.remote, stream.stream_id)) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for chunk in q.drain(..) {
            out.extend_from_slice(&chunk);
        }
        out
    }

    /// Forget a finished stream's local bookkeeping (inbox included).
    pub fn forget(&mut self, stream: VirtualStream) {
        self.inboxes.remove(&(stream.remote, stream.stream_id));
        self.established.retain(|vs| *vs != stream);
        self.finished.retain(|(vs, _)| *vs != stream);
        self.pending_accept.retain(|vs| *vs != stream);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> Address {
        Address::from_key(&[n])
    }

    /// One recorded stream operation.
    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        Connect(Address),
        Send(Address, u64, Bytes),
        Close(Address, u64),
    }

    /// A scripted [`StreamClient`] that records operations and queues
    /// accepts/data/events for the next poll.
    #[derive(Default)]
    struct FakeStreams {
        ops: Vec<Op>,
        next_id: u64,
        accepts: Vec<(Address, u64)>,
        data: Vec<(Address, u64, Bytes)>,
        events: Vec<StreamEvent>,
    }

    impl StreamClient for FakeStreams {
        fn connect(&mut self, _now: SimTime, remote: Address) -> u64 {
            self.ops.push(Op::Connect(remote));
            self.next_id += 2;
            self.next_id
        }

        fn send(&mut self, _now: SimTime, remote: Address, stream_id: u64, data: Bytes) -> bool {
            self.ops.push(Op::Send(remote, stream_id, data));
            true
        }

        fn close(&mut self, _now: SimTime, remote: Address, stream_id: u64) {
            self.ops.push(Op::Close(remote, stream_id));
        }

        fn take_accepted(&mut self) -> Vec<(Address, u64)> {
            std::mem::take(&mut self.accepts)
        }

        fn take_data(&mut self) -> Vec<(Address, u64, Bytes)> {
            std::mem::take(&mut self.data)
        }

        fn take_events(&mut self) -> Vec<StreamEvent> {
            std::mem::take(&mut self.events)
        }
    }

    #[test]
    fn connect_send_close_round_trip() {
        let mut svc = VirtualStreams::new();
        let mut client = FakeStreams::default();
        let t0 = SimTime::ZERO;
        let peer = addr(7);

        let vs = svc.connect(&mut client, t0, peer);
        assert_eq!(vs.remote, peer);
        assert_eq!(client.ops, vec![Op::Connect(peer)]);

        client.events.push(StreamEvent::Established {
            remote: peer,
            stream_id: vs.stream_id,
        });
        assert!(svc.poll(&mut client).is_empty());
        assert!(svc.is_established(vs));

        assert!(svc.send(&mut client, t0, vs, Bytes::from(&b"hello"[..])));
        svc.close(&mut client, t0, vs);
        assert_eq!(
            client.ops[1..],
            vec![
                Op::Send(peer, vs.stream_id, Bytes::from(&b"hello"[..])),
                Op::Close(peer, vs.stream_id),
            ]
        );

        client.events.push(StreamEvent::Closed {
            remote: peer,
            stream_id: vs.stream_id,
        });
        let done = svc.poll(&mut client);
        assert_eq!(done, vec![(vs, StreamFate::Closed)]);
        assert_eq!(svc.fate(vs), Some(StreamFate::Closed));
    }

    #[test]
    fn accepted_streams_bucket_their_data() {
        let mut svc = VirtualStreams::new();
        let mut client = FakeStreams::default();
        let (p1, p2) = (addr(1), addr(2));
        client.accepts.push((p1, 10));
        client.accepts.push((p2, 12));
        client.data.push((p1, 10, Bytes::from(&b"one"[..])));
        client.data.push((p2, 12, Bytes::from(&b"two"[..])));
        client.data.push((p1, 10, Bytes::from(&b"-more"[..])));
        svc.poll(&mut client);

        let a = svc.accept().unwrap();
        let b = svc.accept().unwrap();
        assert!(svc.accept().is_none());
        assert_eq!((a.remote, a.stream_id), (p1, 10));
        assert_eq!((b.remote, b.stream_id), (p2, 12));
        assert_eq!(svc.recv_all(a), b"one-more");
        assert_eq!(svc.recv_all(b), b"two");
        assert_eq!(svc.bytes_received, 11);
        assert_eq!(svc.accepted, 2);
    }

    #[test]
    fn failed_stream_reports_fate_and_forget_clears_state() {
        let mut svc = VirtualStreams::new();
        let mut client = FakeStreams::default();
        let peer = addr(3);
        let vs = svc.connect(&mut client, SimTime::ZERO, peer);
        client.events.push(StreamEvent::Failed {
            remote: peer,
            stream_id: vs.stream_id,
        });
        let done = svc.poll(&mut client);
        assert_eq!(done, vec![(vs, StreamFate::Failed)]);
        svc.forget(vs);
        assert_eq!(svc.fate(vs), None);
        assert!(svc.recv(vs).is_none());
    }
}
