//! Sharded deterministic simulation: parallelism *inside* one run.
//!
//! [`Simulator`](crate::Simulator) executes a single global `(time, seq)`
//! order — perfect determinism, zero parallelism. At 100k nodes that clock
//! wall-time poorly, so [`ShardedSim`] partitions the world into shards, each
//! with its own [`EventQueue`] and state, and executes whole *time slices* in
//! parallel:
//!
//! 1. Virtual time is cut into fixed slices aligned to an absolute grid
//!    (`[k·slice, (k+1)·slice)`), so results do not depend on how callers
//!    chunk `run_until`.
//! 2. Within a slice every shard runs its own events independently; events a
//!    shard schedules for itself are executed in the same slice as usual.
//! 3. Events for *other* shards are buffered and must land at or after the
//!    slice boundary (a cross-shard message needs at least one slice of
//!    latency — the harness picks `slice ≤ min link latency`).
//! 4. At the slice barrier the buffered messages are merged in
//!    `(time, source shard, emission index)` order — a total order that is
//!    independent of thread scheduling — and pushed into the destination
//!    queues sequentially, which assigns their sequence numbers
//!    deterministically.
//!
//! Because each shard touches only its own state and the merge order is a
//! pure sort, running the shards on real threads (the vendored `rayon`) or
//! one after another on a single thread produces byte-identical histories.
//! [`ShardedSim::trace_hash`] folds every executed `(time, seq)` pair into a
//! per-shard FNV hash so tests (and `debug_assertions` builds) can assert
//! `parallel == sequential` cheaply.

use rayon::prelude::*;

use crate::event::EventQueue;
use crate::time::{Duration, SimTime};

/// Per-shard world state driven by [`ShardedSim`].
///
/// `handle` receives each event in deterministic order together with a
/// [`ShardCtl`] used to schedule follow-up events locally or on other shards.
pub trait ShardWorld: Send {
    /// Event payload type.
    type Ev: Send;

    /// Process one event at virtual time `now`.
    fn handle(&mut self, now: SimTime, ev: Self::Ev, ctl: &mut ShardCtl<Self::Ev>);
}

/// Scheduling handle passed to [`ShardWorld::handle`].
pub struct ShardCtl<'a, E> {
    now: SimTime,
    slice_end: SimTime,
    shard: usize,
    shards: usize,
    /// `(at, ev)` destined for this shard's own queue (same slice allowed).
    local: &'a mut Vec<(SimTime, E)>,
    /// Cross-shard emissions, in emission order.
    cross: &'a mut Vec<CrossMsg<E>>,
}

impl<E> ShardCtl<'_, E> {
    /// Virtual time of the event being handled.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Index of the shard this handler runs on.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Total number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Schedule a follow-up event on this shard. Any `at >= now` is legal,
    /// including within the current slice.
    pub fn send_local(&mut self, at: SimTime, ev: E) {
        self.local.push((at.max(self.now), ev));
    }

    /// Schedule an event on shard `dst` (which may be this shard). The event
    /// crosses the slice barrier, so `at` must be at or after the end of the
    /// current slice; earlier times are clamped (and flagged in debug
    /// builds — it means the harness's minimum latency is below the slice).
    pub fn send(&mut self, dst: usize, at: SimTime, ev: E) {
        debug_assert!(
            at >= self.slice_end,
            "cross-shard event at {at:?} lands inside the current slice (end {:?})",
            self.slice_end
        );
        debug_assert!(dst < self.shards, "shard {dst} out of range");
        self.cross.push(CrossMsg {
            at: at.max(self.slice_end),
            dst,
            ev,
        });
    }
}

struct CrossMsg<E> {
    at: SimTime,
    dst: usize,
    ev: E,
}

/// 64-bit FNV-1a fold, the workspace's standard cheap deterministic hash.
fn fnv_fold(mut hash: u64, value: u64) -> u64 {
    for byte in value.to_le_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

struct Shard<W: ShardWorld> {
    id: usize,
    world: W,
    queue: EventQueue<W::Ev>,
    executed: u64,
    trace: u64,
    /// Reusable emission buffers (avoid per-event allocation).
    local_buf: Vec<(SimTime, W::Ev)>,
    cross_buf: Vec<CrossMsg<W::Ev>>,
}

impl<W: ShardWorld> Shard<W> {
    /// Run this shard's events with `at < slice_end`, buffering cross-shard
    /// emissions in emission order.
    fn run_slice(&mut self, shards: usize, slice_end: SimTime) {
        while let Some(at) = self.queue.next_time() {
            if at >= slice_end {
                break;
            }
            let ev = self.queue.pop().expect("next_time was Some");
            self.executed += 1;
            self.trace = fnv_fold(fnv_fold(self.trace, ev.at.as_nanos()), ev.id.0);
            let mut ctl = ShardCtl {
                now: ev.at,
                slice_end,
                shard: self.id,
                shards,
                local: &mut self.local_buf,
                cross: &mut self.cross_buf,
            };
            self.world.handle(ev.at, ev.payload, &mut ctl);
            for (at, e) in self.local_buf.drain(..) {
                self.queue.push(at, e);
            }
        }
    }
}

/// A deterministic, shard-parallel discrete-event simulator.
pub struct ShardedSim<W: ShardWorld> {
    shards: Vec<Shard<W>>,
    slice: Duration,
    /// Start of the next unexecuted slice (aligned to the slice grid).
    now: SimTime,
    parallel: bool,
}

/// Why [`ShardedSim::run_until`] returned.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ShardRunOutcome {
    /// Every shard's queue drained before the limit.
    Drained,
    /// The virtual-time limit was reached with events still queued.
    TimeLimit,
}

impl<W: ShardWorld> ShardedSim<W> {
    /// Build a sharded simulator over `worlds` (one shard each). `slice` is
    /// the barrier width: cross-shard events must land at least one slice in
    /// the future, so it must not exceed the minimum cross-shard latency.
    /// `parallel` selects threaded fan-out; both settings produce identical
    /// histories.
    pub fn new(worlds: Vec<W>, slice: Duration, parallel: bool) -> Self {
        assert!(!worlds.is_empty(), "at least one shard required");
        assert!(!slice.is_zero(), "slice must be positive");
        ShardedSim {
            shards: worlds
                .into_iter()
                .enumerate()
                .map(|(id, world)| Shard {
                    id,
                    world,
                    queue: EventQueue::new(),
                    executed: 0,
                    trace: FNV_OFFSET,
                    local_buf: Vec::new(),
                    cross_buf: Vec::new(),
                })
                .collect(),
            slice,
            now: SimTime::ZERO,
            parallel,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Current virtual time (start of the next unexecuted slice).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Borrow shard `i`'s world.
    pub fn world(&self, i: usize) -> &W {
        &self.shards[i].world
    }

    /// Mutably borrow shard `i`'s world (between runs, e.g. to harvest
    /// metrics or inject state).
    pub fn world_mut(&mut self, i: usize) -> &mut W {
        &mut self.shards[i].world
    }

    /// Iterate over all shard worlds.
    pub fn worlds(&self) -> impl Iterator<Item = &W> {
        self.shards.iter().map(|s| &s.world)
    }

    /// Schedule an initial event on shard `dst` (only legal at or after the
    /// current slice start).
    pub fn schedule(&mut self, dst: usize, at: SimTime, ev: W::Ev) {
        assert!(at >= self.now, "scheduling into an already-executed slice");
        self.shards[dst].queue.push(at, ev);
    }

    /// Total events executed across all shards.
    pub fn executed(&self) -> u64 {
        self.shards.iter().map(|s| s.executed).sum()
    }

    /// Deterministic digest of the full execution history: per-shard FNV over
    /// every executed `(time, seq)`, folded in shard order. Two runs that
    /// executed the same events in the same per-shard order — regardless of
    /// thread scheduling — produce the same hash.
    pub fn trace_hash(&self) -> u64 {
        self.shards
            .iter()
            .fold(FNV_OFFSET, |h, s| fnv_fold(h, s.trace))
    }

    /// The earliest pending event time across all shards.
    fn min_next_time(&mut self) -> Option<SimTime> {
        self.shards
            .iter_mut()
            .filter_map(|s| s.queue.next_time())
            .min()
    }

    /// Align `t` down to the slice grid.
    fn slice_start(&self, t: SimTime) -> SimTime {
        let s = self.slice.as_nanos();
        SimTime::from_nanos(t.as_nanos() / s * s)
    }

    /// Execute one slice `[self.now, self.now + slice)` across all shards and
    /// merge the cross-shard emissions at the barrier.
    fn run_slice(&mut self) {
        let slice_end = self.now + self.slice;
        let nshards = self.shards.len();
        let shards = std::mem::take(&mut self.shards);
        let mut shards: Vec<Shard<W>> = if self.parallel && nshards > 1 {
            shards
                .into_par_iter()
                .map(|mut s| {
                    s.run_slice(nshards, slice_end);
                    s
                })
                .collect()
        } else {
            shards
                .into_iter()
                .map(|mut s| {
                    s.run_slice(nshards, slice_end);
                    s
                })
                .collect()
        };

        // Barrier: merge cross-shard emissions in (time, src shard, emission
        // index) order — unique keys, hence a total order independent of
        // thread scheduling — then push sequentially so destination sequence
        // numbers are assigned deterministically.
        let mut merged: Vec<(u64, usize, usize, usize, W::Ev)> = Vec::new();
        for (src, shard) in shards.iter_mut().enumerate() {
            for (idx, msg) in shard.cross_buf.drain(..).enumerate() {
                merged.push((msg.at.as_nanos(), src, idx, msg.dst, msg.ev));
            }
        }
        merged.sort_unstable_by_key(|(at, src, idx, _, _)| (*at, *src, *idx));
        #[cfg(debug_assertions)]
        for pair in merged.windows(2) {
            let a = (&pair[0].0, &pair[0].1, &pair[0].2);
            let b = (&pair[1].0, &pair[1].1, &pair[1].2);
            debug_assert!(a < b, "barrier merge keys must be strictly increasing");
        }
        for (at, _, _, dst, ev) in merged {
            shards[dst].queue.push(SimTime::from_nanos(at), ev);
        }
        self.shards = shards;
        self.now = slice_end;
    }

    /// Run until virtual time `limit` (exclusive) or until every queue
    /// drains. Empty slices are skipped by jumping the clock to the slice
    /// containing the next pending event.
    pub fn run_until(&mut self, limit: SimTime) -> ShardRunOutcome {
        loop {
            let Some(next) = self.min_next_time() else {
                return ShardRunOutcome::Drained;
            };
            if next >= limit {
                self.now = self.now.max(self.slice_start(limit));
                return ShardRunOutcome::TimeLimit;
            }
            self.now = self.now.max(self.slice_start(next));
            self.run_slice();
        }
    }

    /// Run for `dur` of virtual time from the current slice start.
    pub fn run_for(&mut self, dur: Duration) -> ShardRunOutcome {
        self.run_until(self.now + dur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Token-passing world: each event carries a counter; the handler forwards
    /// it to a pseudo-random shard after a latency of one-or-more slices, and
    /// records everything it saw.
    struct Token {
        hops_left: u32,
        value: u64,
    }

    struct PassWorld {
        id: usize,
        seen: Vec<(u64, u64)>,
    }

    impl ShardWorld for PassWorld {
        type Ev = Token;

        fn handle(&mut self, now: SimTime, ev: Token, ctl: &mut ShardCtl<Token>) {
            self.seen.push((now.as_nanos(), ev.value));
            if ev.hops_left == 0 {
                return;
            }
            // Deterministic pseudo-random routing and latency.
            let mix = ev
                .value
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(self.id as u64);
            let dst = (mix % ctl.shards() as u64) as usize;
            let latency = Duration::from_millis(1 + (mix >> 8) % 5);
            let next = Token {
                hops_left: ev.hops_left - 1,
                value: mix,
            };
            if dst == ctl.shard() && (mix >> 16) % 2 == 0 {
                // Same-shard fast path: stays inside the slice.
                ctl.send_local(now + Duration::from_micros(10), next);
            } else {
                ctl.send(dst, now + latency, next);
            }
        }
    }

    fn run(parallel: bool) -> (u64, u64, Vec<Vec<(u64, u64)>>) {
        let worlds = (0..4)
            .map(|id| PassWorld {
                id,
                seen: Vec::new(),
            })
            .collect();
        let mut sim = ShardedSim::new(worlds, Duration::from_millis(1), parallel);
        for i in 0..16u64 {
            sim.schedule(
                (i % 4) as usize,
                SimTime::ZERO + Duration::from_micros(i * 37),
                Token {
                    hops_left: 40,
                    value: i,
                },
            );
        }
        let outcome = sim.run_until(SimTime::ZERO + Duration::from_secs(2));
        assert_eq!(outcome, ShardRunOutcome::Drained);
        let seen = sim.worlds().map(|w| w.seen.clone()).collect();
        (sim.executed(), sim.trace_hash(), seen)
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let (seq_n, seq_hash, seq_seen) = run(false);
        let (par_n, par_hash, par_seen) = run(true);
        assert_eq!(seq_n, par_n, "same number of events executed");
        assert_eq!(seq_hash, par_hash, "identical (time, seq) history");
        assert_eq!(seq_seen, par_seen, "identical per-shard observations");
        assert!(seq_n >= 16 * 40, "tokens actually hopped");
    }

    #[test]
    fn same_seed_replays_identically() {
        let a = run(true);
        let b = run(true);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn empty_slices_are_skipped() {
        // Two events 10 s apart with a 1 ms slice: the run must not iterate
        // ten thousand empty slices' worth of merge work — verified cheaply
        // by the clock landing on the right slices.
        struct Null;
        impl ShardWorld for Null {
            type Ev = ();
            fn handle(&mut self, _: SimTime, _: (), _: &mut ShardCtl<()>) {}
        }
        let mut sim = ShardedSim::new(vec![Null, Null], Duration::from_millis(1), false);
        sim.schedule(0, SimTime::ZERO + Duration::from_secs(10), ());
        sim.schedule(1, SimTime::ZERO + Duration::from_secs(20), ());
        let outcome = sim.run_until(SimTime::ZERO + Duration::from_secs(30));
        assert_eq!(outcome, ShardRunOutcome::Drained);
        assert_eq!(sim.executed(), 2);
    }

    #[test]
    fn run_until_respects_limit() {
        struct Count(u64);
        impl ShardWorld for Count {
            type Ev = ();
            fn handle(&mut self, now: SimTime, _: (), ctl: &mut ShardCtl<()>) {
                self.0 += 1;
                ctl.send_local(now + Duration::from_millis(10), ());
            }
        }
        let mut sim = ShardedSim::new(vec![Count(0)], Duration::from_millis(1), false);
        sim.schedule(0, SimTime::ZERO, ());
        let outcome = sim.run_until(SimTime::ZERO + Duration::from_millis(100));
        assert_eq!(outcome, ShardRunOutcome::TimeLimit);
        // Events at 0, 10, …, 90 ms run; the one at 100 ms does not.
        assert_eq!(sim.world(0).0, 10);
    }
}
