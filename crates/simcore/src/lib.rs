//! Deterministic discrete-event simulation engine used by every other crate in the
//! IPOP workspace.
//!
//! The engine is intentionally small and completely deterministic: a virtual clock
//! ([`SimTime`]), a priority event queue with FIFO tie-breaking ([`EventQueue`]),
//! seedable random-number streams ([`rng::StreamRng`]) and online statistics
//! ([`stats`]). All protocol logic in the workspace (the physical network model,
//! the host TCP/IP stacks, the Brunet-like overlay and the IPOP node itself) runs
//! as events inside one single-threaded simulation, so a given seed always
//! reproduces the exact same packet trace. Parallelism is applied *across*
//! independent simulations (parameter sweeps in the benchmark harness), and —
//! for very large worlds — *inside* one run via the sharded simulator
//! ([`shard::ShardedSim`]), which partitions the world and fans slices out to
//! threads behind a deterministic barrier merge.
//!
//! # Quick example
//!
//! ```
//! use ipop_simcore::{Simulator, SimTime, Duration};
//!
//! struct World { ticks: u32 }
//!
//! let mut sim = Simulator::new(World { ticks: 0 });
//! sim.schedule_in(Duration::from_millis(5), |w: &mut World, ctl| {
//!     w.ticks += 1;
//!     // events may schedule further events
//!     ctl.schedule_in(Duration::from_millis(5), |w: &mut World, _| w.ticks += 1);
//! });
//! sim.run();
//! assert_eq!(sim.world().ticks, 2);
//! assert_eq!(sim.now(), SimTime::ZERO + Duration::from_millis(10));
//! ```

pub mod event;
pub mod rng;
pub mod shard;
pub mod sim;
pub mod stats;
pub mod time;

pub use event::{EventId, EventQueue, ScheduledEvent};
pub use rng::StreamRng;
pub use shard::{ShardCtl, ShardRunOutcome, ShardWorld, ShardedSim};
pub use sim::{Control, Event, EventFn, RunOutcome, Simulator, TimerToken};
pub use stats::{Histogram, OnlineStats, Summary};
pub use time::{Duration, SimTime};
