//! The simulation driver.
//!
//! A [`Simulator`] owns a world of type `W` and a queue of closures to run against
//! it at future virtual instants. Events may schedule (and cancel) further events
//! through the [`Control`] handle they receive. The driver is deliberately minimal:
//! higher layers (the network model in `ipop-netsim`) define their own richer event
//! payloads on top of it.

use crate::event::{EventId, EventQueue};
use crate::time::{Duration, SimTime};

/// The type of a scheduled action: it receives the world and a [`Control`] handle.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Control<'_, W>)>;

/// Opaque label attached by higher layers to timers they set on behalf of
/// components (e.g. "TCP retransmission timer for socket 3").
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TimerToken(pub u64);

/// Handle given to running events for scheduling further work.
pub struct Control<'a, W> {
    now: SimTime,
    queue: &'a mut EventQueue<EventFn<W>>,
}

impl<'a, W> Control<'a, W> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule an action at an absolute virtual time (clamped to now if in the past).
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Control<'_, W>) + 'static,
    {
        let at = at.max(self.now);
        self.queue.push(at, Box::new(f))
    }

    /// Schedule an action after a relative delay.
    pub fn schedule_in<F>(&mut self, delay: Duration, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Control<'_, W>) + 'static,
    {
        self.schedule_at(self.now + delay, f)
    }

    /// Cancel a previously scheduled action.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }
}

/// Outcome of a bounded run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// The time limit was reached with events still pending.
    TimeLimit,
    /// The event-count limit was reached with events still pending.
    EventLimit,
}

/// A discrete-event simulator over a world `W`.
pub struct Simulator<W> {
    now: SimTime,
    queue: EventQueue<EventFn<W>>,
    world: W,
    executed: u64,
}

impl<W> Simulator<W> {
    /// Create a simulator owning `world`, with the clock at zero.
    pub fn new(world: W) -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            world,
            executed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world (e.g. for collecting metrics between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consume the simulator and return the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedule an action at an absolute time.
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Control<'_, W>) + 'static,
    {
        let at = at.max(self.now);
        self.queue.push(at, Box::new(f))
    }

    /// Schedule an action after a relative delay.
    pub fn schedule_in<F>(&mut self, delay: Duration, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Control<'_, W>) + 'static,
    {
        self.schedule_at(self.now + delay, f)
    }

    /// Cancel a scheduled action.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Execute the single earliest pending event. Returns `false` if none remain.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        self.now = ev.at;
        self.executed += 1;
        let mut ctl = Control {
            now: self.now,
            queue: &mut self.queue,
        };
        (ev.payload)(&mut self.world, &mut ctl);
        true
    }

    /// Run until the queue drains.
    pub fn run(&mut self) -> RunOutcome {
        while self.step() {}
        RunOutcome::Drained
    }

    /// Run until the queue drains or virtual time would exceed `limit`.
    pub fn run_until(&mut self, limit: SimTime) -> RunOutcome {
        loop {
            match self.queue.next_time() {
                None => return RunOutcome::Drained,
                Some(t) if t > limit => {
                    self.now = limit;
                    return RunOutcome::TimeLimit;
                }
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Run for a relative span of virtual time.
    pub fn run_for(&mut self, span: Duration) -> RunOutcome {
        let limit = self.now + span;
        self.run_until(limit)
    }

    /// Run until the queue drains or `max_events` further events have executed.
    pub fn run_events(&mut self, max_events: u64) -> RunOutcome {
        for _ in 0..max_events {
            if !self.step() {
                return RunOutcome::Drained;
            }
        }
        if self.queue.is_empty() {
            RunOutcome::Drained
        } else {
            RunOutcome::EventLimit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct W {
        log: Vec<(u64, &'static str)>,
    }

    fn ms(x: u64) -> Duration {
        Duration::from_millis(x)
    }

    #[test]
    fn events_execute_in_order_and_clock_advances() {
        let mut sim = Simulator::new(W::default());
        sim.schedule_in(ms(10), |w: &mut W, c| {
            w.log.push((c.now().as_nanos() / 1_000_000, "b"))
        });
        sim.schedule_in(ms(1), |w: &mut W, c| {
            w.log.push((c.now().as_nanos() / 1_000_000, "a"))
        });
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(sim.world().log, vec![(1, "a"), (10, "b")]);
        assert_eq!(sim.now(), SimTime::ZERO + ms(10));
        assert_eq!(sim.executed(), 2);
    }

    #[test]
    fn events_can_chain() {
        let mut sim = Simulator::new(W::default());
        sim.schedule_in(ms(1), |w: &mut W, c| {
            w.log.push((1, "first"));
            c.schedule_in(ms(2), |w: &mut W, _| w.log.push((3, "second")));
        });
        sim.run();
        assert_eq!(sim.world().log, vec![(1, "first"), (3, "second")]);
        assert_eq!(sim.now(), SimTime::ZERO + ms(3));
    }

    #[test]
    fn run_until_stops_at_limit() {
        let mut sim = Simulator::new(W::default());
        for i in 1..=10u64 {
            sim.schedule_in(ms(i), move |w: &mut W, _| w.log.push((i, "x")));
        }
        let outcome = sim.run_until(SimTime::ZERO + ms(5));
        assert_eq!(outcome, RunOutcome::TimeLimit);
        assert_eq!(sim.world().log.len(), 5);
        assert_eq!(sim.now(), SimTime::ZERO + ms(5));
        assert_eq!(sim.pending(), 5);
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(sim.world().log.len(), 10);
    }

    #[test]
    fn run_events_bounds_work() {
        let mut sim = Simulator::new(W::default());
        for i in 1..=4u64 {
            sim.schedule_in(ms(i), move |w: &mut W, _| w.log.push((i, "x")));
        }
        assert_eq!(sim.run_events(2), RunOutcome::EventLimit);
        assert_eq!(sim.world().log.len(), 2);
        assert_eq!(sim.run_events(100), RunOutcome::Drained);
    }

    #[test]
    fn cancellation_prevents_execution() {
        let mut sim = Simulator::new(W::default());
        let id = sim.schedule_in(ms(1), |w: &mut W, _| w.log.push((1, "nope")));
        sim.schedule_in(ms(2), |w: &mut W, _| w.log.push((2, "yes")));
        assert!(sim.cancel(id));
        sim.run();
        assert_eq!(sim.world().log, vec![(2, "yes")]);
    }

    #[test]
    fn cancel_from_within_event() {
        let mut sim = Simulator::new(W::default());
        let victim = sim.schedule_in(ms(5), |w: &mut W, _| w.log.push((5, "victim")));
        sim.schedule_in(ms(1), move |_w: &mut W, c| {
            c.cancel(victim);
        });
        sim.run();
        assert!(sim.world().log.is_empty());
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut sim = Simulator::new(W::default());
        sim.schedule_in(ms(10), |w: &mut W, c| {
            // Absolute time before `now` gets clamped rather than panicking / time travel.
            c.schedule_at(SimTime::ZERO, |w: &mut W, c| {
                w.log.push((c.now().as_nanos() / 1_000_000, "late"));
            });
            w.log.push((10, "on-time"));
        });
        sim.run();
        assert_eq!(sim.world().log, vec![(10, "on-time"), (10, "late")]);
    }
}
