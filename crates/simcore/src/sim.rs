//! The simulation driver.
//!
//! A [`Simulator`] owns a world of type `W` and a queue of event payloads to run
//! against it at future virtual instants. Events may schedule (and cancel) further
//! events through the [`Control`] handle they receive.
//!
//! Two event representations are supported through the same machinery:
//!
//! * **Typed events** — the payload type `E` implements [`Event`] and is
//!   dispatched by `match`, with no allocation per scheduled event. This is what
//!   the network model in `ipop-netsim` uses for the packet hot path.
//! * **Closure events** — `E` defaults to [`EventFn`], a boxed `FnOnce`, which
//!   keeps one-off simulations and tests ergonomic at the cost of one heap
//!   allocation per event.

use crate::event::{EventId, EventQueue};
use crate::time::{Duration, SimTime};

/// A typed event payload executable against a world `W`.
///
/// Implementations are usually enums dispatched with `match`; scheduling them
/// costs no allocation, unlike the boxed-closure representation.
pub trait Event<W>: Sized {
    /// Execute the event. `ctl` schedules (and cancels) further events.
    fn fire(self, world: &mut W, ctl: &mut Control<'_, W, Self>);
}

/// The boxed action inside an [`EventFn`].
type BoxedEventFn<W> = Box<dyn FnOnce(&mut W, &mut Control<'_, W, EventFn<W>>)>;

/// The closure event representation: a boxed action receiving the world and a
/// [`Control`] handle. The default payload type of [`Simulator`] and [`Control`].
pub struct EventFn<W>(BoxedEventFn<W>);

impl<W> EventFn<W> {
    /// Box a closure as an event payload.
    pub fn new<F>(f: F) -> Self
    where
        F: FnOnce(&mut W, &mut Control<'_, W>) + 'static,
    {
        EventFn(Box::new(f))
    }
}

impl<W> Event<W> for EventFn<W> {
    fn fire(self, world: &mut W, ctl: &mut Control<'_, W, Self>) {
        (self.0)(world, ctl)
    }
}

/// Opaque label attached by higher layers to timers they set on behalf of
/// components (e.g. "TCP retransmission timer for socket 3").
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TimerToken(pub u64);

/// Handle given to running events for scheduling further work.
pub struct Control<'a, W, E: Event<W> = EventFn<W>> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    _world: std::marker::PhantomData<fn(&mut W)>,
}

impl<'a, W, E: Event<W>> Control<'a, W, E> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule a typed event at an absolute virtual time (clamped to now if in
    /// the past).
    pub fn schedule_event_at(&mut self, at: SimTime, event: E) -> EventId {
        let at = at.max(self.now);
        self.queue.push(at, event)
    }

    /// Schedule a typed event after a relative delay.
    pub fn schedule_event_in(&mut self, delay: Duration, event: E) -> EventId {
        self.schedule_event_at(self.now + delay, event)
    }

    /// Cancel a previously scheduled action.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }
}

impl<'a, W> Control<'a, W, EventFn<W>> {
    /// Schedule a closure at an absolute virtual time (clamped to now if in the
    /// past).
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Control<'_, W>) + 'static,
    {
        self.schedule_event_at(at, EventFn::new(f))
    }

    /// Schedule a closure after a relative delay.
    pub fn schedule_in<F>(&mut self, delay: Duration, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Control<'_, W>) + 'static,
    {
        self.schedule_at(self.now + delay, f)
    }
}

/// Outcome of a bounded run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// The time limit was reached with events still pending.
    TimeLimit,
    /// The event-count limit was reached with events still pending.
    EventLimit,
}

/// A discrete-event simulator over a world `W` with event payload `E`.
///
/// `E` defaults to the boxed-closure representation; performance-sensitive
/// worlds define an enum implementing [`Event`] instead.
pub struct Simulator<W, E: Event<W> = EventFn<W>> {
    now: SimTime,
    queue: EventQueue<E>,
    world: W,
    executed: u64,
}

impl<W, E: Event<W>> Simulator<W, E> {
    /// Create a simulator owning `world`, with the clock at zero.
    pub fn new(world: W) -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            world,
            executed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world (e.g. for collecting metrics between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consume the simulator and return the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedule a typed event at an absolute time.
    pub fn schedule_event_at(&mut self, at: SimTime, event: E) -> EventId {
        let at = at.max(self.now);
        self.queue.push(at, event)
    }

    /// Schedule a typed event after a relative delay.
    pub fn schedule_event_in(&mut self, delay: Duration, event: E) -> EventId {
        self.schedule_event_at(self.now + delay, event)
    }

    /// Cancel a scheduled action.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Execute the single earliest pending event. Returns `false` if none remain.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        self.now = ev.at;
        self.executed += 1;
        let mut ctl = Control {
            now: self.now,
            queue: &mut self.queue,
            _world: std::marker::PhantomData,
        };
        ev.payload.fire(&mut self.world, &mut ctl);
        true
    }

    /// Run until the queue drains.
    pub fn run(&mut self) -> RunOutcome {
        while self.step() {}
        RunOutcome::Drained
    }

    /// Run until the queue drains or virtual time would exceed `limit`.
    pub fn run_until(&mut self, limit: SimTime) -> RunOutcome {
        loop {
            match self.queue.next_time() {
                None => return RunOutcome::Drained,
                Some(t) if t > limit => {
                    self.now = limit;
                    return RunOutcome::TimeLimit;
                }
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Run for a relative span of virtual time.
    pub fn run_for(&mut self, span: Duration) -> RunOutcome {
        let limit = self.now + span;
        self.run_until(limit)
    }

    /// Run until the queue drains or `max_events` further events have executed.
    pub fn run_events(&mut self, max_events: u64) -> RunOutcome {
        for _ in 0..max_events {
            if !self.step() {
                return RunOutcome::Drained;
            }
        }
        if self.queue.is_empty() {
            RunOutcome::Drained
        } else {
            RunOutcome::EventLimit
        }
    }
}

impl<W> Simulator<W, EventFn<W>> {
    /// Schedule a closure at an absolute time.
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Control<'_, W>) + 'static,
    {
        self.schedule_event_at(at, EventFn::new(f))
    }

    /// Schedule a closure after a relative delay.
    pub fn schedule_in<F>(&mut self, delay: Duration, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Control<'_, W>) + 'static,
    {
        self.schedule_at(self.now + delay, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct W {
        log: Vec<(u64, &'static str)>,
    }

    fn ms(x: u64) -> Duration {
        Duration::from_millis(x)
    }

    #[test]
    fn events_execute_in_order_and_clock_advances() {
        let mut sim = Simulator::new(W::default());
        sim.schedule_in(ms(10), |w: &mut W, c| {
            w.log.push((c.now().as_nanos() / 1_000_000, "b"))
        });
        sim.schedule_in(ms(1), |w: &mut W, c| {
            w.log.push((c.now().as_nanos() / 1_000_000, "a"))
        });
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(sim.world().log, vec![(1, "a"), (10, "b")]);
        assert_eq!(sim.now(), SimTime::ZERO + ms(10));
        assert_eq!(sim.executed(), 2);
    }

    #[test]
    fn events_can_chain() {
        let mut sim = Simulator::new(W::default());
        sim.schedule_in(ms(1), |w: &mut W, c| {
            w.log.push((1, "first"));
            c.schedule_in(ms(2), |w: &mut W, _| w.log.push((3, "second")));
        });
        sim.run();
        assert_eq!(sim.world().log, vec![(1, "first"), (3, "second")]);
        assert_eq!(sim.now(), SimTime::ZERO + ms(3));
    }

    #[test]
    fn run_until_stops_at_limit() {
        let mut sim = Simulator::new(W::default());
        for i in 1..=10u64 {
            sim.schedule_in(ms(i), move |w: &mut W, _| w.log.push((i, "x")));
        }
        let outcome = sim.run_until(SimTime::ZERO + ms(5));
        assert_eq!(outcome, RunOutcome::TimeLimit);
        assert_eq!(sim.world().log.len(), 5);
        assert_eq!(sim.now(), SimTime::ZERO + ms(5));
        assert_eq!(sim.pending(), 5);
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(sim.world().log.len(), 10);
    }

    #[test]
    fn run_events_bounds_work() {
        let mut sim = Simulator::new(W::default());
        for i in 1..=4u64 {
            sim.schedule_in(ms(i), move |w: &mut W, _| w.log.push((i, "x")));
        }
        assert_eq!(sim.run_events(2), RunOutcome::EventLimit);
        assert_eq!(sim.world().log.len(), 2);
        assert_eq!(sim.run_events(100), RunOutcome::Drained);
    }

    #[test]
    fn cancellation_prevents_execution() {
        let mut sim = Simulator::new(W::default());
        let id = sim.schedule_in(ms(1), |w: &mut W, _| w.log.push((1, "nope")));
        sim.schedule_in(ms(2), |w: &mut W, _| w.log.push((2, "yes")));
        assert!(sim.cancel(id));
        sim.run();
        assert_eq!(sim.world().log, vec![(2, "yes")]);
    }

    #[test]
    fn cancel_from_within_event() {
        let mut sim = Simulator::new(W::default());
        let victim = sim.schedule_in(ms(5), |w: &mut W, _| w.log.push((5, "victim")));
        sim.schedule_in(ms(1), move |_w: &mut W, c| {
            c.cancel(victim);
        });
        sim.run();
        assert!(sim.world().log.is_empty());
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut sim = Simulator::new(W::default());
        sim.schedule_in(ms(10), |w: &mut W, c| {
            // Absolute time before `now` gets clamped rather than panicking / time travel.
            c.schedule_at(SimTime::ZERO, |w: &mut W, c| {
                w.log.push((c.now().as_nanos() / 1_000_000, "late"));
            });
            w.log.push((10, "on-time"));
        });
        sim.run();
        assert_eq!(sim.world().log, vec![(10, "on-time"), (10, "late")]);
    }

    // ------------------------------------------------------------ typed events

    #[derive(Default)]
    struct Counter {
        fired: Vec<(u64, u32)>,
    }

    enum Tick {
        Once(u32),
        Chain { label: u32, remaining: u32 },
    }

    impl Event<Counter> for Tick {
        fn fire(self, w: &mut Counter, ctl: &mut Control<'_, Counter, Tick>) {
            match self {
                Tick::Once(label) => w.fired.push((ctl.now().as_nanos(), label)),
                Tick::Chain { label, remaining } => {
                    w.fired.push((ctl.now().as_nanos(), label));
                    if remaining > 0 {
                        ctl.schedule_event_in(
                            ms(1),
                            Tick::Chain {
                                label: label + 1,
                                remaining: remaining - 1,
                            },
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn typed_events_dispatch_without_boxing() {
        let mut sim: Simulator<Counter, Tick> = Simulator::new(Counter::default());
        sim.schedule_event_in(ms(5), Tick::Once(99));
        sim.schedule_event_in(
            ms(1),
            Tick::Chain {
                label: 0,
                remaining: 2,
            },
        );
        assert_eq!(sim.run(), RunOutcome::Drained);
        let labels: Vec<u32> = sim.world().fired.iter().map(|&(_, l)| l).collect();
        assert_eq!(labels, vec![0, 1, 2, 99]);
        assert_eq!(sim.executed(), 4);
    }

    #[test]
    fn typed_events_can_be_cancelled() {
        let mut sim: Simulator<Counter, Tick> = Simulator::new(Counter::default());
        let id = sim.schedule_event_in(ms(1), Tick::Once(1));
        sim.schedule_event_in(ms(2), Tick::Once(2));
        assert!(sim.cancel(id));
        sim.run();
        let labels: Vec<u32> = sim.world().fired.iter().map(|&(_, l)| l).collect();
        assert_eq!(labels, vec![2]);
    }
}
