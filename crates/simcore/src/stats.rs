//! Online statistics and histograms used by the experiment harness.
//!
//! The paper reports means and standard deviations of 1000 ping RTTs (Table I),
//! throughput (Tables II/III), execution times (Table IV) and a latency histogram
//! over 10 000 pings (Fig. 5). [`OnlineStats`] implements Welford's algorithm so a
//! million samples cost O(1) memory; [`Histogram`] produces the binned counts used
//! to regenerate Fig. 5.

use crate::time::Duration;

/// Welford online mean / variance accumulator.
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Add a duration sample, in milliseconds (the unit the paper's tables use).
    pub fn add_duration_ms(&mut self, d: Duration) {
        self.add(d.as_millis_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// A compact snapshot.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count(),
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min(),
            max: self.max(),
        }
    }
}

/// A frozen snapshot of an [`OnlineStats`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Mean.
    pub mean: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// A fixed-width-bin histogram over `f64` samples.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    bin_width: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    samples: Vec<f64>,
}

impl Histogram {
    /// A histogram covering `[lo, hi)` with `bins` equal-width bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && hi > lo, "invalid histogram bounds");
        Histogram {
            lo,
            bin_width: (hi - lo) / bins as f64,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            samples: Vec::new(),
        }
    }

    /// Add one sample.
    pub fn add(&mut self, x: f64) {
        self.samples.push(x);
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.bin_width) as usize;
        if idx >= self.bins.len() {
            self.overflow += 1;
        } else {
            self.bins[idx] += 1;
        }
    }

    /// Total number of samples (including under/overflow).
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Samples that fell below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples that fell above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Iterator of `(bin_low_edge, bin_high_edge, count)`.
    pub fn bins(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        self.bins.iter().enumerate().map(move |(i, &c)| {
            let lo = self.lo + i as f64 * self.bin_width;
            (lo, lo + self.bin_width, c)
        })
    }

    /// The p-th percentile (`0.0..=1.0`) computed from retained raw samples.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = (p.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank]
    }

    /// Mean of all samples.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Render an ASCII bar chart, one line per bin — used by the Fig. 5 harness.
    pub fn ascii_chart(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (lo, hi, c) in self.bins() {
            let bar = "#".repeat((c as usize * width) / max as usize);
            out.push_str(&format!("{lo:10.1} - {hi:10.1} | {c:6} | {bar}\n"));
        }
        out
    }
}

/// Throughput helper: bytes transferred over a span, in KB/s as the paper reports.
pub fn throughput_kbps(bytes: u64, elapsed: Duration) -> f64 {
    if elapsed.is_zero() {
        return 0.0;
    }
    (bytes as f64 / 1000.0) / elapsed.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_matches_naive() {
        let data = [4.0, 8.0, 15.0, 16.0, 23.0, 42.0];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.add(x);
        }
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        let var: f64 =
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.variance() - var).abs() < 1e-9);
        assert_eq!(s.count(), 6);
        assert_eq!(s.min(), 4.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_equals_single_pass() {
        let mut all = OnlineStats::new();
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for i in 0..100 {
            let x = (i as f64).sin() * 10.0 + 20.0;
            all.add(x);
            if i % 2 == 0 {
                a.add(x)
            } else {
                b.add(x)
            }
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-6);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        a.add(1.0);
        a.add(3.0);
        let b = OnlineStats::new();
        let before = a.summary();
        a.merge(&b);
        assert_eq!(a.summary(), before);

        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.summary(), before);
    }

    #[test]
    fn histogram_bins_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.6, 9.9, -1.0, 12.0] {
            h.add(x);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        let bins: Vec<_> = h.bins().collect();
        assert_eq!(bins[0].2, 1);
        assert_eq!(bins[1].2, 2);
        assert_eq!(bins[9].2, 1);
    }

    #[test]
    fn histogram_percentile_and_mean() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for i in 0..=100 {
            h.add(i as f64);
        }
        assert_eq!(h.percentile(0.0), 0.0);
        assert_eq!(h.percentile(1.0), 100.0);
        assert_eq!(h.percentile(0.5), 50.0);
        assert!((h.mean() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_units() {
        // 1 MB in 1 second = 1000 KBps
        assert!((throughput_kbps(1_000_000, Duration::from_secs(1)) - 1000.0).abs() < 1e-9);
        assert_eq!(throughput_kbps(1_000_000, Duration::ZERO), 0.0);
    }

    #[test]
    fn ascii_chart_has_one_line_per_bin() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.add(1.0);
        h.add(1.2);
        h.add(3.0);
        let chart = h.ascii_chart(20);
        assert_eq!(chart.lines().count(), 4);
    }
}
