//! The event queue.
//!
//! A binary min-heap keyed by `(time, sequence)` where the sequence number is a
//! monotonically increasing counter assigned at insertion. Ties in virtual time are
//! therefore broken in insertion order, which keeps the whole simulation
//! deterministic regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct EventId(pub(crate) u64);

/// An entry in the queue: a payload to deliver at a virtual instant.
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Cancellation/identity handle.
    pub id: EventId,
    /// The payload.
    pub payload: E,
}

struct HeapEntry<E> {
    at: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of future events.
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: u64,
    cancelled: std::collections::HashSet<EventId>,
    len_live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            len_live: 0,
        }
    }

    /// Number of live (not cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.len_live
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len_live == 0
    }

    /// Schedule `payload` at absolute time `at`; returns a handle for cancellation.
    pub fn push(&mut self, at: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = EventId(seq);
        self.heap.push(HeapEntry {
            at,
            seq,
            id,
            payload,
        });
        self.len_live += 1;
        id
    }

    /// Cancel a previously scheduled event. Cancelling an already-fired or unknown
    /// event is a no-op and returns `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        if self.cancelled.insert(id) {
            // It may already have fired; in that case `pop` will never see it and the
            // tombstone is garbage-collected lazily. We still report true only when the
            // event was actually pending.
            if self.len_live > 0 {
                self.len_live -= 1;
                return true;
            }
        }
        false
    }

    /// The virtual time of the next live event, if any.
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the earliest live event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.skip_cancelled();
        let entry = self.heap.pop()?;
        self.len_live -= 1;
        Some(ScheduledEvent {
            at: entry.at,
            id: entry.id,
            payload: entry.payload,
        })
    }

    fn skip_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.id) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + Duration::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(5), "b");
        q.push(t(1), "a");
        q.push(t(9), "c");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_removes_event() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(!q.cancel(a), "double cancel is a no-op");
    }

    #[test]
    fn cancel_unknown_is_noop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn next_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(3), "b");
        q.cancel(a);
        assert_eq!(q.next_time(), Some(t(3)));
    }
}
