//! The event queue.
//!
//! A binary min-heap keyed by `(time, sequence)` where the sequence number is a
//! monotonically increasing counter assigned at insertion. Ties in virtual time are
//! therefore broken in insertion order, which keeps the whole simulation
//! deterministic regardless of heap internals.
//!
//! Cancellation is tombstone-based: the heap is never restructured. A cancelled
//! entry stays in the heap and is discarded when it reaches the top. To make
//! cancelling an already-fired event an exact no-op (it must neither corrupt
//! the live count nor leave a tombstone behind), the queue tracks which
//! identifiers are still *pending* — but the packet hot path schedules and
//! fires millions of events and never cancels, so that tracking must cost no
//! hashing per event. Pending-ness of the most recent [`WINDOW`] identifiers
//! lives in a fixed 8 KiB bitmap indexed by sequence number; the rare event
//! that stays pending while `WINDOW` newer ones are scheduled is moved to a
//! hash-set overflow on eviction.

// lint:allow(d1): membership-only overflow set behind the id bitmap — never
// iterated, and the identity hasher below keeps it seed-free anyway.
use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};

use crate::time::SimTime;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct EventId(pub(crate) u64);

/// Event identifiers are unique sequence numbers already, so the id sets hash
/// with the identity function instead of SipHash.
#[derive(Default)]
pub struct IdHasher(u64);

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are ever hashed; this path is unused but kept total.
        for &b in bytes {
            self.0 = (self.0 << 8) | u64::from(b);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

// lint:allow(d1): membership-only (insert/remove/contains); determinism does
// not depend on iteration order because no code path iterates it.
type IdSet = HashSet<EventId, BuildHasherDefault<IdHasher>>;

/// Number of recent event ids whose pending-ness is tracked in the bitmap.
const WINDOW: u64 = 1 << 16;
const WINDOW_WORDS: usize = (WINDOW as usize) / 64;

/// An entry in the queue: a payload to deliver at a virtual instant.
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Cancellation/identity handle.
    pub id: EventId,
    /// The payload.
    pub payload: E,
}

struct HeapEntry<E> {
    at: SimTime,
    /// Sequence number; doubles as the event id, so entries stay small.
    seq: u64,
    payload: E,
}

impl<E> HeapEntry<E> {
    /// Min-heap key: earliest time first, insertion order breaking ties. The
    /// `(time, seq)` pair is unique and totally ordered, which is what makes
    /// replays deterministic regardless of heap internals.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// A 4-ary min-heap. Shallower than a binary heap and with all four children
/// of a node on one or two cache lines, it does measurably fewer cache misses
/// per pop — `pop` is the single hottest call in the whole simulator.
struct MinHeap<E> {
    items: Vec<HeapEntry<E>>,
}

const HEAP_ARITY: usize = 4;

impl<E> MinHeap<E> {
    fn new() -> Self {
        MinHeap { items: Vec::new() }
    }

    fn peek(&self) -> Option<&HeapEntry<E>> {
        self.items.first()
    }

    fn push(&mut self, entry: HeapEntry<E>) {
        self.items.push(entry);
        self.sift_up(self.items.len() - 1);
    }

    fn pop(&mut self) -> Option<HeapEntry<E>> {
        if self.items.is_empty() {
            return None;
        }
        let last = self.items.len() - 1;
        self.items.swap(0, last);
        let entry = self.items.pop();
        if !self.items.is_empty() {
            self.sift_down(0);
        }
        entry
    }

    fn sift_up(&mut self, mut idx: usize) {
        while idx > 0 {
            let parent = (idx - 1) / HEAP_ARITY;
            if self.items[idx].key() < self.items[parent].key() {
                self.items.swap(idx, parent);
                idx = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut idx: usize) {
        let len = self.items.len();
        loop {
            let first_child = idx * HEAP_ARITY + 1;
            if first_child >= len {
                break;
            }
            let last_child = (first_child + HEAP_ARITY).min(len);
            let mut smallest = first_child;
            let mut smallest_key = self.items[first_child].key();
            for c in first_child + 1..last_child {
                let k = self.items[c].key();
                if k < smallest_key {
                    smallest = c;
                    smallest_key = k;
                }
            }
            if smallest_key < self.items[idx].key() {
                self.items.swap(idx, smallest);
                idx = smallest;
            } else {
                break;
            }
        }
    }
}

/// Tracks which event ids are pending (scheduled, not yet fired or cancelled)
/// without hashing on the hot path.
struct PendingSet {
    /// Bitmap over the ids in `[next_seq - WINDOW, next_seq)`, indexed by
    /// `id % WINDOW`. A set bit means "still pending".
    window: Box<[u64; WINDOW_WORDS]>,
    /// Pending ids older than the window (evicted as the window slid past
    /// them). Touched only for events that outlive `WINDOW` newer ones.
    overflow: IdSet,
    len: usize,
}

impl PendingSet {
    fn new() -> Self {
        PendingSet {
            window: Box::new([0u64; WINDOW_WORDS]),
            overflow: IdSet::default(),
            len: 0,
        }
    }

    #[inline]
    fn bit(id: u64) -> (usize, u64) {
        let slot = (id % WINDOW) as usize;
        (slot / 64, 1u64 << (slot % 64))
    }

    /// Record `id` (== the previous `next_seq`) as pending, sliding the window
    /// forward over the id it replaces.
    #[inline]
    fn insert_next(&mut self, id: u64) {
        let (word, mask) = Self::bit(id);
        // The slot currently belongs to `id - WINDOW`; if that event is still
        // pending, it moves to the overflow set.
        if self.window[word] & mask != 0 {
            self.overflow.insert(EventId(id - WINDOW));
        }
        self.window[word] |= mask;
        self.len += 1;
    }

    /// Remove a pending id (fired or cancelled). Returns whether it was pending.
    /// `next_seq` bounds the current window.
    #[inline]
    fn remove(&mut self, id: u64, next_seq: u64) -> bool {
        if next_seq - id <= WINDOW {
            let (word, mask) = Self::bit(id);
            let was = self.window[word] & mask != 0;
            self.window[word] &= !mask;
            if was {
                self.len -= 1;
            }
            was
        } else if self.overflow.remove(&EventId(id)) {
            self.len -= 1;
            true
        } else {
            false
        }
    }
}

/// log2 of the timing-wheel granularity in nanoseconds (65536 ns ≈ 66 µs).
const GRAN_SHIFT: u32 = 16;
/// Number of wheel slots; the wheel window covers `SLOTS << GRAN_SHIFT` ≈ 34 ms
/// of virtual time — wide enough that both micro-timers and wide-area link
/// arrivals (tens of milliseconds) stay out of the overflow heap.
const SLOTS: usize = 512;
const SLOT_WORDS: usize = SLOTS / 64;

/// A timing wheel over a far-future overflow heap.
///
/// Discrete-event simulations schedule overwhelmingly into the near future
/// (wakeups microseconds ahead); a binary heap pays a full sift-down per pop
/// for those. The wheel buckets the next `SLOTS << GRAN_SHIFT` (≈ 34 ms) of
/// virtual time into 66 µs slots: push is O(1), pop sorts one small slot at a
/// time, and an occupancy bitmap skips empty slots in word-sized steps. Events beyond the window go
/// to a 4-ary overflow heap and cascade into the wheel as it turns. The exact
/// `(time, seq)` total order — the determinism contract — is preserved: slots
/// partition the time axis, each slot is sorted before it is drained, and the
/// overflow never holds a key below the current window end.
struct Wheel<E> {
    slots: Vec<Vec<HeapEntry<E>>>,
    /// Bit set per non-empty slot.
    bitmap: [u64; SLOT_WORDS],
    /// Absolute slot index (time >> GRAN_SHIFT) of the cursor; the window
    /// covers `[cur_abs, cur_abs + SLOTS)` absolute slots. Only `pop` moves
    /// the cursor, so events may still be scheduled anywhere at or after the
    /// last popped instant.
    cur_abs: u64,
    /// Absolute slot index whose bucket is currently sorted (descending, so
    /// the minimum pops from the back), if any.
    sorted_abs: Option<u64>,
    /// Entries stored in the wheel (not counting the overflow heap).
    in_wheel: usize,
    overflow: MinHeap<E>,
}

impl<E> Wheel<E> {
    fn new() -> Self {
        Wheel {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            bitmap: [0; SLOT_WORDS],
            cur_abs: 0,
            sorted_abs: None,
            in_wheel: 0,
            overflow: MinHeap::new(),
        }
    }

    #[inline]
    fn ring(abs: u64) -> usize {
        (abs as usize) % SLOTS
    }

    #[inline]
    fn mark(&mut self, ring: usize) {
        self.bitmap[ring / 64] |= 1 << (ring % 64);
    }

    #[inline]
    fn unmark(&mut self, ring: usize) {
        self.bitmap[ring / 64] &= !(1 << (ring % 64));
    }

    fn push(&mut self, entry: HeapEntry<E>) {
        let abs = entry.at.as_nanos() >> GRAN_SHIFT;
        debug_assert!(abs >= self.cur_abs, "scheduling behind the wheel cursor");
        if abs - self.cur_abs < SLOTS as u64 {
            let ring = Self::ring(abs);
            self.slots[ring].push(entry);
            self.mark(ring);
            self.in_wheel += 1;
            if self.sorted_abs == Some(abs) {
                self.sorted_abs = None;
            }
        } else {
            self.overflow.push(entry);
        }
    }

    /// Move the cursor to the next non-empty slot (cascading overflow entries
    /// into the window as it advances). Returns the absolute slot index, or
    /// `None` if nothing is queued. Called only from `pop`.
    fn advance(&mut self) -> Option<u64> {
        loop {
            if self.in_wheel > 0 {
                let abs = self.next_occupied().expect("in_wheel > 0");
                if abs != self.cur_abs {
                    self.cur_abs = abs;
                    self.drain_overflow();
                }
                return Some(abs);
            }
            let top = self.overflow.peek()?;
            // Jump the window to the earliest overflow entry and pull in
            // everything that now fits.
            self.cur_abs = top.at.as_nanos() >> GRAN_SHIFT;
            self.drain_overflow();
        }
    }

    /// Pull overflow entries that fall inside the (new) window into slots.
    fn drain_overflow(&mut self) {
        while let Some(top) = self.overflow.peek() {
            let abs = top.at.as_nanos() >> GRAN_SHIFT;
            if abs - self.cur_abs >= SLOTS as u64 {
                break;
            }
            let entry = self.overflow.pop().expect("peeked entry");
            let ring = Self::ring(abs);
            self.slots[ring].push(entry);
            self.mark(ring);
            self.in_wheel += 1;
            if self.sorted_abs == Some(abs) {
                self.sorted_abs = None;
            }
        }
    }

    /// Absolute index of the first occupied slot at or after the cursor.
    fn next_occupied(&self) -> Option<u64> {
        let start = Self::ring(self.cur_abs);
        // Search the ring in absolute order: [start..SLOTS), then [0..start).
        let mut word = start / 64;
        let mut mask = !0u64 << (start % 64);
        let mut scanned = 0usize;
        while scanned < SLOT_WORDS + 1 {
            let bits = self.bitmap[word] & mask;
            if bits != 0 {
                let ring = word * 64 + bits.trailing_zeros() as usize;
                let delta = (ring + SLOTS - start) % SLOTS;
                return Some(self.cur_abs + delta as u64);
            }
            word = (word + 1) % SLOT_WORDS;
            mask = !0;
            scanned += 1;
        }
        None
    }

    /// Sort the bucket for absolute slot `abs` (descending) if needed, so its
    /// minimum is at the back. Keys are unique, so the order is total and
    /// deterministic.
    fn sort_slot(&mut self, abs: u64) {
        if self.sorted_abs != Some(abs) {
            let ring = Self::ring(abs);
            self.slots[ring].sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
            self.sorted_abs = Some(abs);
        }
    }

    /// The earliest queued entry. Does not move the cursor, so scheduling
    /// behind the peeked slot (but at or after the last popped instant)
    /// remains legal.
    fn peek(&mut self) -> Option<&HeapEntry<E>> {
        if self.in_wheel > 0 {
            let abs = self.next_occupied().expect("in_wheel > 0");
            self.sort_slot(abs);
            self.slots[Self::ring(abs)].last()
        } else {
            self.overflow.peek()
        }
    }

    /// Remove the entry [`Wheel::peek`] would return, **without** moving the
    /// cursor. Used to collect cancelled tombstones: `next_time` must be able
    /// to discard them while leaving every slot at or after the last popped
    /// instant schedulable.
    fn remove_peeked(&mut self) {
        if self.in_wheel > 0 {
            let abs = self.next_occupied().expect("in_wheel > 0");
            self.sort_slot(abs);
            let ring = Self::ring(abs);
            self.slots[ring].pop().expect("occupied slot");
            self.in_wheel -= 1;
            if self.slots[ring].is_empty() {
                self.unmark(ring);
            }
        } else {
            self.overflow.pop();
        }
    }

    fn pop(&mut self) -> Option<HeapEntry<E>> {
        let abs = self.advance()?;
        self.sort_slot(abs);
        let ring = Self::ring(abs);
        let entry = self.slots[ring].pop().expect("advance found entries");
        self.in_wheel -= 1;
        if self.slots[ring].is_empty() {
            self.unmark(ring);
        }
        Some(entry)
    }
}

/// A deterministic priority queue of future events.
pub struct EventQueue<E> {
    wheel: Wheel<E>,
    next_seq: u64,
    /// Ids scheduled but not yet fired or cancelled.
    pending: PendingSet,
    /// Tombstones for cancelled events still sitting in the queue. Every entry
    /// here corresponds to a queued entry, so the set is garbage-collected as
    /// the cancelled entries surface — it cannot grow without bound.
    cancelled: IdSet,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            wheel: Wheel::new(),
            next_seq: 0,
            pending: PendingSet::new(),
            cancelled: IdSet::default(),
        }
    }

    /// Key of the earliest queued entry (cancelled tombstones included).
    #[inline]
    fn peek_entry(&mut self) -> Option<&HeapEntry<E>> {
        self.wheel.peek()
    }

    /// Remove and return the earliest queued entry.
    #[inline]
    fn take_min(&mut self) -> Option<HeapEntry<E>> {
        self.wheel.pop()
    }

    /// Number of live (not cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.pending.len
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.len == 0
    }

    /// Number of cancellation tombstones still awaiting garbage collection
    /// (diagnostics; bounded by the number of pending heap entries).
    pub fn tombstones(&self) -> usize {
        self.cancelled.len()
    }

    /// Schedule `payload` at absolute time `at`; returns a handle for cancellation.
    pub fn push(&mut self, at: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.wheel.push(HeapEntry { at, seq, payload });
        self.pending.insert_next(seq);
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Cancelling an already-fired,
    /// already-cancelled or unknown event is a no-op and returns `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        if self.pending.remove(id.0, self.next_seq) {
            self.cancelled.insert(id);
            true
        } else {
            false
        }
    }

    /// The virtual time of the next live event, if any.
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.peek_entry().map(|e| e.at)
    }

    /// Pop the earliest live event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.skip_cancelled();
        let entry = self.take_min()?;
        self.pending.remove(entry.seq, self.next_seq);
        Some(ScheduledEvent {
            at: entry.at,
            id: EventId(entry.seq),
            payload: entry.payload,
        })
    }

    fn skip_cancelled(&mut self) {
        if self.cancelled.is_empty() {
            return;
        }
        while let Some(seq) = self.peek_entry().map(|top| top.seq) {
            if self.cancelled.remove(&EventId(seq)) {
                // Discard without advancing the wheel cursor: `next_time` runs
                // between events, when scheduling at any instant at or after
                // the last *fired* event must remain legal.
                self.wheel.remove_peeked();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + Duration::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(5), "b");
        q.push(t(1), "a");
        q.push(t(9), "c");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_removes_event() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(!q.cancel(a), "double cancel is a no-op");
    }

    #[test]
    fn cancel_unknown_is_noop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn next_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(3), "b");
        q.cancel(a);
        assert_eq!(q.next_time(), Some(t(3)));
    }

    #[test]
    fn cancel_after_fire_is_a_noop_and_keeps_len_correct() {
        // Regression: cancelling an id that already fired used to return `true`
        // and decrement the live count, making `is_empty()` lie while events
        // were still queued.
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        assert_eq!(q.pop().unwrap().id, a);
        assert!(!q.cancel(a), "cancelling a fired event must report false");
        assert_eq!(q.len(), 1, "live count must not be corrupted");
        assert!(!q.is_empty());
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_fire_leaves_no_tombstone() {
        // Regression: tombstones for already-fired events used to accumulate
        // forever (retransmit-style timers are cancelled constantly).
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            let id = q.push(t(i), i);
            q.pop();
            q.cancel(id); // always after the fact
        }
        assert_eq!(q.tombstones(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn pending_tombstones_are_collected_when_they_surface() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..100u64).map(|i| q.push(t(i), i)).collect();
        for id in &ids[..50] {
            assert!(q.cancel(*id));
        }
        assert_eq!(q.tombstones(), 50);
        assert_eq!(q.len(), 50);
        let survivors: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(survivors, (50..100).collect::<Vec<_>>());
        assert_eq!(q.tombstones(), 0, "surfaced tombstones are collected");
    }

    #[test]
    fn next_time_over_cancelled_head_does_not_break_later_scheduling() {
        // Regression: collecting a cancelled tombstone inside `next_time` used
        // to advance the timing-wheel cursor to the cancelled slot, so a later
        // (perfectly legal) push at an earlier instant landed behind the
        // cursor and was misordered.
        let mut q = EventQueue::new();
        let victim = q.push(t(10), "victim");
        q.push(t(20), "late");
        q.cancel(victim);
        // Peeking collects the tombstone (the next live event is at 20 ms)...
        assert_eq!(q.next_time(), Some(t(20)));
        // ...and scheduling before both instants must still order first.
        q.push(t(2), "early");
        assert_eq!(q.pop().unwrap().payload, "early");
        assert_eq!(q.pop().unwrap().payload, "late");
        assert!(q.pop().is_none());
    }

    #[test]
    fn events_outliving_the_id_window_stay_cancellable() {
        // An event that stays pending while more than WINDOW newer events are
        // scheduled is evicted to the overflow set; pending-ness bookkeeping
        // must survive the eviction.
        let mut q: EventQueue<u64> = EventQueue::new();
        let old = q.push(t(1_000_000), u64::MAX);
        let old_fired = q.push(t(0), u64::MAX - 1);
        assert_eq!(q.pop().unwrap().id, old_fired);
        for i in 0..(WINDOW + 10) {
            let id = q.push(t(2 + i), i);
            assert_eq!(q.pop().unwrap().id, id);
        }
        assert_eq!(q.len(), 1);
        assert!(
            !q.cancel(old_fired),
            "fired id evicted from the window is still reported fired"
        );
        assert!(q.cancel(old), "pending id survives window eviction");
        assert!(!q.cancel(old), "double cancel after eviction is a no-op");
        assert!(q.is_empty());
        assert_eq!(q.next_time(), None, "cancelled straggler never surfaces");
    }

    #[test]
    fn window_wrap_keeps_counts_exact() {
        // Interleave pushes and pops across several window lengths and verify
        // len() is exact throughout.
        let mut q = EventQueue::new();
        let mut expect = 0usize;
        for round in 0..3u64 {
            for i in 0..WINDOW {
                q.push(t(round * WINDOW + i), ());
                expect += 1;
                if i % 2 == 0 {
                    q.pop();
                    expect -= 1;
                }
                debug_assert_eq!(q.len(), expect);
            }
        }
        assert_eq!(q.len(), expect);
        while q.pop().is_some() {}
        assert!(q.is_empty());
    }
}
