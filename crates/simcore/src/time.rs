//! Virtual time.
//!
//! Simulation time is kept as an integer number of nanoseconds since the start of
//! the simulation. Integer time keeps the event queue total-ordered and makes runs
//! bit-reproducible; nanosecond resolution is fine enough for sub-microsecond
//! link serialization delays and coarse enough that a `u64` covers ~584 years.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of virtual time (non-negative).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration {
    nanos: u64,
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration { nanos: 0 };
    /// One nanosecond.
    pub const NANOSECOND: Duration = Duration { nanos: 1 };
    /// One microsecond.
    pub const MICROSECOND: Duration = Duration { nanos: 1_000 };
    /// One millisecond.
    pub const MILLISECOND: Duration = Duration { nanos: 1_000_000 };
    /// One second.
    pub const SECOND: Duration = Duration {
        nanos: 1_000_000_000,
    };

    /// Construct from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Duration { nanos }
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration { nanos: us * 1_000 }
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration {
            nanos: ms * 1_000_000,
        }
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration {
            nanos: s * 1_000_000_000,
        }
    }

    /// Construct from fractional seconds. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return Duration::ZERO;
        }
        Duration {
            nanos: (s * 1e9).round() as u64,
        }
    }

    /// Construct from fractional milliseconds. Negative inputs clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        Duration::from_secs_f64(ms / 1e3)
    }

    /// Construct from fractional microseconds. Negative inputs clamp to zero.
    pub fn from_micros_f64(us: f64) -> Self {
        Duration::from_secs_f64(us / 1e6)
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// The span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// The span in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.nanos as f64 / 1e6
    }

    /// The span in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.nanos as f64 / 1e3
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration {
            nanos: self.nanos.saturating_sub(other.nanos),
        }
    }

    /// Multiply by a non-negative float (e.g. a CPU load factor), rounding to the
    /// nearest nanosecond.
    pub fn mul_f64(self, factor: f64) -> Duration {
        Duration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// True if this is the zero span.
    pub fn is_zero(self) -> bool {
        self.nanos == 0
    }

    /// The larger of two spans.
    pub fn max(self, other: Duration) -> Duration {
        if self.nanos >= other.nanos {
            self
        } else {
            other
        }
    }

    /// The smaller of two spans.
    pub fn min(self, other: Duration) -> Duration {
        if self.nanos <= other.nanos {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nanos >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.nanos >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.nanos >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.nanos)
        }
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration {
            nanos: self.nanos + rhs.nanos,
        }
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.nanos += rhs.nanos;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration {
            nanos: self.nanos - rhs.nanos,
        }
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.nanos -= rhs.nanos;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration {
            nanos: self.nanos * rhs,
        }
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration {
            nanos: self.nanos / rhs,
        }
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |acc, d| acc + d)
    }
}

/// An instant of virtual time, measured from simulation start.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime {
    nanos: u64,
}

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime { nanos: 0 };
    /// The maximum representable instant (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime { nanos: u64::MAX };

    /// Construct from nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime { nanos }
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// Fractional milliseconds since simulation start.
    pub fn as_millis_f64(self) -> f64 {
        self.nanos as f64 / 1e6
    }

    /// Elapsed time since `earlier`; zero if `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.nanos.saturating_sub(earlier.nanos))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.nanos >= other.nanos {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.nanos <= other.nanos {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", Duration::from_nanos(self.nanos))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", Duration::from_nanos(self.nanos))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime {
            nanos: self.nanos + rhs.as_nanos(),
        }
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.nanos += rhs.as_nanos();
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime {
            nanos: self.nanos - rhs.as_nanos(),
        }
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_nanos(self.nanos - rhs.nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_micros(1), Duration::from_nanos(1_000));
        assert_eq!(Duration::from_millis(1), Duration::from_micros(1_000));
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1_000));
        assert_eq!(Duration::from_secs_f64(0.5), Duration::from_millis(500));
        assert_eq!(Duration::from_millis_f64(1.5), Duration::from_micros(1_500));
        assert_eq!(Duration::from_micros_f64(2.5), Duration::from_nanos(2_500));
    }

    #[test]
    fn duration_negative_float_clamps_to_zero() {
        assert_eq!(Duration::from_secs_f64(-3.0), Duration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::from_millis(3);
        let b = Duration::from_millis(2);
        assert_eq!(a + b, Duration::from_millis(5));
        assert_eq!(a - b, Duration::from_millis(1));
        assert_eq!(b.saturating_sub(a), Duration::ZERO);
        assert_eq!(a * 4, Duration::from_millis(12));
        assert_eq!(a / 3, Duration::from_millis(1));
        assert_eq!(a.mul_f64(2.5), Duration::from_micros(7_500));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn duration_sum() {
        let total: Duration = (1..=4).map(Duration::from_millis).sum();
        assert_eq!(total, Duration::from_millis(10));
    }

    #[test]
    fn simtime_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + Duration::from_secs(2);
        assert_eq!(t1 - t0, Duration::from_secs(2));
        assert_eq!(t1 - Duration::from_secs(1), t0 + Duration::from_secs(1));
        assert_eq!(t0.saturating_since(t1), Duration::ZERO);
        assert_eq!(t1.saturating_since(t0), Duration::from_secs(2));
        assert_eq!(t0.max(t1), t1);
        assert_eq!(t0.min(t1), t0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", Duration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Duration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", Duration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", Duration::from_secs(12)), "12.000s");
    }
}
